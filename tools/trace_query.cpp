/**
 * trace_query: interrogate a mscclpp.reqtrace dump (the per-request
 * tail-exemplar file the serving cluster writes under
 * MSCCLPP_REQTRACE=1). For a request id it prints the full span tree,
 * the TTFT/e2e latency-attribution buckets, and the blame chain —
 * request -> replica -> step -> collective -> link — that names the
 * component which put the most critical-path communication time on
 * the request. The assertion flags make it a CI primitive: degrade a
 * link mid-run, then assert the worst exemplar blames that link and
 * started after the fault fired.
 *
 * Usage: trace_query --reqtrace <file> [options] [<request-id>]
 *   --class ttft|e2e       SLO class to query (default e2e)
 *   --list                 list the retained exemplars, worst first
 *   --worst                query the worst exemplar of the class
 *   --assert-link <sub>    exit 1 unless the blame link contains <sub>
 *   --assert-post-fault    exit 1 unless the blamed span begins at or
 *                          after the first recorded fault
 */
#include "tuner/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace json = mscclpp::tuner::json;

namespace {

std::optional<json::Value>
loadReqtrace(const std::string& path)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "trace_query: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::optional<json::Value> v = json::parse(ss.str());
    if (!v) {
        std::fprintf(stderr, "trace_query: %s is not valid JSON\n",
                     path.c_str());
        return std::nullopt;
    }
    const json::Value* schema = v->get("schema");
    const json::Value* version = v->get("version");
    if (schema == nullptr || schema->string != "mscclpp.reqtrace" ||
        version == nullptr || !version->isNumber() ||
        version->number != 1) {
        std::fprintf(stderr,
                     "trace_query: %s is not a mscclpp.reqtrace v1\n",
                     path.c_str());
        return std::nullopt;
    }
    return v;
}

double
numOf(const json::Value& obj, const char* key)
{
    const json::Value* v = obj.get(key);
    return v != nullptr && v->isNumber() ? v->number : 0.0;
}

std::string
strOf(const json::Value& obj, const char* key)
{
    const json::Value* v = obj.get(key);
    return v != nullptr && v->isString() ? v->string : std::string();
}

void
printBuckets(const json::Value& req, const char* key, double totalNs)
{
    const json::Value* b = req.get(key);
    if (b == nullptr || !b->isObject()) {
        return;
    }
    std::printf("  %s (total %.3f ns):\n", key, totalNs);
    for (const auto& [cat, v] : b->object) {
        if (!v.isNumber() || v.number == 0.0) {
            continue;
        }
        const double pct = totalNs > 0 ? 100.0 * v.number / totalNs : 0;
        std::printf("    %-16s %14.3f ns  %5.1f%%\n", cat.c_str(),
                    v.number, pct);
    }
}

void
printRequest(const json::Value& req)
{
    std::printf("request %d  replica %d  preemptions %d  decode steps "
                "%d\n",
                int(numOf(req, "id")), int(numOf(req, "replica")),
                int(numOf(req, "preemptions")),
                int(numOf(req, "decode_steps")));
    std::printf("  arrival %.3f ns  first token %.3f ns  completed "
                "%.3f ns\n",
                numOf(req, "arrival_ns"), numOf(req, "first_token_ns"),
                numOf(req, "completed_ns"));
    std::printf("  ttft %.3f ns  e2e %.3f ns\n", numOf(req, "ttft_ns"),
                numOf(req, "e2e_ns"));

    const json::Value* spans = req.get("spans");
    if (spans != nullptr && spans->isArray()) {
        std::printf("  spans:\n");
        for (const json::Value& sp : spans->array) {
            const double b = numOf(sp, "begin_ns");
            const double e = numOf(sp, "end_ns");
            std::string extra;
            const std::string label = strOf(sp, "label");
            const std::string coll = strOf(sp, "collective");
            const std::string link = strOf(sp, "link");
            if (!label.empty()) {
                extra += "  " + label;
            }
            if (!coll.empty()) {
                extra += "  coll=" + coll;
            }
            if (!link.empty()) {
                extra += "  link=" + link;
            }
            std::printf("    %-13s r%-2d [%14.3f, %14.3f) %12.3f "
                        "ns%s\n",
                        strOf(sp, "phase").c_str(),
                        int(numOf(sp, "replica")), b, e, e - b,
                        extra.c_str());
        }
    }
    printBuckets(req, "ttft_buckets_ns", numOf(req, "ttft_ns"));
    printBuckets(req, "e2e_buckets_ns", numOf(req, "e2e_ns"));
}

/** The human-readable causal chain from request to culprit link. */
void
printBlame(const json::Value& req, const json::Value& blame)
{
    std::string chain =
        "req " + std::to_string(int(numOf(req, "id"))) + " -> replica " +
        std::to_string(int(numOf(blame, "replica")));
    const std::string step = strOf(blame, "step");
    const std::string coll = strOf(blame, "collective");
    const std::string link = strOf(blame, "link");
    if (!step.empty()) {
        chain += " -> step '" + step + "'";
    }
    if (!coll.empty()) {
        chain += " -> collective '" + coll + "'";
    }
    if (!link.empty()) {
        chain += " -> link " + link;
    }
    std::printf("  blame: %s\n", chain.c_str());
    std::printf("         %s, %.3f ns at t=%.3f ns\n",
                strOf(blame, "category").c_str(), numOf(blame, "cost_ns"),
                numOf(blame, "at_ns"));
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    std::string cls = "e2e";
    std::string assertLink;
    bool list = false;
    bool worst = false;
    bool assertPostFault = false;
    int reqId = -1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--reqtrace" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg == "--class" && i + 1 < argc) {
            cls = argv[++i];
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--worst") {
            worst = true;
        } else if (arg == "--assert-link" && i + 1 < argc) {
            assertLink = argv[++i];
        } else if (arg == "--assert-post-fault") {
            assertPostFault = true;
        } else if (!arg.empty() && arg[0] != '-') {
            reqId = std::atoi(arg.c_str());
        } else {
            std::fprintf(stderr,
                         "usage: %s --reqtrace <file> [--class "
                         "ttft|e2e] [--list] [--worst] [--assert-link "
                         "<sub>] [--assert-post-fault] [<request-id>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (path.empty() || (cls != "ttft" && cls != "e2e")) {
        std::fprintf(stderr,
                     "trace_query: --reqtrace is required and --class "
                     "must be ttft or e2e\n");
        return 2;
    }
    if (!list && !worst && reqId < 0) {
        std::fprintf(stderr,
                     "trace_query: give a request id, --worst, or "
                     "--list\n");
        return 2;
    }

    std::optional<json::Value> doc = loadReqtrace(path);
    if (!doc) {
        return 2;
    }
    const json::Value* classes = doc->get("classes");
    const json::Value* exemplars =
        classes != nullptr ? classes->get(cls) : nullptr;
    if (exemplars == nullptr || !exemplars->isArray()) {
        std::fprintf(stderr, "trace_query: %s has no '%s' exemplars\n",
                     path.c_str(), cls.c_str());
        return 2;
    }

    if (list) {
        std::printf("%s: %zu '%s' exemplar(s), worst first\n",
                    path.c_str(), exemplars->array.size(), cls.c_str());
        for (const json::Value& req : exemplars->array) {
            std::printf("  req %-4d ttft %14.3f ns  e2e %14.3f ns  "
                        "preemptions %d\n",
                        int(numOf(req, "id")), numOf(req, "ttft_ns"),
                        numOf(req, "e2e_ns"),
                        int(numOf(req, "preemptions")));
        }
        if (!worst && reqId < 0) {
            return 0;
        }
    }

    const json::Value* target = nullptr;
    if (worst) {
        if (exemplars->array.empty()) {
            std::fprintf(stderr,
                         "trace_query: no '%s' exemplars retained\n",
                         cls.c_str());
            return 2;
        }
        target = &exemplars->array.front(); // retained worst-first
    } else {
        for (const json::Value& req : exemplars->array) {
            if (int(numOf(req, "id")) == reqId) {
                target = &req;
                break;
            }
        }
        if (target == nullptr) {
            std::fprintf(stderr,
                         "trace_query: request %d is not among the "
                         "retained '%s' exemplars (see --list)\n",
                         reqId, cls.c_str());
            return 2;
        }
    }

    printRequest(*target);
    const json::Value* blame = target->get("blame");
    if (blame == nullptr || !blame->isObject()) {
        std::fprintf(stderr, "trace_query: exemplar has no blame\n");
        return 2;
    }
    printBlame(*target, *blame);

    int rc = 0;
    if (!assertLink.empty()) {
        const std::string link = strOf(*blame, "link");
        if (link.find(assertLink) == std::string::npos) {
            std::fprintf(stderr,
                         "trace_query: blame link '%s' does not "
                         "contain '%s'\n",
                         link.c_str(), assertLink.c_str());
            rc = 1;
        } else {
            std::printf("  assert-link '%s': ok\n", assertLink.c_str());
        }
    }
    if (assertPostFault) {
        const json::Value* faults = doc->get("faults");
        if (faults == nullptr || !faults->isArray() ||
            faults->array.empty()) {
            std::fprintf(stderr,
                         "trace_query: --assert-post-fault but the "
                         "dump records no faults\n");
            rc = 1;
        } else {
            double firstFault = numOf(faults->array.front(), "at_ns");
            for (const json::Value& f : faults->array) {
                firstFault = std::min(firstFault, numOf(f, "at_ns"));
            }
            const double at = numOf(*blame, "at_ns");
            if (at < firstFault) {
                std::fprintf(stderr,
                             "trace_query: blamed span at %.3f ns "
                             "precedes the first fault at %.3f ns\n",
                             at, firstFault);
                rc = 1;
            } else {
                std::printf("  assert-post-fault: ok (blame %.3f ns >= "
                            "fault %.3f ns)\n",
                            at, firstFault);
            }
        }
    }
    return rc;
}
