/**
 * bench_report: machine-readable benchmark harness. Re-runs the
 * fig08/fig10/fig11 scenarios with critical-path attribution enabled
 * and writes one schema-versioned BENCH_<env>.json per environment,
 * carrying p50/p99 latency and the per-category attribution breakdown
 * for every bench key. The A100-80G report additionally carries the
 * cluster-serving scenario (schema v4): request-level TTFT/TPOT/e2e
 * percentiles under open-loop load, in a nested "serving" object per
 * key, plus — for the MSCCL++ backend — reqtrace_overhead_pct, the
 * virtual-time perturbation of re-running the same workload with
 * request tracing on (the zero-perturbation invariant says exactly 0).
 * The serving block also carries alerts_count from the SLO burn-rate
 * monitor, deterministically 0 on a healthy run: any fired alert on
 * the clean bench scenario is itself a regression bench_compare gates.
 * bench_compare diffs these files against the committed baselines
 * in bench/baselines/ to catch regressions.
 *
 * Usage: bench_report [--out <dir>] [--smoke]
 *   --out    output directory (default bench_out; created, gitignored)
 *   --smoke  small subset for CI (fewer sizes, fewer iterations)
 *
 * The simulator runs in virtual time, so the samples are
 * deterministic: p50 == p99 on a healthy run, and any drift against
 * the baseline is a real cost-model or algorithm change, not noise.
 */
#include "bench_util.hpp"
#include "collective/api.hpp"
#include "inference/llm.hpp"
#include "obs/critpath.hpp"
#include "obs/simprof.hpp"
#include "obs/window.hpp"
#include "serving/cluster.hpp"
#include "tuner/json.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;

namespace {

struct BenchResult
{
    std::string key;
    std::size_t bytes = 0;
    std::vector<double> samplesUs; // one per timed iteration
    std::map<std::string, double> attributionNs;
    std::map<std::string, double> byLinkNs; // wire time per named link
    double measuredNs = 0; // latency the attribution must sum to
    // Step-window profile (fig10 decode benches only): the serving
    // step's measured latency and its compute/exposed-comms/... split.
    std::map<std::string, double> stepAttributionNs;
    double stepMeasuredNs = 0;
    // Request-level serving percentiles (serving.* keys only, v3).
    std::map<std::string, double> servingFields;

    double percentile(double q) const
    {
        std::vector<double> s = samplesUs;
        std::sort(s.begin(), s.end());
        if (s.empty()) {
            return 0;
        }
        std::size_t idx = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(s.size())));
        return s[std::min(idx == 0 ? 0 : idx - 1, s.size() - 1)];
    }
};

/**
 * Simulator self-bench (ROADMAP "Simulator raw speed"): one fixed
 * AllReduce workload, counted two ways. The event counters
 * (events_total, events_by_origin, max_queue_depth, closure copies)
 * are pure functions of the deterministic event stream — identical on
 * every machine and in both CI legs — so bench_compare gates them
 * bit-identically. The wall-clock keys (events_per_sec,
 * host_ns_by_origin) measure this host and are only ratio-floored.
 */
struct SimSelfBench
{
    bool present = false;
    std::uint64_t eventsTotal = 0;
    std::uint64_t maxQueueDepth = 0;
    std::uint64_t closureCopies = 0;
    double eventsPerSec = 0;
    std::map<std::string, std::uint64_t> eventsByOrigin;
    std::map<std::string, std::uint64_t> hostNsByOrigin;
};

struct Report
{
    std::string env;
    std::vector<BenchResult> benches;
    SimSelfBench sim;
};

/** Fresh machine with critpath attribution on and teardown dump off
 *  (bench_report writes its own artifacts). */
std::unique_ptr<gpu::Machine>
makeMachine(fab::EnvConfig env, int nodes)
{
    env.critpathEnabled = true;
    auto machine =
        std::make_unique<gpu::Machine>(env, nodes, gpu::DataMode::Timed);
    machine->obs().setDumpOnDestroy(false);
    return machine;
}

/** Capture the last collective's attribution into @p out. */
void
captureAttribution(const CollectiveComm& comm, BenchResult& out)
{
    const obs::CriticalPathReport* rep = comm.lastCriticalPath();
    if (rep == nullptr) {
        return;
    }
    for (const auto& [cat, t] : rep->byCategory) {
        out.attributionNs[obs::toString(cat)] = sim::toNs(t);
    }
    for (const auto& [link, t] : rep->byLink) {
        out.byLinkNs[link] = sim::toNs(t);
    }
    out.measuredNs = sim::toNs(rep->total());
}

void
runAllReduceSweep(Report& report, const std::string& fig,
                  fab::EnvConfig env, int nodes,
                  const std::vector<std::size_t>& sizes, int iters)
{
    auto machine = makeMachine(env, nodes);
    CollectiveComm::Options opt;
    opt.maxBytes = *std::max_element(sizes.begin(), sizes.end());
    CollectiveComm comm(*machine, opt);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%dn%dg", nodes,
                  nodes * env.gpusPerNode);
    for (std::size_t bytes : sizes) {
        BenchResult r;
        r.key = fig + ".allreduce." + shape + "." +
                bench::humanBytes(bytes);
        r.bytes = bytes;
        // One warmup (populates tuner/plan caches), then timed iters.
        comm.allReduce(bytes, gpu::DataType::F16, gpu::ReduceOp::Sum);
        for (int i = 0; i < iters; ++i) {
            machine->obs().tracer().clear();
            sim::Time t = comm.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
            r.samplesUs.push_back(sim::toUs(t));
        }
        captureAttribution(comm, r);
        report.benches.push_back(std::move(r));
    }
}

void
runDecodeSweep(Report& report, fab::EnvConfig env,
               const std::vector<std::pair<int, int>>& shapes, int iters)
{
    auto machine = makeMachine(env, 1);
    inference::InferenceSim infer(*machine, inference::InferenceConfig{});
    for (auto [bsz, seqlen] : shapes) {
        BenchResult r;
        r.key = "fig10.decode.b" + std::to_string(bsz) + ".s" +
                std::to_string(seqlen);
        infer.decodeStep(bsz, seqlen, inference::CommBackend::Mscclpp);
        for (int i = 0; i < iters; ++i) {
            machine->obs().tracer().clear();
            auto step = infer.decodeStep(bsz, seqlen,
                                         inference::CommBackend::Mscclpp);
            r.bytes = step.allReduceBytes;
            r.samplesUs.push_back(sim::toUs(step.total()));
        }
        // Attribution covers the decode step's last AllReduce — the
        // communication the figure is about, not the GEMM time.
        captureAttribution(infer.comm(), r);
        // The step profiler saw the whole decode step (decodeStep
        // opens a window when none is active): record its
        // compute/exposed-comms/... split alongside the AllReduce
        // critical path. Buckets sum exactly to step_measured_ns.
        if (const obs::StepAttribution* att =
                machine->obs().window().lastStep()) {
            for (obs::StepCategory cat : obs::kStepCategories) {
                r.stepAttributionNs[obs::toString(cat)] =
                    sim::toNs(att->bucket(cat));
            }
            r.stepMeasuredNs = sim::toNs(att->measured);
        }
        report.benches.push_back(std::move(r));
    }
}

SimSelfBench
runSimSelfBench()
{
    // Plain config: no critpath (its tracing is irrelevant here), no
    // watchdog — nothing that could schedule obs-side events, so the
    // event stream is identical whether or not obs is compiled in.
    fab::EnvConfig env = fab::makeA100_40G();
    auto machine =
        std::make_unique<gpu::Machine>(env, 1, gpu::DataMode::Timed);
    machine->obs().setDumpOnDestroy(false);
    sim::Scheduler& sched = machine->scheduler();
    sched.enableOriginCounts(true);
    // Host-ns attribution rides along on compiled-in builds; it only
    // reads the host clock, so the deterministic counters are
    // unaffected (the zero-perturbation invariant).
    obs::SimProf prof;
    prof.setEnabled(true);
    prof.attach(sched);

    const std::uint64_t events0 = sched.eventsProcessed();
    const std::uint64_t copies0 = sim::Scheduler::closureCopies();
    CollectiveComm::Options opt;
    opt.maxBytes = std::size_t(1) << 20;
    CollectiveComm comm(*machine, opt);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i) {
        comm.allReduce(std::size_t(1) << 20, gpu::DataType::F16,
                       gpu::ReduceOp::Sum);
    }
    const auto t1 = std::chrono::steady_clock::now();

    SimSelfBench out;
    out.present = true;
    out.eventsTotal = sched.eventsProcessed() - events0;
    out.maxQueueDepth = sched.maxQueueDepth();
    out.closureCopies = sim::Scheduler::closureCopies() - copies0;
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();
    out.eventsPerSec =
        sec > 0 ? static_cast<double>(out.eventsTotal) / sec : 0;
    out.eventsByOrigin = sched.originCountsByName();
    if (obs::SimProf::kCompiledIn) {
        out.hostNsByOrigin = prof.hostNsByLabel();
    }
    return out;
}

const char*
backendSlug(inference::CommBackend b)
{
    switch (b) {
      case inference::CommBackend::Nccl:
        return "nccl";
      case inference::CommBackend::Msccl:
        return "msccl";
      default:
        return "mscclpp";
    }
}

void
runServingCluster(Report& report)
{
    // Cluster-scale serving scenario (DESIGN.md Section 12): two
    // Llama2-70b TP=8 replicas behind a Poisson stream, per AllReduce
    // backend. The configuration is deliberately identical in --smoke
    // and full runs — virtual time makes it deterministic and cheap —
    // so the committed baseline gates CI's smoke pass on the same key.
    for (inference::CommBackend backend :
         {inference::CommBackend::Nccl,
          inference::CommBackend::Mscclpp}) {
        serving::ServingConfig cfg;
        cfg.env.critpathEnabled = true;
        cfg.backend = backend;
        cfg.replicas = 2;
        cfg.workload.requests = 16;
        cfg.workload.ratePerSec = 8.0;
        // SLO burn-rate monitor on, dump off: the bench only wants the
        // fired-alert count, which must be 0 on this healthy scenario.
        cfg.slomon = true;
        cfg.slomonFile.clear();
        serving::ServingCluster cluster(cfg);
        for (int i = 0; i < cluster.numReplicas(); ++i) {
            cluster.replica(i).machine().obs().setDumpOnDestroy(false);
        }
        serving::ServingReport rep = cluster.run();

        // Request-tracing overhead (MSCCL++ backend): the identical
        // workload re-run with reqtrace on. Instrumentation must never
        // advance virtual time, so any nonzero makespan delta is an
        // observer-effect bug — bench_compare gates this at ~0.
        double reqtraceOverheadPct = 0.0;
        if (backend == inference::CommBackend::Mscclpp &&
            obs::Tracer::kCompiledIn && rep.makespan > 0) {
            serving::ServingConfig traced = cfg;
            traced.reqtrace = true;
            traced.reqtraceFile.clear(); // measure, don't dump
            serving::ServingCluster tracedCluster(traced);
            for (int i = 0; i < tracedCluster.numReplicas(); ++i) {
                tracedCluster.replica(i)
                    .machine()
                    .obs()
                    .setDumpOnDestroy(false);
            }
            serving::ServingReport tracedRep = tracedCluster.run();
            reqtraceOverheadPct =
                100.0 * (double(tracedRep.makespan) /
                             double(rep.makespan) -
                         1.0);
        }

        BenchResult r;
        r.key = std::string("serving.cluster.2r.") +
                backendSlug(backend);
        for (const serving::RequestStats& s : cluster.requests()) {
            if (!s.dropped) {
                r.samplesUs.push_back(sim::toUs(s.e2e()));
            }
        }
        if (const obs::StepAttribution* att =
                cluster.replica(0).machine().obs().window().lastStep()) {
            for (obs::StepCategory cat : obs::kStepCategories) {
                r.stepAttributionNs[obs::toString(cat)] =
                    sim::toNs(att->bucket(cat));
            }
            r.stepMeasuredNs = sim::toNs(att->measured);
        }
        r.servingFields = {
            {"requests", double(rep.requests)},
            {"dropped", double(rep.dropped)},
            {"preemptions", double(rep.preemptions)},
            {"migrations", double(rep.migrations)},
            {"ttft_p50_us", sim::toUs(rep.ttftP50)},
            {"ttft_p99_us", sim::toUs(rep.ttftP99)},
            {"tpot_p50_us", sim::toUs(rep.tpotP50)},
            {"tpot_p99_us", sim::toUs(rep.tpotP99)},
            {"e2e_p99_us", sim::toUs(rep.e2eP99)},
            {"slo_ttft_violations", double(rep.sloTtftViolations)},
            {"slo_tpot_violations", double(rep.sloTpotViolations)},
            {"alerts_count", double(rep.alertsFired)},
            {"throughput_tps", rep.throughputTps},
        };
        if (backend == inference::CommBackend::Mscclpp) {
            r.servingFields["reqtrace_overhead_pct"] =
                reqtraceOverheadPct;
        }
        report.benches.push_back(std::move(r));
    }
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
toJson(const Report& report)
{
    std::string out = "{\n  \"schema\": \"mscclpp.bench_report\",\n"
                      "  \"version\": 4,\n  \"env\": \"" +
                      tuner::json::escape(report.env) + "\",\n";
    if (report.sim.present) {
        auto u64MapJson =
            [](const std::map<std::string, std::uint64_t>& m) {
                std::string s = "{";
                bool first = true;
                for (const auto& [k, v] : m) {
                    if (!first) {
                        s += ", ";
                    }
                    first = false;
                    s += "\"" + tuner::json::escape(k) +
                         "\": " + std::to_string(v);
                }
                return s + "}";
            };
        out += "  \"sim\": {\n";
        out += "    \"events_total\": " +
               std::to_string(report.sim.eventsTotal) + ",\n";
        out += "    \"max_queue_depth\": " +
               std::to_string(report.sim.maxQueueDepth) + ",\n";
        out += "    \"dispatch_closure_copies\": " +
               std::to_string(report.sim.closureCopies) + ",\n";
        out += "    \"events_per_sec\": " + num(report.sim.eventsPerSec) +
               ",\n";
        out += "    \"events_by_origin\": " +
               u64MapJson(report.sim.eventsByOrigin);
        // Wall-time attribution exists only when obs is compiled in;
        // bench_compare treats its absence as informational.
        if (!report.sim.hostNsByOrigin.empty()) {
            out += ",\n    \"host_ns_by_origin\": " +
                   u64MapJson(report.sim.hostNsByOrigin);
        }
        out += "\n  },\n";
    }
    out += "  \"benches\": {\n";
    bool firstBench = true;
    for (const BenchResult& r : report.benches) {
        if (!firstBench) {
            out += ",\n";
        }
        firstBench = false;
        out += "    \"" + tuner::json::escape(r.key) + "\": {\n";
        out += "      \"bytes\": " + std::to_string(r.bytes) + ",\n";
        out += "      \"samples\": " + std::to_string(r.samplesUs.size()) +
               ",\n";
        out += "      \"p50_us\": " + num(r.percentile(0.50)) + ",\n";
        out += "      \"p99_us\": " + num(r.percentile(0.99)) + ",\n";
        out += "      \"measured_ns\": " + num(r.measuredNs) + ",\n";
        auto mapJson = [](const std::map<std::string, double>& m) {
            std::string s = "{";
            bool first = true;
            for (const auto& [k, v] : m) {
                if (!first) {
                    s += ", ";
                }
                first = false;
                s += "\"" + tuner::json::escape(k) + "\": " + num(v);
            }
            return s + "}";
        };
        out += "      \"attribution_ns\": " + mapJson(r.attributionNs) +
               ",\n";
        out += "      \"by_link_ns\": " + mapJson(r.byLinkNs);
        if (!r.stepAttributionNs.empty()) {
            out += ",\n      \"step_measured_ns\": " +
                   num(r.stepMeasuredNs) + ",\n";
            out += "      \"step_attribution_ns\": " +
                   mapJson(r.stepAttributionNs);
        }
        if (!r.servingFields.empty()) {
            out += ",\n      \"serving\": " + mapJson(r.servingFields);
        }
        out += "\n    }";
    }
    out += "\n  }\n}\n";
    return out;
}

void
writeReport(const Report& report, const std::string& dir)
{
    std::filesystem::create_directories(dir);
    std::string path = dir + "/BENCH_" + report.env + ".json";
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    f << toJson(report);
    std::printf("wrote %s (%zu benches)\n", path.c_str(),
                report.benches.size());
}

} // namespace

int
main(int argc, char** argv)
{
    std::string outDir = "bench_out";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outDir = argv[++i];
        } else if (arg.rfind("--out=", 0) == 0) {
            outDir = arg.substr(6);
        } else if (arg == "--smoke") {
            smoke = true;
        } else {
            std::fprintf(stderr, "usage: %s [--out <dir>] [--smoke]\n",
                         argv[0]);
            return 2;
        }
    }

    const int iters = smoke ? 2 : 5;
    std::vector<std::size_t> sizes = {std::size_t(4) << 10,
                                      std::size_t(1) << 20};
    if (!smoke) {
        sizes.push_back(std::size_t(64) << 20);
    }

    // fig08: AllReduce, A100-40G, 1 and 2 nodes — plus the simulator
    // self-bench (same workload in smoke and full runs, so CI's smoke
    // pass gates the deterministic counters against the baseline).
    {
        Report rep;
        rep.env = "A100-40G";
        runAllReduceSweep(rep, "fig08", fab::makeA100_40G(), 1, sizes,
                          iters);
        if (!smoke) {
            runAllReduceSweep(rep, "fig08", fab::makeA100_40G(), 2, sizes,
                              iters);
        }
        rep.sim = runSimSelfBench();
        writeReport(rep, outDir);
    }

    // fig10: Llama2-70b decode steps, A100-80G, TP=8 — plus the
    // cluster-serving scenario (same size in smoke and full runs).
    {
        Report rep;
        rep.env = "A100-80G";
        std::vector<std::pair<int, int>> shapes = {{8, 512}};
        if (!smoke) {
            shapes.push_back({32, 1024});
        }
        runDecodeSweep(rep, fab::makeA100_80G(), shapes, iters);
        runServingCluster(rep);
        writeReport(rep, outDir);
    }

    // fig11: AllReduce, H100 (SwitchChannel/NVLS path), single node.
    {
        Report rep;
        rep.env = "H100";
        runAllReduceSweep(rep, "fig11", fab::makeH100(), 1, sizes, iters);
        writeReport(rep, outDir);
    }
    return 0;
}
