/**
 * hang_merge: cluster-level hang triage. Merges the per-rank
 * mscclpp.hang artifacts the stall watchdog dumps (one per process in
 * a real deployment, one per replica here) into a single
 * mscclpp.hang_merge report: total reports, counts by classification
 * and by root-cause party, plus — when given a bench_report pair —
 * corroboration of link-blaming root causes against the per-link
 * wire-time growth bench_compare gates on. A "link:gpu3.tx" root
 * cause that also shows >threshold by_link_ns growth between baseline
 * and current is flagged corroborated: two independent observers
 * (watchdog wait-for graph, critical-path attribution) agree on the
 * culprit.
 *
 * Usage: hang_merge [options] <hang.json>...
 *   --out <file>           write the merged JSON (default: stdout only)
 *   --require-party <sub>  exit 1 unless some root-cause party
 *                          contains <sub> (CI assertion hook)
 *   --bench <current.json> current bench_report (v4) for corroboration
 *   --baseline <base.json> baseline bench_report (v4)
 *   --threshold <pct>      per-link growth threshold (default 10)
 */
#include "tuner/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace json = mscclpp::tuner::json;

namespace {

constexpr const char* kLinkPrefix = "link:";

std::optional<json::Value>
loadJson(const std::string& path, const char* expectSchema,
         double expectVersion)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "hang_merge: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::optional<json::Value> v = json::parse(ss.str());
    if (!v) {
        std::fprintf(stderr, "hang_merge: %s is not valid JSON\n",
                     path.c_str());
        return std::nullopt;
    }
    const json::Value* schema = v->get("schema");
    const json::Value* version = v->get("version");
    if (schema == nullptr || schema->string != expectSchema ||
        version == nullptr || !version->isNumber() ||
        version->number != expectVersion) {
        std::fprintf(stderr, "hang_merge: %s is not a %s v%g\n",
                     path.c_str(), expectSchema, expectVersion);
        return std::nullopt;
    }
    return v;
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

struct Corroboration
{
    std::string party;
    std::string benchKey;
    double baseNs = 0;
    double curNs = 0;
    double deltaPct = 0;
};

/**
 * For a link-blaming root cause, find bench keys whose by_link_ns for
 * that link grew past the threshold between baseline and current.
 * Links below 100ns of baseline wire time are skipped, mirroring the
 * bench_compare floor.
 */
std::vector<Corroboration>
corroborate(const std::string& party, const json::Value& baseBenches,
            const json::Value& curBenches, double thresholdPct)
{
    std::vector<Corroboration> out;
    const std::string link = party.substr(std::strlen(kLinkPrefix));
    for (const auto& [key, baseBench] : baseBenches.object) {
        const json::Value* curBench = curBenches.get(key);
        if (curBench == nullptr) {
            continue;
        }
        const json::Value* base = baseBench.get("by_link_ns");
        const json::Value* cur = curBench->get("by_link_ns");
        if (base == nullptr || !base->isObject() || cur == nullptr ||
            !cur->isObject()) {
            continue;
        }
        const json::Value* b = base->get(link);
        const json::Value* c = cur->get(link);
        if (b == nullptr || !b->isNumber() || b->number < 100.0 ||
            c == nullptr || !c->isNumber()) {
            continue;
        }
        double deltaPct = 100.0 * (c->number / b->number - 1.0);
        if (deltaPct > thresholdPct) {
            out.push_back({party, key, b->number, c->number, deltaPct});
        }
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string outPath;
    std::string requireParty;
    std::string benchPath;
    std::string baselinePath;
    double thresholdPct = 10.0;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--require-party" && i + 1 < argc) {
            requireParty = argv[++i];
        } else if (arg == "--bench" && i + 1 < argc) {
            benchPath = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--threshold" && i + 1 < argc) {
            thresholdPct = std::atof(argv[++i]);
        } else if (!arg.empty() && arg[0] != '-') {
            files.push_back(arg);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out <file>] [--require-party "
                         "<sub>] [--bench <cur.json> --baseline "
                         "<base.json>] [--threshold <pct>] "
                         "<hang.json>...\n",
                         argv[0]);
            return 2;
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "hang_merge: no hang artifacts given\n");
        return 2;
    }
    if (benchPath.empty() != baselinePath.empty()) {
        std::fprintf(stderr,
                     "hang_merge: --bench and --baseline go together\n");
        return 2;
    }

    std::size_t reportsTotal = 0;
    std::map<std::string, std::size_t> byClassification;
    std::map<std::string, std::size_t> byParty;
    std::map<std::string, std::size_t> byReason;
    for (const std::string& path : files) {
        std::optional<json::Value> doc =
            loadJson(path, "mscclpp.hang", 1);
        if (!doc) {
            return 2;
        }
        const json::Value* reports = doc->get("reports");
        if (reports == nullptr || !reports->isArray()) {
            std::fprintf(stderr, "hang_merge: %s has no reports array\n",
                         path.c_str());
            return 2;
        }
        for (const json::Value& r : reports->array) {
            const json::Value* cls = r.get("classification");
            const json::Value* root = r.get("root_cause");
            if (cls == nullptr || !cls->isString() || root == nullptr ||
                root->get("party") == nullptr ||
                root->get("reason") == nullptr) {
                std::fprintf(stderr,
                             "hang_merge: %s has a malformed report\n",
                             path.c_str());
                return 2;
            }
            ++reportsTotal;
            byClassification[cls->string]++;
            byParty[root->get("party")->string]++;
            byReason[root->get("reason")->string]++;
        }
    }

    std::vector<Corroboration> corroborated;
    if (!benchPath.empty()) {
        std::optional<json::Value> cur =
            loadJson(benchPath, "mscclpp.bench_report", 4);
        std::optional<json::Value> base =
            loadJson(baselinePath, "mscclpp.bench_report", 4);
        if (!cur || !base) {
            return 2;
        }
        const json::Value* curBenches = cur->get("benches");
        const json::Value* baseBenches = base->get("benches");
        if (curBenches == nullptr || !curBenches->isObject() ||
            baseBenches == nullptr || !baseBenches->isObject()) {
            std::fprintf(stderr,
                         "hang_merge: bench reports missing benches\n");
            return 2;
        }
        for (const auto& [party, count] : byParty) {
            (void)count;
            if (party.rfind(kLinkPrefix, 0) != 0) {
                continue;
            }
            std::vector<Corroboration> hits = corroborate(
                party, *baseBenches, *curBenches, thresholdPct);
            corroborated.insert(corroborated.end(), hits.begin(),
                                hits.end());
        }
    }

    auto countsJson = [](const std::map<std::string, std::size_t>& m) {
        std::string s = "{";
        bool first = true;
        for (const auto& [k, v] : m) {
            if (!first) {
                s += ", ";
            }
            first = false;
            s += "\"" + json::escape(k) + "\": " + std::to_string(v);
        }
        return s + "}";
    };
    std::string out = "{\n  \"schema\": \"mscclpp.hang_merge\",\n"
                      "  \"version\": 1,\n";
    out += "  \"files\": " + std::to_string(files.size()) + ",\n";
    out += "  \"reports_total\": " + std::to_string(reportsTotal) + ",\n";
    out += "  \"by_classification\": " + countsJson(byClassification) +
           ",\n";
    out += "  \"by_root_cause_party\": " + countsJson(byParty) + ",\n";
    out += "  \"by_root_cause_reason\": " + countsJson(byReason) + ",\n";
    out += "  \"corroborated\": [";
    bool first = true;
    for (const Corroboration& c : corroborated) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"party\": \"" + json::escape(c.party) +
               "\", \"bench\": \"" + json::escape(c.benchKey) +
               "\", \"base_ns\": " + num(c.baseNs) +
               ", \"cur_ns\": " + num(c.curNs) +
               ", \"delta_pct\": " + num(c.deltaPct) + "}";
    }
    out += corroborated.empty() ? "]\n}\n" : "\n  ]\n}\n";

    std::printf("hang_merge: %zu file(s), %zu report(s)\n", files.size(),
                reportsTotal);
    for (const auto& [party, count] : byParty) {
        std::printf("  root cause %-24s x%zu\n", party.c_str(), count);
    }
    for (const Corroboration& c : corroborated) {
        std::printf("  corroborated: %s grew %+.1f%% in %s\n",
                    c.party.c_str(), c.deltaPct, c.benchKey.c_str());
    }

    if (!outPath.empty()) {
        std::ofstream f(outPath);
        if (!f) {
            std::fprintf(stderr, "hang_merge: cannot write %s\n",
                         outPath.c_str());
            return 2;
        }
        f << out;
        std::printf("merged -> %s\n", outPath.c_str());
    } else {
        std::fputs(out.c_str(), stdout);
    }

    if (!requireParty.empty()) {
        bool found = false;
        for (const auto& [party, count] : byParty) {
            (void)count;
            if (party.find(requireParty) != std::string::npos) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "hang_merge: no root-cause party contains "
                         "'%s'\n",
                         requireParty.c_str());
            return 1;
        }
        std::printf("required party '%s': present\n",
                    requireParty.c_str());
    }
    return 0;
}
