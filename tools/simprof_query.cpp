/**
 * simprof_query: interrogate a mscclpp.simprof dump (the simulator's
 * host-time self-profile, MSCCLPP_SIMPROF=1). Prints the run summary
 * and the per-origin wall-time table — where the *simulator* spends
 * host time while it advances virtual time — sorted hottest first.
 * The assertion flags make it a CI primitive: after a serving run,
 * assert that at least PCT% of measured wall time landed on named
 * origin/section labels (labelling-coverage gate) and that a specific
 * subsystem label shows up at all.
 *
 * Usage: simprof_query <simprof.json> [options]
 *   --topk <n>                print only the n hottest rows
 *   --assert-attributed <pct> exit 1 unless attributed_pct >= pct
 *                             (also accepts --assert-attributed=PCT)
 *   --assert-origin <label>   exit 1 unless some origin row's label
 *                             contains <label> with events > 0
 *                             (also accepts --assert-origin=LABEL)
 */
#include "tuner/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace json = mscclpp::tuner::json;

namespace {

std::optional<json::Value>
loadSimprof(const std::string& path)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "simprof_query: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::optional<json::Value> v = json::parse(ss.str());
    if (!v) {
        std::fprintf(stderr, "simprof_query: %s is not valid JSON\n",
                     path.c_str());
        return std::nullopt;
    }
    const json::Value* schema = v->get("schema");
    const json::Value* version = v->get("version");
    if (schema == nullptr || schema->string != "mscclpp.simprof" ||
        version == nullptr || !version->isNumber() ||
        version->number != 1) {
        std::fprintf(stderr,
                     "simprof_query: %s is not a mscclpp.simprof v1\n",
                     path.c_str());
        return std::nullopt;
    }
    return v;
}

double
numberOr(const json::Value& obj, const char* key, double fallback)
{
    const json::Value* v = obj.get(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

const char*
stringOr(const json::Value& obj, const char* key, const char* fallback)
{
    const json::Value* v = obj.get(key);
    return v != nullptr && !v->string.empty() ? v->string.c_str()
                                              : fallback;
}

void
printSummary(const json::Value& doc)
{
    const double wallMs = numberOr(doc, "wall_measured_ns", 0) / 1e6;
    std::printf("simprof: %.2f ms measured host time, %g runs, %g "
                "profiled events (%.3g ev/s)\n",
                wallMs, numberOr(doc, "runs", 0),
                numberOr(doc, "events_profiled", 0),
                numberOr(doc, "events_per_sec", 0));
    std::printf("attributed %.3f%% (%.2f ms named, %.2f ms "
                "unattributed)\n",
                numberOr(doc, "attributed_pct", 0),
                numberOr(doc, "attributed_ns", 0) / 1e6,
                numberOr(doc, "unattributed_ns", 0) / 1e6);
    const json::Value* sched = doc.get("scheduler");
    if (sched != nullptr && sched->isObject()) {
        std::printf("scheduler: dispatch %.2f ms, idle hook %.2f ms "
                    "(%g calls), closure copies %g\n",
                    numberOr(*sched, "dispatch_ns", 0) / 1e6,
                    numberOr(*sched, "idle_hook_ns", 0) / 1e6,
                    numberOr(*sched, "idle_hook_calls", 0),
                    numberOr(doc, "dispatch_closure_copies", 0));
    }
    const json::Value* frames = doc.get("frames");
    if (frames != nullptr && frames->isObject()) {
        std::printf("coroutine frames: %g created, %g live, %g peak\n",
                    numberOr(*frames, "created", 0),
                    numberOr(*frames, "live", 0),
                    numberOr(*frames, "peak", 0));
    }
    std::printf("events_total %g, max_queue_depth %g\n\n",
                numberOr(doc, "events_total", 0),
                numberOr(doc, "max_queue_depth", 0));
}

void
printTable(const json::Value& origins, int topk)
{
    std::printf("%-28s %-8s %12s %14s %8s\n", "origin", "kind",
                "events", "host_ns", "pct");
    int shown = 0;
    for (const json::Value& row : origins.array) {
        if (topk > 0 && shown >= topk) {
            std::printf("  ... %zu more row(s) (--topk)\n",
                        origins.array.size() -
                            static_cast<std::size_t>(shown));
            break;
        }
        ++shown;
        const double pct = numberOr(row, "pct", 0);
        // A crude bar makes the hot origin visible without a plot.
        std::string bar(
            static_cast<std::size_t>(pct / 5.0 + 0.5), '#');
        std::printf("%-28s %-8s %12.0f %14.0f %7.3f%% %s\n",
                    stringOr(row, "origin", "?"),
                    stringOr(row, "kind", "?"),
                    numberOr(row, "events", 0),
                    numberOr(row, "host_ns", 0), pct, bar.c_str());
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    int topk = 0;
    double assertPct = -1.0;
    std::vector<std::string> assertOrigins;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--topk" && i + 1 < argc) {
            topk = std::atoi(argv[++i]);
        } else if (arg == "--assert-attributed" && i + 1 < argc) {
            assertPct = std::atof(argv[++i]);
        } else if (arg.rfind("--assert-attributed=", 0) == 0) {
            assertPct = std::atof(arg.c_str() + 20);
        } else if (arg == "--assert-origin" && i + 1 < argc) {
            assertOrigins.push_back(argv[++i]);
        } else if (arg.rfind("--assert-origin=", 0) == 0) {
            assertOrigins.push_back(arg.substr(16));
        } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: %s <simprof.json> [--topk <n>] "
                         "[--assert-attributed <pct>] "
                         "[--assert-origin <label>]...\n",
                         argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "simprof_query: need a mscclpp.simprof file\n");
        return 2;
    }
    std::optional<json::Value> doc = loadSimprof(path);
    if (!doc) {
        return 2;
    }
    printSummary(*doc);
    const json::Value* origins = doc->get("origins");
    if (origins == nullptr || !origins->isArray()) {
        std::fprintf(stderr,
                     "simprof_query: %s: $.origins is missing or not "
                     "an array\n",
                     path.c_str());
        return 2;
    }
    printTable(*origins, topk);

    int rc = 0;
    if (assertPct >= 0) {
        const double pct = numberOr(*doc, "attributed_pct", 0);
        if (pct < assertPct) {
            std::fprintf(stderr,
                         "ASSERT FAILED: attributed %.3f%% < required "
                         "%.3f%%\n",
                         pct, assertPct);
            rc = 1;
        } else {
            std::printf("assert-attributed %.1f: ok (%.3f%%)\n",
                        assertPct, pct);
        }
    }
    for (const std::string& want : assertOrigins) {
        bool found = false;
        for (const json::Value& row : origins->array) {
            const json::Value* label = row.get("origin");
            if (label != nullptr &&
                label->string.find(want) != std::string::npos &&
                numberOr(row, "events", 0) > 0) {
                found = true;
                break;
            }
        }
        if (found) {
            std::printf("assert-origin '%s': matched\n", want.c_str());
        } else {
            std::fprintf(stderr,
                         "ASSERT FAILED: no origin row contains '%s' "
                         "with events > 0\n",
                         want.c_str());
            rc = 1;
        }
    }
    return rc;
}
