/**
 * serving_probe: the fig10-style online-diagnosis experiment. Runs an
 * N-step Llama2-70b decode loop (TP=8, A100-80G) with the step
 * profiler + flight recorder on, optionally degrading a named fabric
 * link mid-run, and reports whether the flight recorder flagged the
 * fault — and which link it blamed — without any offline analysis.
 *
 * Usage: serving_probe [options]
 *   --steps <n>             decode steps to run (default 120)
 *   --degrade <name:f@s>    at step s, scale link <name> bandwidth by
 *                           factor f (e.g. gpu3.tx:0.25@60)
 *   --sigma <k>             anomaly threshold in sigmas (default 3)
 *   --flight <file>         write the flight-recorder JSON dump here
 *   --assert-detect         exit 1 unless the injected fault is
 *                           flagged within 5 steps naming the link
 *   --miss-endstep          deliberately drop an endStep() call and
 *                           show the diagnostic (exits 1; WILL_FAIL
 *                           ctest proves the misuse is caught)
 *
 * The simulator is deterministic, so detection latency and the blamed
 * link are exact, repeatable assertions rather than statistics.
 */
#include "core/errors.hpp"
#include "inference/llm.hpp"
#include "probe_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using mscclpp::probe::Fault;
using mscclpp::probe::parseFault;

namespace {

/** Show that a forgotten endStep() is diagnosed, not silently
 *  swallowed: the next beginStep names the still-open window. */
int
missEndStepDemo(gpu::Machine& machine)
{
    obs::StepWindow& win = machine.obs().window();
    win.beginStep("step-0", machine.scheduler().now());
    // ... a buggy serving loop forgets win.endStep(...) here ...
    try {
        win.beginStep("step-1", machine.scheduler().now());
    } catch (const Error& e) {
        std::fprintf(stderr, "diagnosed: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr,
                 "missed endStep was NOT diagnosed (bug in the step "
                 "profiler)\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    int steps = 120;
    double sigma = 3.0;
    std::string flightFile;
    Fault fault;
    bool assertDetect = false;
    bool missEndStep = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--steps" && i + 1 < argc) {
            steps = std::atoi(argv[++i]);
        } else if (arg == "--sigma" && i + 1 < argc) {
            sigma = std::atof(argv[++i]);
        } else if (arg == "--flight" && i + 1 < argc) {
            flightFile = argv[++i];
        } else if (arg == "--degrade" && i + 1 < argc) {
            if (!parseFault(argv[++i], fault)) {
                std::fprintf(stderr,
                             "serving_probe: bad --degrade spec "
                             "'%s' (want name:factor@step)\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--assert-detect") {
            assertDetect = true;
        } else if (arg == "--miss-endstep") {
            missEndStep = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--steps <n>] "
                         "[--degrade <name:f@s>] [--sigma <k>] "
                         "[--flight <file>] [--assert-detect] "
                         "[--miss-endstep]\n",
                         argv[0]);
            return 2;
        }
    }

    fab::EnvConfig env = fab::makeA100_80G();
    env.flightEnabled = true;
    env.flightSigma = sigma;
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    machine.obs().setDumpOnDestroy(false);
    if (missEndStep) {
        return missEndStepDemo(machine);
    }

    inference::InferenceSim server(machine,
                                   inference::InferenceConfig{});
    const int batch = 16;
    const int seqlen = 512; // fixed context: a flat healthy baseline
    for (int t = 0; t < steps; ++t) {
        if (t == fault.atStep) {
            machine.fabric().degradeLink(fault.link, fault.factor);
            std::printf("step %4d: degraded %s to %.2fx bandwidth\n", t,
                        fault.link.c_str(), fault.factor);
        }
        server.decodeStep(batch, seqlen,
                          inference::CommBackend::Mscclpp);
    }

    obs::FlightRecorder& flight = machine.obs().flight();
    std::printf("ran %d decode steps: %zu digests, %zu anomalies, "
                "baseline %.3fms\n",
                steps, flight.steps(), flight.anomalyCount(),
                flight.ewmaMeanNs() / 1e6);
    if (!flightFile.empty()) {
        flight.writeJson(flightFile);
        std::printf("flight dump -> %s\n", flightFile.c_str());
    }

    // Online-detection report: the first anomaly at or after the
    // injection step, and the link its window blamed.
    if (fault.atStep >= 0) {
        const obs::FlightAnomaly* a = flight.firstAnomalyAtOrAfter(
            static_cast<std::uint64_t>(fault.atStep));
        const obs::StepDigest* hit = a == nullptr ? nullptr : &a->digest;
        if (hit == nullptr) {
            std::printf("fault NOT detected\n");
            if (assertDetect) {
                return 1;
            }
        } else {
            int latency = static_cast<int>(hit->index) - fault.atStep;
            std::printf("fault detected at step %zu (latency %d "
                        "steps, %.1f sigma), culprit link: %s\n",
                        hit->index, latency, hit->sigmas,
                        hit->culpritLink.c_str());
            if (assertDetect &&
                (latency > 5 || hit->culpritLink != fault.link)) {
                std::fprintf(stderr,
                             "detection assertion failed (want "
                             "latency <= 5 and culprit %s)\n",
                             fault.link.c_str());
                return 1;
            }
        }
    }
    return 0;
}
