/**
 * Shared fault-injection plumbing for the probe tools (serving_probe,
 * hang_probe): the "name:factor@step" degradation spec and small
 * CLI-parsing helpers. Header-only — the probes are single-file
 * executables and this keeps them that way.
 */
#ifndef MSCCLPP_TOOLS_PROBE_COMMON_HPP
#define MSCCLPP_TOOLS_PROBE_COMMON_HPP

#include <cstdlib>
#include <string>

namespace mscclpp::probe {

/** A scheduled bandwidth fault: scale link by factor at a step. */
struct Fault
{
    std::string link;
    double factor = 1.0;
    int atStep = -1; // -1: no injection
};

/** Parse "name:factor@step", e.g. "gpu3.tx:0.25@60". */
inline bool
parseFault(const std::string& spec, Fault& out)
{
    std::size_t colon = spec.rfind(':');
    std::size_t at = spec.rfind('@');
    if (colon == std::string::npos || at == std::string::npos ||
        at < colon) {
        return false;
    }
    out.link = spec.substr(0, colon);
    out.factor = std::atof(spec.substr(colon + 1, at - colon - 1).c_str());
    out.atStep = std::atoi(spec.substr(at + 1).c_str());
    return !out.link.empty() && out.factor > 0 && out.atStep >= 0;
}

/** Parse "rankN" -> N; returns -1 on anything else. */
inline int
parseRank(const std::string& spec)
{
    if (spec.rfind("rank", 0) != 0 || spec.size() <= 4) {
        return -1;
    }
    for (std::size_t i = 4; i < spec.size(); ++i) {
        if (spec[i] < '0' || spec[i] > '9') {
            return -1;
        }
    }
    return std::atoi(spec.c_str() + 4);
}

} // namespace mscclpp::probe

#endif // MSCCLPP_TOOLS_PROBE_COMMON_HPP
