/**
 * bench_compare: regression gate over bench_report artifacts. Diffs
 * the p50 latency of every bench key in a current BENCH_<env>.json
 * against a committed baseline and exits 1 when any key slowed down
 * by more than the threshold. Also gates the per-link wire-time
 * breakdown (by_link_ns) and, for serving.* keys, the request-level
 * TTFT/TPOT tail percentiles (nested "serving" object, schema v4): a
 * single link or a tail SLO metric slowing down is a regression even
 * when overlap keeps the end-to-end p50 flat. The serving block's
 * reqtrace_overhead_pct is gated absolutely (+0.5 points): request
 * tracing must stay a pure observer of virtual time. alerts_count —
 * the SLO burn-rate monitor's fired-alert tally — is gated absolutely
 * too: the bench scenario is healthy, so the baseline count is 0. The simulator is
 * deterministic, so the gate can be tight without flaking.
 *
 * The top-level "sim" block (simulator self-bench) splits into two
 * regimes: event counters (events_total, max_queue_depth,
 * dispatch_closure_copies, events_by_origin.*) are pure functions of
 * the deterministic event stream and are gated bit-identically, while
 * wall-clock keys (events_per_sec, host_ns_by_origin.*) measure the
 * host machine and only fail on a 20x throughput collapse. Additive
 * sim.* data — a baseline predating the block, or origins/keys present
 * only in the candidate — is reported informationally, never failed.
 *
 * Usage: bench_compare [options] <current.json>
 *   --baseline <file>  baseline report (default: $MSCCLPP_BENCH_BASELINE)
 *   --threshold <pct>  max allowed slowdown, percent (default 10)
 *   --require-all      fail if a baseline key is missing from current
 *   --inject <pct>     inflate current latencies by <pct> before
 *                      comparing (self-test hook for the ctest gate)
 *   --inject-sim <n>   add <n> to the current sim.events_total before
 *                      comparing (self-test hook for the sim gate)
 *
 * Keys present in only one file are reported and skipped (new benches
 * should not fail the gate) unless --require-all is given.
 */
#include "tuner/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace json = mscclpp::tuner::json;

namespace {

std::optional<json::Value>
loadReport(const std::string& path)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "bench_compare: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::optional<json::Value> v = json::parse(ss.str());
    if (!v) {
        std::fprintf(stderr, "bench_compare: %s is not valid JSON\n",
                     path.c_str());
        return std::nullopt;
    }
    // Mismatch diagnostics name the exact JSON key path and print
    // expected vs found, so a stale artifact is a one-glance fix.
    const json::Value* schema = v->get("schema");
    if (schema == nullptr || schema->string != "mscclpp.bench_report") {
        std::fprintf(stderr,
                     "bench_compare: %s: $.schema is \"%s\", expected "
                     "\"mscclpp.bench_report\"\n",
                     path.c_str(),
                     schema != nullptr ? schema->string.c_str()
                                       : "(missing)");
        return std::nullopt;
    }
    const json::Value* version = v->get("version");
    if (version == nullptr || !version->isNumber()) {
        std::fprintf(stderr,
                     "bench_compare: %s: $.version is missing or not "
                     "a number, expected 4\n",
                     path.c_str());
        return std::nullopt;
    }
    if (version->number != 4) {
        std::fprintf(stderr,
                     "bench_compare: %s: $.version is %g, expected 4 "
                     "(regenerate with bench_report)\n",
                     path.c_str(), version->number);
        return std::nullopt;
    }
    return v;
}

double
p50Of(const json::Value& bench)
{
    const json::Value* p50 = bench.get("p50_us");
    return p50 != nullptr && p50->isNumber() ? p50->number : -1.0;
}

/**
 * Gate the per-link wire-time breakdown of one bench key: any link
 * present in both reports whose critical-path wire time grew past the
 * threshold is a regression even when the end-to-end p50 stayed flat
 * (a slowdown hidden behind overlap). Links below @p floorNs in the
 * baseline are skipped — relative growth on a near-zero denominator
 * is meaningless. Returns the number of per-link regressions.
 */
int
compareLinks(const std::string& key, const json::Value& baseBench,
             const json::Value& curBench, double thresholdPct,
             double injectPct, double floorNs)
{
    const json::Value* base = baseBench.get("by_link_ns");
    const json::Value* cur = curBench.get("by_link_ns");
    if (base == nullptr || !base->isObject() || cur == nullptr ||
        !cur->isObject()) {
        return 0;
    }
    int regressions = 0;
    for (const auto& [link, baseNs] : base->object) {
        const json::Value* curNs = cur->get(link);
        if (curNs == nullptr || !curNs->isNumber() ||
            !baseNs.isNumber() || baseNs.number < floorNs) {
            continue;
        }
        double now = curNs->number * (1.0 + injectPct / 100.0);
        double deltaPct = 100.0 * (now / baseNs.number - 1.0);
        if (deltaPct > thresholdPct) {
            std::printf("%-40s link %-12s %8.0fns -> %8.0fns  "
                        "%+7.2f%%  LINK REGRESSION\n",
                        key.c_str(), link.c_str(), baseNs.number, now,
                        deltaPct);
            ++regressions;
        }
    }
    return regressions;
}

/**
 * Gate the serving-percentile block of one bench key: TTFT and TPOT
 * p99 growing past the threshold is a user-visible SLO regression even
 * when the mean request time (the key's p50_us) stayed flat. Returns
 * the number of metric regressions.
 */
int
compareServing(const std::string& key, const json::Value& baseBench,
               const json::Value& curBench, double thresholdPct,
               double injectPct)
{
    const json::Value* base = baseBench.get("serving");
    const json::Value* cur = curBench.get("serving");
    if (base == nullptr || !base->isObject() || cur == nullptr ||
        !cur->isObject()) {
        return 0;
    }
    int regressions = 0;
    for (const char* metric : {"ttft_p99_us", "tpot_p99_us"}) {
        const json::Value* b = base->get(metric);
        const json::Value* c = cur->get(metric);
        if (b == nullptr || !b->isNumber() || b->number <= 0 ||
            c == nullptr || !c->isNumber()) {
            continue;
        }
        double now = c->number * (1.0 + injectPct / 100.0);
        double deltaPct = 100.0 * (now / b->number - 1.0);
        if (deltaPct > thresholdPct) {
            std::printf("%-40s %-12s %10.2fus -> %10.2fus  %+7.2f%%  "
                        "SLO REGRESSION\n",
                        key.c_str(), metric, b->number, now, deltaPct);
            ++regressions;
        }
    }
    // Request-tracing overhead is gated absolutely, not relatively:
    // the baseline is 0 (instrumentation never advances virtual time),
    // so any drift past half a point is an observer-effect bug.
    const json::Value* baseOv = base->get("reqtrace_overhead_pct");
    const json::Value* curOv = cur->get("reqtrace_overhead_pct");
    if (baseOv != nullptr && baseOv->isNumber() && curOv != nullptr &&
        curOv->isNumber()) {
        const double delta = curOv->number - baseOv->number;
        if (delta > 0.5) {
            std::printf("%-40s reqtrace overhead %5.2f%% -> %5.2f%%  "
                        "OBSERVER-EFFECT REGRESSION\n",
                        key.c_str(), baseOv->number, curOv->number);
            ++regressions;
        }
    }
    // The SLO burn-rate monitor's fired-alert count is gated
    // absolutely: the bench scenario is healthy by construction, so
    // the baseline is 0 and any fired alert means a latency cluster
    // bad enough to burn the error budget — a regression even if no
    // individual percentile tripped its relative threshold.
    const json::Value* baseAl = base->get("alerts_count");
    const json::Value* curAl = cur->get("alerts_count");
    if (baseAl != nullptr && baseAl->isNumber() && curAl != nullptr &&
        curAl->isNumber() && curAl->number > baseAl->number) {
        std::printf("%-40s SLO alerts %g -> %g  ALERT REGRESSION\n",
                    key.c_str(), baseAl->number, curAl->number);
        ++regressions;
    }
    return regressions;
}

/**
 * Gate the simulator self-bench block ($.sim). Deterministic event
 * counters must match the baseline bit-identically — any drift means
 * the simulated event stream itself changed, which is either an
 * intended algorithm change (regenerate baselines) or a real bug.
 * events_per_sec is host wall time, so it only fails on a 20x
 * collapse; host_ns_by_origin is never gated. A baseline without a
 * sim block, and origins present only in the candidate, are
 * informational (additive sim.* data must not force a lockstep
 * baseline regen). Returns the number of regressions; bumps
 * @p compared when the block was actually gated.
 */
int
compareSim(const json::Value& baseline, const json::Value& current,
           double simInjectDelta, int& compared)
{
    const json::Value* base = baseline.get("sim");
    const json::Value* cur = current.get("sim");
    if (base == nullptr || !base->isObject()) {
        if (cur != nullptr) {
            std::printf("%-40s new (no baseline)\n", "sim self-bench");
        }
        return 0;
    }
    if (cur == nullptr || !cur->isObject()) {
        std::printf("%-40s missing from current  SIM BLOCK MISSING\n",
                    "sim self-bench");
        return 1;
    }
    ++compared;
    int regressions = 0;
    for (const char* key :
         {"events_total", "max_queue_depth",
          "dispatch_closure_copies"}) {
        const json::Value* b = base->get(key);
        if (b == nullptr || !b->isNumber()) {
            continue;
        }
        const json::Value* c = cur->get(key);
        if (c == nullptr || !c->isNumber()) {
            std::printf("$.sim.%s expected %.0f, missing from current  "
                        "SIM COUNTER MISMATCH\n",
                        key, b->number);
            ++regressions;
            continue;
        }
        double now = c->number;
        if (std::string(key) == "events_total") {
            now += simInjectDelta;
        }
        if (now != b->number) {
            std::printf("$.sim.%s expected %.0f, found %.0f  "
                        "SIM COUNTER MISMATCH\n",
                        key, b->number, now);
            ++regressions;
        }
    }
    const json::Value* baseOrg = base->get("events_by_origin");
    const json::Value* curOrg = cur->get("events_by_origin");
    if (baseOrg != nullptr && baseOrg->isObject()) {
        for (const auto& [origin, b] : baseOrg->object) {
            if (!b.isNumber()) {
                continue;
            }
            const json::Value* c =
                curOrg != nullptr && curOrg->isObject()
                    ? curOrg->get(origin)
                    : nullptr;
            if (c == nullptr || !c->isNumber()) {
                std::printf("$.sim.events_by_origin[\"%s\"] expected "
                            "%.0f, missing from current  "
                            "SIM COUNTER MISMATCH\n",
                            origin.c_str(), b.number);
                ++regressions;
            } else if (c->number != b.number) {
                std::printf("$.sim.events_by_origin[\"%s\"] expected "
                            "%.0f, found %.0f  SIM COUNTER MISMATCH\n",
                            origin.c_str(), b.number, c->number);
                ++regressions;
            }
        }
        if (curOrg != nullptr && curOrg->isObject()) {
            for (const auto& [origin, c] : curOrg->object) {
                (void)c;
                if (baseOrg->get(origin) == nullptr) {
                    std::printf("$.sim.events_by_origin[\"%s\"] new "
                                "(no baseline)\n",
                                origin.c_str());
                }
            }
        }
    }
    // Host throughput: informational unless it collapsed. A 20x floor
    // tolerates any sane CI-runner spread while still catching an
    // accidentally quadratic scheduler.
    const json::Value* bEps = base->get("events_per_sec");
    const json::Value* cEps = cur->get("events_per_sec");
    if (bEps != nullptr && bEps->isNumber() && bEps->number > 0 &&
        cEps != nullptr && cEps->isNumber()) {
        const double ratio = cEps->number / bEps->number;
        const bool bad = ratio < 1.0 / 20.0;
        std::printf("%-40s %10.3gev/s -> %10.3gev/s  x%.3g%s\n",
                    "sim.events_per_sec", bEps->number, cEps->number,
                    ratio,
                    bad ? "  SIM THROUGHPUT REGRESSION" : "");
        regressions += bad ? 1 : 0;
    }
    if (base->get("host_ns_by_origin") != nullptr &&
        cur->get("host_ns_by_origin") == nullptr) {
        std::printf("%-40s missing from current (obs compiled out?) -- "
                    "informational\n",
                    "sim.host_ns_by_origin");
    }
    return regressions;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string baselinePath;
    std::string currentPath;
    double thresholdPct = 10.0;
    double injectPct = 0.0;
    double simInjectDelta = 0.0;
    bool requireAll = false;
    if (const char* env = std::getenv("MSCCLPP_BENCH_BASELINE")) {
        baselinePath = env;
    }
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--threshold" && i + 1 < argc) {
            thresholdPct = std::atof(argv[++i]);
        } else if (arg == "--inject" && i + 1 < argc) {
            injectPct = std::atof(argv[++i]);
        } else if (arg == "--inject-sim" && i + 1 < argc) {
            simInjectDelta = std::atof(argv[++i]);
        } else if (arg == "--require-all") {
            requireAll = true;
        } else if (!arg.empty() && arg[0] != '-' && currentPath.empty()) {
            currentPath = arg;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--baseline <file>] [--threshold "
                         "<pct>] [--require-all] [--inject <pct>] "
                         "[--inject-sim <n>] <current.json>\n",
                         argv[0]);
            return 2;
        }
    }
    if (currentPath.empty() || baselinePath.empty()) {
        std::fprintf(stderr,
                     "bench_compare: need a current report and a "
                     "baseline (--baseline or MSCCLPP_BENCH_BASELINE)\n");
        return 2;
    }

    std::optional<json::Value> baseline = loadReport(baselinePath);
    std::optional<json::Value> current = loadReport(currentPath);
    if (!baseline || !current) {
        return 2;
    }
    const json::Value* baseBenches = baseline->get("benches");
    const json::Value* curBenches = current->get("benches");
    if (baseBenches == nullptr || !baseBenches->isObject()) {
        std::fprintf(stderr,
                     "bench_compare: %s: $.benches is missing or not "
                     "an object\n",
                     baselinePath.c_str());
        return 2;
    }
    if (curBenches == nullptr || !curBenches->isObject()) {
        std::fprintf(stderr,
                     "bench_compare: %s: $.benches is missing or not "
                     "an object\n",
                     currentPath.c_str());
        return 2;
    }

    int regressions = 0;
    int compared = 0;
    for (const auto& [key, baseBench] : baseBenches->object) {
        const json::Value* curBench = curBenches->get(key);
        if (curBench == nullptr) {
            std::printf("%-40s missing from current%s\n", key.c_str(),
                        requireAll ? " (FAIL)" : " (skipped)");
            regressions += requireAll ? 1 : 0;
            continue;
        }
        double base50 = p50Of(baseBench);
        double cur = p50Of(*curBench) * (1.0 + injectPct / 100.0);
        if (base50 <= 0 || cur < 0) {
            std::fprintf(stderr,
                         "bench_compare: $.benches[\"%s\"].p50_us is "
                         "missing or not a positive number\n",
                         key.c_str());
            return 2;
        }
        ++compared;
        double deltaPct = 100.0 * (cur / base50 - 1.0);
        bool bad = deltaPct > thresholdPct;
        std::printf("%-40s %10.2fus -> %10.2fus  %+7.2f%%%s\n",
                    key.c_str(), base50, cur, deltaPct,
                    bad ? "  REGRESSION" : "");
        regressions += bad ? 1 : 0;
        regressions += compareLinks(key, baseBench, *curBench,
                                    thresholdPct, injectPct,
                                    /*floorNs=*/100.0);
        regressions += compareServing(key, baseBench, *curBench,
                                      thresholdPct, injectPct);
    }
    for (const auto& [key, bench] : curBenches->object) {
        (void)bench;
        if (baseBenches->get(key) == nullptr) {
            std::printf("%-40s new (no baseline)\n", key.c_str());
        }
    }
    regressions += compareSim(*baseline, *current, simInjectDelta,
                              compared);
    std::printf("%d compared, %d regression(s), threshold %.1f%%\n",
                compared, regressions, thresholdPct);
    if (compared == 0) {
        std::fprintf(stderr,
                     "bench_compare: no overlapping bench keys\n");
        return 2;
    }
    return regressions > 0 ? 1 : 0;
}
