/**
 * slo_query: interrogate the continuous-telemetry artifacts — a
 * mscclpp.alerts dump (the SLO burn-rate monitor's output under
 * MSCCLPP_SLOMON=1) and, optionally, a mscclpp.timeseries rollup
 * (MSCCLPP_TIMESERIES=1). It prints the alert timeline next to the
 * injected-fault timeline so fire/clear latency is visible at a
 * glance, and renders any requested series as a terminal sparkline.
 * The assertion flags make it a CI primitive: degrade a link mid-run,
 * then assert an alert fired blaming that link and that everything
 * cleared; on a clean run assert no alert fired at all.
 *
 * Usage: slo_query --alerts <file> [options]
 *   --timeseries <file>        also load a timeseries rollup
 *   --series <name>            print that series' per-interval values
 *                              (repeatable; with --timeseries)
 *   --list                     list every alert, fire order
 *   --assert-alert-link <sub>  exit 1 unless some alert's blamed link
 *                              contains <sub>
 *   --assert-cleared           exit 1 if any alert is still active
 *   --assert-clean             exit 1 unless zero alerts fired
 */
#include "tuner/json.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace json = mscclpp::tuner::json;

namespace {

std::optional<json::Value>
loadSchema(const std::string& path, const char* schema)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "slo_query: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::optional<json::Value> v = json::parse(ss.str());
    if (!v) {
        std::fprintf(stderr, "slo_query: %s is not valid JSON\n",
                     path.c_str());
        return std::nullopt;
    }
    const json::Value* s = v->get("schema");
    const json::Value* version = v->get("version");
    if (s == nullptr || s->string != schema || version == nullptr ||
        !version->isNumber() || version->number != 1) {
        std::fprintf(stderr, "slo_query: %s is not a %s v1\n",
                     path.c_str(), schema);
        return std::nullopt;
    }
    return v;
}

double
numberOr(const json::Value& obj, const char* key, double fallback)
{
    const json::Value* v = obj.get(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

void
printTimeline(const json::Value& doc)
{
    const double intervalUs = numberOr(doc, "interval_ns", 0) / 1e3;
    std::printf("SLO monitor: interval %.1f ms, windows %g/%g, budget "
                "%g, burn threshold %g\n",
                intervalUs / 1e3, numberOr(doc, "fast_intervals", 0),
                numberOr(doc, "slow_intervals", 0),
                numberOr(doc, "budget", 0),
                numberOr(doc, "burn_threshold", 0));
    std::printf("requests %g, violations ttft %g / tpot %g\n\n",
                numberOr(doc, "requests", 0),
                numberOr(doc, "ttft_violations", 0),
                numberOr(doc, "tpot_violations", 0));
    const json::Value* faults = doc.get("faults");
    if (faults != nullptr && faults->isArray() &&
        !faults->array.empty()) {
        std::printf("fault timeline:\n");
        for (const json::Value& f : faults->array) {
            const json::Value* link = f.get("link");
            const double factor = numberOr(f, "factor", 1);
            std::printf("  %10.1f ms  replica %g  %-12s x%g%s\n",
                        numberOr(f, "at_us", 0) / 1e3,
                        numberOr(f, "replica", -1),
                        link != nullptr ? link->string.c_str() : "?",
                        factor, factor > 1 ? "  (recovery)" : "");
        }
        std::printf("\n");
    }
}

void
printAlert(const json::Value& a)
{
    const json::Value* dim = a.get("dimension");
    const json::Value* link = a.get("link");
    const double cleared = numberOr(a, "cleared_at_us", 0);
    std::printf("  alert %g [%s]  fired %10.1f ms", numberOr(a, "id", -1),
                dim != nullptr ? dim->string.c_str() : "?",
                numberOr(a, "fired_at_us", 0) / 1e3);
    if (cleared > 0) {
        std::printf("  cleared %10.1f ms", cleared / 1e3);
    } else {
        std::printf("  STILL ACTIVE        ");
    }
    std::printf("  burn %g/%g  replica %g  link %s\n",
                numberOr(a, "burn_fast", 0), numberOr(a, "burn_slow", 0),
                numberOr(a, "replica", -1),
                link != nullptr && !link->string.empty()
                    ? link->string.c_str()
                    : "-");
}

void
printSeries(const json::Value& doc, const std::string& name)
{
    const json::Value* series = doc.get("series");
    const json::Value* s =
        series != nullptr ? series->get(name) : nullptr;
    if (s == nullptr) {
        std::printf("series %s: not present\n", name.c_str());
        return;
    }
    const json::Value* kind = s->get("kind");
    const json::Value* pts = s->get("points");
    const double widthMs = numberOr(doc, "interval_ns", 0) / 1e6;
    std::printf("series %s (%s, interval %.3f ms):\n", name.c_str(),
                kind != nullptr ? kind->string.c_str() : "?", widthMs);
    if (pts == nullptr || !pts->isObject()) {
        return;
    }
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto& [idx, v] : pts->object) {
        (void)idx;
        lo = first ? v.number : std::min(lo, v.number);
        hi = first ? v.number : std::max(hi, v.number);
        first = false;
    }
    // One sparkline row: ramp per point, scaled into [lo, hi].
    static const char* kRamp[] = {" ", ".", ":", "-", "=", "+",
                                  "*", "#", "%", "@"};
    std::string line;
    for (const auto& [idx, v] : pts->object) {
        (void)idx;
        const double t =
            hi > lo ? (v.number - lo) / (hi - lo) : 0.0;
        line += kRamp[static_cast<int>(t * 9.0 + 0.5)];
    }
    std::printf("  [%s]\n  min %g  max %g  points %zu\n", line.c_str(),
                lo, hi, pts->object.size());
}

} // namespace

int
main(int argc, char** argv)
{
    std::string alertsPath;
    std::string timeseriesPath;
    std::vector<std::string> seriesNames;
    std::string assertLink;
    bool list = false;
    bool assertCleared = false;
    bool assertClean = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--alerts" && i + 1 < argc) {
            alertsPath = argv[++i];
        } else if (arg == "--timeseries" && i + 1 < argc) {
            timeseriesPath = argv[++i];
        } else if (arg == "--series" && i + 1 < argc) {
            seriesNames.push_back(argv[++i]);
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--assert-alert-link" && i + 1 < argc) {
            assertLink = argv[++i];
        } else if (arg == "--assert-cleared") {
            assertCleared = true;
        } else if (arg == "--assert-clean") {
            assertClean = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s --alerts <file> [--timeseries <file>] "
                "[--series <name>]... [--list] "
                "[--assert-alert-link <sub>] [--assert-cleared] "
                "[--assert-clean]\n",
                argv[0]);
            return 2;
        }
    }
    if (alertsPath.empty()) {
        std::fprintf(stderr, "slo_query: --alerts <file> is required\n");
        return 2;
    }
    std::optional<json::Value> doc =
        loadSchema(alertsPath, "mscclpp.alerts");
    if (!doc) {
        return 1;
    }
    printTimeline(*doc);

    const json::Value* alerts = doc->get("alerts");
    const std::size_t fired =
        alerts != nullptr && alerts->isArray() ? alerts->array.size()
                                               : 0;
    if (list || fired > 0) {
        std::printf("alerts fired: %zu\n", fired);
        for (std::size_t i = 0; i < fired; ++i) {
            printAlert(alerts->array[i]);
        }
        std::printf("\n");
    }

    if (!timeseriesPath.empty()) {
        std::optional<json::Value> ts =
            loadSchema(timeseriesPath, "mscclpp.timeseries");
        if (!ts) {
            return 1;
        }
        for (const std::string& name : seriesNames) {
            printSeries(*ts, name);
        }
    }

    int rc = 0;
    if (assertClean && fired > 0) {
        std::fprintf(stderr,
                     "ASSERT FAILED: expected a clean run, %zu alerts "
                     "fired\n",
                     fired);
        rc = 1;
    }
    if (!assertLink.empty()) {
        bool found = false;
        for (std::size_t i = 0; i < fired; ++i) {
            const json::Value* link = alerts->array[i].get("link");
            if (link != nullptr &&
                link->string.find(assertLink) != std::string::npos) {
                found = true;
                break;
            }
        }
        if (found) {
            std::printf("assert-alert-link '%s': matched\n",
                        assertLink.c_str());
        } else {
            std::fprintf(stderr,
                         "ASSERT FAILED: no alert blames a link "
                         "containing '%s'\n",
                         assertLink.c_str());
            rc = 1;
        }
    }
    if (assertCleared) {
        std::size_t active = 0;
        for (std::size_t i = 0; i < fired; ++i) {
            const json::Value* c =
                alerts->array[i].get("cleared_at_us");
            active += (c == nullptr || c->number == 0) ? 1 : 0;
        }
        if (active > 0) {
            std::fprintf(stderr,
                         "ASSERT FAILED: %zu alert(s) still active\n",
                         active);
            rc = 1;
        } else {
            std::printf("assert-cleared: every alert cleared\n");
        }
    }
    return rc;
}
