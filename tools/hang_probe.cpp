/**
 * hang_probe: fault-injection harness for the stall watchdog. Runs a
 * small put/signal/wait ring over real channels, injects one of three
 * classic distributed-hang shapes, and asserts the watchdog's hang
 * report blames the right party:
 *
 *   --drop-signal rankN   rank N's signal is lost on the wire; the
 *                         downstream rank stalls and the report must
 *                         name rank N as the owed signaler
 *                         (classification: straggler/missing_signal).
 *   --cycle               two ranks wait before signaling each other;
 *                         the report must classify a deadlock and list
 *                         the cycle.
 *   --dead-proxy          port-channel mesh whose proxies are shut
 *                         down before any traffic; receivers stall and
 *                         the report must blame the dead proxy.
 *   (default)             clean ring; must produce zero reports.
 *
 * Usage: hang_probe [options]
 *   --drop-signal <rankN>   lose rank N's outgoing ring signal
 *   --cycle                 two-rank cyclic wait
 *   --dead-proxy            stop port proxies before the traffic
 *   --threshold-ns <n>      watchdog threshold, virtual ns (default 1e6)
 *   --no-watchdog           leave MSCCLPP_WATCHDOG off (WILL_FAIL leg)
 *   --json <file>           write the hang-report JSON here
 *   --assert-blame <party>  exit 1 unless a report's root cause
 *                           contains <party>
 *   --assert-deadlock       exit 1 unless a deadlock (with cycle) is
 *                           reported
 *   --assert-clean          exit 1 unless zero reports were emitted
 *
 * The simulator is deterministic: the blamed party and classification
 * are exact assertions, not heuristics.
 */
#include "channel/channel_mesh.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "core/errors.hpp"
#include "gpu/kernel.hpp"
#include "probe_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;

namespace {

/** Launch a one-block kernel per rank running fn(ctx, rank). */
void
runOnAllRanks(gpu::Machine& m,
              const std::function<sim::Task<>(gpu::BlockCtx&, int)>& fn)
{
    for (int r = 0; r < m.numGpus(); ++r) {
        gpu::LaunchConfig cfg;
        sim::detach(m.scheduler(),
                    gpu::launchKernel(m.gpu(r), cfg,
                                      [&fn, r](gpu::BlockCtx& ctx) {
                                          return fn(ctx, r);
                                      }));
    }
    m.run();
}

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--drop-signal <rankN>] [--cycle] "
                 "[--dead-proxy] [--threshold-ns <n>] [--no-watchdog] "
                 "[--json <file>] [--assert-blame <party>] "
                 "[--assert-deadlock] [--assert-clean]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    int dropRank = -1;
    bool cycle = false;
    bool deadProxy = false;
    bool noWatchdog = false;
    bool assertDeadlock = false;
    bool assertClean = false;
    long long thresholdNs = 1'000'000; // 1 ms of virtual time
    std::string assertBlame;
    std::string jsonFile;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--drop-signal" && i + 1 < argc) {
            dropRank = probe::parseRank(argv[++i]);
            if (dropRank < 0) {
                std::fprintf(stderr,
                             "hang_probe: bad --drop-signal '%s' "
                             "(want rankN)\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--cycle") {
            cycle = true;
        } else if (arg == "--dead-proxy") {
            deadProxy = true;
        } else if (arg == "--threshold-ns" && i + 1 < argc) {
            thresholdNs = std::atoll(argv[++i]);
        } else if (arg == "--no-watchdog") {
            noWatchdog = true;
        } else if (arg == "--json" && i + 1 < argc) {
            jsonFile = argv[++i];
        } else if (arg == "--assert-blame" && i + 1 < argc) {
            assertBlame = argv[++i];
        } else if (arg == "--assert-deadlock") {
            assertDeadlock = true;
        } else if (arg == "--assert-clean") {
            assertClean = true;
        } else {
            return usage(argv[0]);
        }
    }

    fab::EnvConfig env = fab::makeA100_40G();
    if (!noWatchdog) {
        env.watchdogMode = "report";
        env.watchdogNs = sim::ns(thresholdNs);
    }
    gpu::Machine machine(env, 1, gpu::DataMode::Functional);
    machine.obs().setDumpOnDestroy(false);
    const int n = machine.numGpus();
    if (dropRank >= n) {
        std::fprintf(stderr, "hang_probe: rank%d out of range (%d GPUs)\n",
                     dropRank, n);
        return 2;
    }

    auto boots = createInProcessBootstrap(n);
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
    std::vector<Communicator*> commPtrs;
    for (int r = 0; r < n; ++r) {
        comms.push_back(std::make_unique<Communicator>(boots[r], machine));
        bufs.push_back(machine.gpu(r).alloc(1 << 16));
        commPtrs.push_back(comms.back().get());
    }

    obs::Watchdog& wd = machine.obs().watchdog();

    if (cycle) {
        auto mesh = ChannelMesh::build(commPtrs, bufs, bufs);
        // Both ranks wait *before* signaling: a textbook cyclic wait.
        wd.pushOp("hang_probe.cycle");
        runOnAllRanks(machine,
                      [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                          if (r > 1) {
                              co_return;
                          }
                          co_await mesh.mem(r, 1 - r).wait(ctx);
                          co_await mesh.mem(r, 1 - r).putWithSignal(
                              ctx, 0, 0, 256);
                      });
        wd.popOp();
    } else if (deadProxy) {
        MeshOptions opt;
        opt.transport = Transport::Port;
        auto mesh = ChannelMesh::build(commPtrs, bufs, bufs, opt);
        // Kill every proxy before any traffic: the Stop requests drain
        // on this run() and the loops exit, flipping their liveness.
        mesh.shutdown();
        machine.run();
        wd.pushOp("hang_probe.dead_proxy");
        runOnAllRanks(machine,
                      [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                          co_await mesh.port(r, (r + 1) % n)
                              .putWithSignal(ctx, 0, 0, 256);
                          co_await mesh.port(r, (r - 1 + n) % n).wait(ctx);
                      });
        wd.popOp();
    } else {
        auto mesh = ChannelMesh::build(commPtrs, bufs, bufs);
        if (dropRank >= 0) {
            // Lose rank N's ring signal on the wire: its downstream
            // neighbour never sees the arrival.
            int victim = (dropRank + 1) % n;
            mesh.mem(victim, dropRank)
                .inboundSemaphore()
                ->dropNextArrivals(1);
        }
        wd.pushOp("hang_probe.ring");
        runOnAllRanks(machine,
                      [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                          co_await mesh.mem(r, (r + 1) % n)
                              .putWithSignal(ctx, 0, 0, 256);
                          co_await mesh.mem(r, (r - 1 + n) % n).wait(ctx);
                      });
        wd.popOp();
    }

    const std::vector<obs::HangReport>& reports = wd.reports();
    std::printf("hang_probe: %zu report(s), %llu wait(s) outstanding\n",
                reports.size(),
                static_cast<unsigned long long>(wd.outstandingWaits()));
    for (const obs::HangReport& r : reports) {
        std::printf("  %s\n", r.summaryLine().c_str());
    }
    if (!jsonFile.empty()) {
        wd.writeJson(jsonFile);
        std::printf("hang report -> %s\n", jsonFile.c_str());
    }

    if (assertClean && !reports.empty()) {
        std::fprintf(stderr,
                     "assertion failed: expected a clean run, got %zu "
                     "report(s)\n",
                     reports.size());
        return 1;
    }
    if (!assertBlame.empty()) {
        bool hit = false;
        for (const obs::HangReport& r : reports) {
            if (r.rootCause.find(assertBlame) != std::string::npos) {
                hit = true;
                break;
            }
        }
        if (!hit) {
            std::fprintf(stderr,
                         "assertion failed: no report blames '%s'\n",
                         assertBlame.c_str());
            return 1;
        }
    }
    if (assertDeadlock) {
        bool hit = false;
        for (const obs::HangReport& r : reports) {
            if (r.classification == "deadlock" && !r.cycle.empty()) {
                hit = true;
                break;
            }
        }
        if (!hit) {
            std::fprintf(stderr,
                         "assertion failed: no deadlock (with cycle) "
                         "reported\n");
            return 1;
        }
    }
    return 0;
}
