/**
 * Portability (Section 4.5): the same collective code runs unchanged
 * on every Table 1 environment — A100, H100 (where Auto picks the
 * NVLS SwitchChannel) and MI300x (where the all-pairs kernels exploit
 * the Infinity Fabric mesh). Only the EnvConfig changes.
 */
#include "collective/api.hpp"
#include "gpu/compute.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;

int
main()
{
    const std::size_t bytes = 32 << 20;
    std::printf("Same AllReduce call on every Table 1 environment "
                "(%zu MiB, fp16):\n\n",
                bytes >> 20);
    std::printf("%-10s %-22s %-12s %10s %14s\n", "env", "intra-node",
                "algo (Auto)", "time(us)", "algBW(GB/s)");
    for (const char* name : {"A100-40G", "A100-80G", "H100", "MI300x"}) {
        gpu::Machine machine(fab::makeEnv(name), 1,
                             gpu::DataMode::Functional);
        CollectiveComm::Options opt;
        opt.maxBytes = bytes;
        CollectiveComm comm(machine, opt);
        for (int r = 0; r < machine.numGpus(); ++r) {
            gpu::fillPattern(comm.dataBuffer(r), gpu::DataType::F16, r);
        }
        // The portable line: identical on every machine.
        sim::Time t = comm.allReduce(bytes, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum);
        // Check one element to show the data really was reduced.
        float expected = 0.0f;
        for (int r = 0; r < machine.numGpus(); ++r) {
            expected += gpu::patternValue(gpu::DataType::F16, r, 17);
        }
        bool ok = gpu::readElement(comm.dataBuffer(3), gpu::DataType::F16,
                                   17) == expected;
        std::printf("%-10s %-22s %-12s %10.1f %14.1f   %s\n", name,
                    machine.config().intraName.c_str(),
                    toString(comm.chooseAllReduce(bytes)), sim::toUs(t),
                    sim::achievedGBps(bytes, t),
                    ok ? "(verified)" : "(MISMATCH!)");
    }
    std::printf("\nNo algorithm code changed between rows — the channel "
                "abstractions absorb the hardware differences.\n");
    return 0;
}
