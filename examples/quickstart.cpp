/**
 * Quickstart: the MSCCL++ Primitive API end to end.
 *
 * Builds a simulated 8xA100 node, bootstraps communicators, creates a
 * MemoryChannel between GPU 0 and GPU 1, and runs the put / signal /
 * wait / flush sequence of Figure 4 from a device kernel — then shows
 * the asynchronous PortChannel (Figure 7) doing the same through its
 * CPU proxy.
 */
#include "channel/channel_mesh.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "gpu/compute.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;

int
main()
{
    // 1. A machine: one node of the paper's A100-40G environment.
    gpu::Machine machine(fab::makeA100_40G(), /*numNodes=*/1);
    std::printf("Machine: %d GPUs, %s + %s\n", machine.numGpus(),
                machine.config().intraName.c_str(),
                machine.config().netName.c_str());

    // 2. Bootstrap + one communicator per rank (Section 4.1).
    auto bootstraps = createInProcessBootstrap(machine.numGpus());
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> buffers;
    for (int r = 0; r < machine.numGpus(); ++r) {
        comms.push_back(
            std::make_unique<Communicator>(bootstraps[r], machine));
        buffers.push_back(machine.gpu(r).alloc(1 << 20));
        gpu::fillPattern(buffers.back(), gpu::DataType::F32, r);
    }
    std::vector<Communicator*> commPtrs;
    for (auto& c : comms) {
        commPtrs.push_back(c.get());
    }

    // 3. Channels: an all-pairs MemoryChannel mesh over the data
    //    buffers, and a PortChannel mesh for DMA transfers.
    auto memMesh = ChannelMesh::build(commPtrs, buffers, buffers);
    MeshOptions portOpt;
    portOpt.transport = Transport::Port;
    auto portMesh = ChannelMesh::build(commPtrs, buffers, buffers,
                                       portOpt);

    // 4. Device code: GPU 0 puts 256 KiB into GPU 1 and signals;
    //    GPU 1 waits, then reads the data (Figure 4 semantics).
    auto kernel = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 0) {
            MemoryChannel& ch = memMesh.mem(0, 1);
            co_await ch.put(ctx, /*dstOff=*/0, /*srcOff=*/0, 256 << 10);
            co_await ch.signal(ctx);
            std::printf("[%7.2fus] GPU0: put+signal issued\n",
                        sim::toUs(ctx.scheduler().now()));
        } else if (rank == 1) {
            co_await memMesh.mem(1, 0).wait(ctx);
            std::printf("[%7.2fus] GPU1: signal observed, data ready "
                        "(first elem from GPU0 = %.2f)\n",
                        sim::toUs(ctx.scheduler().now()),
                        gpu::readElement(buffers[1], gpu::DataType::F32,
                                         0));
        }
    };
    sim::Time t = gpu::runOnAllRanks(machine, gpu::LaunchConfig{}, kernel);
    std::printf("MemoryChannel round: %.2fus\n\n", sim::toUs(t));

    // 5. Same transfer through a PortChannel: the put is queued to the
    //    proxy and the GPU is free immediately; flush waits for the
    //    wire (Figure 7).
    auto portKernel = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 0) {
            PortChannel& ch = portMesh.port(0, 1);
            co_await ch.putWithSignal(ctx, 0, 0, 256 << 10);
            std::printf("[%7.2fus] GPU0: request queued (async)\n",
                        sim::toUs(ctx.scheduler().now()));
            co_await ch.flush(ctx);
            std::printf("[%7.2fus] GPU0: flush complete, source "
                        "reusable\n",
                        sim::toUs(ctx.scheduler().now()));
        } else if (rank == 1) {
            co_await portMesh.port(1, 0).wait(ctx);
            std::printf("[%7.2fus] GPU1: DMA data arrived\n",
                        sim::toUs(ctx.scheduler().now()));
        }
    };
    t = gpu::runOnAllRanks(machine, gpu::LaunchConfig{}, portKernel);
    std::printf("PortChannel round: %.2fus (proxy FIFO depth used: %zu "
                "puts issued: %llu)\n",
                sim::toUs(t), portMesh.port(0, 1).fifo().depth(),
                static_cast<unsigned long long>(
                    portMesh.port(0, 1).putsIssued()));

    portMesh.shutdown();
    machine.run();
    return 0;
}
