/**
 * The MSCCL++ Collective API as a drop-in NCCL replacement (Section
 * 3.1): this file is written against the NCCL API surface —
 * ncclCommInitRank, ncclAllReduce, ncclAllGather — and runs unchanged
 * on MSCCL++'s reimplementation. The only simulation-specific line is
 * mscclppNcclBindMachine() (the real library discovers GPUs via CUDA).
 */
#include "collective/nccl_compat.hpp"
#include "fabric/env.hpp"

#include <cstdio>
#include <vector>

using namespace mscclpp::compat;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;

#define NCCL_CHECK(cmd)                                                     \
    do {                                                                    \
        ncclResult_t res = (cmd);                                           \
        if (res != ncclSuccess) {                                           \
            std::fprintf(stderr, "NCCL error %s at %s:%d\n",                \
                         ncclGetErrorString(res), __FILE__, __LINE__);      \
            return 1;                                                       \
        }                                                                   \
    } while (0)

int
main()
{
    gpu::Machine machine(fab::makeA100_40G(), 1);
    mscclppNcclBindMachine(machine, 8 << 20);

    const int nDev = machine.numGpus();
    std::printf("NCCL-style application on %d GPUs via the MSCCL++ "
                "Collective API\n\n",
                nDev);

    // --- verbatim NCCL bootstrap -----------------------------------------
    ncclUniqueId id;
    NCCL_CHECK(ncclGetUniqueId(&id));
    std::vector<ncclComm_t> comms(nDev);
    for (int r = 0; r < nDev; ++r) {
        NCCL_CHECK(ncclCommInitRank(&comms[r], nDev, id, r));
    }

    // --- gradient AllReduce, the training inner loop ----------------------
    const std::size_t count = 1 << 20; // 4 MB of fp32 gradients
    std::vector<std::vector<float>> grads(nDev);
    for (int r = 0; r < nDev; ++r) {
        grads[r].assign(count, 1.0f / nDev);
    }
    for (int r = 0; r < nDev; ++r) {
        NCCL_CHECK(ncclAllReduce(grads[r].data(), grads[r].data(), count,
                                 ncclFloat32, ncclSum, comms[r], 0));
    }
    for (int r = 0; r < nDev; ++r) {
        NCCL_CHECK(mscclppNcclStreamSynchronize(comms[r], 0));
    }
    std::printf("AllReduce(4 MiB fp32): grads[5][123] = %.3f (expect "
                "1.000)\n",
                grads[5][123]);

    // --- activation AllGather ---------------------------------------------
    const std::size_t shard = 32 << 10;
    std::vector<std::vector<float>> act(nDev), full(nDev);
    for (int r = 0; r < nDev; ++r) {
        act[r].assign(shard, float(r));
        full[r].assign(shard * nDev, -1.0f);
    }
    for (int r = 0; r < nDev; ++r) {
        NCCL_CHECK(ncclAllGather(act[r].data(), full[r].data(), shard,
                                 ncclFloat32, comms[r], 0));
    }
    std::printf("AllGather(32K elems/rank): full[0] holds shards "
                "[0..%d]; full[2][%zu] = %.0f (expect 6)\n",
                nDev - 1, 6 * shard, full[2][6 * shard]);

    std::printf("\nSimulated communication time so far: %s\n",
                sim::formatTime(mscclppNcclElapsed(comms[0])).c_str());

    for (int r = 0; r < nDev; ++r) {
        NCCL_CHECK(ncclCommDestroy(comms[r]));
    }
    mscclppNcclReset();
    std::printf("Done — zero NCCL-specific lines changed.\n");
    return 0;
}
