/**
 * Writing a custom collective with the MSCCL++ DSL (Section 4.3).
 *
 * Authors the all-pairs ReduceScatter of Figure 5 and a custom
 * "reduce-broadcast from rank 0" collective in the DSL, runs the
 * lowering passes, and executes both with the DSL Executor —
 * verifying the results against a host reference.
 */
#include "dsl/algorithms.hpp"
#include "dsl/executor.hpp"
#include "gpu/compute.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;
namespace dsl = mscclpp::dsl;

int
main()
{
    gpu::Machine machine(fab::makeA100_40G(), 1);
    dsl::Executor executor(machine, 1 << 20);
    const int n = executor.size();
    const std::size_t bytes = 256 << 10;

    // ---- Figure 5: all-pairs ReduceScatter, straight from the DSL ----
    dsl::Program rs = dsl::buildAllPairsReduceScatter(n, bytes);
    std::printf("Program '%s': %zu instructions over %d thread blocks\n",
                rs.name().c_str(), rs.totalInstructions(),
                rs.numThreadBlocks());
    std::printf("First instructions of rank 0:\n");
    for (std::size_t i = 0; i < 4 && i < rs.instructions(0).size(); ++i) {
        std::printf("  %s\n", rs.instructions(0)[i].describe().c_str());
    }

    for (int r = 0; r < n; ++r) {
        gpu::fillPattern(executor.dataBuffer(r), gpu::DataType::F32, r);
    }
    sim::Time t =
        executor.execute(rs, gpu::DataType::F32, gpu::ReduceOp::Sum);
    std::printf("ReduceScatter(%zu KiB) took %.2fus\n", bytes >> 10,
                sim::toUs(t));

    // Verify rank 2's shard against the reference sum.
    const std::size_t shardElems = bytes / 4 / n;
    bool ok = true;
    for (std::size_t i = 0; i < shardElems; i += 37) {
        float expected = 0.0f;
        std::size_t elem = 2 * shardElems + i;
        for (int src = 0; src < n; ++src) {
            expected += gpu::patternValue(gpu::DataType::F32, src, elem);
        }
        ok = ok && gpu::readElement(executor.dataBuffer(2),
                                    gpu::DataType::F32, elem) == expected;
    }
    std::printf("Verification: %s\n\n", ok ? "PASSED" : "FAILED");

    // ---- A custom algorithm authored inline -------------------------------
    // Reduce everything to rank 0, then broadcast: a naive fan-in /
    // fan-out — 10 lines of builder code.
    dsl::Program custom("reduce-broadcast", n);
    for (int r = 1; r < n; ++r) {
        custom.onRank(r)
            .put(0, {dsl::BufKind::Input, 0, bytes},
                 {dsl::BufKind::Scratch,
                  static_cast<std::size_t>(r) * bytes, bytes})
            .signal(0, dsl::BufKind::Scratch);
    }
    auto root = custom.onRank(0);
    for (int r = 1; r < n; ++r) {
        root.wait(r, dsl::BufKind::Scratch);
    }
    for (int r = 1; r < n; ++r) {
        root.reduce({dsl::BufKind::Input, 0, bytes},
                    {dsl::BufKind::Scratch,
                     static_cast<std::size_t>(r) * bytes, bytes});
    }
    for (int r = 1; r < n; ++r) {
        root.put(r, {dsl::BufKind::Input, 0, bytes},
                 {dsl::BufKind::Input, 0, bytes})
            .signal(r, dsl::BufKind::Input);
    }
    for (int r = 1; r < n; ++r) {
        custom.onRank(r).wait(0, dsl::BufKind::Input);
    }
    std::size_t removed = custom.optimize();
    std::printf("Custom program: %zu instructions (%zu removed by "
                "lowering passes)\n",
                custom.totalInstructions(), removed);

    for (int r = 0; r < n; ++r) {
        gpu::fillPattern(executor.dataBuffer(r), gpu::DataType::F32, r,
                         /*seed=*/7);
    }
    t = executor.execute(custom, gpu::DataType::F32, gpu::ReduceOp::Sum);
    float expected = 0.0f;
    for (int src = 0; src < n; ++src) {
        expected += gpu::patternValue(gpu::DataType::F32, src, 5, 7);
    }
    std::printf("reduce-broadcast(%zu KiB) took %.2fus; elem check: %s\n",
                bytes >> 10, sim::toUs(t),
                gpu::readElement(executor.dataBuffer(6),
                                 gpu::DataType::F32, 5) == expected
                    ? "PASSED"
                    : "FAILED");
    std::printf("\nNote: the naive fan-in algorithm is %s than Figure "
                "5's all-pairs — the DSL makes trying both a few lines "
                "of code.\n",
                "much slower");
    return 0;
}
