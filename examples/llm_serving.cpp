/**
 * Cluster-scale LLM serving (Section 5.2 + DESIGN.md Section 12):
 * Llama2-70b, TP=8 per replica, served behind an open-loop Poisson
 * request stream with continuous batching and a KV-cache capacity
 * model. Swapping the AllReduce backend from NCCL to MSCCL++ —
 * without touching the model or the scheduler — shifts the whole
 * TTFT/TPOT percentile curve, which is the metric production serving
 * actually ships against.
 *
 * Environment knobs (see README): MSCCLPP_SEED,
 * MSCCLPP_SERVING_{REPLICAS,REQUESTS,RATE,ARRIVALS,MAX_BATCH,
 * KV_TOKENS,DISAGG,SLO_TTFT_MS,SLO_TPOT_MS}.
 */
#include "serving/cluster.hpp"

#include <cstdio>

using namespace mscclpp;
using namespace mscclpp::serving;
namespace sim = mscclpp::sim;

int
main()
{
    ServingConfig base = ServingConfig::fromEnv();
    if (base.workload.requests == 128) { // untouched default: demo size
        base.workload.requests = 48;
    }
    if (base.workload.ratePerSec == 40.0) {
        // One 70B replica sustains a few req/s; the library default of
        // 40 req/s is cluster-scale load and would drown the demo in
        // queueing delay.
        base.workload.ratePerSec = 3.0;
    }

    const inference::TransformerConfig& model = base.inference.model;
    std::printf("Serving %s (%.1fB params) with TP=%d, %d replica(s), "
                "%s arrivals at %.0f req/s, seed %llu\n",
                model.name.c_str(), model.totalParams() / 1e9,
                base.inference.tensorParallel, base.replicas,
                toString(base.workload.mode), base.workload.ratePerSec,
                static_cast<unsigned long long>(base.seed));
    std::printf("KV capacity: %llu tokens/replica (%.1f GB of %.0f GB "
                "HBM after weights)\n\n",
                static_cast<unsigned long long>(
                    base.effectiveKvTokens()),
                base.effectiveKvTokens() *
                    model.kvBytesPerToken(base.inference.tensorParallel) *
                    base.inference.tensorParallel / 1e9,
                base.env.hbmCapacityGB *
                    base.inference.tensorParallel);

    for (inference::CommBackend backend :
         {inference::CommBackend::Nccl,
          inference::CommBackend::Mscclpp}) {
        ServingConfig cfg = base;
        cfg.backend = backend;
        ServingCluster cluster(cfg);
        ServingReport rep = cluster.run();
        std::printf("--- %s ---\n%s\n\n", toString(backend),
                    rep.summary().c_str());
    }

    // The same cluster under the same seed, with one replica's NVLink
    // egress degraded mid-run: the tail percentiles absorb the fault.
    ServingConfig faulty = base;
    faulty.backend = inference::CommBackend::Mscclpp;
    faulty.faults.push_back({0, "gpu3.tx", 0.25, 20});
    ServingCluster cluster(faulty);
    ServingReport rep = cluster.run();
    std::printf("--- MSCCL++, gpu3.tx at 25%% bandwidth from step 20 "
                "(replica 0) ---\n%s\n",
                rep.summary().c_str());
    return 0;
}
