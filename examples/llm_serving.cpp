/**
 * LLM serving scenario (Section 5.2): Llama2-70b with tensor
 * parallelism 8 on an A100-80G node. Swapping the AllReduce backend
 * from NCCL to MSCCL++ — without touching the model — speeds up
 * decode steps, which dominate production traces.
 */
#include "inference/llm.hpp"

#include <cstdio>

using namespace mscclpp::inference;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;

int
main()
{
    gpu::Machine machine(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim server(machine, InferenceConfig{});
    const TransformerConfig& model = server.config().model;
    std::printf("Serving %s (%.1fB params, %d layers) with TP=%d on "
                "8x%s\n\n",
                model.name.c_str(), model.totalParams() / 1e9,
                model.layers, server.config().tensorParallel,
                machine.config().gpuName.c_str());

    // A request: 512-token prompt, 128 generated tokens, batch of 16.
    const int batch = 16;
    const int promptLen = 512;
    const int genTokens = 128;

    // Explicit step-profiler windows around each decode iteration:
    // with MSCCLPP_TRACE=1 (or MSCCLPP_FLIGHT=1) every step lands on
    // the Perfetto "steps" track with compute / exposed-comms / sync
    // attribution, and the flight recorder watches for stragglers.
    // Without tracing these calls are no-ops.
    mscclpp::obs::StepWindow& win = machine.obs().window();
    for (CommBackend backend : {CommBackend::Nccl, CommBackend::Mscclpp}) {
        auto pre = server.prefill(batch, promptLen, backend);
        sim::Time decodeTotal = 0;
        for (int t = 0; t < genTokens; ++t) {
            win.beginStep(std::string("serve[") + toString(backend) +
                              "]",
                          machine.scheduler().now());
            auto step = server.decodeStep(batch, promptLen + t, backend);
            decodeTotal += step.total();
            win.endStep(machine.scheduler().now(), step.total(),
                        step.compute);
        }
        if (const mscclpp::obs::StepAttribution* att = win.lastStep()) {
            std::printf("  last %s\n", att->summaryLine().c_str());
        }
        double tokensPerSec =
            batch * genTokens / sim::toSec(decodeTotal);
        std::printf("%-8s prefill %7.2fms   decode %8.2fms "
                    "(%6.1f tok/s)   AllReduce/step: %d x %s in %.1fus\n",
                    toString(backend), sim::toMs(pre.total()),
                    sim::toMs(decodeTotal), tokensPerSec,
                    server.decodeStep(batch, promptLen, backend)
                        .allReduceCalls,
                    "bsz*hidden*fp16",
                    sim::toUs(server.allReduceTime(
                        std::size_t(batch) * model.hidden * 2, backend)));
    }

    auto nccl = server.decodeStep(batch, promptLen, CommBackend::Nccl);
    auto ours = server.decodeStep(batch, promptLen, CommBackend::Mscclpp);
    std::printf("\nDecode speedup from swapping the collective library: "
                "%.1f%% (comm share with NCCL: %.1f%%)\n",
                100.0 * (double(nccl.total()) / ours.total() - 1.0),
                100.0 * double(nccl.comm) / nccl.total());
    return 0;
}
