/**
 * Mixture-of-Experts dispatch (the Tutel-style workload the paper's
 * introduction motivates): each GPU routes a different number of
 * tokens to each expert, so the communication is a *variable*
 * AllToAll. MSCCL++'s allToAllV runs the skewed exchange directly;
 * the fixed-size alternative must pad every block to the maximum.
 */
#include "collective/api.hpp"
#include "gpu/compute.hpp"

#include <cstdio>
#include <random>
#include <vector>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;

int
main()
{
    gpu::Machine machine(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = 256 << 20;
    CollectiveComm comm(machine, opt);
    const int experts = machine.numGpus(); // one expert per GPU

    // Token routing: 4096 tokens/GPU, hidden 4096, fp16 — a skewed
    // softmax-style distribution over experts.
    const std::size_t tokenBytes = 4096 * 2;
    // Each GPU's tokens overwhelmingly prefer one expert (locality
    // after routing), with a thin tail to everyone else — the classic
    // gate distribution that makes padded AllToAll wasteful.
    std::mt19937 rng(7);
    std::vector<std::vector<std::size_t>> sendBytes(
        experts, std::vector<std::size_t>(experts, 0));
    std::vector<int> tokensToExpert(experts, 0);
    for (int r = 0; r < experts; ++r) {
        int favourite = (r + 3) % experts;
        int remaining = 4096;
        for (int e = 0; e < experts; ++e) {
            int share;
            if (e == favourite) {
                continue; // assigned last
            }
            share = std::min(remaining, int(rng() % 64));
            sendBytes[r][e] = std::size_t(share) * tokenBytes;
            tokensToExpert[e] += share;
            remaining -= share;
        }
        sendBytes[r][favourite] = std::size_t(remaining) * tokenBytes;
        tokensToExpert[favourite] += remaining;
    }

    std::printf("MoE dispatch on %d GPUs (1 expert each), 4096 tokens "
                "per GPU, hidden=4096 fp16\n\nTokens per expert:",
                experts);
    std::size_t maxBlock = 0;
    for (int e = 0; e < experts; ++e) {
        std::printf(" %d", tokensToExpert[e]);
        for (int r = 0; r < experts; ++r) {
            maxBlock = std::max(maxBlock, sendBytes[r][e]);
        }
    }
    std::printf("  (balanced totals, skewed pairs)\n\n");

    // Variable dispatch with allToAllV.
    sim::Time tVar = comm.allToAllV(sendBytes);

    // Fixed-size alternative: pad every block to the maximum.
    sim::Time tPad = comm.allToAll(maxBlock);

    std::size_t realBytes = 0;
    for (const auto& row : sendBytes) {
        for (std::size_t b : row) {
            realBytes += b;
        }
    }
    std::printf("allToAllV (exact routing):   %8.1f us  (%.1f MB moved)\n",
                sim::toUs(tVar), realBytes / 1e6);
    std::printf("allToAll  (padded to max):   %8.1f us  (%.1f MB moved)\n",
                sim::toUs(tPad),
                double(maxBlock) * experts * experts / 1e6);
    std::printf("\nVariable dispatch is %.2fx faster on this routing — "
                "the flexibility custom MoE stacks rebuild from scratch, "
                "available here as one library call.\n",
                double(tPad) / double(tVar));
    return 0;
}
