#ifndef MSCCLPP_BENCH_BENCH_UTIL_HPP
#define MSCCLPP_BENCH_BENCH_UTIL_HPP

#include "fabric/env.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace mscclpp::bench {

/**
 * Process-wide metrics registry. Benchmarks create a fresh Machine
 * per fixture; each fixture folds its machine's registry in here on
 * teardown so `--metrics out.json` captures the whole run.
 */
inline obs::MetricsRegistry&
processMetrics()
{
    static obs::MetricsRegistry registry;
    return registry;
}

/**
 * Strip `--metrics <path>` / `--metrics=<path>` from argv and return
 * the path ("" if absent). Call before benchmark::Initialize so the
 * library does not reject the flag as unrecognized.
 */
inline std::string
extractMetricsFlag(int* argc, char** argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--metrics" && i + 1 < *argc) {
            path = argv[++i];
        } else if (arg.rfind("--metrics=", 0) == 0) {
            path = arg.substr(10);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    argv[out] = nullptr;
    return path;
}

/** Write the process registry to @p path; no-op when path is empty. */
inline void
writeProcessMetrics(const std::string& path)
{
    if (path.empty()) {
        return;
    }
    processMetrics().writeJson(path);
    std::printf("metrics written to %s\n", path.c_str());
}

/** "1K", "4M", "1G" style size label. */
inline std::string
humanBytes(std::size_t bytes)
{
    char buf[32];
    if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0) {
        std::snprintf(buf, sizeof(buf), "%zuG", bytes >> 30);
    } else if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
        std::snprintf(buf, sizeof(buf), "%zuM", bytes >> 20);
    } else if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0) {
        std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
    } else {
        std::snprintf(buf, sizeof(buf), "%zuB", bytes);
    }
    return buf;
}

/** Fixed-width text table with a CSV echo for plotting. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void print(bool csv = true) const
    {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            widths[c] = headers_[c].size();
            for (const auto& row : rows_) {
                if (c < row.size()) {
                    widths[c] = std::max(widths[c], row[c].size());
                }
            }
        }
        auto printRow = [&](const std::vector<std::string>& row) {
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                std::printf("%-*s  ", static_cast<int>(widths[c]),
                            c < row.size() ? row[c].c_str() : "");
            }
            std::printf("\n");
        };
        printRow(headers_);
        std::size_t total = headers_.size() * 2;
        for (std::size_t w : widths) {
            total += w;
        }
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto& row : rows_) {
            printRow(row);
        }
        if (csv) {
            std::printf("\n# CSV\n");
            auto csvRow = [&](const std::vector<std::string>& row) {
                for (std::size_t c = 0; c < headers_.size(); ++c) {
                    std::printf("%s%s",
                                c < row.size() ? row[c].c_str() : "",
                                c + 1 < headers_.size() ? "," : "\n");
                }
            };
            csvRow(headers_);
            for (const auto& row : rows_) {
                csvRow(row);
            }
        }
        std::printf("\n");
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Table 1-style banner for the environment under test. */
inline void
printEnvBanner(const fabric::EnvConfig& cfg, int nodes)
{
    std::printf("Environment: %-10s  GPU: %-18s  intra: %-22s  net: %s\n",
                cfg.name.c_str(), cfg.gpuName.c_str(),
                cfg.intraName.c_str(), cfg.netName.c_str());
    std::printf("Shape: %d node(s) x %d GPUs\n\n", nodes, cfg.gpusPerNode);
}

inline std::string
fmtUs(sim::Time t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", sim::toUs(t));
    return buf;
}

inline std::string
fmtGBps(std::size_t bytes, sim::Time t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", sim::achievedGBps(bytes, t));
    return buf;
}

inline std::string
fmtRatio(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", r);
    return buf;
}

} // namespace mscclpp::bench

#endif // MSCCLPP_BENCH_BENCH_UTIL_HPP
