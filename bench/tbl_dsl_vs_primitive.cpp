/**
 * Section 5.1 anchor: algorithms written in the MSCCL++ DSL and run
 * by the Executor are on average ~3% slower than the same algorithms
 * hand-written against the Primitive API (up to 18% in one corner
 * case, at small sizes where per-instruction decode shows).
 */
#include "bench_util.hpp"
#include "collective/api.hpp"
#include "dsl/algorithms.hpp"
#include "dsl/executor.hpp"

#include <cstdio>
#include <vector>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace dsl = mscclpp::dsl;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("DSL vs Primitive (Section 5.1): AllReduce/AllGather, "
                "A100-40G, 1n8g\n\n");
    fab::EnvConfig env = fab::makeA100_40G();
    bench::printEnvBanner(env, 1);

    const std::size_t maxBytes = 64 << 20;
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm prim(machine, opt);
    dsl::Executor ex(machine, maxBytes);

    struct Case
    {
        const char* name;
        std::size_t bytes;
        AllReduceAlgo primAlgo;
        dsl::Program (*build)(int, std::size_t);
    };
    std::vector<Case> cases = {
        {"AR-1PA", 4 << 10, AllReduceAlgo::AllPairs1P,
         dsl::buildAllPairs1PAllReduce},
        {"AR-2PA-LL", 256 << 10, AllReduceAlgo::AllPairs2PLL,
         dsl::buildAllPairs2PAllReduceLL},
        {"AR-2PA-HB", 4 << 20, AllReduceAlgo::AllPairs2PHB,
         dsl::buildAllPairs2PAllReduceHB},
        {"AR-2PA-HB", 64 << 20, AllReduceAlgo::AllPairs2PHB,
         dsl::buildAllPairs2PAllReduceHB},
        {"AR-2PA-Port", 64 << 20, AllReduceAlgo::AllPairs2PPort,
         dsl::buildAllPairs2PAllReducePort},
    };

    bench::Table table(
        {"kernel", "size", "Primitive(us)", "DSL(us)", "DSL overhead"});
    double sumRatio = 0;
    double maxRatio = 0;
    for (const Case& c : cases) {
        sim::Time tPrim = prim.allReduce(c.bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum, c.primAlgo);
        dsl::Program p = c.build(8, c.bytes);
        sim::Time tDsl =
            ex.execute(p, gpu::DataType::F16, gpu::ReduceOp::Sum);
        double over = double(tDsl) / double(tPrim) - 1.0;
        sumRatio += over;
        maxRatio = std::max(maxRatio, over);
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.1f%%", 100.0 * over);
        table.addRow({c.name, bench::humanBytes(c.bytes),
                      bench::fmtUs(tPrim), bench::fmtUs(tDsl), pct});
    }
    table.print();
    std::printf("Average DSL overhead: %.1f%% (max %.1f%%). Paper: 3%% "
                "average, 18%% worst case.\n",
                100.0 * sumRatio / cases.size(), 100.0 * maxRatio);
    return 0;
}
