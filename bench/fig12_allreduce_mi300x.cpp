/**
 * Figure 12: AllReduce on a single AMD MI300x node (8 GPUs, Infinity
 * Fabric mesh) — RCCL (the NCCL model with ROCm/mesh parameters),
 * MSCCL and MSCCL++. The MSCCL++ all-pairs algorithms copy to all
 * peers concurrently to use every mesh link (Section 5.3).
 */
#include "baseline/msccl.hpp"
#include "baseline/nccl.hpp"
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Figure 12 reproduction: AllReduce, MI300x, 1n8g\n\n");
    fab::EnvConfig env = fab::makeMI300x();
    bench::printEnvBanner(env, 1);

    const std::size_t maxBytes = 1ull << 30;
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm ours(machine, opt);
    baseline::NcclComm rccl(machine, maxBytes);
    baseline::MscclComm msccl(machine, maxBytes);

    bench::Table table({"size", "RCCL(us)", "MSCCL(us)", "MSCCL++(us)",
                        "algo", "RCCL(GB/s)", "MSCCL++(GB/s)", "vs RCCL",
                        "vs MSCCL"});
    for (std::size_t bytes : {std::size_t(1) << 10, std::size_t(8) << 10,
                              std::size_t(64) << 10,
                              std::size_t(512) << 10, std::size_t(4) << 20,
                              std::size_t(32) << 20,
                              std::size_t(256) << 20,
                              std::size_t(1) << 30}) {
        sim::Time tRccl = rccl.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        sim::Time tMsccl = msccl.allReduce(bytes, gpu::DataType::F16,
                                           gpu::ReduceOp::Sum);
        sim::Time tOurs = ours.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(tRccl),
                      bench::fmtUs(tMsccl), bench::fmtUs(tOurs),
                      toString(ours.chooseAllReduce(bytes)),
                      bench::fmtGBps(bytes, tRccl),
                      bench::fmtGBps(bytes, tOurs),
                      bench::fmtRatio(double(tRccl) / double(tOurs)),
                      bench::fmtRatio(double(tMsccl) / double(tOurs))});
    }
    table.print();
    return 0;
}
