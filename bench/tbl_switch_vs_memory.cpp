/**
 * Section 5.3 anchor: on H100, the SwitchChannel (NVLS multimem) 2PA
 * implementation reaches up to 56% higher bandwidth than an
 * equivalent MemoryChannel implementation.
 */
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("SwitchChannel vs MemoryChannel (Section 5.3): "
                "AllReduce, H100, 1n8g\n\n");
    fab::EnvConfig env = fab::makeH100();
    bench::printEnvBanner(env, 1);

    const std::size_t maxBytes = 1ull << 30;
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm comm(machine, opt);

    bench::Table table({"size", "MemoryChannel(us)", "SwitchChannel(us)",
                        "Mem algBW(GB/s)", "Switch algBW(GB/s)",
                        "Switch gain"});
    for (std::size_t bytes :
         {std::size_t(16) << 20, std::size_t(128) << 20,
          std::size_t(1) << 30}) {
        sim::Time tMem = comm.allReduce(bytes, gpu::DataType::F16,
                                        gpu::ReduceOp::Sum,
                                        AllReduceAlgo::AllPairs2PHB);
        sim::Time tSwitch = comm.allReduce(bytes, gpu::DataType::F16,
                                           gpu::ReduceOp::Sum,
                                           AllReduceAlgo::Switch2P);
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(tMem),
                      bench::fmtUs(tSwitch), bench::fmtGBps(bytes, tMem),
                      bench::fmtGBps(bytes, tSwitch),
                      bench::fmtRatio(double(tMem) / double(tSwitch))});
    }
    table.print();
    std::printf("Paper anchor: up to +56%% bandwidth from the switch's "
                "in-network reduction.\n");
    return 0;
}
