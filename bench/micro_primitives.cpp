/**
 * Micro-benchmarks of the MSCCL++ primitives (google-benchmark). Each
 * benchmark runs the primitive in the simulator and reports the
 * *simulated* cost as the `sim_us` counter — wall-clock time here
 * measures only the simulator itself.
 */
#include "bench_util.hpp"
#include "channel/channel_mesh.hpp"
#include "channel/device_syncer.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "gpu/compute.hpp"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;

namespace {

/** One machine + mesh reused per benchmark run. */
struct Fixture
{
    explicit Fixture(std::size_t bytes, Protocol proto = Protocol::HB,
                     Transport transport = Transport::Memory)
        : machine(fab::makeA100_40G(), 1, gpu::DataMode::Timed)
    {
        auto boots = createInProcessBootstrap(machine.numGpus());
        for (int r = 0; r < machine.numGpus(); ++r) {
            comms.push_back(
                std::make_unique<Communicator>(boots[r], machine));
            bufs.push_back(machine.gpu(r).alloc(bytes));
        }
        std::vector<Communicator*> cp;
        for (auto& c : comms) {
            cp.push_back(c.get());
        }
        MeshOptions opt;
        opt.protocol = proto;
        opt.transport = transport;
        mesh.emplace(ChannelMesh::build(cp, bufs, bufs, opt));
    }

    ~Fixture()
    {
        // Fold this machine's metrics into the process-wide registry
        // so `--metrics out.json` aggregates across fixtures.
        bench::processMetrics().mergeFrom(machine.obs().metrics());
    }

    sim::Time run(const std::function<sim::Task<>(gpu::BlockCtx&)>& fn)
    {
        sim::Time t0 = machine.scheduler().now();
        gpu::LaunchConfig cfg;
        cfg.graph = true;
        sim::detach(machine.scheduler(),
                    gpu::launchKernel(machine.gpu(0), cfg, fn));
        machine.run();
        return machine.scheduler().now() - t0;
    }

    gpu::Machine machine;
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
    std::optional<ChannelMesh> mesh;
};

void
BM_MemoryChannelPut(benchmark::State& state)
{
    const std::size_t bytes = state.range(0);
    Fixture f(std::max<std::size_t>(bytes, 4096));
    sim::Time total = 0;
    std::int64_t iters = 0;
    for (auto _ : state) {
        total += f.run([&](gpu::BlockCtx& ctx) -> sim::Task<> {
            co_await f.mesh->mem(0, 1).put(ctx, 0, 0, bytes);
        });
        ++iters;
    }
    state.counters["sim_us"] =
        benchmark::Counter(sim::toUs(total) / iters);
}

void
BM_MemoryChannelPutWithSignal(benchmark::State& state)
{
    const std::size_t bytes = state.range(0);
    Fixture f(std::max<std::size_t>(bytes, 4096));
    sim::Time total = 0;
    std::int64_t iters = 0;
    for (auto _ : state) {
        total += f.run([&](gpu::BlockCtx& ctx) -> sim::Task<> {
            co_await f.mesh->mem(0, 1).putWithSignal(ctx, 0, 0, bytes);
        });
        ++iters;
    }
    state.counters["sim_us"] =
        benchmark::Counter(sim::toUs(total) / iters);
}

void
BM_LlPutPackets(benchmark::State& state)
{
    const std::size_t bytes = state.range(0);
    Fixture f(std::max<std::size_t>(bytes, 4096), Protocol::LL);
    sim::Time total = 0;
    std::int64_t iters = 0;
    for (auto _ : state) {
        total += f.run([&](gpu::BlockCtx& ctx) -> sim::Task<> {
            co_await f.mesh->mem(0, 1).putPackets(ctx, 0, 0, bytes);
        });
        ++iters;
    }
    state.counters["sim_us"] =
        benchmark::Counter(sim::toUs(total) / iters);
}

void
BM_PortChannelPutFlush(benchmark::State& state)
{
    const std::size_t bytes = state.range(0);
    Fixture f(std::max<std::size_t>(bytes, 4096), Protocol::HB,
              Transport::Port);
    sim::Time total = 0;
    std::int64_t iters = 0;
    for (auto _ : state) {
        total += f.run([&](gpu::BlockCtx& ctx) -> sim::Task<> {
            co_await f.mesh->port(0, 1).put(ctx, 0, 0, bytes);
            co_await f.mesh->port(0, 1).flush(ctx);
        });
        ++iters;
    }
    state.counters["sim_us"] =
        benchmark::Counter(sim::toUs(total) / iters);
    f.mesh->shutdown();
    f.machine.run();
}

void
BM_DeviceBarrier(benchmark::State& state)
{
    Fixture f(4096);
    std::vector<int> ranks(8);
    for (int r = 0; r < 8; ++r) {
        ranks[r] = r;
    }
    DeviceSyncer syncer(f.machine, ranks);
    sim::Time total = 0;
    std::int64_t iters = 0;
    for (auto _ : state) {
        sim::Time t0 = f.machine.scheduler().now();
        for (int r = 0; r < 8; ++r) {
            gpu::LaunchConfig cfg;
            sim::detach(
                f.machine.scheduler(),
                gpu::launchKernel(f.machine.gpu(r), cfg,
                                  [&syncer, r](gpu::BlockCtx& ctx)
                                      -> sim::Task<> {
                                      co_await syncer.barrier(ctx, r);
                                  }));
        }
        f.machine.run();
        total += f.machine.scheduler().now() - t0;
        ++iters;
    }
    state.counters["sim_us"] =
        benchmark::Counter(sim::toUs(total) / iters);
}

} // namespace

BENCHMARK(BM_MemoryChannelPut)->Arg(1 << 10)->Arg(64 << 10)->Arg(1 << 20);
BENCHMARK(BM_MemoryChannelPutWithSignal)->Arg(1 << 10)->Arg(1 << 20);
BENCHMARK(BM_LlPutPackets)->Arg(1 << 10)->Arg(64 << 10);
BENCHMARK(BM_PortChannelPutFlush)->Arg(1 << 10)->Arg(1 << 20);
BENCHMARK(BM_DeviceBarrier);

// BENCHMARK_MAIN() plus a `--metrics out.json` flag, stripped from
// argv before google-benchmark sees (and rejects) it.
int
main(int argc, char** argv)
{
    std::string metricsPath = bench::extractMetricsFlag(&argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::writeProcessMetrics(metricsPath);
    return 0;
}
