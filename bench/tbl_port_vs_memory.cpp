/**
 * Section 5.1 anchor: for a 1 GiB single-node AllReduce, PortChannel
 * (DMA copy, unavailable in NCCL/MSCCL intra-node) beats the
 * equivalent MemoryChannel implementation (paper: +6.2% bandwidth).
 */
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main(int argc, char** argv)
{
    std::string metricsPath = bench::extractMetricsFlag(&argc, argv);
    std::printf("PortChannel vs MemoryChannel (Section 5.1): AllReduce, "
                "A100-40G, 1n8g\n\n");
    fab::EnvConfig env = fab::makeA100_40G();
    bench::printEnvBanner(env, 1);

    const std::size_t maxBytes = 1ull << 30;
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm comm(machine, opt);

    bench::Table table({"size", "MemoryChannel(us)", "PortChannel(us)",
                        "Mem algBW(GB/s)", "Port algBW(GB/s)",
                        "Port gain"});
    for (std::size_t bytes :
         {std::size_t(128) << 20, std::size_t(512) << 20,
          std::size_t(1) << 30}) {
        sim::Time tMem = comm.allReduce(bytes, gpu::DataType::F16,
                                        gpu::ReduceOp::Sum,
                                        AllReduceAlgo::AllPairs2PHB);
        sim::Time tPort = comm.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum,
                                         AllReduceAlgo::AllPairs2PPort);
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(tMem),
                      bench::fmtUs(tPort), bench::fmtGBps(bytes, tMem),
                      bench::fmtGBps(bytes, tPort),
                      bench::fmtRatio(double(tMem) / double(tPort))});
    }
    table.print();
    std::printf("Paper anchor: PortChannel +6.2%% bandwidth at 1 GiB "
                "(our copy-engine model yields a larger gap because the "
                "reduce no longer dilutes it; see EXPERIMENTS.md).\n");
    bench::processMetrics().mergeFrom(machine.obs().metrics());
    bench::writeProcessMetrics(metricsPath);
    return 0;
}
