/**
 * Extension ablation (Section 3.2.1, "Generality"): the paper argues
 * that if future interconnects let a GPU kernel initiate DMA itself,
 * the same PortChannel API covers them. This bench models that
 * hardware (no managed-memory polling, no CPU dispatch) and shows how
 * much of today's PortChannel latency is the CPU proxy round trip.
 */
#include "bench_util.hpp"
#include "channel/channel_mesh.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "gpu/compute.hpp"

#include <cstdio>
#include <memory>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;
namespace bench = mscclpp::bench;

namespace {

/** One put+signal+flush round through a port channel. */
sim::Time
portRound(bool deviceInitiated, std::size_t bytes)
{
    gpu::Machine machine(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    auto boots = createInProcessBootstrap(machine.numGpus());
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
    for (int r = 0; r < machine.numGpus(); ++r) {
        comms.push_back(std::make_unique<Communicator>(boots[r], machine));
        bufs.push_back(machine.gpu(r).alloc(bytes));
    }
    std::vector<Communicator*> cp;
    for (auto& c : comms) {
        cp.push_back(c.get());
    }
    MeshOptions opt;
    opt.transport = Transport::Port;
    opt.deviceInitiatedPort = deviceInitiated;
    auto mesh = ChannelMesh::build(cp, bufs, bufs, opt);

    sim::Time done = 0;
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 0) {
            co_await mesh.port(0, 1).putWithSignalAndFlush(ctx, 0, 0,
                                                           bytes);
            done = ctx.scheduler().now();
        } else if (rank == 1) {
            co_await mesh.port(1, 0).wait(ctx);
        }
    };
    gpu::runOnAllRanks(machine, gpu::LaunchConfig{}, fn);
    mesh.shutdown();
    machine.run();
    return done;
}

} // namespace

int
main()
{
    std::printf("Extension ablation: CPU-proxy vs device-initiated "
                "PortChannel (A100-40G, intra-node DMA put+signal+"
                "flush)\n\n");
    bench::Table table({"size", "CPU proxy(us)", "device-initiated(us)",
                        "proxy overhead removed"});
    for (std::size_t bytes :
         {std::size_t(1) << 10, std::size_t(64) << 10,
          std::size_t(1) << 20, std::size_t(16) << 20}) {
        sim::Time proxy = portRound(false, bytes);
        sim::Time dev = portRound(true, bytes);
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.1f%%",
                      100.0 * (1.0 - double(dev) / double(proxy)));
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(proxy),
                      bench::fmtUs(dev), pct});
    }
    table.print();
    std::printf("The kernels are unchanged between columns — only the "
                "channel's engine model differs, demonstrating the "
                "PortChannel abstraction's claim to cover future "
                "GPU-initiated DMA hardware.\n");
    return 0;
}
