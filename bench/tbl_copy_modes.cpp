/**
 * Section 2.2.2 anchor: over 8 A100-80G GPUs, AllGather via
 * thread-copy (MemoryChannel) reaches ~227 GB/s of NVLink bandwidth
 * while DMA-copy (PortChannel) reaches ~263 GB/s (+15.8%) — and frees
 * GPU threads to do other work.
 */
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Interconnect copy modes (Section 2.2.2): AllGather, "
                "A100-80G, 1n8g\n\n");
    fab::EnvConfig env = fab::makeA100_80G();
    bench::printEnvBanner(env, 1);

    const std::size_t maxBytes = 1ull << 30;
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm comm(machine, opt);

    // Bus bandwidth: every GPU sends its shard to 7 peers, so the
    // per-port traffic is (N-1)/N of the gathered size.
    bench::Table table({"size", "thread-copy(us)", "DMA-copy(us)",
                        "thread-copy busBW(GB/s)", "DMA busBW(GB/s)",
                        "DMA gain"});
    for (std::size_t bytes :
         {std::size_t(64) << 20, std::size_t(256) << 20,
          std::size_t(1) << 30}) {
        std::size_t shard = bytes / 8;
        sim::Time tThread =
            comm.allGather(shard, AllGatherAlgo::AllPairsHB);
        sim::Time tDma =
            comm.allGather(shard, AllGatherAlgo::AllPairsPort);
        std::size_t busBytes = shard * 7;
        table.addRow(
            {bench::humanBytes(bytes), bench::fmtUs(tThread),
             bench::fmtUs(tDma), bench::fmtGBps(busBytes, tThread),
             bench::fmtGBps(busBytes, tDma),
             bench::fmtRatio(double(tThread) / double(tDma))});
    }
    table.print();
    std::printf("Paper anchor: 227 GB/s (thread-copy) vs 263 GB/s "
                "(DMA-copy), +15.8%%.\n");
    return 0;
}
