/**
 * Section 5.1 anchor: for a 1 KiB AllReduce on 8 A100 GPUs, MSCCL and
 * MSCCL++ run the same 1PA algorithm, so the latency gap is pure
 * stack overhead. The paper reports 9.5 us (MSCCL) vs 5.0 us
 * (MSCCL++), a 47% cut; NCCL's ring is ~4.2x MSCCL++.
 */
#include "baseline/msccl.hpp"
#include "baseline/nccl.hpp"
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Stack overhead (Section 5.1): small AllReduce, "
                "A100-40G, 1n8g\n\n");
    fab::EnvConfig env = fab::makeA100_40G();
    bench::printEnvBanner(env, 1);

    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm ours(machine, opt);
    baseline::NcclComm nccl(machine, 1 << 20);
    baseline::MscclComm msccl(machine, 1 << 20);

    bench::Table table({"size", "NCCL(us)", "MSCCL(us)", "MSCCL++(us)",
                        "MSCCL cut", "NCCL/MSCCL++"});
    for (std::size_t bytes : {std::size_t(1) << 10, std::size_t(2) << 10,
                              std::size_t(4) << 10, std::size_t(8) << 10,
                              std::size_t(16) << 10}) {
        sim::Time tNccl = nccl.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        sim::Time tMsccl = msccl.allReduce(
            bytes, gpu::DataType::F16, gpu::ReduceOp::Sum,
            baseline::MscclAlgo::AllPairs1P);
        sim::Time tOurs =
            ours.allReduce(bytes, gpu::DataType::F16, gpu::ReduceOp::Sum,
                           AllReduceAlgo::AllPairs1P);
        char cut[32];
        std::snprintf(cut, sizeof(cut), "%.0f%%",
                      100.0 * (1.0 - double(tOurs) / double(tMsccl)));
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(tNccl),
                      bench::fmtUs(tMsccl), bench::fmtUs(tOurs), cut,
                      bench::fmtRatio(double(tNccl) / double(tOurs))});
    }
    table.print();
    std::printf("Paper anchors at 1K: MSCCL 9.5us -> MSCCL++ 5.0us "
                "(-47%%); NCCL up to 4.2x MSCCL++.\n");
    return 0;
}
