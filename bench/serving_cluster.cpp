/**
 * serving_cluster: cluster-scale SLO benchmark. Serves one open-loop
 * request stream through N replicas under each AllReduce backend and
 * reports request-level percentiles (TTFT / TPOT / e2e) plus SLO
 * violation counts — the serving-system view of the paper's claim
 * that faster collectives move production metrics, not just
 * microbenchmark latency.
 *
 * Usage: serving_cluster [options]
 *   --smoke            CI-sized run (fewer, shorter requests)
 *   --json <file>      also write a mscclpp.serving_report v1 JSON
 *   --replicas <n>     override replica count
 *   --disagg <n>       prefill-only replicas (disaggregation)
 *   --backend <b>      nccl | msccl | mscclpp | all (default all)
 *   --fault <spec>     degrade a link mid-run; spec is
 *                      <replica>:<link>:<factor>@<step> with an
 *                      optional ~<recoverStep> suffix that heals the
 *                      link at that step, repeatable
 *                      (e.g. 0:gpu3.tx:0.15@12~40)
 *
 * MSCCLPP_SEED, the MSCCLPP_SERVING_*, MSCCLPP_REQTRACE* and
 * MSCCLPP_SLOMON* environment knobs apply; the run is
 * bit-deterministic for a given configuration. With MSCCLPP_REQTRACE=1
 * each backend run writes its per-request tail-exemplar dump
 * (backend-prefixed when several backends run), which
 * tools/trace_query can interrogate; with MSCCLPP_SLOMON=1 each run
 * writes its mscclpp.alerts dump for tools/slo_query.
 */
#include "serving/cluster.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace mscclpp;
using namespace mscclpp::serving;

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

const char*
backendSlug(inference::CommBackend b)
{
    switch (b) {
      case inference::CommBackend::Nccl:
        return "nccl";
      case inference::CommBackend::Msccl:
        return "msccl";
      default:
        return "mscclpp";
    }
}

struct Run
{
    inference::CommBackend backend;
    ServingReport report;
};

/** Parse a --fault spec "<replica>:<link>:<factor>@<step>" with an
 *  optional "~<recoverStep>" suffix (heal the link at that step). */
bool
parseFault(const std::string& spec, FaultSpec& out)
{
    const std::size_t c1 = spec.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
    const std::size_t at =
        c2 == std::string::npos ? c2 : spec.find('@', c2 + 1);
    if (at == std::string::npos) {
        return false;
    }
    const std::size_t tilde = spec.find('~', at + 1);
    try {
        out.replica = std::stoi(spec.substr(0, c1));
        out.link = spec.substr(c1 + 1, c2 - c1 - 1);
        out.factor = std::stod(spec.substr(c2 + 1, at - c2 - 1));
        out.atStep = static_cast<std::uint64_t>(
            std::stoull(spec.substr(at + 1, tilde - at - 1)));
        if (tilde != std::string::npos) {
            out.recoverAtStep = static_cast<std::uint64_t>(
                std::stoull(spec.substr(tilde + 1)));
        }
    } catch (...) {
        return false;
    }
    return !out.link.empty() && out.factor > 0.0 &&
           (out.recoverAtStep == 0 || out.recoverAtStep > out.atStep);
}

std::string
toJson(const ServingConfig& cfg, const std::vector<Run>& runs)
{
    std::string out = "{\n  \"schema\": \"mscclpp.serving_report\",\n"
                      "  \"version\": 1,\n";
    out += "  \"seed\": " + std::to_string(cfg.seed) + ",\n";
    out += "  \"replicas\": " + std::to_string(cfg.replicas) + ",\n";
    out += "  \"prefill_replicas\": " +
           std::to_string(cfg.prefillReplicas) + ",\n";
    out += "  \"arrivals\": \"" +
           std::string(toString(cfg.workload.mode)) + "\",\n";
    out += "  \"runs\": {\n";
    bool first = true;
    for (const Run& r : runs) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        const ServingReport& rep = r.report;
        out += "    \"" + std::string(backendSlug(r.backend)) +
               "\": {\n";
        out += "      \"requests\": " + std::to_string(rep.requests) +
               ",\n";
        out += "      \"dropped\": " + std::to_string(rep.dropped) +
               ",\n";
        out += "      \"prefill_steps\": " +
               std::to_string(rep.prefillSteps) + ",\n";
        out += "      \"decode_steps\": " +
               std::to_string(rep.decodeSteps) + ",\n";
        out += "      \"preemptions\": " +
               std::to_string(rep.preemptions) + ",\n";
        out += "      \"migrations\": " +
               std::to_string(rep.migrations) + ",\n";
        out += "      \"ttft_p50_us\": " + num(sim::toUs(rep.ttftP50)) +
               ",\n";
        out += "      \"ttft_p90_us\": " + num(sim::toUs(rep.ttftP90)) +
               ",\n";
        out += "      \"ttft_p99_us\": " + num(sim::toUs(rep.ttftP99)) +
               ",\n";
        out += "      \"tpot_p50_us\": " + num(sim::toUs(rep.tpotP50)) +
               ",\n";
        out += "      \"tpot_p90_us\": " + num(sim::toUs(rep.tpotP90)) +
               ",\n";
        out += "      \"tpot_p99_us\": " + num(sim::toUs(rep.tpotP99)) +
               ",\n";
        out += "      \"e2e_p50_us\": " + num(sim::toUs(rep.e2eP50)) +
               ",\n";
        out += "      \"e2e_p99_us\": " + num(sim::toUs(rep.e2eP99)) +
               ",\n";
        out += "      \"slo_ttft_violations\": " +
               std::to_string(rep.sloTtftViolations) + ",\n";
        out += "      \"slo_tpot_violations\": " +
               std::to_string(rep.sloTpotViolations) + ",\n";
        out += "      \"alerts_fired\": " +
               std::to_string(rep.alertsFired) + ",\n";
        out += "      \"alerts_active\": " +
               std::to_string(rep.alertsActive) + ",\n";
        out += "      \"throughput_tps\": " + num(rep.throughputTps) +
               ",\n";
        out += "      \"makespan_ms\": " + num(sim::toMs(rep.makespan)) +
               "\n    }";
    }
    out += "\n  }\n}\n";
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string jsonPath;
    std::string backendArg = "all";
    int replicas = -1;
    int disagg = -1;
    std::vector<FaultSpec> faults;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg == "--replicas" && i + 1 < argc) {
            replicas = std::atoi(argv[++i]);
        } else if (arg == "--disagg" && i + 1 < argc) {
            disagg = std::atoi(argv[++i]);
        } else if (arg == "--backend" && i + 1 < argc) {
            backendArg = argv[++i];
        } else if (arg == "--fault" && i + 1 < argc) {
            FaultSpec f;
            if (!parseFault(argv[++i], f)) {
                std::fprintf(stderr,
                             "serving_cluster: bad --fault spec '%s' "
                             "(want <replica>:<link>:<factor>@<step>"
                             "[~<recoverStep>])\n",
                             argv[i]);
                return 2;
            }
            faults.push_back(std::move(f));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json <file>] "
                         "[--replicas <n>] [--disagg <n>] "
                         "[--backend nccl|msccl|mscclpp|all] "
                         "[--fault <r>:<link>:<factor>@<step>"
                         "[~<recover>]]\n",
                         argv[0]);
            return 2;
        }
    }

    ServingConfig cfg = ServingConfig::fromEnv();
    if (cfg.workload.requests == 128 && smoke) {
        cfg.workload.requests = 24;
        cfg.workload.ratePerSec = 6.0;
        cfg.workload.mix = {{1.0, 128, 512, 16, 48}};
    } else if (cfg.workload.requests == 128) {
        cfg.workload.requests = 96;
        cfg.workload.ratePerSec = 6.0;
    }
    if (replicas > 0) {
        cfg.replicas = replicas;
    }
    if (disagg >= 0) {
        cfg.prefillReplicas = disagg;
    }
    if (cfg.replicas == 1 && replicas < 0) {
        cfg.replicas = 2; // cluster bench: two replicas by default
    }
    cfg.faults = std::move(faults);
    cfg.validate();

    std::vector<inference::CommBackend> backends;
    if (backendArg == "all") {
        backends = {inference::CommBackend::Nccl,
                    inference::CommBackend::Msccl,
                    inference::CommBackend::Mscclpp};
    } else if (backendArg == "nccl") {
        backends = {inference::CommBackend::Nccl};
    } else if (backendArg == "msccl") {
        backends = {inference::CommBackend::Msccl};
    } else if (backendArg == "mscclpp") {
        backends = {inference::CommBackend::Mscclpp};
    } else {
        std::fprintf(stderr, "serving_cluster: unknown backend '%s'\n",
                     backendArg.c_str());
        return 2;
    }

    std::printf("serving_cluster: %d replica(s) (%d prefill-only), %d "
                "requests, %s arrivals @ %.1f req/s, seed %llu\n\n",
                cfg.replicas, cfg.prefillReplicas,
                cfg.workload.requests, toString(cfg.workload.mode),
                cfg.workload.ratePerSec,
                static_cast<unsigned long long>(cfg.seed));

    std::vector<Run> runs;
    for (inference::CommBackend backend : backends) {
        ServingConfig c = cfg;
        c.backend = backend;
        if (c.reqtrace && backends.size() > 1) {
            // One dump per backend, like the per-replica obs files.
            c.reqtraceFile =
                std::string(backendSlug(backend)) + "." + c.reqtraceFile;
        }
        if (c.slomon && backends.size() > 1) {
            c.slomonFile =
                std::string(backendSlug(backend)) + "." + c.slomonFile;
        }
        ServingCluster cluster(c);
        runs.push_back({backend, cluster.run()});
        std::printf("--- %s ---\n%s\n\n", toString(backend),
                    runs.back().report.summary().c_str());
        if (cluster.reqtrace().enabled()) {
            std::printf("reqtrace -> %s (top-%d per SLO class)\n\n",
                        c.reqtraceFile.c_str(), c.reqtraceTopK);
        }
        if (cluster.slomon().enabled()) {
            std::printf("alerts -> %s (%llu fired, %zu active)\n\n",
                        c.slomonFile.c_str(),
                        static_cast<unsigned long long>(
                            runs.back().report.alertsFired),
                        cluster.slomon().activeAlerts());
        }
    }

    if (runs.size() > 1) {
        const ServingReport& first = runs.front().report;
        const ServingReport& last = runs.back().report;
        if (last.tpotP50 > 0) {
            std::printf("TPOT p50 %s vs %s: %+.1f%%\n",
                        toString(runs.front().backend),
                        toString(runs.back().backend),
                        100.0 * (double(first.tpotP50) /
                                     double(last.tpotP50) -
                                 1.0));
        }
    }

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        f << toJson(cfg, runs);
        std::printf("report -> %s\n", jsonPath.c_str());
    }
    return 0;
}
