/**
 * Ablation replacing the paper's register-count study (Section 3.2.3,
 * not reproducible off hardware): the NCCL baseline's per-primitive
 * static thread-group cost is the stack overhead MSCCL++ removes.
 * Sweeping it shows how small-message latency tracks that cost while
 * MSCCL++ stays put.
 */
#include "baseline/nccl.hpp"
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Ablation: NCCL per-primitive overhead vs small-message "
                "AllReduce latency (A100-40G, 1n8g, 4 KiB)\n\n");
    const std::size_t bytes = 4 << 10;

    bench::Table table({"primOverhead(ns)", "NCCL 4K(us)",
                        "MSCCL++ 4K(us)", "NCCL/MSCCL++"});
    for (double ns : {0.0, 150.0, 330.0, 700.0, 1400.0}) {
        fab::EnvConfig env = fab::makeA100_40G();
        env.ncclPrimOverhead = sim::ns(ns);
        gpu::Machine machine(env, 1, gpu::DataMode::Timed);
        baseline::NcclComm nccl(machine, 1 << 20);
        CollectiveComm::Options opt;
        opt.maxBytes = 1 << 20;
        CollectiveComm ours(machine, opt);
        sim::Time tNccl = nccl.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        sim::Time tOurs = ours.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f", ns);
        table.addRow({label, bench::fmtUs(tNccl), bench::fmtUs(tOurs),
                      bench::fmtRatio(double(tNccl) / double(tOurs))});
    }
    table.print();
    std::printf("MSCCL++ does not pay the send/recv abstraction cost at "
                "all; the baseline's latency scales with it.\n");
    return 0;
}
