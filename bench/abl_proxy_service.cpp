/**
 * Deployment ablation: one CPU proxy thread per channel (the paper's
 * Section 4.2.1 description) vs one shared proxy service per rank
 * (the production model). Under all-pairs fan-out the shared thread
 * serialises request processing, trading CPU cores for latency.
 */
#include "bench_util.hpp"
#include "channel/channel_mesh.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"

#include <cstdio>
#include <memory>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;
namespace bench = mscclpp::bench;

namespace {

/** All-pairs put+signal fan-out, one block per peer. */
sim::Time
fanOut(bool shared, std::size_t bytes)
{
    gpu::Machine machine(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    auto boots = createInProcessBootstrap(machine.numGpus());
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
    for (int r = 0; r < machine.numGpus(); ++r) {
        comms.push_back(std::make_unique<Communicator>(boots[r], machine));
        bufs.push_back(machine.gpu(r).alloc(bytes * 8));
    }
    std::vector<Communicator*> cp;
    for (auto& c : comms) {
        cp.push_back(c.get());
    }
    MeshOptions opt;
    opt.transport = Transport::Port;
    opt.sharedProxyService = shared;
    auto mesh = ChannelMesh::build(cp, bufs, bufs, opt);

    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        int peer = (rank + 1 + ctx.blockIdx()) % 8;
        co_await mesh.port(rank, peer).putWithSignal(
            ctx, std::size_t(rank) * bytes, std::size_t(peer) * bytes,
            bytes);
        co_await mesh.port(rank, peer).wait(ctx);
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 7;
    sim::Time t = gpu::runOnAllRanks(machine, cfg, fn);
    mesh.shutdown();
    machine.run();
    return t;
}

} // namespace

int
main()
{
    std::printf("Deployment ablation: per-channel proxy threads vs one "
                "shared proxy service per rank (A100-40G, all-pairs "
                "put+signal fan-out to 7 peers)\n\n");
    bench::Table table({"size", "thread/channel(us)", "shared service(us)",
                        "shared slowdown"});
    for (std::size_t bytes :
         {std::size_t(1) << 10, std::size_t(64) << 10,
          std::size_t(1) << 20}) {
        sim::Time per = fanOut(false, bytes);
        sim::Time shared = fanOut(true, bytes);
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(per),
                      bench::fmtUs(shared),
                      bench::fmtRatio(double(shared) / double(per))});
    }
    table.print();
    std::printf("The shared service needs 1 CPU thread instead of 7 per "
                "rank; the cost is FIFO serialisation under fan-out.\n");
    return 0;
}
