/**
 * Tuner ablation: static size thresholds vs profile-guided selection
 * (src/tuner) on the Table 1 environments. For every size on the
 * profiler's grid the bench prints the algorithm each policy picks
 * and, where they disagree, the measured latency of both choices.
 * A second communicator then reloads the persisted profile cache in
 * "file" mode to demonstrate that tuning survives across runs without
 * re-profiling, and a short Auto loop exercises the launch-plan
 * cache. Counter assertions (tuner.profile_runs, tuner.cache_loads,
 * tuner.plan_cache.hit) make this usable as a smoke test:
 *
 *   abl_tuner [--smoke] [--cache <path>] [--metrics <path>]
 */
#include "bench_util.hpp"
#include "collective/api.hpp"
#include "collective/profile.hpp"
#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace bench = mscclpp::bench;

namespace {

/** Compare both selectors on one environment; count disagreements
 *  and how many of them the profiled choice actually wins. */
void
compareSelectors(CollectiveComm& comm, std::uint64_t maxBytes,
                 std::uint64_t step, int* divergent, int* wins)
{
    bench::Table ar({"AR bytes", "static", "profiled", "static(us)",
                     "profiled(us)", "gain"});
    for (std::uint64_t bytes = 1 << 10; bytes <= maxBytes;
         bytes *= step) {
        AllReduceAlgo s = comm.chooseAllReduceStatic(bytes);
        AllReduceAlgo p = comm.chooseAllReduce(bytes);
        if (s == p) {
            ar.addRow({bench::humanBytes(bytes), toString(s),
                       toString(p), "", "", "="});
            continue;
        }
        ++*divergent;
        sim::Time ts = comm.allReduce(bytes, gpu::DataType::F16,
                                      gpu::ReduceOp::Sum, s);
        sim::Time tp = comm.allReduce(bytes, gpu::DataType::F16,
                                      gpu::ReduceOp::Sum, p);
        if (tp < ts) {
            ++*wins;
        }
        char gain[32];
        std::snprintf(gain, sizeof(gain), "%+.1f%%",
                      100.0 * (double(ts) / double(tp) - 1.0));
        ar.addRow({bench::humanBytes(bytes), toString(s), toString(p),
                   bench::fmtUs(ts), bench::fmtUs(tp), gain});
    }
    ar.print(false);

    const std::uint64_t n = comm.size();
    bench::Table ag({"AG bytes/rank", "static", "profiled",
                     "static(us)", "profiled(us)", "gain"});
    for (std::uint64_t bytes = 1 << 10; bytes <= maxBytes / n;
         bytes *= step) {
        AllGatherAlgo s = comm.chooseAllGatherStatic(bytes);
        AllGatherAlgo p = comm.chooseAllGather(bytes);
        if (s == p) {
            ag.addRow({bench::humanBytes(bytes), toString(s),
                       toString(p), "", "", "="});
            continue;
        }
        ++*divergent;
        sim::Time ts = comm.allGather(bytes, s);
        sim::Time tp = comm.allGather(bytes, p);
        if (tp < ts) {
            ++*wins;
        }
        char gain[32];
        std::snprintf(gain, sizeof(gain), "%+.1f%%",
                      100.0 * (double(ts) / double(tp) - 1.0));
        ag.addRow({bench::humanBytes(bytes), toString(s), toString(p),
                   bench::fmtUs(ts), bench::fmtUs(tp), gain});
    }
    ag.print(false);
}

std::uint64_t
counterValue(gpu::Machine& m, const char* name)
{
    return m.obs().metrics().counter(name).value();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string metricsPath = bench::extractMetricsFlag(&argc, argv);
    bool smoke = false;
    std::string cachePath = "abl_tuner_cache.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--cache") == 0 &&
                   i + 1 < argc) {
            cachePath = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    std::remove(cachePath.c_str());

    std::printf("Tuner ablation: static thresholds vs profiled "
                "crossover tables\n\n");
    std::vector<std::string> envs =
        smoke ? std::vector<std::string>{"H100"}
              : std::vector<std::string>{"A100-40G", "A100-80G", "H100",
                                         "MI300x"};
    const std::uint64_t maxBytes = 64 << 20;
    const std::uint64_t step = smoke ? 4 : 2;
    int divergent = 0;
    int wins = 0;
    for (const std::string& name : envs) {
        fab::EnvConfig env = fab::makeEnv(name);
        gpu::Machine machine(env, 1, gpu::DataMode::Timed);
        bench::printEnvBanner(env, 1);
        CollectiveComm::Options opt;
        opt.maxBytes = maxBytes;
        opt.tunerMode = "profile";
        opt.tunerCacheFile = cachePath;
        CollectiveComm comm(machine, opt);
        compareSelectors(comm, maxBytes, step, &divergent, &wins);
        std::printf("profile_runs=%llu profile_points=%llu "
                    "cache_saves=%llu\n\n",
                    (unsigned long long)counterValue(
                        machine, "tuner.profile_runs"),
                    (unsigned long long)counterValue(
                        machine, "tuner.profile_points"),
                    (unsigned long long)counterValue(
                        machine, "tuner.cache_saves"));
        bench::processMetrics().mergeFrom(machine.obs().metrics());
    }

    // Second run: same environment, MSCCLPP_TUNER=file. The table
    // must come straight from the cache file written above — zero
    // profiling — and a repeated Auto shape must hit the plan cache.
    std::printf("Cache reuse (%s, mode=file):\n", envs[0].c_str());
    gpu::Machine machine(fab::makeEnv(envs[0]), 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    opt.tunerMode = "file";
    opt.tunerCacheFile = cachePath;
    CollectiveComm comm(machine, opt);
    for (int i = 0; i < 8; ++i) {
        comm.allReduce(1 << 20, gpu::DataType::F16, gpu::ReduceOp::Sum);
        comm.allGather(64 << 10);
    }
    std::uint64_t loads = counterValue(machine, "tuner.cache_loads");
    std::uint64_t runs = counterValue(machine, "tuner.profile_runs");
    std::printf("  cache_loads=%llu profile_runs=%llu "
                "plan_cache: %llu hits / %llu misses\n",
                (unsigned long long)loads, (unsigned long long)runs,
                (unsigned long long)comm.planCache().hits(),
                (unsigned long long)comm.planCache().misses());
    bench::processMetrics().mergeFrom(machine.obs().metrics());
    bench::writeProcessMetrics(metricsPath);

    std::printf("\n%d size(s) where the policies disagree; profiled "
                "faster at %d\n",
                divergent, wins);
    int rc = 0;
    // The counter legs are meaningless when the obs layer is
    // compiled out; the functional reuse check (an active tuner that
    // loaded a table) still applies.
    if (!comm.algoTuner().active() ||
        (obs::Tracer::kCompiledIn && (loads == 0 || runs != 0))) {
        std::fprintf(stderr, "FAIL: second run did not reuse the "
                             "profile cache\n");
        rc = 1;
    }
    if (comm.planCache().hits() == 0) {
        std::fprintf(stderr,
                     "FAIL: repeated Auto shapes never hit the "
                     "launch-plan cache\n");
        rc = 1;
    }
    if (wins == 0) {
        std::fprintf(stderr, "FAIL: profiled selection never beat the "
                             "static heuristic\n");
        rc = 1;
    }
    return rc;
}
