/**
 * Ablation (Section 4.4): rotating scratch buffers drop the trailing
 * cross-GPU barrier of all-pairs kernels at the cost of 2x scratch
 * memory — an optimisation self-synchronous NCCL primitives cannot
 * express (Section 2.2.2).
 */
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

namespace {

sim::Time
timedLoop(CollectiveComm& comm, std::size_t bytes, AllReduceAlgo algo,
          int iters)
{
    sim::Time total = 0;
    for (int i = 0; i < iters; ++i) {
        total += comm.allReduce(bytes, gpu::DataType::F16,
                                gpu::ReduceOp::Sum, algo);
    }
    return total / iters;
}

} // namespace

int
main()
{
    std::printf("Ablation: rotating scratch buffers vs full barriers "
                "(A100-40G, 1n8g, back-to-back AllReduce)\n\n");
    fab::EnvConfig env = fab::makeA100_40G();
    bench::printEnvBanner(env, 1);

    gpu::Machine m1(env, 1, gpu::DataMode::Timed);
    gpu::Machine m2(env, 1, gpu::DataMode::Timed);
    CollectiveComm::Options rotating;
    rotating.maxBytes = 8 << 20;
    rotating.rotatingScratch = true;
    CollectiveComm commRot(m1, rotating);
    CollectiveComm::Options barriers = rotating;
    barriers.rotatingScratch = false;
    CollectiveComm commBar(m2, barriers);

    bench::Table table({"size", "algo", "barriers(us)", "rotating(us)",
                        "saved"});
    struct Case
    {
        std::size_t bytes;
        AllReduceAlgo algo;
    };
    for (Case c : {Case{2 << 10, AllReduceAlgo::AllPairs1P},
                   Case{32 << 10, AllReduceAlgo::AllPairs2PLL},
                   Case{512 << 10, AllReduceAlgo::AllPairs2PLL},
                   Case{4 << 20, AllReduceAlgo::AllPairs2PHB}}) {
        sim::Time tBar = timedLoop(commBar, c.bytes, c.algo, 8);
        sim::Time tRot = timedLoop(commRot, c.bytes, c.algo, 8);
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.1f%%",
                      100.0 * (1.0 - double(tRot) / double(tBar)));
        table.addRow({bench::humanBytes(c.bytes), toString(c.algo),
                      bench::fmtUs(tBar), bench::fmtUs(tRot), pct});
    }
    table.print();
    return 0;
}
