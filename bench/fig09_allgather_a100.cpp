/**
 * Figure 9: AllGather on A100-40G — 1n8g, 2n16g and 4n32g, total
 * gathered sizes 1 KiB to 1 GiB, comparing NCCL, MSCCL and MSCCL++.
 */
#include "baseline/msccl.hpp"
#include "baseline/nccl.hpp"
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

namespace {

void
runConfig(int nodes)
{
    fab::EnvConfig env = fab::makeA100_40G();
    const int n = nodes * env.gpusPerNode;
    std::printf("=== AllGather, A100-40G, %dn%dg ===\n", nodes, n);
    bench::printEnvBanner(env, nodes);

    const std::size_t maxBytes = 1ull << 30;
    gpu::Machine machine(env, nodes, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm ours(machine, opt);
    baseline::NcclComm nccl(machine, maxBytes);
    baseline::MscclComm msccl(machine, maxBytes);

    bench::Table table({"size", "NCCL(us)", "MSCCL(us)", "MSCCL++(us)",
                        "algo", "NCCL(GB/s)", "MSCCL++(GB/s)", "vs NCCL",
                        "vs MSCCL"});
    for (std::size_t bytes : {std::size_t(8) << 10, std::size_t(64) << 10,
                              std::size_t(512) << 10, std::size_t(4) << 20,
                              std::size_t(32) << 20,
                              std::size_t(256) << 20,
                              std::size_t(1) << 30}) {
        std::size_t shard = bytes / n;
        if (shard < 512 || shard % 16 != 0) {
            continue;
        }
        sim::Time tNccl = nccl.allGather(shard);
        sim::Time tMsccl = msccl.allGather(shard);
        sim::Time tOurs = ours.allGather(shard);
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(tNccl),
                      bench::fmtUs(tMsccl), bench::fmtUs(tOurs),
                      toString(ours.chooseAllGather(shard)),
                      bench::fmtGBps(bytes, tNccl),
                      bench::fmtGBps(bytes, tOurs),
                      bench::fmtRatio(double(tNccl) / double(tOurs)),
                      bench::fmtRatio(double(tMsccl) / double(tOurs))});
    }
    table.print();
}

} // namespace

int
main()
{
    std::printf("Figure 9 reproduction: AllGather, A100-40G\n\n");
    runConfig(1);
    runConfig(2);
    runConfig(4);
    return 0;
}
