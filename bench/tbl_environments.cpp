/**
 * Table 1: the evaluation environments, printed from the actual
 * EnvConfig objects every benchmark runs against — including the
 * calibrated model constants behind DESIGN.md §3.
 */
#include "bench_util.hpp"
#include "fabric/env.hpp"

#include <cstdio>

namespace fab = mscclpp::fabric;
namespace sim = mscclpp::sim;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Table 1 reproduction: evaluation environments\n\n");
    bench::Table table({"Env. Name", "GPU (8x/node)", "Intra-node Link",
                        "Network"});
    for (const char* name : {"A100-40G", "A100-80G", "H100", "MI300x"}) {
        fab::EnvConfig c = fab::makeEnv(name);
        table.addRow({c.name, c.gpuName, c.intraName, c.netName});
    }
    table.print(false);

    std::printf("Calibrated model constants (per environment):\n\n");
    bench::Table cal({"env", "intra GB/s", "thread-copy eff",
                      "DMA eff", "multimem GB/s", "NIC GB/s",
                      "HBM GB/s", "launch(us)"});
    for (const char* name : {"A100-40G", "A100-80G", "H100", "MI300x"}) {
        fab::EnvConfig c = fab::makeEnv(name);
        char bw[16];
        char tc[16];
        char dma[16];
        char mm[16];
        char nic[16];
        char hbm[16];
        char launch[16];
        std::snprintf(bw, sizeof(bw), "%.0f", c.intraBwGBps);
        std::snprintf(tc, sizeof(tc), "%.2f", c.threadCopyPeakEff);
        std::snprintf(dma, sizeof(dma), "%.2f", c.dmaCopyEff);
        std::snprintf(mm, sizeof(mm), "%.0f",
                      c.hasMultimem ? c.multimemBwGBps : 0.0);
        std::snprintf(nic, sizeof(nic), "%.0f", c.nicBwGBps);
        std::snprintf(hbm, sizeof(hbm), "%.0f", c.hbmBwGBps);
        std::snprintf(launch, sizeof(launch), "%.1f",
                      sim::toUs(c.graphLaunch));
        cal.addRow({c.name, bw, tc, dma, mm, nic, hbm, launch});
    }
    cal.print();
    std::printf("Every constant can be overridden at runtime with "
                "MSCCLPP_* environment variables (env_overrides.cpp), "
                "the analogue of tuning baselines with NCCL_*.\n");
    return 0;
}
