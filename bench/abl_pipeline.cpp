/**
 * Ablation (Section 4.4, 2PH): pipelining the hierarchical AllReduce
 * over sub-chunks overlaps intra-node NVLink phases with cross-node
 * RDMA phases. Depth 1 is the unpipelined algorithm.
 */
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Ablation: 2PH pipeline depth (A100-40G, 2n16g "
                "AllReduce)\n\n");
    fab::EnvConfig env = fab::makeA100_40G();
    bench::printEnvBanner(env, 2);

    bench::Table table({"size", "depth=1(us)", "depth=2(us)",
                        "depth=4(us)", "depth=8(us)", "best vs depth=1"});
    for (std::size_t bytes :
         {std::size_t(16) << 20, std::size_t(128) << 20,
          std::size_t(512) << 20}) {
        std::vector<std::string> row{bench::humanBytes(bytes)};
        sim::Time base = 0;
        sim::Time best = 0;
        for (int depth : {1, 2, 4, 8}) {
            gpu::Machine machine(env, 2, gpu::DataMode::Timed);
            CollectiveComm::Options opt;
            opt.maxBytes = bytes;
            opt.pipelineChunks = depth;
            CollectiveComm comm(machine, opt);
            sim::Time t = comm.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum,
                                         AllReduceAlgo::Hier2PHB);
            if (depth == 1) {
                base = t;
                best = t;
            }
            best = std::min(best, t);
            row.push_back(bench::fmtUs(t));
        }
        row.push_back(bench::fmtRatio(double(base) / double(best)));
        table.addRow(row);
    }
    table.print();
    return 0;
}
