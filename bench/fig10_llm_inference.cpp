/**
 * Figure 10: Llama2-70b decode speedup with tensor parallelism 8 on a
 * single A100-80G node, MSCCL++ vs NCCL AllReduce inside a vLLM-style
 * serving loop. Also reports the (much smaller) prefill gains the
 * paper describes in Section 5.2.
 */
#include "bench_util.hpp"
#include "inference/llm.hpp"

#include <cstdio>

using namespace mscclpp::inference;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;
namespace bench = mscclpp::bench;

int
main()
{
    std::printf("Figure 10 reproduction: Llama2-70b decodes, TP=8\n\n");
    fab::EnvConfig env = fab::makeA100_80G();
    bench::printEnvBanner(env, 1);
    gpu::Machine machine(env, 1, gpu::DataMode::Timed);
    InferenceSim infer(machine, InferenceConfig{});

    bench::Table decode({"bsz", "seqlen", "AR bytes", "NCCL AR(us)",
                         "MSCCL++ AR(us)", "NCCL step(ms)",
                         "MSCCL++ step(ms)", "decode speedup"});
    for (int bsz : {1, 4, 8, 16, 32, 64, 128}) {
        for (int seqlen : {128, 512, 1024, 2048}) {
            auto nccl = infer.decodeStep(bsz, seqlen, CommBackend::Nccl);
            auto ours = infer.decodeStep(bsz, seqlen,
                                         CommBackend::Mscclpp);
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "%.1f%%",
                          100.0 * (double(nccl.total()) /
                                       double(ours.total()) -
                                   1.0));
            char ms1[32];
            char ms2[32];
            std::snprintf(ms1, sizeof(ms1), "%.2f",
                          sim::toMs(nccl.total()));
            std::snprintf(ms2, sizeof(ms2), "%.2f",
                          sim::toMs(ours.total()));
            decode.addRow(
                {std::to_string(bsz), std::to_string(seqlen),
                 bench::humanBytes(nccl.allReduceBytes),
                 bench::fmtUs(infer.allReduceTime(nccl.allReduceBytes,
                                                  CommBackend::Nccl)),
                 bench::fmtUs(infer.allReduceTime(nccl.allReduceBytes,
                                                  CommBackend::Mscclpp)),
                 ms1, ms2, speedup});
        }
    }
    decode.print();

    std::printf("Prefill (compute-dominated; Section 5.2 reports <=6%%)\n");
    bench::Table prefill({"bsz", "seqlen", "NCCL(ms)", "MSCCL++(ms)",
                          "prefill speedup"});
    for (int bsz : {1, 8, 32}) {
        for (int seqlen : {512, 2048}) {
            auto nccl = infer.prefill(bsz, seqlen, CommBackend::Nccl);
            auto ours = infer.prefill(bsz, seqlen, CommBackend::Mscclpp);
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "%.1f%%",
                          100.0 * (double(nccl.total()) /
                                       double(ours.total()) -
                                   1.0));
            char ms1[32];
            char ms2[32];
            std::snprintf(ms1, sizeof(ms1), "%.2f",
                          sim::toMs(nccl.total()));
            std::snprintf(ms2, sizeof(ms2), "%.2f",
                          sim::toMs(ours.total()));
            prefill.addRow({std::to_string(bsz), std::to_string(seqlen),
                            ms1, ms2, speedup});
        }
    }
    prefill.print();

    // The decode loop re-issues the same AllReduce shapes every step,
    // so almost every launch should come out of the communicator's
    // plan cache (tuner.plan_cache.* in obs metrics).
    const mscclpp::tuner::PlanCache& plans = infer.comm().planCache();
    std::printf("plan cache: %llu hits, %llu misses, %zu entries\n",
                (unsigned long long)plans.hits(),
                (unsigned long long)plans.misses(), plans.size());
    if (plans.hits() == 0) {
        std::fprintf(stderr,
                     "FAIL: repeated decode shapes never hit the "
                     "launch-plan cache\n");
        return 1;
    }
    return 0;
}
