/**
 * Figure 8: AllReduce on A100-40G — 1n8g, 2n16g and 4n32g, message
 * sizes 1 KiB to 1 GiB, comparing NCCL, MSCCL and MSCCL++. Small
 * sizes report latency; large sizes also report algorithm bandwidth
 * (message size / latency), matching the paper's split.
 */
#include "baseline/msccl.hpp"
#include "baseline/nccl.hpp"
#include "bench_util.hpp"
#include "collective/api.hpp"

#include <cstdio>

using namespace mscclpp;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace bench = mscclpp::bench;

namespace {

void
runConfig(int nodes)
{
    fab::EnvConfig env = fab::makeA100_40G();
    std::printf("=== AllReduce, A100-40G, %dn%dg ===\n", nodes,
                nodes * env.gpusPerNode);
    bench::printEnvBanner(env, nodes);

    const std::size_t maxBytes = 1ull << 30;
    gpu::Machine machine(env, nodes, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    CollectiveComm ours(machine, opt);
    baseline::NcclComm nccl(machine, maxBytes);
    baseline::MscclComm msccl(machine, maxBytes);

    bench::Table table({"size", "NCCL(us)", "MSCCL(us)", "MSCCL++(us)",
                        "algo", "NCCL(GB/s)", "MSCCL++(GB/s)",
                        "vs NCCL", "vs MSCCL"});
    for (std::size_t bytes : {std::size_t(1) << 10, std::size_t(8) << 10,
                              std::size_t(64) << 10,
                              std::size_t(512) << 10, std::size_t(4) << 20,
                              std::size_t(32) << 20,
                              std::size_t(256) << 20, std::size_t(1) << 30}) {
        sim::Time tNccl = nccl.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        sim::Time tMsccl = msccl.allReduce(bytes, gpu::DataType::F16,
                                           gpu::ReduceOp::Sum);
        sim::Time tOurs = ours.allReduce(bytes, gpu::DataType::F16,
                                         gpu::ReduceOp::Sum);
        table.addRow({bench::humanBytes(bytes), bench::fmtUs(tNccl),
                      bench::fmtUs(tMsccl), bench::fmtUs(tOurs),
                      toString(ours.chooseAllReduce(bytes)),
                      bench::fmtGBps(bytes, tNccl),
                      bench::fmtGBps(bytes, tOurs),
                      bench::fmtRatio(double(tNccl) / double(tOurs)),
                      bench::fmtRatio(double(tMsccl) / double(tOurs))});
    }
    table.print();
}

} // namespace

int
main()
{
    std::printf("Figure 8 reproduction: AllReduce, A100-40G\n\n");
    runConfig(1);
    runConfig(2);
    runConfig(4);
    return 0;
}
