#include "collective/nccl_compat.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using namespace mscclpp::compat;

namespace {

/** Fixture binding the shim to a fresh machine per test. */
class NcclCompat : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        machine_ = std::make_unique<gpu::Machine>(fab::makeA100_40G(), 1);
        mscclppNcclBindMachine(*machine_, 8 << 20);
        ncclUniqueId id;
        ASSERT_EQ(ncclGetUniqueId(&id), ncclSuccess);
        comms_.resize(machine_->numGpus());
        for (int r = 0; r < machine_->numGpus(); ++r) {
            ASSERT_EQ(ncclCommInitRank(&comms_[r], machine_->numGpus(),
                                       id, r),
                      ncclSuccess);
        }
    }

    void TearDown() override
    {
        for (auto c : comms_) {
            ncclCommDestroy(c);
        }
        mscclppNcclReset();
    }

    std::unique_ptr<gpu::Machine> machine_;
    std::vector<ncclComm_t> comms_;
};

} // namespace

TEST_F(NcclCompat, CommQueries)
{
    int count = 0;
    int rank = -1;
    EXPECT_EQ(ncclCommCount(comms_[3], &count), ncclSuccess);
    EXPECT_EQ(count, 8);
    EXPECT_EQ(ncclCommUserRank(comms_[3], &rank), ncclSuccess);
    EXPECT_EQ(rank, 3);
}

TEST_F(NcclCompat, AllReduceOutOfPlace)
{
    const std::size_t count = 4096;
    std::vector<std::vector<float>> send(8), recv(8);
    for (int r = 0; r < 8; ++r) {
        send[r].resize(count);
        recv[r].assign(count, -1.0f);
        for (std::size_t i = 0; i < count; ++i) {
            send[r][i] = gpu::patternValue(gpu::DataType::F32, r, i);
        }
    }
    // NCCL-style per-rank calls; the op runs when the last rank joins.
    for (int r = 0; r < 8; ++r) {
        ASSERT_EQ(ncclAllReduce(send[r].data(), recv[r].data(), count,
                                ncclFloat32, ncclSum, comms_[r], 0),
                  ncclSuccess);
    }
    for (int r = 0; r < 8; ++r) {
        ASSERT_EQ(mscclppNcclStreamSynchronize(comms_[r], 0),
                  ncclSuccess);
    }
    for (std::size_t i = 0; i < count; i += 129) {
        float expected = 0.0f;
        for (int r = 0; r < 8; ++r) {
            expected += send[r][i];
        }
        for (int r = 0; r < 8; ++r) {
            ASSERT_FLOAT_EQ(recv[r][i], expected) << "rank " << r;
        }
    }
    EXPECT_GT(mscclppNcclElapsed(comms_[0]), 0u);
}

TEST_F(NcclCompat, AllGatherAndReduceScatter)
{
    const std::size_t shard = 1024;
    std::vector<std::vector<float>> mine(8), all(8);
    for (int r = 0; r < 8; ++r) {
        mine[r].resize(shard);
        all[r].assign(shard * 8, 0.0f);
        for (std::size_t i = 0; i < shard; ++i) {
            mine[r][i] = r * 1000.0f + i;
        }
    }
    for (int r = 0; r < 8; ++r) {
        ASSERT_EQ(ncclAllGather(mine[r].data(), all[r].data(), shard,
                                ncclFloat32, comms_[r], 0),
                  ncclSuccess);
    }
    for (int r = 0; r < 8; ++r) {
        for (int src = 0; src < 8; ++src) {
            EXPECT_FLOAT_EQ(all[r][src * shard + 7], src * 1000.0f + 7);
        }
    }

    // ReduceScatter of the gathered buffers: every rank contributes
    // the same `all` content, so shard values are 8x the input.
    std::vector<std::vector<float>> shardOut(8);
    for (int r = 0; r < 8; ++r) {
        shardOut[r].assign(shard, 0.0f);
    }
    for (int r = 0; r < 8; ++r) {
        ASSERT_EQ(ncclReduceScatter(all[r].data(), shardOut[r].data(),
                                    shard, ncclFloat32, ncclSum,
                                    comms_[r], 0),
                  ncclSuccess);
    }
    for (int r = 0; r < 8; ++r) {
        EXPECT_FLOAT_EQ(shardOut[r][5], 8 * (r * 1000.0f + 5));
    }
}

TEST_F(NcclCompat, BroadcastFromRoot)
{
    const std::size_t count = 2048;
    std::vector<float> rootData(count);
    for (std::size_t i = 0; i < count; ++i) {
        rootData[i] = 0.5f * i;
    }
    std::vector<std::vector<float>> recv(8);
    for (int r = 0; r < 8; ++r) {
        recv[r].assign(count, -1.0f);
    }
    for (int r = 0; r < 8; ++r) {
        const void* send = r == 5 ? rootData.data() : nullptr;
        ASSERT_EQ(ncclBroadcast(send, recv[r].data(), count, ncclFloat32,
                                5, comms_[r], 0),
                  ncclSuccess);
    }
    for (int r = 0; r < 8; ++r) {
        EXPECT_FLOAT_EQ(recv[r][100], 50.0f) << "rank " << r;
    }
}

TEST_F(NcclCompat, BackToBackOpsRunInOrder)
{
    const std::size_t count = 1024;
    std::vector<std::vector<float>> buf(8);
    for (int r = 0; r < 8; ++r) {
        buf[r].assign(count, 1.0f);
    }
    for (int round = 0; round < 3; ++round) {
        for (int r = 0; r < 8; ++r) {
            ASSERT_EQ(ncclAllReduce(buf[r].data(), buf[r].data(), count,
                                    ncclFloat32, ncclSum, comms_[r], 0),
                      ncclSuccess);
        }
    }
    // 1 -> 8 -> 64 -> 512 after three in-place sum rounds.
    for (int r = 0; r < 8; ++r) {
        EXPECT_FLOAT_EQ(buf[r][77], 512.0f);
    }
}

TEST_F(NcclCompat, MismatchedCollectiveIsRejected)
{
    std::vector<float> a(256, 0.0f);
    ASSERT_EQ(ncclAllReduce(a.data(), a.data(), 256, ncclFloat32, ncclSum,
                            comms_[0], 0),
              ncclSuccess);
    // Rank 1 enqueues a different size for the same op slot.
    EXPECT_EQ(ncclAllReduce(a.data(), a.data(), 128, ncclFloat32, ncclSum,
                            comms_[1], 0),
              ncclInvalidUsage);
}

TEST_F(NcclCompat, ArgumentValidation)
{
    EXPECT_EQ(ncclGetUniqueId(nullptr), ncclInvalidArgument);
    ncclComm_t c = nullptr;
    ncclUniqueId id;
    ncclGetUniqueId(&id);
    EXPECT_EQ(ncclCommInitRank(&c, 4, id, 0), ncclInvalidUsage);
    EXPECT_EQ(ncclCommInitRank(&c, 8, id, 9), ncclInvalidArgument);
    std::vector<float> a(16);
    EXPECT_EQ(ncclAllReduce(a.data(), nullptr, 16, ncclFloat32, ncclSum,
                            comms_[0], 0),
              ncclInvalidArgument);
    EXPECT_EQ(ncclBroadcast(a.data(), a.data(), 16, ncclFloat32, 42,
                            comms_[0], 0),
              ncclInvalidArgument);
    EXPECT_STREQ(ncclGetErrorString(ncclSuccess), "no error");
}

TEST_F(NcclCompat, SendRecvPointToPoint)
{
    const std::size_t count = 2048;
    std::vector<float> src(count), dst(count, -1.0f);
    for (std::size_t i = 0; i < count; ++i) {
        src[i] = 3.0f * i;
    }
    ASSERT_EQ(ncclGroupStart(), ncclSuccess);
    ASSERT_EQ(ncclSend(src.data(), count, ncclFloat32, 5, comms_[2], 0),
              ncclSuccess);
    ASSERT_EQ(ncclRecv(dst.data(), count, ncclFloat32, 2, comms_[5], 0),
              ncclSuccess);
    ASSERT_EQ(ncclGroupEnd(), ncclSuccess);
    EXPECT_FLOAT_EQ(dst[100], 300.0f);
    EXPECT_GT(mscclppNcclElapsed(comms_[0]), 0u);
}

TEST_F(NcclCompat, RecvBeforeSendAlsoMatches)
{
    std::vector<float> src(64, 7.0f), dst(64, 0.0f);
    // Receiver posts first (NCCL allows either order inside a group).
    ASSERT_EQ(ncclRecv(dst.data(), 64, ncclFloat32, 1, comms_[0], 0),
              ncclSuccess);
    EXPECT_FLOAT_EQ(dst[0], 0.0f); // not matched yet
    ASSERT_EQ(ncclSend(src.data(), 64, ncclFloat32, 0, comms_[1], 0),
              ncclSuccess);
    EXPECT_FLOAT_EQ(dst[0], 7.0f);
}

TEST_F(NcclCompat, PipelineParallelRing)
{
    // Each stage forwards its activation to the next stage, like
    // pipeline-parallel training does with ncclSend/ncclRecv.
    const std::size_t count = 1024;
    std::vector<std::vector<float>> act(8);
    for (int r = 0; r < 8; ++r) {
        act[r].assign(count, float(r));
    }
    std::vector<std::vector<float>> in(8);
    for (int r = 0; r < 8; ++r) {
        in[r].assign(count, -1.0f);
    }
    for (int r = 0; r < 8; ++r) {
        ASSERT_EQ(ncclSend(act[r].data(), count, ncclFloat32,
                           (r + 1) % 8, comms_[r], 0),
                  ncclSuccess);
        ASSERT_EQ(ncclRecv(in[r].data(), count, ncclFloat32,
                           (r + 7) % 8, comms_[r], 0),
                  ncclSuccess);
    }
    for (int r = 0; r < 8; ++r) {
        EXPECT_FLOAT_EQ(in[r][5], float((r + 7) % 8)) << r;
    }
}

TEST_F(NcclCompat, SendRecvValidation)
{
    std::vector<float> a(16);
    EXPECT_EQ(ncclSend(a.data(), 16, ncclFloat32, 0, comms_[0], 0),
              ncclInvalidArgument); // self
    EXPECT_EQ(ncclSend(a.data(), 0, ncclFloat32, 1, comms_[0], 0),
              ncclInvalidArgument);
    EXPECT_EQ(ncclRecv(nullptr, 16, ncclFloat32, 1, comms_[0], 0),
              ncclInvalidArgument);
}
