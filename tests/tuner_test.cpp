/**
 * Tests for the profile-guided tuner (src/tuner) and its collective
 * integration: the static selector contract on every Table 1
 * environment, profile -> serialize -> reload round trips, graceful
 * fallback on broken cache files, and the launch-plan cache.
 */
#include "collective/api.hpp"
#include "collective/profile.hpp"
#include "core/errors.hpp"
#include "gpu/compute.hpp"
#include "obs/trace.hpp"
#include "tuner/json.hpp"
#include "tuner/plan_cache.hpp"
#include "tuner/profiler.hpp"
#include "tuner/table.hpp"
#include "tuner/tuner.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace sim = mscclpp::sim;
namespace tuner = mscclpp::tuner;
using mscclpp::AllGatherAlgo;
using mscclpp::AllReduceAlgo;
using mscclpp::CollectiveComm;

namespace {

struct TunerSetup
{
    TunerSetup(const std::string& env, int nodes,
               CollectiveComm::Options opt = {},
               gpu::DataMode mode = gpu::DataMode::Functional)
        : machine(fab::makeEnv(env), nodes, mode)
    {
        comm = std::make_unique<CollectiveComm>(machine, opt);
    }

    gpu::Machine machine;
    std::unique_ptr<CollectiveComm> comm;
};

void
writeFile(const std::string& path, const std::string& text)
{
    std::ofstream f(path);
    f << text;
}

std::string
tmpPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

class StaticSelector : public ::testing::TestWithParam<const char*>
{
};

} // namespace

// The documented static thresholds, pinned on every Table 1
// environment at the 16 KiB / 1 MiB / 512 MiB edges. MSCCLPP_TUNER=
// static (the default) must keep these bit-for-bit.
TEST_P(StaticSelector, AllReduceEdges)
{
    TunerSetup s(GetParam(), 1);
    const bool multimem = s.machine.config().hasMultimem;

    EXPECT_EQ(s.comm->chooseAllReduceStatic(16 << 10),
              AllReduceAlgo::AllPairs1P);
    EXPECT_EQ(s.comm->chooseAllReduceStatic((16 << 10) + 128),
              AllReduceAlgo::AllPairs2PLL);
    EXPECT_EQ(s.comm->chooseAllReduceStatic((1 << 20) - 128),
              AllReduceAlgo::AllPairs2PLL);
    EXPECT_EQ(s.comm->chooseAllReduceStatic(1 << 20),
              multimem ? AllReduceAlgo::Switch2P
                       : AllReduceAlgo::AllPairs2PHB);
    EXPECT_EQ(s.comm->chooseAllReduceStatic(std::size_t(512) << 20),
              multimem ? AllReduceAlgo::Switch2P
                       : AllReduceAlgo::AllPairs2PPort);
    // The default mode is static and Auto must agree with it.
    EXPECT_EQ(s.comm->algoTuner().mode(), tuner::TunerMode::Static);
    EXPECT_FALSE(s.comm->algoTuner().active());
    EXPECT_EQ(s.comm->chooseAllReduce(1 << 20),
              s.comm->chooseAllReduceStatic(1 << 20));
}

TEST_P(StaticSelector, AllGatherEdges)
{
    TunerSetup s(GetParam(), 1);
    EXPECT_EQ(s.comm->chooseAllGatherStatic(32 << 10),
              AllGatherAlgo::AllPairsLL);
    EXPECT_EQ(s.comm->chooseAllGatherStatic(1 << 20),
              AllGatherAlgo::AllPairsHB);
    // 64 MiB/rank x 8 ranks = 512 MiB total: the DMA threshold.
    EXPECT_EQ(s.comm->chooseAllGatherStatic(std::size_t(64) << 20),
              AllGatherAlgo::AllPairsPort);
    EXPECT_EQ(s.comm->chooseAllGather(1 << 20),
              s.comm->chooseAllGatherStatic(1 << 20));
}

TEST_P(StaticSelector, MultiNodeEdges)
{
    TunerSetup s(GetParam(), 2);
    EXPECT_EQ(s.comm->chooseAllReduceStatic(1 << 20),
              AllReduceAlgo::Hier2PLL);
    EXPECT_EQ(s.comm->chooseAllReduceStatic((1 << 20) + 128),
              AllReduceAlgo::Hier2PHB);
    EXPECT_EQ(s.comm->chooseAllGatherStatic(16 << 10),
              AllGatherAlgo::Hier);
}

INSTANTIATE_TEST_SUITE_P(Table1Envs, StaticSelector,
                         ::testing::Values("A100-40G", "A100-80G",
                                           "H100", "MI300x"),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c))) {
                                     c = '_';
                                 }
                             }
                             return n;
                         });

TEST(LatencyCurve, InterpolatesInLogSpaceAndRefusesOutside)
{
    tuner::LatencyCurve c;
    c.add(1 << 10, 1000.0);
    c.add(1 << 14, 3000.0);
    EXPECT_TRUE(c.covers(1 << 12));
    EXPECT_FALSE(c.covers(1 << 9));
    EXPECT_FALSE(c.covers(1 << 15));
    ASSERT_TRUE(c.lookupNs(1 << 10).has_value());
    EXPECT_DOUBLE_EQ(*c.lookupNs(1 << 10), 1000.0);
    EXPECT_DOUBLE_EQ(*c.lookupNs(1 << 14), 3000.0);
    // 4K is the log-space midpoint of 1K..16K, so log-log
    // interpolation lands on the geometric mean of the latencies.
    ASSERT_TRUE(c.lookupNs(1 << 12).has_value());
    EXPECT_NEAR(*c.lookupNs(1 << 12), std::sqrt(1000.0 * 3000.0), 1e-6);
    EXPECT_FALSE(c.lookupNs(1 << 15).has_value());
}

TEST(TuningTable, BestPicksTheCheapestCoveringCurve)
{
    tuner::LatencyCurve fastSmall;
    fastSmall.add(1 << 10, 100.0);
    fastSmall.add(1 << 20, 9000.0);
    tuner::LatencyCurve fastLarge;
    fastLarge.add(1 << 10, 500.0);
    fastLarge.add(1 << 20, 2000.0);
    tuner::TuningTable t;
    t.add(tuner::Collective::AllReduce, "small", fastSmall);
    t.add(tuner::Collective::AllReduce, "large", fastLarge);
    EXPECT_EQ(t.best(tuner::Collective::AllReduce, 1 << 10), "small");
    EXPECT_EQ(t.best(tuner::Collective::AllReduce, 1 << 20), "large");
    EXPECT_FALSE(t.best(tuner::Collective::AllReduce, 1 << 22));
    EXPECT_FALSE(t.best(tuner::Collective::AllGather, 1 << 12));
}

// Profile a real (simulated) environment over a small grid, push the
// table through the JSON cache format and back, and require identical
// decisions from the reloaded table at every probe size.
TEST(TunerRoundTrip, SerializedTableMakesIdenticalDecisions)
{
    tuner::ProfileOptions opt;
    opt.minBytes = 1 << 10;
    opt.maxBytes = 1 << 20;
    tuner::TuningTable table =
        mscclpp::profileEnvironment(fab::makeEnv("A100-40G"), 1, opt);
    ASSERT_FALSE(table.empty());

    tuner::TunerCache cache;
    const std::string key = tuner::TunerCache::envKey("A100-40G", 8, 1);
    cache.put(key, table);
    std::optional<tuner::TunerCache> reloaded =
        tuner::TunerCache::fromJson(cache.toJson());
    ASSERT_TRUE(reloaded.has_value());
    const tuner::TuningTable* back = reloaded->find(key);
    ASSERT_NE(back, nullptr);
    for (std::uint64_t bytes = 1 << 10; bytes <= (1 << 20);
         bytes = bytes * 3 / 2) {
        EXPECT_EQ(table.best(tuner::Collective::AllReduce, bytes),
                  back->best(tuner::Collective::AllReduce, bytes))
            << "allreduce @" << bytes;
        EXPECT_EQ(table.best(tuner::Collective::AllGather, bytes / 8),
                  back->best(tuner::Collective::AllGather, bytes / 8))
            << "allgather @" << bytes / 8;
    }
}

TEST(TunerCacheFile, RejectsCorruptAndMismatchedVersions)
{
    const std::string path = tmpPath("tuner_corrupt.json");
    writeFile(path, "this is not json {{{");
    EXPECT_FALSE(tuner::TunerCache::loadFile(path).has_value());
    writeFile(path, "{\"version\":99,\"tables\":{}}");
    EXPECT_FALSE(tuner::TunerCache::loadFile(path).has_value());
    writeFile(path, "{\"tables\":{}}");
    EXPECT_FALSE(tuner::TunerCache::loadFile(path).has_value());
    EXPECT_FALSE(
        tuner::TunerCache::loadFile(tmpPath("tuner_missing.json"))
            .has_value());
    std::remove(path.c_str());
}

// A communicator in file mode pointed at garbage must come up on the
// static heuristic without crashing — never fatal (Section 4.4's
// "graceful fallback" requirement).
TEST(TunerFallback, FileModeWithBrokenCacheFallsBackToStatic)
{
    const std::string path = tmpPath("tuner_broken_cache.json");
    writeFile(path, "{\"version\":99,\"tables\":{}}");
    CollectiveComm::Options opt;
    opt.tunerMode = "file";
    opt.tunerCacheFile = path;
    TunerSetup s("A100-40G", 1, opt);
    EXPECT_EQ(s.comm->algoTuner().mode(), tuner::TunerMode::File);
    EXPECT_FALSE(s.comm->algoTuner().active());
    EXPECT_EQ(s.comm->chooseAllReduce(256 << 10),
              s.comm->chooseAllReduceStatic(256 << 10));
    if (mscclpp::obs::Tracer::kCompiledIn) {
        EXPECT_GE(s.machine.obs()
                      .metrics()
                      .counter("tuner.cache_errors")
                      .value(),
                  1u);
    }
    std::remove(path.c_str());
}

TEST(TunerFallback, UnknownModeThrows)
{
    CollectiveComm::Options opt;
    opt.tunerMode = "banana";
    EXPECT_THROW(TunerSetup("A100-40G", 1, opt), mscclpp::Error);
    EXPECT_FALSE(tuner::parseTunerMode("banana").has_value());
    EXPECT_EQ(tuner::parseTunerMode("profile"),
              tuner::TunerMode::Profile);
}

// End to end: profile once (persisting the cache), then a second
// communicator must load the file instead of re-profiling and make
// the same decisions.
TEST(TunerProfileMode, ProfilesOnceThenLoadsFromCache)
{
    const std::string path = tmpPath("tuner_e2e_cache.json");
    std::remove(path.c_str());

    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    opt.tunerMode = "profile";
    opt.tunerCacheFile = path;
    TunerSetup first("A100-40G", 1, opt, gpu::DataMode::Timed);
    ASSERT_TRUE(first.comm->algoTuner().active());
    auto& m1 = first.machine.obs().metrics();
    if (mscclpp::obs::Tracer::kCompiledIn) {
        EXPECT_EQ(m1.counter("tuner.profile_runs").value(), 1u);
        EXPECT_EQ(m1.counter("tuner.cache_saves").value(), 1u);
        EXPECT_GE(m1.counter("tuner.profile_points").value(), 1u);
    }

    TunerSetup second("A100-40G", 1, opt, gpu::DataMode::Timed);
    ASSERT_TRUE(second.comm->algoTuner().active());
    auto& m2 = second.machine.obs().metrics();
    if (mscclpp::obs::Tracer::kCompiledIn) {
        EXPECT_EQ(m2.counter("tuner.profile_runs").value(), 0u);
        EXPECT_EQ(m2.counter("tuner.cache_loads").value(), 1u);
    }
    for (std::uint64_t bytes : {1u << 12, 1u << 16, 1u << 20}) {
        EXPECT_EQ(first.comm->chooseAllReduce(bytes),
                  second.comm->chooseAllReduce(bytes))
            << "bytes=" << bytes;
    }
    // Decisions route through the profiled table, visibly in metrics.
    if (mscclpp::obs::Tracer::kCompiledIn) {
        EXPECT_GE(m2.counter("tuner.decision_profiled").value(), 1u);
    }
    std::remove(path.c_str());
}

// The profiling hook must not recurse (a profiling communicator runs
// in forced-static mode) and the tuned Auto path must still produce
// numerically correct results.
TEST(TunerProfileMode, TunedAllReduceStaysCorrect)
{
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    opt.tunerMode = "profile";
    TunerSetup s("A100-40G", 1, opt);
    ASSERT_TRUE(s.comm->algoTuner().active());
    const std::size_t count = 4096;
    for (int r = 0; r < s.machine.numGpus(); ++r) {
        gpu::fillPattern(s.comm->dataBuffer(r), gpu::DataType::F32, r,
                         7);
    }
    s.comm->allReduce(count * 4, gpu::DataType::F32,
                      gpu::ReduceOp::Sum);
    const int n = s.machine.numGpus();
    for (std::size_t i = 0; i < count; i += 97) {
        float expected = 0.0f;
        for (int r = 0; r < n; ++r) {
            expected += gpu::patternValue(gpu::DataType::F32, r, i, 7);
        }
        for (int r = 0; r < n; ++r) {
            ASSERT_FLOAT_EQ(
                gpu::readElement(s.comm->dataBuffer(r),
                                 gpu::DataType::F32, i),
                expected)
                << "rank " << r << " elem " << i;
        }
    }
}

TEST(PlanCache, LruEvictionAndCounters)
{
    mscclpp::obs::MetricsRegistry reg;
    tuner::PlanCache cache(2, &reg, "t.pc");
    tuner::PlanKey a{0, 100};
    tuner::PlanKey b{0, 200};
    tuner::PlanKey c{0, 300};
    auto plan = [](int id, const char* name) {
        tuner::Plan p;
        p.algoId = id;
        p.algoName = name;
        return p;
    };
    EXPECT_EQ(cache.find(a), nullptr);
    cache.insert(a, plan(1, "A"));
    cache.insert(b, plan(2, "B"));
    ASSERT_NE(cache.find(a), nullptr); // refreshes a; b becomes LRU
    cache.insert(c, plan(3, "C"));
    EXPECT_EQ(cache.find(b), nullptr); // evicted
    ASSERT_NE(cache.find(a), nullptr);
    ASSERT_NE(cache.find(c), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    if (mscclpp::obs::Tracer::kCompiledIn) {
        EXPECT_EQ(reg.counter("t.pc.hit").value(), 3u);
        EXPECT_EQ(reg.counter("t.pc.miss").value(), 2u);
        EXPECT_EQ(reg.counter("t.pc.evict").value(), 1u);
    }
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, AutoCollectivesMemoizeTheirPlans)
{
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    TunerSetup s("A100-40G", 1, opt, gpu::DataMode::Timed);
    sim::Time t1 = 0;
    sim::Time t2 = 0;
    for (int i = 0; i < 4; ++i) {
        sim::Time t =
            s.comm->allReduce(256 << 10, gpu::DataType::F16,
                              gpu::ReduceOp::Sum);
        if (i == 0) {
            t1 = t;
        } else {
            t2 = t;
            // Plan-cache hits must not change the simulated timing.
            EXPECT_EQ(t1, t2);
        }
    }
    EXPECT_EQ(s.comm->planCache().misses(), 1u);
    EXPECT_EQ(s.comm->planCache().hits(), 3u);
    auto& m = s.machine.obs().metrics();
    if (mscclpp::obs::Tracer::kCompiledIn) {
        EXPECT_EQ(m.counter("tuner.plan_cache.hit").value(), 3u);
        EXPECT_EQ(m.counter("tuner.plan_cache.miss").value(), 1u);
    }
}

TEST(TunerJson, ParsesAndRejects)
{
    auto v = tuner::json::parse(
        "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\\"y\"}, "
        "\"t\": true, \"n\": null}");
    ASSERT_TRUE(v.has_value());
    const tuner::json::Value* a = v->get("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
    const tuner::json::Value* b = v->get("b");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(b->get("c"), nullptr);
    EXPECT_EQ(b->get("c")->string, "x\"y");
    EXPECT_FALSE(tuner::json::parse("{\"a\":}").has_value());
    EXPECT_FALSE(tuner::json::parse("{} trailing").has_value());
    EXPECT_FALSE(tuner::json::parse("").has_value());
}
