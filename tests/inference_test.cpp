#include "core/errors.hpp"
#include "inference/llm.hpp"

#include <gtest/gtest.h>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using namespace mscclpp::inference;

namespace {

InferenceSim
makeSim(gpu::Machine& m)
{
    return InferenceSim(m, InferenceConfig{});
}

} // namespace

TEST(Llama70b, ParameterCountIsRight)
{
    TransformerConfig m = makeLlama2_70b();
    // ~69B parameters (the "70b" label).
    EXPECT_GT(m.totalParams(), 66'000'000'000ull);
    EXPECT_LT(m.totalParams(), 72'000'000'000ull);
}

TEST(InferenceSim, RequiresMatchingTensorParallelism)
{
    gpu::Machine m(fab::makeA100_80G(), 2, gpu::DataMode::Timed);
    InferenceConfig cfg;
    cfg.tensorParallel = 8; // machine has 16 GPUs
    EXPECT_THROW(InferenceSim(m, cfg), mscclpp::Error);
}

TEST(InferenceSim, DecodeIsMemoryBandwidthBound)
{
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    auto b = sim.decodeStep(1, 128, CommBackend::None);
    // Weights/TP at HBM speed set the floor: 70e9*2/8 bytes at
    // ~2 TB/s is ~8.6 ms; with efficiency and overheads it is more.
    EXPECT_GT(b.compute, sim::msec(8));
    EXPECT_LT(b.compute, sim::msec(25));
    EXPECT_EQ(b.comm, 0u);

    // Larger batches share the weight read: compute grows slowly.
    auto b32 = sim.decodeStep(32, 128, CommBackend::None);
    EXPECT_LT(b32.compute, b.compute * 2);
}

TEST(InferenceSim, PrefillIsComputeBound)
{
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    auto d = sim.decodeStep(8, 512, CommBackend::None);
    auto p = sim.prefill(8, 512, CommBackend::None);
    // 512x more tokens -> much more compute than a decode step.
    EXPECT_GT(p.compute, d.compute * 20);
}

TEST(InferenceSim, CommScalesWithAllReduceCount)
{
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    auto b = sim.decodeStep(4, 256, CommBackend::Nccl);
    EXPECT_EQ(b.allReduceCalls, 160); // 2 per layer x 80 layers
    EXPECT_EQ(b.allReduceBytes, std::size_t(4) * 8192 * 2);
    EXPECT_EQ(b.comm,
              sim.allReduceTime(b.allReduceBytes, CommBackend::Nccl) *
                  160);
}

TEST(InferenceSim, MscclppSpeedsUpDecodesLikeThePaper)
{
    // Figure 10: 4%-15% decode speedup over NCCL across batch
    // configurations on A100-80G, TP=8.
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    double minGain = 1e9;
    double maxGain = 0;
    for (int bsz : {1, 8, 32, 128}) {
        for (int seqlen : {128, 1024}) {
            auto nccl = sim.decodeStep(bsz, seqlen, CommBackend::Nccl);
            auto ours = sim.decodeStep(bsz, seqlen, CommBackend::Mscclpp);
            EXPECT_EQ(nccl.compute, ours.compute);
            double speedup =
                double(nccl.total()) / double(ours.total()) - 1.0;
            minGain = std::min(minGain, speedup);
            maxGain = std::max(maxGain, speedup);
        }
    }
    EXPECT_GT(minGain, 0.01);
    EXPECT_GT(maxGain, 0.06);
    EXPECT_LT(maxGain, 0.30);
}

TEST(InferenceSim, PrefillGainIsMuchSmaller)
{
    // Section 5.2: prefill is compute-dominated; speedup <= ~6%.
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    auto nccl = sim.prefill(8, 1024, CommBackend::Nccl);
    auto ours = sim.prefill(8, 1024, CommBackend::Mscclpp);
    double speedup = double(nccl.total()) / double(ours.total()) - 1.0;
    EXPECT_GE(speedup, 0.0);
    EXPECT_LT(speedup, 0.08);
}

TEST(InferenceSim, MscclBackendSitsBetween)
{
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    sim::Time nccl = sim.allReduceTime(64 << 10, CommBackend::Nccl);
    sim::Time msccl = sim.allReduceTime(64 << 10, CommBackend::Msccl);
    sim::Time ours = sim.allReduceTime(64 << 10, CommBackend::Mscclpp);
    EXPECT_LT(ours, msccl);
    EXPECT_LT(msccl, nccl);
}

TEST(InferenceSim, MixedDecodeMatchesUniformDecode)
{
    gpu::Machine m(fab::makeA100_80G(), 1, gpu::DataMode::Timed);
    InferenceSim sim = makeSim(m);
    auto uniform = sim.decodeStep(4, 512, CommBackend::Mscclpp);
    auto mixed = sim.decodeStepMixed({512, 512, 512, 512},
                                     CommBackend::Mscclpp);
    EXPECT_EQ(uniform.compute, mixed.compute);
    EXPECT_EQ(uniform.comm, mixed.comm);
    EXPECT_EQ(uniform.allReduceBytes, mixed.allReduceBytes);

    // A continuous batch only pays for the KV it actually reads: the
    // same total context split unevenly costs the same, less context
    // costs less.
    auto skew = sim.decodeStepMixed({1024, 512, 256, 256},
                                    CommBackend::Mscclpp);
    EXPECT_EQ(skew.compute, mixed.compute);
    auto small = sim.decodeStepMixed({64, 64, 64, 64},
                                     CommBackend::Mscclpp);
    EXPECT_LT(small.compute, mixed.compute);

    EXPECT_THROW(sim.decodeStepMixed({}, CommBackend::Mscclpp),
                 mscclpp::Error);
    EXPECT_THROW(sim.decodeStepMixed({64, -1}, CommBackend::Mscclpp),
                 mscclpp::Error);
}

TEST(InferenceSim, KvBytesPerTokenMatchesShape)
{
    TransformerConfig m = makeLlama2_70b();
    // 2 (K+V) * 80 layers * 1024 kv-hidden * 2 bytes / 8 GPUs.
    EXPECT_EQ(m.kvBytesPerToken(8), 40960u);
    EXPECT_EQ(m.kvBytesPerToken(1), 8u * 40960u);
}

// Step-window reconciliation (the contract bench_report and the
// serving simulator rely on): for every backend and every entry
// point, the step profiler's buckets must sum exactly to the measured
// latency it reports — the analytic roofline compute included.
TEST(InferenceSim, BreakdownReconcilesWithStepWindow)
{
    if (!mscclpp::obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "observability compiled out (MSCCLPP_NO_OBS)";
    }
    fab::EnvConfig env = fab::makeA100_80G();
    env.traceEnabled = true;
    const CommBackend backends[] = {
        CommBackend::Mscclpp, CommBackend::Nccl, CommBackend::Msccl};
    for (CommBackend backend : backends) {
        gpu::Machine m(env, 1, gpu::DataMode::Timed);
        m.obs().setDumpOnDestroy(false);
        InferenceSim sim = makeSim(m);
        mscclpp::obs::StepWindow& win = m.obs().window();

        auto check = [&](const InferenceSim::Breakdown& b,
                         const char* what) {
            const mscclpp::obs::StepAttribution* a = win.lastStep();
            ASSERT_NE(a, nullptr) << what;
            EXPECT_EQ(a->measured, b.total()) << what;
            EXPECT_EQ(a->total(), a->measured)
                << what << " buckets must sum to measured";
            EXPECT_GE(a->bucket(mscclpp::obs::StepCategory::Compute),
                      b.compute)
                << what;
        };
        check(sim.decodeStep(8, 256, backend), "decodeStep");
        check(sim.decodeStepMixed({64, 128, 512}, backend),
              "decodeStepMixed");
        check(sim.prefill(2, 384, backend), "prefill");
    }
}
