#include "fabric/env.hpp"
#include "fabric/link.hpp"
#include "fabric/topology.hpp"
#include "sim/task.hpp"

#include <gtest/gtest.h>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;

namespace {

fab::LinkParams
simpleParams(double gbps, sim::Time lat, sim::Time perMsg = 0)
{
    return fab::LinkParams{gbps, lat, perMsg};
}

} // namespace

TEST(Link, SingleTransferTiming)
{
    sim::Scheduler s;
    fab::Link link(s, fab::LinkType::NvLink, simpleParams(100.0, sim::ns(500)),
                   "l");
    auto [start, arrival] = link.reserve(1'000'000); // 1 MB at 100 GB/s
    EXPECT_EQ(start, 0u);
    EXPECT_EQ(arrival, sim::us(10) + sim::ns(500));
    EXPECT_EQ(link.bytesCarried(), 1'000'000u);
}

TEST(Link, BackToBackTransfersSerialize)
{
    sim::Scheduler s;
    fab::Link link(s, fab::LinkType::NvLink, simpleParams(100.0, sim::ns(500)),
                   "l");
    auto [s1, a1] = link.reserve(1'000'000);
    auto [s2, a2] = link.reserve(1'000'000);
    EXPECT_EQ(s1, 0u);
    EXPECT_EQ(s2, sim::us(10)); // waits for the first serialisation window
    EXPECT_EQ(a2, sim::us(20) + sim::ns(500));
    (void)a1;
}

TEST(Link, BandwidthCapSlowsTransfer)
{
    sim::Scheduler s;
    fab::Link link(s, fab::LinkType::NvLink, simpleParams(100.0, 0), "l");
    auto [st, arrival] = link.reserve(1'000'000, 50.0);
    EXPECT_EQ(arrival, sim::us(20));
    // Cap above line rate has no effect.
    auto [st2, arrival2] = link.reserve(1'000'000, 500.0);
    EXPECT_EQ(arrival2 - st2, sim::us(10));
    (void)st;
}

TEST(Link, PerMessageOverheadCharged)
{
    sim::Scheduler s;
    fab::Link link(s, fab::LinkType::InfiniBand,
                   simpleParams(100.0, sim::ns(500), sim::ns(100)), "l");
    auto [st, arrival] = link.reserve(0);
    EXPECT_EQ(arrival, sim::ns(600));
    (void)st;
}

TEST(Path, CutThroughAddsLatenciesOnce)
{
    sim::Scheduler s;
    fab::Link a(s, fab::LinkType::NvLink, simpleParams(100.0, sim::ns(300)),
                "a");
    fab::Link b(s, fab::LinkType::NvLink, simpleParams(200.0, sim::ns(200)),
                "b");
    fab::Path p({&a, &b});
    EXPECT_EQ(p.latency(), sim::ns(500));
    EXPECT_DOUBLE_EQ(p.bottleneckGBps(), 100.0);
    auto [st, arrival] = p.reserve(1'000'000);
    // Bottleneck 100 GB/s -> 10us window, plus both hop latencies.
    EXPECT_EQ(arrival, sim::us(10) + sim::ns(500));
    // Both hops are busy for the window.
    EXPECT_EQ(a.nextFree(), sim::us(10));
    EXPECT_EQ(b.nextFree(), sim::us(10));
    (void)st;
}

TEST(Path, SharedHopCreatesContention)
{
    sim::Scheduler s;
    fab::Link tx(s, fab::LinkType::NvLink, simpleParams(100.0, 0), "tx");
    fab::Link rx1(s, fab::LinkType::NvLink, simpleParams(100.0, 0), "rx1");
    fab::Link rx2(s, fab::LinkType::NvLink, simpleParams(100.0, 0), "rx2");
    fab::Path p1({&tx, &rx1});
    fab::Path p2({&tx, &rx2});
    auto [s1, a1] = p1.reserve(1'000'000);
    auto [s2, a2] = p2.reserve(1'000'000);
    EXPECT_EQ(s1, 0u);
    EXPECT_EQ(s2, sim::us(10)); // second transfer waits on the shared tx
    EXPECT_EQ(a2, sim::us(20));
    (void)a1;
}

namespace {

sim::Task<>
doTransfer(fab::Link& link, std::uint64_t bytes, sim::Time* when)
{
    co_await link.transfer(bytes);
    *when = link.scheduler().now();
}

} // namespace

TEST(Link, TransferAwaitableCompletesAtArrival)
{
    sim::Scheduler s;
    fab::Link link(s, fab::LinkType::NvLink, simpleParams(100.0, sim::ns(500)),
                   "l");
    sim::Time when = 0;
    sim::detach(s, doTransfer(link, 1'000'000, &when));
    s.run();
    EXPECT_EQ(when, sim::us(10) + sim::ns(500));
}

TEST(Env, TableOneEnvironmentsExist)
{
    for (const char* name : {"A100-40G", "A100-80G", "H100", "MI300x"}) {
        fab::EnvConfig c = fab::makeEnv(name);
        EXPECT_EQ(c.name, name);
        EXPECT_EQ(c.gpusPerNode, 8);
        EXPECT_GT(c.intraBwGBps, 0.0);
        EXPECT_GT(c.nicBwGBps, 0.0);
        EXPECT_GT(c.hbmBwGBps, 0.0);
    }
    EXPECT_THROW(fab::makeEnv("TPUv4"), std::invalid_argument);
}

TEST(Env, AnchorsMatchPaper)
{
    fab::EnvConfig a100 = fab::makeA100_80G();
    // Section 2.2.2: thread-copy 227 GB/s vs DMA-copy 263 GB/s.
    EXPECT_NEAR(a100.intraBwGBps * a100.threadCopyPeakEff, 227.0, 1.0);
    EXPECT_NEAR(a100.intraBwGBps * a100.dmaCopyEff, 263.0, 1.0);

    fab::EnvConfig h100 = fab::makeH100();
    EXPECT_TRUE(h100.hasMultimem);
    fab::EnvConfig mi = fab::makeMI300x();
    EXPECT_EQ(mi.intra, fab::IntraTopology::Mesh);
    EXPECT_FALSE(mi.ll128Supported);
}

TEST(Topology, RankMath)
{
    sim::Scheduler s;
    fab::Fabric f(s, fab::makeA100_40G(), 4);
    EXPECT_EQ(f.numGpus(), 32);
    EXPECT_EQ(f.nodeOf(0), 0);
    EXPECT_EQ(f.nodeOf(8), 1);
    EXPECT_EQ(f.localRankOf(13), 5);
    EXPECT_TRUE(f.sameNode(8, 15));
    EXPECT_FALSE(f.sameNode(7, 8));
}

TEST(Topology, SwitchPathsUsePorts)
{
    sim::Scheduler s;
    fab::Fabric f(s, fab::makeA100_40G(), 1);
    fab::Path p = f.p2pPath(0, 3);
    ASSERT_EQ(p.links().size(), 2u);
    EXPECT_EQ(p.links()[0], &f.gpuTx(0));
    EXPECT_EQ(p.links()[1], &f.gpuRx(3));
}

TEST(Topology, MeshPathsUseDedicatedLinks)
{
    sim::Scheduler s;
    fab::Fabric f(s, fab::makeMI300x(), 1);
    fab::Path p01 = f.p2pPath(0, 1);
    fab::Path p02 = f.p2pPath(0, 2);
    ASSERT_EQ(p01.links().size(), 1u);
    ASSERT_EQ(p02.links().size(), 1u);
    // Distinct peer pairs use independent links (no shared port).
    EXPECT_NE(p01.links()[0], p02.links()[0]);
    // Directionality: 0->1 and 1->0 are different links.
    EXPECT_NE(p01.links()[0], f.p2pPath(1, 0).links()[0]);
}

TEST(Topology, InterNodePathsUseNics)
{
    sim::Scheduler s;
    fab::Fabric f(s, fab::makeA100_40G(), 2);
    fab::Path p = f.p2pPath(0, 8);
    ASSERT_EQ(p.links().size(), 2u);
    EXPECT_EQ(p.links()[0]->type(), fab::LinkType::InfiniBand);
    EXPECT_DOUBLE_EQ(p.bottleneckGBps(), 25.0); // HDR 200 Gb/s
}

TEST(Topology, IntraPathRejectsCrossNode)
{
    sim::Scheduler s;
    fab::Fabric f(s, fab::makeA100_40G(), 2);
    EXPECT_THROW(f.intraPath(0, 8), std::invalid_argument);
    EXPECT_THROW(f.intraPath(3, 3), std::invalid_argument);
}

TEST(Topology, MultimemReduceOccupiesAllTxPorts)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeH100();
    fab::Fabric f(s, cfg, 1);
    std::vector<int> parts{0, 1, 2, 3, 4, 5, 6, 7};
    std::uint64_t bytes = 50'000'000;
    sim::Time window = sim::transferTime(bytes, cfg.multimemBwGBps);
    auto [st, arrival] = f.multimemReduce(0, parts, bytes);
    EXPECT_EQ(st, 0u);
    EXPECT_GE(arrival, window);
    for (int r : parts) {
        EXPECT_GE(f.gpuTx(r).nextFree(), window);
    }
    EXPECT_GE(f.gpuRx(0).nextFree(), window);
    EXPECT_EQ(f.gpuRx(1).nextFree(), 0u);
}

TEST(Topology, MultimemRequiresHardwareSupport)
{
    sim::Scheduler s;
    fab::Fabric f(s, fab::makeA100_40G(), 1);
    EXPECT_THROW(f.multimemReduce(0, {0, 1}, 1024), std::logic_error);
}

TEST(Topology, ConcurrentMultimemReducesShareTxBandwidth)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeH100();
    fab::Fabric f(s, cfg, 1);
    std::vector<int> parts{0, 1, 2, 3, 4, 5, 6, 7};
    std::uint64_t bytes = 50'000'000;
    auto [s0, a0] = f.multimemReduce(0, parts, bytes);
    auto [s1, a1] = f.multimemReduce(1, parts, bytes);
    // The second reduce waits for the shared tx ports.
    EXPECT_GE(s1, a0 - cfg.intraLatency - cfg.multimemLatency);
    (void)s0;
    (void)a1;
}

TEST(Topology, QueuedVictimsBlameTheMultimemEngine)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeH100();
    fab::Fabric f(s, cfg, 1);
    std::vector<int> parts{0, 1, 2, 3, 4, 5, 6, 7};
    f.multimemReduce(0, parts, 50'000'000);
    // On an idle fabric the reservation waited only on the switch's
    // own multimem engine.
    EXPECT_EQ(f.lastSwitchCulprit(), fab::kSwitchMultimem);
    // A p2p transfer queued behind the reservation blames the
    // contended switch resource, not the port it happened to share.
    fab::Path p = f.p2pPath(0, 3);
    auto [start, arrival] = p.reserve(1 << 20);
    EXPECT_GT(start, 0u);
    EXPECT_EQ(p.lastCulprit(), fab::kSwitchMultimem);
    (void)arrival;
}

TEST(Topology, MultimemBlamesTheBusyPortPacer)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeH100();
    fab::Fabric f(s, cfg, 1);
    // A p2p flow paced by gpu0.tx occupies the port first; the
    // multimem reservation that queues behind it must blame that
    // flow's pacer, mirroring Path::lastCulprit attribution.
    f.p2pPath(0, 3).reserve(50'000'000);
    std::vector<int> parts{0, 1, 2, 3, 4, 5, 6, 7};
    auto [start, arrival] = f.multimemReduce(0, parts, 1 << 20);
    EXPECT_GT(start, 0u);
    EXPECT_EQ(f.lastSwitchCulprit(), "gpu0.tx");
    (void)arrival;
}

TEST(Topology, NicIncastBlamesTheContendedPort)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::Fabric f(s, cfg, 2);
    // Flow A (rank 0 -> rank 8) fills nic8.rx at the NIC line rate.
    f.netPath(0, 8).reserve(50'000'000);
    // Flow B (rank 1 -> rank 8) queues behind it on nic8.rx; an
    // identical flow to an idle NIC is the control. The occupant
    // moves at the victim hop's own line rate, so the wait is genuine
    // incast on the destination NIC: blame the contended hop itself,
    // not flow A's (equally fast) pacer.
    auto [cs, control] = f.netPath(2, 9).reserve(1 << 20);
    fab::Path p = f.netPath(1, 8);
    auto [start, arrival] = p.reserve(1 << 20);
    EXPECT_GT(arrival, control);
    EXPECT_EQ(p.lastCulprit(), "nic8.rx");
    (void)cs;
    (void)start;
}

TEST(Topology, DegradedNicHopIsBlamedAcrossTheSwitch)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::Fabric f(s, cfg, 2);
    // Same incast shape, but flow A is paced by a degraded source
    // NIC. Its occupancy of nic8.rx now runs below that port's line
    // rate, so the victim's delay is attributed to the slow hop, not
    // to the shared destination port.
    f.degradeLink("nic0.tx", 0.5);
    f.netPath(0, 8).reserve(50'000'000);
    auto [cs, control] = f.netPath(2, 9).reserve(1 << 20);
    fab::Path p = f.netPath(1, 8);
    auto [start, arrival] = p.reserve(1 << 20);
    EXPECT_GT(arrival, control);
    EXPECT_EQ(p.lastCulprit(), "nic0.tx");
    (void)cs;
    (void)start;
}

TEST(Topology, DegradeLinkAppliesMidRunAndValidates)
{
    sim::Scheduler s;
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::Fabric f(s, cfg, 1);
    fab::Path p = f.p2pPath(0, 1);
    auto [s1, a1] = p.reserve(1 << 20);
    // Halving gpu0.tx bandwidth mid-run doubles the serialisation
    // window of the next transfer (latency and per-message overhead
    // are unchanged); the already-reserved transfer keeps its window.
    f.degradeLink("gpu0.tx", 0.5);
    auto [s2, a2] = p.reserve(1 << 20);
    EXPECT_EQ((a2 - s2) - (a1 - s1),
              sim::transferTime(1 << 20, cfg.intraBwGBps));
    EXPECT_THROW(f.degradeLink("no.such.link", 0.5),
                 std::invalid_argument);
    EXPECT_THROW(f.degradeLink("gpu0.tx", 0.0), std::invalid_argument);
    EXPECT_THROW(f.degradeLink("gpu0.tx", -1.0), std::invalid_argument);
}
