#include "channel/channel_mesh.hpp"
#include "channel/device_syncer.hpp"
#include "channel/memory_channel.hpp"
#include "channel/port_channel.hpp"
#include "channel/switch_channel.hpp"
#include "core/bootstrap.hpp"
#include "core/errors.hpp"
#include "core/communicator.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using namespace mscclpp;
using MscclppError = mscclpp::Error;

namespace {

/** Test harness: machine + communicators + per-rank data buffers. */
struct Harness
{
    Harness(fab::EnvConfig cfg, int nodes, std::size_t bytes,
            gpu::DataMode mode = gpu::DataMode::Functional)
        : machine(std::move(cfg), nodes, mode)
    {
        auto boots = createInProcessBootstrap(machine.numGpus());
        for (int r = 0; r < machine.numGpus(); ++r) {
            comms.push_back(std::make_unique<Communicator>(boots[r], machine));
            bufs.push_back(machine.gpu(r).alloc(bytes));
            gpu::fillPattern(bufs.back(), gpu::DataType::F32, r);
        }
    }

    std::vector<Communicator*> commPtrs()
    {
        std::vector<Communicator*> out;
        for (auto& c : comms) {
            out.push_back(c.get());
        }
        return out;
    }

    gpu::Machine machine;
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
};

/** Launch a one-block kernel per rank running fn(ctx, rank). */
void
runOnAllRanks(gpu::Machine& m,
              const std::function<sim::Task<>(gpu::BlockCtx&, int)>& fn)
{
    for (int r = 0; r < m.numGpus(); ++r) {
        gpu::LaunchConfig cfg;
        sim::detach(m.scheduler(),
                    gpu::launchKernel(m.gpu(r), cfg,
                                      [&fn, r](gpu::BlockCtx& ctx) {
                                          return fn(ctx, r);
                                      }));
    }
    m.run();
}

} // namespace

TEST(MemoryChannel, PutSignalWaitMovesData)
{
    Harness h(fab::makeA100_40G(), 1, 1024);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);

    // Rank 0 writes its first 256 bytes over rank 1's buffer.
    sim::Time senderDone = 0;
    sim::Time receiverDone = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await mesh.mem(0, 1).putWithSignal(ctx, 0, 0, 256);
            senderDone = ctx.scheduler().now();
        } else if (r == 1) {
            co_await mesh.mem(1, 0).wait(ctx);
            receiverDone = ctx.scheduler().now();
        }
    });
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(gpu::readElement(h.bufs[1], gpu::DataType::F32, i),
                  gpu::patternValue(gpu::DataType::F32, 0, i));
    }
    // Unmodified tail keeps rank 1's pattern.
    EXPECT_EQ(gpu::readElement(h.bufs[1], gpu::DataType::F32, 100),
              gpu::patternValue(gpu::DataType::F32, 1, 100));
    EXPECT_GT(receiverDone, senderDone); // signal crosses the link
}

TEST(MemoryChannel, PutIsOneSidedAndAsync)
{
    Harness h(fab::makeA100_40G(), 1, 1 << 20);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);
    sim::Time putDone = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await mesh.mem(0, 1).put(ctx, 0, 0, 1 << 20);
            putDone = ctx.scheduler().now();
        }
        // Rank 1 does nothing: put needs no receiver participation.
    });
    EXPECT_GT(putDone, 0u);
    EXPECT_EQ(gpu::readElement(h.bufs[1], gpu::DataType::F32, 0),
              gpu::patternValue(gpu::DataType::F32, 0, 0));
}

TEST(MemoryChannel, ThreadCountShapesBandwidth)
{
    // Few threads cannot saturate NVLink: the same put takes longer.
    auto timeWith = [](int threads) {
        Harness h(fab::makeA100_40G(), 1, 8 << 20);
        auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);
        sim::Time done = 0;
        for (int r = 0; r < 2; ++r) {
            gpu::LaunchConfig cfg;
            cfg.threadsPerBlock = threads;
            if (r == 0) {
                sim::detach(
                    h.machine.scheduler(),
                    gpu::launchKernel(
                        h.machine.gpu(0), cfg,
                        [&](gpu::BlockCtx& ctx) -> sim::Task<> {
                            co_await mesh.mem(0, 1).put(ctx, 0, 0, 8 << 20);
                            done = ctx.scheduler().now();
                        }));
            }
        }
        h.machine.run();
        return done;
    };
    sim::Time slow = timeWith(64);
    sim::Time fast = timeWith(1024);
    EXPECT_GT(slow, fast);
}

TEST(MemoryChannel, LlPacketsSelfSynchronize)
{
    MeshOptions opt;
    opt.protocol = Protocol::LL;
    Harness h(fab::makeA100_40G(), 1, 4096);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs, opt);

    sim::Time llDone = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await mesh.mem(0, 1).putPackets(ctx, 0, 0, 1024);
        } else if (r == 1) {
            co_await mesh.mem(1, 0).readPackets(ctx);
            llDone = ctx.scheduler().now();
        }
    });
    EXPECT_GT(llDone, 0u);
    EXPECT_EQ(gpu::readElement(h.bufs[1], gpu::DataType::F32, 5),
              gpu::patternValue(gpu::DataType::F32, 0, 5));

    // LL beats HB put+signal+wait for small messages.
    Harness h2(fab::makeA100_40G(), 1, 4096);
    auto mesh2 = ChannelMesh::build(h2.commPtrs(), h2.bufs, h2.bufs);
    sim::Time hbDone = 0;
    runOnAllRanks(h2.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await mesh2.mem(0, 1).putWithSignal(ctx, 0, 0, 1024);
        } else if (r == 1) {
            co_await mesh2.mem(1, 0).wait(ctx);
            hbDone = ctx.scheduler().now();
        }
    });
    EXPECT_LT(llDone, hbDone);
}

TEST(MemoryChannel, ProtocolMisuseThrows)
{
    Harness h(fab::makeA100_40G(), 1, 1024);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs); // HB
    bool threw = false;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            try {
                co_await mesh.mem(0, 1).putPackets(ctx, 0, 0, 64);
            } catch (const MscclppError&) {
                threw = true;
            }
        }
    });
    EXPECT_TRUE(threw);
}

TEST(PortChannel, ProxyWorkflowDeliversDataAndSignal)
{
    MeshOptions opt;
    opt.transport = Transport::Port;
    Harness h(fab::makeA100_40G(), 1, 4096);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs, opt);

    sim::Time putReturned = 0;
    sim::Time flushed = 0;
    sim::Time received = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await mesh.port(0, 1).putWithSignal(ctx, 0, 0, 4096);
            putReturned = ctx.scheduler().now();
            co_await mesh.port(0, 1).flush(ctx);
            flushed = ctx.scheduler().now();
        } else if (r == 1) {
            co_await mesh.port(1, 0).wait(ctx);
            received = ctx.scheduler().now();
        }
    });
    mesh.shutdown();
    h.machine.run();

    EXPECT_EQ(gpu::readElement(h.bufs[1], gpu::DataType::F32, 9),
              gpu::patternValue(gpu::DataType::F32, 0, 9));
    // put returns after the FIFO push only; the wire work happens
    // later (asynchrony), so flush must come after.
    EXPECT_GT(flushed, putReturned);
    EXPECT_GT(received, putReturned);
    EXPECT_EQ(mesh.port(0, 1).putsIssued(), 1u);
    EXPECT_EQ(mesh.port(0, 1).bytesPut(), 4096u);
}

TEST(PortChannel, InterNodeGoesThroughNics)
{
    MeshOptions opt;
    opt.transport = Transport::Port;
    Harness h(fab::makeA100_40G(), 2, 1 << 20);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs, opt);

    sim::Time received = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await mesh.port(0, 8).putWithSignal(ctx, 0, 0, 1 << 20);
            co_await mesh.port(0, 8).flush(ctx);
        } else if (r == 8) {
            co_await mesh.port(8, 0).wait(ctx);
            received = ctx.scheduler().now();
        }
    });
    mesh.shutdown();
    h.machine.run();

    // 1 MB at 25 GB/s is 40 us on the wire, plus overheads.
    EXPECT_GT(received, sim::us(40));
    EXPECT_LT(received, sim::us(120));
    EXPECT_GE(h.machine.fabric().netBytesCarried(), std::uint64_t{1} << 20);
    EXPECT_EQ(gpu::readElement(h.bufs[8], gpu::DataType::F32, 0),
              gpu::patternValue(gpu::DataType::F32, 0, 0));
}

TEST(PortChannel, FlushWaitsForAllPriorPuts)
{
    MeshOptions opt;
    opt.transport = Transport::Port;
    Harness h(fab::makeA100_40G(), 1, 16 << 20);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs, opt);

    sim::Time flushed = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            for (int i = 0; i < 4; ++i) {
                co_await mesh.port(0, 1).put(ctx, i << 22, i << 22,
                                             4 << 20);
            }
            co_await mesh.port(0, 1).flush(ctx);
            flushed = ctx.scheduler().now();
        }
    });
    mesh.shutdown();
    h.machine.run();

    // 16 MB at 263 GB/s is ~61 us minimum.
    EXPECT_GT(flushed, sim::us(60));
}

TEST(SwitchChannel, ReduceAndBroadcast)
{
    Harness h(fab::makeH100(), 1, 1024);
    std::vector<int> ranks{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<RegisteredMemory> mems;
    for (int r = 0; r < 8; ++r) {
        mems.push_back(h.comms[r]->registerMemory(h.bufs[r]));
    }
    std::vector<std::unique_ptr<SwitchChannel>> chans;
    for (int r = 0; r < 8; ++r) {
        chans.push_back(std::make_unique<SwitchChannel>(h.machine, ranks,
                                                        mems, r));
    }
    gpu::DeviceBuffer out = h.machine.gpu(0).alloc(1024);

    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r == 0) {
            co_await chans[0]->reduce(ctx, out, 0, 1024, gpu::DataType::F32,
                                      gpu::ReduceOp::Sum);
            co_await chans[0]->broadcast(ctx, 0, out, 1024);
        }
    });

    for (int i = 0; i < 16; ++i) {
        float expected = 0.0f;
        for (int r = 0; r < 8; ++r) {
            expected += gpu::patternValue(gpu::DataType::F32, r, i);
        }
        EXPECT_EQ(gpu::readElement(out, gpu::DataType::F32, i), expected);
        // Broadcast overwrote every rank's buffer with the sum.
        for (int r = 0; r < 8; ++r) {
            EXPECT_EQ(gpu::readElement(h.bufs[r], gpu::DataType::F32, i),
                      expected);
        }
    }
}

TEST(SwitchChannel, RequiresMultimemHardware)
{
    Harness h(fab::makeA100_40G(), 1, 64);
    std::vector<int> ranks{0, 1};
    std::vector<RegisteredMemory> mems{
        h.comms[0]->registerMemory(h.bufs[0]),
        h.comms[1]->registerMemory(h.bufs[1])};
    EXPECT_THROW(SwitchChannel(h.machine, ranks, mems, 0), MscclppError);
}

TEST(DeviceSyncer, BarrierAlignsRanks)
{
    Harness h(fab::makeA100_40G(), 1, 64);
    DeviceSyncer syncer(h.machine, {0, 1, 2, 3});
    std::vector<sim::Time> released(4, 0);
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r >= 4) {
            co_return;
        }
        co_await ctx.busy(sim::us(r * 3));
        co_await syncer.barrier(ctx, r);
        released[r] = ctx.scheduler().now();
    });
    sim::Time last = *std::max_element(released.begin(), released.end());
    // Everyone leaves within one signal latency of the last arrival.
    for (int r = 0; r < 4; ++r) {
        EXPECT_GE(released[r] + sim::us(2), last);
        EXPECT_GE(released[r], sim::us(9)); // last arrival at 9us busy
    }
}

TEST(DeviceSyncer, ReusableAcrossRounds)
{
    Harness h(fab::makeA100_40G(), 1, 64);
    DeviceSyncer syncer(h.machine, {0, 1});
    int rounds = 0;
    runOnAllRanks(h.machine, [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
        if (r >= 2) {
            co_return;
        }
        for (int i = 0; i < 3; ++i) {
            co_await syncer.barrier(ctx, r);
            if (r == 0) {
                ++rounds;
            }
        }
    });
    EXPECT_EQ(rounds, 3);
}

TEST(ChannelMesh, ValidatesArguments)
{
    Harness h(fab::makeA100_40G(), 1, 64);
    auto comms = h.commPtrs();
    std::vector<gpu::DeviceBuffer> tooFew(3);
    EXPECT_THROW(ChannelMesh::build(comms, tooFew, tooFew), MscclppError);

    auto mesh = ChannelMesh::build(comms, h.bufs, h.bufs);
    EXPECT_THROW(mesh.mem(0, 0), MscclppError);
    EXPECT_THROW(mesh.mem(0, 99), MscclppError);
    EXPECT_THROW(mesh.port(0, 1), MscclppError); // memory mesh has no ports
}
