/**
 * Standalone JSON well-formedness checker used by the bench-tracing
 * smoke test (obs_bench_json_parses). Exits 0 iff every file named on
 * the command line parses as a single JSON value with no trailing
 * garbage. Deliberately gtest-free so it stays a tiny ctest COMMAND.
 */
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool parse()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == text_.size();
    }

    std::size_t errorPos() const { return pos_; }

  private:
    bool value()
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '"') {
                ++pos_;
                return true;
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <file.json>...\n", argv[0]);
        return 2;
    }
    int rc = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream f(argv[i]);
        if (!f) {
            std::fprintf(stderr, "%s: cannot open\n", argv[i]);
            rc = 1;
            continue;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        std::string text = ss.str();
        if (text.empty()) {
            std::fprintf(stderr, "%s: empty file\n", argv[i]);
            rc = 1;
            continue;
        }
        Parser p(text);
        if (!p.parse()) {
            std::fprintf(stderr, "%s: parse error near byte %zu\n",
                         argv[i], p.errorPos());
            rc = 1;
            continue;
        }
        std::printf("%s: ok (%zu bytes)\n", argv[i], text.size());
    }
    return rc;
}
