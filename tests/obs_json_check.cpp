/**
 * Standalone JSON well-formedness checker used by the bench-tracing
 * smoke tests (obs_bench_json_parses, tuner_metrics_json). Exits 0
 * iff every file named on the command line parses as a single JSON
 * value with no trailing garbage, and every `--require=<substring>`
 * appears somewhere in the checked files (used to assert that
 * specific obs counters were emitted). Deliberately gtest-free so it
 * stays a tiny ctest COMMAND.
 */
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool parse()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == text_.size();
    }

    std::size_t errorPos() const { return pos_; }

  private:
    bool value()
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '"') {
                ++pos_;
                return true;
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> required;
    std::vector<const char*> files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--require=", 0) == 0) {
            required.push_back(arg.substr(10));
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--require=<substring>]... <file.json>...\n",
                     argv[0]);
        return 2;
    }
    int rc = 0;
    std::string all;
    for (const char* file : files) {
        std::ifstream f(file);
        if (!f) {
            std::fprintf(stderr, "%s: cannot open\n", file);
            rc = 1;
            continue;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        std::string text = ss.str();
        if (text.empty()) {
            std::fprintf(stderr, "%s: empty file\n", file);
            rc = 1;
            continue;
        }
        Parser p(text);
        if (!p.parse()) {
            std::fprintf(stderr, "%s: parse error near byte %zu\n",
                         file, p.errorPos());
            rc = 1;
            continue;
        }
        std::printf("%s: ok (%zu bytes)\n", file, text.size());
        all += text;
    }
    for (const std::string& want : required) {
        if (all.find(want) == std::string::npos) {
            std::fprintf(stderr, "required '%s' not found in any file\n",
                         want.c_str());
            rc = 1;
        } else {
            std::printf("required '%s': present\n", want.c_str());
        }
    }
    return rc;
}
