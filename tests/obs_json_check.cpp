/**
 * Standalone JSON well-formedness checker used by the bench-tracing
 * smoke tests (obs_bench_json_parses, tuner_metrics_json). Exits 0
 * iff every file named on the command line parses as a single JSON
 * value with no trailing garbage, and every `--require=<substring>`
 * appears somewhere in the checked files (used to assert that
 * specific obs counters were emitted). With --bench-schema each file
 * must additionally be a valid mscclpp.bench_report artifact: schema
 * and version fields, a non-empty benches object whose entries all
 * carry the required numeric keys with p50_us <= p99_us plus the v2
 * by_link_ns breakdown. With --flight-schema each file must be a
 * mscclpp.flight recorder dump whose ring/dropped/aggregate digests
 * satisfy the exact-merge invariant. With --hang-schema each file
 * must be a mscclpp.hang watchdog dump whose reports all carry a
 * known classification, a non-empty wait-for chain and a structured
 * root cause. With --reqtrace-schema each file must be a
 * mscclpp.reqtrace v1 tail-exemplar dump whose per-request latency
 * buckets reconcile exactly with the measured TTFT and e2e and whose
 * exemplar lists are bounded by topk and sorted worst-first.
 * With --timeseries-schema each file must be a mscclpp.timeseries v1
 * rollup whose series all carry a known kind and a bounded point span.
 * With --alerts-schema each file must be a mscclpp.alerts v1 dump
 * whose alert records are internally consistent (known dimension,
 * fire/clear ordering, counters matching the alert list).
 * With --simprof-schema each file must be a mscclpp.simprof v1
 * self-profile whose buckets reconcile exactly: every origin row
 * carries a known kind, the rows plus the scheduler's own buckets sum
 * to the measured wall time, and the attribution percentage is
 * consistent with the unattributed share.
 * Deliberately gtest-free so it stays a tiny ctest COMMAND.
 */
#include "tuner/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool parse()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == text_.size();
    }

    std::size_t errorPos() const { return pos_; }

  private:
    bool value()
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '"') {
                ++pos_;
                return true;
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

/**
 * Shared prologue of every schema validator (five formats and
 * counting): the strict tuner parse, the schema stamp, the exact
 * version — reported expected-vs-found on mismatch — and any required
 * numeric top-level fields. Returning the parsed document keeps each
 * format's validator down to its own invariants (~20 lines for a
 * simple schema).
 */
std::optional<mscclpp::tuner::json::Value>
openSchema(const char* file, const std::string& text, const char* want,
           double version,
           std::initializer_list<const char*> numericFields)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc = json::parse(text);
    if (!doc) {
        std::fprintf(stderr, "%s: tuner parser rejected it\n", file);
        return std::nullopt;
    }
    const json::Value* schema = doc->get("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != want) {
        std::fprintf(stderr, "%s: schema '%s' != expected '%s'\n", file,
                     schema != nullptr && schema->isString()
                         ? schema->string.c_str()
                         : "<missing>",
                     want);
        return std::nullopt;
    }
    const json::Value* ver = doc->get("version");
    if (ver == nullptr || !ver->isNumber() || ver->number != version) {
        if (ver != nullptr && ver->isNumber()) {
            std::fprintf(stderr, "%s: version %g != expected %g\n", file,
                         ver->number, version);
        } else {
            std::fprintf(stderr, "%s: missing version (expected %g)\n",
                         file, version);
        }
        return std::nullopt;
    }
    for (const char* field : numericFields) {
        const json::Value* v = doc->get(field);
        if (v == nullptr || !v->isNumber()) {
            std::fprintf(stderr, "%s: missing numeric %s\n", file,
                         field);
            return std::nullopt;
        }
    }
    return doc;
}

/** Require numeric @p fields on a nested @p obj (context in errors). */
bool
requireNumbers(const char* file, const char* ctx,
               const mscclpp::tuner::json::Value& obj,
               std::initializer_list<const char*> fields)
{
    for (const char* field : fields) {
        const mscclpp::tuner::json::Value* v = obj.get(field);
        if (v == nullptr || !v->isNumber()) {
            std::fprintf(stderr, "%s: %s missing numeric %s\n", file,
                         ctx, field);
            return false;
        }
    }
    return true;
}

/**
 * Validate one bench_report artifact beyond well-formedness: the
 * schema/version stamp, and the per-bench invariants the comparator
 * relies on (required numeric keys, monotone percentiles).
 */
bool
checkBenchSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc =
        openSchema(file, text, "mscclpp.bench_report", 4, {});
    if (!doc) {
        return false;
    }
    const json::Value* env = doc->get("env");
    if (env == nullptr || !env->isString() || env->string.empty()) {
        std::fprintf(stderr, "%s: missing env\n", file);
        return false;
    }
    const json::Value* benches = doc->get("benches");
    if (benches == nullptr || !benches->isObject() ||
        benches->object.empty()) {
        std::fprintf(stderr, "%s: benches must be a non-empty object\n",
                     file);
        return false;
    }
    for (const auto& [key, bench] : benches->object) {
        for (const char* field :
             {"bytes", "samples", "p50_us", "p99_us", "measured_ns"}) {
            const json::Value* v = bench.get(field);
            if (v == nullptr || !v->isNumber()) {
                std::fprintf(stderr, "%s: %s missing numeric %s\n", file,
                             key.c_str(), field);
                return false;
            }
        }
        double p50 = bench.get("p50_us")->number;
        double p99 = bench.get("p99_us")->number;
        if (p50 < 0 || p99 < p50) {
            std::fprintf(stderr,
                         "%s: %s percentiles not monotone "
                         "(p50=%g p99=%g)\n",
                         file, key.c_str(), p50, p99);
            return false;
        }
        const json::Value* attr = bench.get("attribution_ns");
        if (attr == nullptr || !attr->isObject()) {
            std::fprintf(stderr, "%s: %s missing attribution_ns\n", file,
                         key.c_str());
            return false;
        }
        const json::Value* links = bench.get("by_link_ns");
        if (links == nullptr || !links->isObject()) {
            std::fprintf(stderr, "%s: %s missing by_link_ns (v2)\n",
                         file, key.c_str());
            return false;
        }
        // v3: serving.* keys carry a request-percentile block.
        const json::Value* serving = bench.get("serving");
        if (serving != nullptr) {
            if (!serving->isObject()) {
                std::fprintf(stderr, "%s: %s serving must be an object\n",
                             file, key.c_str());
                return false;
            }
            // v4: reqtrace_overhead_pct, when present, must be numeric
            // (the MSCCL++ serving key carries it).
            const json::Value* ov = serving->get("reqtrace_overhead_pct");
            if (ov != nullptr && !ov->isNumber()) {
                std::fprintf(stderr,
                             "%s: %s reqtrace_overhead_pct must be "
                             "numeric\n",
                             file, key.c_str());
                return false;
            }
            for (const char* field :
                 {"requests", "ttft_p50_us", "ttft_p99_us",
                  "tpot_p50_us", "tpot_p99_us", "throughput_tps"}) {
                const json::Value* v = serving->get(field);
                if (v == nullptr || !v->isNumber()) {
                    std::fprintf(stderr,
                                 "%s: %s serving missing numeric %s\n",
                                 file, key.c_str(), field);
                    return false;
                }
            }
            if (serving->get("ttft_p99_us")->number <
                    serving->get("ttft_p50_us")->number ||
                serving->get("tpot_p99_us")->number <
                    serving->get("tpot_p50_us")->number) {
                std::fprintf(stderr,
                             "%s: %s serving percentiles not monotone\n",
                             file, key.c_str());
                return false;
            }
        }
    }
    // Optional simulator self-bench block (A100-40G report): the
    // deterministic counters bench_compare gates bit-identically.
    const json::Value* sim = doc->get("sim");
    if (sim != nullptr) {
        if (!sim->isObject() ||
            !requireNumbers(file, "sim", *sim,
                            {"events_total", "max_queue_depth",
                             "dispatch_closure_copies",
                             "events_per_sec"})) {
            return false;
        }
        const json::Value* org = sim->get("events_by_origin");
        if (org == nullptr || !org->isObject()) {
            std::fprintf(stderr, "%s: sim missing events_by_origin\n",
                         file);
            return false;
        }
    }
    std::printf("%s: bench schema ok (%zu benches)\n", file,
                benches->object.size());
    return true;
}

/**
 * Validate one serving_cluster artifact (mscclpp.serving_report v1):
 * schema stamp, a non-empty per-backend runs object, required numeric
 * fields and monotone TTFT/TPOT percentiles per run.
 */
bool
checkServingSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc =
        openSchema(file, text, "mscclpp.serving_report", 1,
                   {"seed", "replicas", "prefill_replicas"});
    if (!doc) {
        return false;
    }
    const json::Value* arrivals = doc->get("arrivals");
    if (arrivals == nullptr || !arrivals->isString() ||
        arrivals->string.empty()) {
        std::fprintf(stderr, "%s: missing arrivals mode\n", file);
        return false;
    }
    const json::Value* runs = doc->get("runs");
    if (runs == nullptr || !runs->isObject() || runs->object.empty()) {
        std::fprintf(stderr, "%s: runs must be a non-empty object\n",
                     file);
        return false;
    }
    for (const auto& [backend, run] : runs->object) {
        if (!requireNumbers(
                file, backend.c_str(), run,
                {"requests", "dropped", "prefill_steps", "decode_steps",
                 "preemptions", "migrations", "ttft_p50_us",
                 "ttft_p90_us", "ttft_p99_us", "tpot_p50_us",
                 "tpot_p90_us", "tpot_p99_us", "e2e_p50_us",
                 "e2e_p99_us", "slo_ttft_violations",
                 "slo_tpot_violations", "alerts_fired", "alerts_active",
                 "throughput_tps", "makespan_ms"})) {
            return false;
        }
        if (run.get("requests")->number <= 0) {
            std::fprintf(stderr, "%s: run %s served no requests\n",
                         file, backend.c_str());
            return false;
        }
        if (run.get("ttft_p99_us")->number <
                run.get("ttft_p50_us")->number ||
            run.get("tpot_p99_us")->number <
                run.get("tpot_p50_us")->number ||
            run.get("e2e_p99_us")->number <
                run.get("e2e_p50_us")->number) {
            std::fprintf(stderr,
                         "%s: run %s percentiles not monotone\n", file,
                         backend.c_str());
            return false;
        }
    }
    std::printf("%s: serving schema ok (%zu runs)\n", file,
                runs->object.size());
    return true;
}

/**
 * Validate one flight-recorder artifact (mscclpp.flight v1): the
 * schema stamp, the EWMA baseline block, a digest ring whose entries
 * all carry the attribution buckets, and the exact-merge invariant
 * the recorder promises: aggregate == dropped + sum(ring), both in
 * step count and measured nanoseconds.
 */
bool
checkFlightSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc =
        openSchema(file, text, "mscclpp.flight", 1,
                   {"sigma_k", "warmup", "capacity", "steps_total",
                    "anomalies_total"});
    if (!doc) {
        return false;
    }
    const json::Value* baseline = doc->get("baseline");
    if (baseline == nullptr || !baseline->isObject() ||
        baseline->get("ewma_mean_ns") == nullptr ||
        baseline->get("ewma_sigma_ns") == nullptr ||
        baseline->get("samples") == nullptr) {
        std::fprintf(stderr, "%s: missing baseline block\n", file);
        return false;
    }
    const json::Value* ring = doc->get("ring");
    const json::Value* dropped = doc->get("dropped");
    const json::Value* aggregate = doc->get("aggregate");
    const json::Value* anomalies = doc->get("anomalies");
    if (ring == nullptr || !ring->isArray() || dropped == nullptr ||
        !dropped->isObject() || aggregate == nullptr ||
        !aggregate->isObject() || anomalies == nullptr ||
        !anomalies->isArray()) {
        std::fprintf(stderr,
                     "%s: missing ring/dropped/aggregate/anomalies\n",
                     file);
        return false;
    }
    double ringCount = 0;
    double ringMeasured = 0;
    for (const json::Value& d : ring->array) {
        for (const char* field :
             {"index", "measured_ns", "straggler_rank"}) {
            const json::Value* v = d.get(field);
            if (v == nullptr || !v->isNumber()) {
                std::fprintf(stderr,
                             "%s: ring digest missing numeric %s\n",
                             file, field);
                return false;
            }
        }
        const json::Value* buckets = d.get("buckets");
        if (buckets == nullptr || !buckets->isObject()) {
            std::fprintf(stderr, "%s: ring digest missing buckets\n",
                         file);
            return false;
        }
        ringCount += 1;
        ringMeasured += d.get("measured_ns")->number;
    }
    const json::Value* aggCount = aggregate->get("count");
    const json::Value* aggMeasured = aggregate->get("measured_ns");
    const json::Value* dropCount = dropped->get("count");
    const json::Value* dropMeasured = dropped->get("measured_ns");
    if (aggCount == nullptr || aggMeasured == nullptr ||
        dropCount == nullptr || dropMeasured == nullptr) {
        std::fprintf(stderr, "%s: aggregate/dropped missing fields\n",
                     file);
        return false;
    }
    if (aggCount->number != dropCount->number + ringCount) {
        std::fprintf(stderr,
                     "%s: exact-merge violated: aggregate count %g != "
                     "dropped %g + ring %g\n",
                     file, aggCount->number, dropCount->number,
                     ringCount);
        return false;
    }
    double merged = dropMeasured->number + ringMeasured;
    double denom = aggMeasured->number > 1.0 ? aggMeasured->number : 1.0;
    if (std::abs(aggMeasured->number - merged) / denom > 1e-9) {
        std::fprintf(stderr,
                     "%s: exact-merge violated: aggregate measured %g "
                     "!= dropped + ring %g\n",
                     file, aggMeasured->number, merged);
        return false;
    }
    for (const json::Value& a : anomalies->array) {
        if (a.get("step") == nullptr || a.get("baseline_ns") == nullptr ||
            a.get("attribution") == nullptr ||
            a.get("window") == nullptr) {
            std::fprintf(stderr, "%s: anomaly entry incomplete\n", file);
            return false;
        }
    }
    std::printf("%s: flight schema ok (%g steps, %zu in ring, "
                "%zu anomalies)\n",
                file, aggCount->number, ring->array.size(),
                anomalies->array.size());
    return true;
}

/**
 * Validate one stall-watchdog artifact (mscclpp.hang v1): the schema
 * stamp, the threshold, and per-report invariants — a recognised
 * classification, a chain that starts at the blocked waiter and ends
 * at the root-cause party, a structured root cause with a known
 * reason, and a cycle that is non-empty iff the report is a deadlock.
 */
bool
checkHangSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc =
        openSchema(file, text, "mscclpp.hang", 1, {"threshold_ns"});
    if (!doc) {
        return false;
    }
    const json::Value* threshold = doc->get("threshold_ns");
    if (threshold->number <= 0) {
        std::fprintf(stderr, "%s: missing/invalid threshold_ns\n", file);
        return false;
    }
    const json::Value* reports = doc->get("reports");
    if (reports == nullptr || !reports->isArray()) {
        std::fprintf(stderr, "%s: missing reports array\n", file);
        return false;
    }
    for (const json::Value& r : reports->array) {
        const json::Value* cls = r.get("classification");
        if (cls == nullptr || !cls->isString() ||
            (cls->string != "deadlock" && cls->string != "straggler")) {
            std::fprintf(stderr, "%s: report classification invalid\n",
                         file);
            return false;
        }
        const json::Value* blocked = r.get("blocked");
        if (blocked == nullptr || blocked->get("waiter") == nullptr ||
            blocked->get("owed") == nullptr ||
            blocked->get("wait_ns") == nullptr ||
            !blocked->get("wait_ns")->isNumber() ||
            blocked->get("wait_ns")->number < threshold->number) {
            std::fprintf(stderr,
                         "%s: blocked wait incomplete or under "
                         "threshold\n",
                         file);
            return false;
        }
        const json::Value* chain = r.get("chain");
        if (chain == nullptr || !chain->isArray() ||
            chain->array.empty() || !chain->array.front().isString() ||
            chain->array.front().string !=
                blocked->get("waiter")->string) {
            std::fprintf(stderr,
                         "%s: chain must start at the blocked waiter\n",
                         file);
            return false;
        }
        const json::Value* root = r.get("root_cause");
        if (root == nullptr || root->get("party") == nullptr ||
            root->get("reason") == nullptr ||
            !root->get("reason")->isString()) {
            std::fprintf(stderr, "%s: root_cause incomplete\n", file);
            return false;
        }
        const std::string& reason = root->get("reason")->string;
        if (reason != "cyclic_wait" && reason != "dead_proxy" &&
            reason != "missing_signal" && reason != "degraded_link" &&
            reason != "link_contention") {
            std::fprintf(stderr, "%s: unknown root-cause reason '%s'\n",
                         file, reason.c_str());
            return false;
        }
        const json::Value* cyc = r.get("cycle");
        if (cyc == nullptr || !cyc->isArray() ||
            (cls->string == "deadlock") != !cyc->array.empty()) {
            std::fprintf(stderr,
                         "%s: cycle must be non-empty iff deadlock\n",
                         file);
            return false;
        }
    }
    std::printf("%s: hang schema ok (%zu reports)\n", file,
                reports->array.size());
    return true;
}

/**
 * Validate one request-tracing artifact (mscclpp.reqtrace v1): the
 * schema stamp, the counters, and the per-exemplar invariants the
 * attribution machinery promises — every retained request carries all
 * seven latency buckets for both SLO classes, the buckets sum exactly
 * (sub-0.01ns; the dump is picosecond-exact) to the measured TTFT and
 * e2e, the span list is non-empty, the blame chain is structured, and
 * each class list is bounded by topk and sorted worst-first.
 */
bool
checkReqtraceSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc = openSchema(
        file, text, "mscclpp.reqtrace", 1,
        {"topk", "requests_observed", "requests_completed",
         "requests_dropped", "preemption_events", "kv_migrations"});
    if (!doc) {
        return false;
    }
    const double topk = doc->get("topk")->number;
    const json::Value* faults = doc->get("faults");
    if (faults == nullptr || !faults->isArray()) {
        std::fprintf(stderr, "%s: missing faults array\n", file);
        return false;
    }
    for (const json::Value& f : faults->array) {
        if (f.get("replica") == nullptr || f.get("link") == nullptr ||
            f.get("at_ns") == nullptr) {
            std::fprintf(stderr, "%s: fault entry incomplete\n", file);
            return false;
        }
    }
    const json::Value* classes = doc->get("classes");
    if (classes == nullptr || !classes->isObject()) {
        std::fprintf(stderr, "%s: missing classes object\n", file);
        return false;
    }
    static const char* kCats[] = {
        "queue_wait",   "prefill_compute", "decode_compute",
        "exposed_comms", "sync_wait",      "preemption_lost",
        "kv_migration"};
    std::size_t exemplars = 0;
    for (const char* cls : {"ttft", "e2e"}) {
        const json::Value* list = classes->get(cls);
        if (list == nullptr || !list->isArray()) {
            std::fprintf(stderr, "%s: missing '%s' class\n", file, cls);
            return false;
        }
        if (double(list->array.size()) > topk) {
            std::fprintf(stderr, "%s: '%s' holds %zu > topk %g\n", file,
                         cls, list->array.size(), topk);
            return false;
        }
        double prevKey = -1;
        for (const json::Value& req : list->array) {
            ++exemplars;
            for (const char* field :
                 {"id", "replica", "arrival_ns", "first_token_ns",
                  "completed_ns", "ttft_ns", "e2e_ns", "preemptions",
                  "decode_steps"}) {
                const json::Value* v = req.get(field);
                if (v == nullptr || !v->isNumber()) {
                    std::fprintf(stderr,
                                 "%s: %s exemplar missing numeric %s\n",
                                 file, cls, field);
                    return false;
                }
            }
            const double key = req.get(cls[0] == 't' ? "ttft_ns"
                                                     : "e2e_ns")
                                   ->number;
            if (prevKey >= 0 && key > prevKey) {
                std::fprintf(stderr,
                             "%s: '%s' exemplars not sorted worst "
                             "first\n",
                             file, cls);
                return false;
            }
            prevKey = key;
            // The reconciliation invariant: both bucket splits sum to
            // their measured latency, to the picosecond.
            for (const char* which : {"ttft_buckets_ns",
                                      "e2e_buckets_ns"}) {
                const json::Value* b = req.get(which);
                if (b == nullptr || !b->isObject()) {
                    std::fprintf(stderr, "%s: exemplar missing %s\n",
                                 file, which);
                    return false;
                }
                double sum = 0;
                for (const char* cat : kCats) {
                    const json::Value* v = b->get(cat);
                    if (v == nullptr || !v->isNumber() ||
                        v->number < 0) {
                        std::fprintf(stderr,
                                     "%s: %s missing bucket %s\n", file,
                                     which, cat);
                        return false;
                    }
                    sum += v->number;
                }
                const double want =
                    req.get(which[0] == 't' ? "ttft_ns" : "e2e_ns")
                        ->number;
                if (std::abs(sum - want) > 0.01) {
                    std::fprintf(stderr,
                                 "%s: req %g %s sums to %.3fns, "
                                 "measured %.3fns\n",
                                 file, req.get("id")->number, which,
                                 sum, want);
                    return false;
                }
            }
            const json::Value* blame = req.get("blame");
            if (blame == nullptr || !blame->isObject() ||
                blame->get("replica") == nullptr ||
                blame->get("step") == nullptr ||
                blame->get("category") == nullptr ||
                blame->get("cost_ns") == nullptr ||
                !blame->get("cost_ns")->isNumber()) {
                std::fprintf(stderr, "%s: exemplar blame incomplete\n",
                             file);
                return false;
            }
            const json::Value* spans = req.get("spans");
            if (spans == nullptr || !spans->isArray() ||
                spans->array.empty()) {
                std::fprintf(stderr,
                             "%s: exemplar spans missing/empty\n",
                             file);
                return false;
            }
            for (const json::Value& sp : spans->array) {
                if (sp.get("phase") == nullptr ||
                    sp.get("begin_ns") == nullptr ||
                    sp.get("end_ns") == nullptr ||
                    sp.get("replica") == nullptr) {
                    std::fprintf(stderr,
                                 "%s: span entry incomplete\n", file);
                    return false;
                }
            }
        }
    }
    std::printf("%s: reqtrace schema ok (%zu exemplars, %zu faults)\n",
                file, exemplars, faults->array.size());
    return true;
}

/**
 * Validate one continuous-telemetry rollup (mscclpp.timeseries v1):
 * every series carries a known kind and numeric points, and the point
 * span respects the bound the ring promises (512 intervals — the
 * overflow path coarsens rather than grow).
 */
bool
checkTimeseriesSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc =
        openSchema(file, text, "mscclpp.timeseries", 1,
                   {"interval_ns", "coarsenings", "samples"});
    if (!doc) {
        return false;
    }
    const json::Value* series = doc->get("series");
    if (doc->get("interval_ns")->number <= 0 || series == nullptr ||
        !series->isObject()) {
        std::fprintf(stderr, "%s: bad interval_ns or series\n", file);
        return false;
    }
    std::size_t points = 0;
    for (const auto& [name, s] : series->object) {
        const json::Value* kind = s.get("kind");
        const json::Value* pts = s.get("points");
        if (kind == nullptr || !kind->isString() ||
            (kind->string != "counter_delta" && kind->string != "gauge" &&
             kind->string != "utilization") ||
            pts == nullptr || !pts->isObject()) {
            std::fprintf(stderr, "%s: series %s bad kind/points\n", file,
                         name.c_str());
            return false;
        }
        double lo = -1, hi = -1;
        for (const auto& [idx, v] : pts->object) {
            const double i = std::atof(idx.c_str());
            lo = lo < 0 ? i : std::min(lo, i);
            hi = std::max(hi, i);
            if (!v.isNumber()) {
                std::fprintf(stderr, "%s: series %s point %s not "
                             "numeric\n", file, name.c_str(),
                             idx.c_str());
                return false;
            }
            ++points;
        }
        if (hi - lo + 1 > 512) {
            std::fprintf(stderr,
                         "%s: series %s spans %g intervals > 512\n",
                         file, name.c_str(), hi - lo + 1);
            return false;
        }
    }
    std::printf("%s: timeseries schema ok (%zu series, %zu points)\n",
                file, series->object.size(), points);
    return true;
}

/**
 * Validate one SLO-alert dump (mscclpp.alerts v1): the monitor config
 * block, counters that match the alert list, and per-alert
 * consistency — a known dimension, cleared-after-fired ordering, and
 * the active flag mirroring a zero clear timestamp.
 */
bool
checkAlertsSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc = openSchema(
        file, text, "mscclpp.alerts", 1,
        {"interval_ns", "fast_intervals", "slow_intervals", "budget",
         "burn_threshold", "slo_ttft_us", "slo_tpot_us", "requests",
         "ttft_violations", "tpot_violations", "fired", "active"});
    if (!doc) {
        return false;
    }
    const json::Value* alerts = doc->get("alerts");
    const json::Value* faults = doc->get("faults");
    if (alerts == nullptr || !alerts->isArray() || faults == nullptr ||
        !faults->isArray() ||
        doc->get("fast_intervals")->number >
            doc->get("slow_intervals")->number ||
        doc->get("interval_ns")->number <= 0) {
        std::fprintf(stderr, "%s: bad alerts/faults/window config\n",
                     file);
        return false;
    }
    double active = 0;
    for (const json::Value& a : alerts->array) {
        const json::Value* dim = a.get("dimension");
        if (!requireNumbers(file, "alert", a,
                            {"id", "fired_at_us", "cleared_at_us",
                             "fire_interval", "burn_fast", "burn_slow",
                             "replica"}) ||
            dim == nullptr || !dim->isString() ||
            (dim->string != "ttft" && dim->string != "tpot") ||
            a.get("link") == nullptr || !a.get("link")->isString()) {
            std::fprintf(stderr, "%s: alert record incomplete\n", file);
            return false;
        }
        const double cleared = a.get("cleared_at_us")->number;
        const json::Value* act = a.get("active");
        if (act == nullptr || act->kind != json::Value::Kind::Bool ||
            act->boolean != (cleared == 0) ||
            (cleared != 0 && cleared < a.get("fired_at_us")->number)) {
            std::fprintf(stderr,
                         "%s: alert %g fire/clear inconsistent\n", file,
                         a.get("id")->number);
            return false;
        }
        active += act->boolean ? 1 : 0;
    }
    if (doc->get("fired")->number != double(alerts->array.size()) ||
        doc->get("active")->number != active) {
        std::fprintf(stderr, "%s: fired/active counters mismatch\n",
                     file);
        return false;
    }
    std::printf("%s: alerts schema ok (%zu alerts, %zu faults)\n", file,
                alerts->array.size(), faults->array.size());
    return true;
}

/**
 * Validate one simulator self-profile (mscclpp.simprof v1): the schema
 * stamp, the counters, and the gap-accounting invariants SimProf
 * promises — every nanosecond of measured wall time lands in exactly
 * one bucket, so the origin/section rows plus the scheduler's own
 * dispatch and idle-hook buckets sum exactly to wall_measured_ns, and
 * attributed + unattributed == wall with the percentage consistent.
 */
bool
checkSimprofSchema(const char* file, const std::string& text)
{
    namespace json = mscclpp::tuner::json;
    std::optional<json::Value> doc = openSchema(
        file, text, "mscclpp.simprof", 1,
        {"wall_measured_ns", "attributed_ns", "unattributed_ns",
         "attributed_pct", "runs", "events_profiled", "events_per_sec",
         "dispatch_closure_copies", "events_total", "max_queue_depth"});
    if (!doc) {
        return false;
    }
    const double wall = doc->get("wall_measured_ns")->number;
    const double attr = doc->get("attributed_ns")->number;
    const double unattr = doc->get("unattributed_ns")->number;
    if (attr + unattr != wall) {
        std::fprintf(stderr,
                     "%s: attributed %g + unattributed %g != wall %g\n",
                     file, attr, unattr, wall);
        return false;
    }
    const double pct = doc->get("attributed_pct")->number;
    if (pct < 0 || pct > 100) {
        std::fprintf(stderr, "%s: attributed_pct %g out of [0,100]\n",
                     file, pct);
        return false;
    }
    const json::Value* sched = doc->get("scheduler");
    if (sched == nullptr || !sched->isObject() ||
        !requireNumbers(file, "scheduler", *sched,
                        {"dispatch_ns", "idle_hook_ns",
                         "idle_hook_calls"})) {
        return false;
    }
    const json::Value* frames = doc->get("frames");
    if (frames == nullptr || !frames->isObject() ||
        !requireNumbers(file, "frames", *frames,
                        {"created", "live", "peak"})) {
        return false;
    }
    if (frames->get("live")->number > frames->get("peak")->number) {
        std::fprintf(stderr, "%s: frames live %g > peak %g\n", file,
                     frames->get("live")->number,
                     frames->get("peak")->number);
        return false;
    }
    const json::Value* byOrigin = doc->get("events_by_origin");
    if (byOrigin == nullptr || !byOrigin->isObject()) {
        std::fprintf(stderr, "%s: missing events_by_origin\n", file);
        return false;
    }
    double originEvents = 0;
    for (const auto& [origin, count] : byOrigin->object) {
        if (!count.isNumber() || count.number < 0) {
            std::fprintf(stderr,
                         "%s: events_by_origin[%s] not a count\n", file,
                         origin.c_str());
            return false;
        }
        originEvents += count.number;
    }
    if (originEvents > doc->get("events_total")->number) {
        std::fprintf(stderr,
                     "%s: per-origin counts %g exceed events_total %g\n",
                     file, originEvents,
                     doc->get("events_total")->number);
        return false;
    }
    const json::Value* origins = doc->get("origins");
    if (origins == nullptr || !origins->isArray()) {
        std::fprintf(stderr, "%s: missing origins array\n", file);
        return false;
    }
    double rowNs = 0;
    double unattrRowNs = 0;
    for (const json::Value& row : origins->array) {
        const json::Value* label = row.get("origin");
        const json::Value* kind = row.get("kind");
        if (label == nullptr || !label->isString() ||
            label->string.empty() || kind == nullptr ||
            !kind->isString() ||
            (kind->string != "event" && kind->string != "section" &&
             kind->string != "other")) {
            std::fprintf(stderr, "%s: origin row bad label/kind\n",
                         file);
            return false;
        }
        if (!requireNumbers(file, label->string.c_str(), row,
                            {"events", "host_ns", "pct"})) {
            return false;
        }
        if (row.get("host_ns")->number < 0 ||
            row.get("pct")->number < 0 ||
            row.get("pct")->number > 100) {
            std::fprintf(stderr, "%s: origin %s negative/overfull\n",
                         file, label->string.c_str());
            return false;
        }
        rowNs += row.get("host_ns")->number;
        if (label->string == "unattributed") {
            unattrRowNs += row.get("host_ns")->number;
        }
    }
    // The gap-accounting identity: rows + scheduler buckets == wall,
    // exactly (all integers in the dump).
    const double accounted = rowNs + sched->get("dispatch_ns")->number +
                             sched->get("idle_hook_ns")->number;
    if (accounted != wall) {
        std::fprintf(stderr,
                     "%s: buckets sum to %gns, wall is %gns\n", file,
                     accounted, wall);
        return false;
    }
    if (unattrRowNs != unattr) {
        std::fprintf(stderr,
                     "%s: unattributed row %gns != unattributed_ns %g\n",
                     file, unattrRowNs, unattr);
        return false;
    }
    std::printf("%s: simprof schema ok (%zu origins, %.3f%% "
                "attributed)\n",
                file, origins->array.size(), pct);
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> required;
    std::vector<const char*> files;
    bool benchSchema = false;
    bool flightSchema = false;
    bool hangSchema = false;
    bool servingSchema = false;
    bool reqtraceSchema = false;
    bool timeseriesSchema = false;
    bool alertsSchema = false;
    bool simprofSchema = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--require=", 0) == 0) {
            required.push_back(arg.substr(10));
        } else if (arg == "--bench-schema") {
            benchSchema = true;
        } else if (arg == "--flight-schema") {
            flightSchema = true;
        } else if (arg == "--hang-schema") {
            hangSchema = true;
        } else if (arg == "--serving-schema") {
            servingSchema = true;
        } else if (arg == "--reqtrace-schema") {
            reqtraceSchema = true;
        } else if (arg == "--timeseries-schema") {
            timeseriesSchema = true;
        } else if (arg == "--alerts-schema") {
            alertsSchema = true;
        } else if (arg == "--simprof-schema") {
            simprofSchema = true;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--bench-schema] [--flight-schema] "
                     "[--hang-schema] [--serving-schema] "
                     "[--reqtrace-schema] [--timeseries-schema] "
                     "[--alerts-schema] [--simprof-schema] "
                     "[--require=<substring>]... <file.json>...\n",
                     argv[0]);
        return 2;
    }
    int rc = 0;
    std::string all;
    for (const char* file : files) {
        std::ifstream f(file);
        if (!f) {
            std::fprintf(stderr, "%s: cannot open\n", file);
            rc = 1;
            continue;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        std::string text = ss.str();
        if (text.empty()) {
            std::fprintf(stderr, "%s: empty file\n", file);
            rc = 1;
            continue;
        }
        Parser p(text);
        if (!p.parse()) {
            std::fprintf(stderr, "%s: parse error near byte %zu\n",
                         file, p.errorPos());
            rc = 1;
            continue;
        }
        std::printf("%s: ok (%zu bytes)\n", file, text.size());
        if (benchSchema && !checkBenchSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (flightSchema && !checkFlightSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (hangSchema && !checkHangSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (servingSchema && !checkServingSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (reqtraceSchema && !checkReqtraceSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (timeseriesSchema && !checkTimeseriesSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (alertsSchema && !checkAlertsSchema(file, text)) {
            rc = 1;
            continue;
        }
        if (simprofSchema && !checkSimprofSchema(file, text)) {
            rc = 1;
            continue;
        }
        all += text;
    }
    for (const std::string& want : required) {
        if (all.find(want) == std::string::npos) {
            std::fprintf(stderr, "required '%s' not found in any file\n",
                         want.c_str());
            rc = 1;
        } else {
            std::printf("required '%s': present\n", want.c_str());
        }
    }
    return rc;
}
