/**
 * Continuous-telemetry unit tests: TimeSeries bucketing and
 * kind-aware coarsening, the SloMonitor multi-window burn-rate
 * fire/clear state machine (including frontier monotonicity against
 * out-of-order first-token timestamps), and the zero-perturbation
 * invariant — enabling the whole telemetry stack must not move a
 * single virtual timestamp of the serving run it observes.
 */
#include "core/errors.hpp"
#include "obs/slomon.hpp"
#include "obs/timeseries.hpp"
#include "serving/cluster.hpp"
#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace mscclpp {
namespace {

TEST(TimeSeries, DisabledRecordsNothing)
{
    obs::TimeSeries ts;
    ts.record("g", sim::us(10), 1.0);
    ts.accumulate("c", sim::us(10), 1.0);
    ts.chargeRange("u", 0, sim::us(10));
    EXPECT_EQ(ts.seriesCount(), 0u);
    EXPECT_EQ(ts.samples(), 0u);
}

TEST(TimeSeries, GaugeLastSampleInIntervalWins)
{
    if (!obs::TimeSeries::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::TimeSeries ts(sim::us(10));
    ts.setEnabled(true);
    ts.record("kv", sim::us(1), 100.0);
    ts.record("kv", sim::us(9), 250.0); // same interval, later: wins
    ts.record("kv", sim::us(11), 50.0); // next interval
    EXPECT_EQ(ts.kindOf("kv"), obs::SeriesKind::Gauge);
    const auto* pts = ts.points("kv");
    ASSERT_NE(pts, nullptr);
    ASSERT_EQ(pts->size(), 2u);
    EXPECT_DOUBLE_EQ(pts->at(0), 250.0);
    EXPECT_DOUBLE_EQ(pts->at(1), 50.0);
}

TEST(TimeSeries, CounterDeltasAddWithinAnInterval)
{
    if (!obs::TimeSeries::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::TimeSeries ts(sim::us(10));
    ts.setEnabled(true);
    ts.accumulate("ops", sim::us(2), 1.0);
    ts.accumulate("ops", sim::us(7), 3.0);
    ts.accumulate("ops", sim::us(12), 1.0);
    EXPECT_EQ(ts.kindOf("ops"), obs::SeriesKind::CounterDelta);
    const auto* pts = ts.points("ops");
    ASSERT_NE(pts, nullptr);
    EXPECT_DOUBLE_EQ(pts->at(0), 4.0);
    EXPECT_DOUBLE_EQ(pts->at(1), 1.0);
}

TEST(TimeSeries, ChargeRangeSpreadsBusyTimeAcrossIntervals)
{
    if (!obs::TimeSeries::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::TimeSeries ts(sim::us(10));
    ts.setEnabled(true);
    // [5us, 25us): half of interval 0, all of 1, half of 2.
    ts.chargeRange("link", sim::us(5), sim::us(25));
    EXPECT_EQ(ts.kindOf("link"), obs::SeriesKind::Utilization);
    const auto* pts = ts.points("link");
    ASSERT_NE(pts, nullptr);
    EXPECT_DOUBLE_EQ(pts->at(0), static_cast<double>(sim::us(5)));
    EXPECT_DOUBLE_EQ(pts->at(1), static_cast<double>(sim::us(10)));
    EXPECT_DOUBLE_EQ(pts->at(2), static_cast<double>(sim::us(5)));
    // mean() normalises utilization to busy percent (the exported
    // unit): 20us busy over the 3 recorded intervals (30us) = 66.7%.
    EXPECT_NEAR(ts.mean("link"), 200.0 / 3.0, 1e-9);
}

TEST(TimeSeries, CoarseningKeepsKindSemanticsAndSpanBound)
{
    if (!obs::TimeSeries::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::TimeSeries ts(sim::us(1));
    ts.setEnabled(true);
    // 600 intervals exceed the 512-interval span cap: the width must
    // double once, merging interval pairs per their kind.
    for (int i = 0; i < 600; ++i) {
        ts.accumulate("events", sim::us(i), 1.0);
        ts.record("level", sim::us(i), static_cast<double>(i));
    }
    EXPECT_EQ(ts.coarsenings(), 1);
    EXPECT_EQ(ts.intervalWidth(), sim::us(2));
    const auto* ev = ts.points("events");
    const auto* lv = ts.points("level");
    ASSERT_NE(ev, nullptr);
    ASSERT_NE(lv, nullptr);
    // Counter deltas add across the merged pair...
    EXPECT_DOUBLE_EQ(ev->at(0), 2.0);
    // ...while a gauge keeps the later of the two samples.
    EXPECT_DOUBLE_EQ(lv->at(0), 1.0);
    // Span bound holds and no counter mass was lost.
    EXPECT_LE(ev->rbegin()->first - ev->begin()->first + 1, 512u);
    double sum = 0.0;
    for (const auto& [idx, v] : *ev) {
        (void)idx;
        sum += v;
    }
    EXPECT_DOUBLE_EQ(sum, 600.0);
}

TEST(TimeSeries, JsonAndChromeCounterExport)
{
    if (!obs::TimeSeries::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::TimeSeries ts(sim::us(10));
    ts.setEnabled(true);
    ts.chargeRange("link.util.gpu0.tx", 0, sim::us(5));
    ts.record("replica.batch", sim::us(3), 4.0);
    const std::string json = ts.toJson();
    EXPECT_NE(json.find("\"schema\": \"mscclpp.timeseries\""),
              std::string::npos);
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
    EXPECT_NE(json.find("\"gauge\""), std::string::npos);
    // Utilization exports as percent of the interval: 5us busy of a
    // 10us interval = 50%.
    EXPECT_NE(json.find("50"), std::string::npos);
    const std::vector<std::string> events = ts.chromeCounterEvents();
    ASSERT_EQ(events.size(), 2u);
    for (const std::string& e : events) {
        EXPECT_NE(e.find("\"ph\":\"C\""), std::string::npos) << e;
        EXPECT_NE(e.find("\"args\""), std::string::npos) << e;
    }
}

// ---------------------------------------------------------------------------
// SloMonitor: multi-window burn-rate fire/clear.
// ---------------------------------------------------------------------------

obs::SloMonitor
makeMonitor()
{
    obs::SloMonitor m;
    m.setEnabled(true);
    m.setFile(""); // unit tests never dump
    m.setIntervalWidth(sim::msec(10));
    m.setSlo(/*ttft=*/sim::msec(50), /*tpot=*/0);
    m.setWindows(/*fast=*/2, /*slow=*/4);
    m.setBudget(0.5);
    m.setBurnThreshold(1.0);
    return m;
}

/** One request whose TTFT lands at @p at with the given latency. */
void
observe(obs::SloMonitor& m, int replica, sim::Time at, sim::Time ttft)
{
    m.onRequestDone(replica, at, at + sim::msec(1), ttft, 0);
}

TEST(SloMonitor, CleanTrafficNeverFires)
{
    if (!obs::SloMonitor::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::SloMonitor m = makeMonitor();
    for (int i = 0; i < 20; ++i) {
        observe(m, 0, sim::msec(10) * i + sim::msec(1), sim::msec(20));
    }
    EXPECT_EQ(m.observed(), 20u);
    EXPECT_EQ(m.ttftViolations(), 0u);
    EXPECT_TRUE(m.alerts().empty());
}

TEST(SloMonitor, IsolatedViolationStaysBelowThreshold)
{
    if (!obs::SloMonitor::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::SloMonitor m = makeMonitor();
    // One violation drowned by healthy neighbours already in the fast
    // window: fraction 1/4 -> burn 0.5 < 1.0, so no alert. (Order
    // matters — evaluation is per sample, so the healthy traffic must
    // be in the window before the violation arrives.)
    for (int i = 0; i < 3; ++i) {
        observe(m, 0, sim::msec(1) * (i + 1), sim::msec(20));
    }
    observe(m, 0, sim::msec(11), sim::msec(80));
    EXPECT_EQ(m.ttftViolations(), 1u);
    EXPECT_TRUE(m.alerts().empty());
}

TEST(SloMonitor, FiresOnSustainedBurnAndClearsOnRecovery)
{
    if (!obs::SloMonitor::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::SloMonitor m = makeMonitor();
    m.setLinkBlamer([](int replica, sim::Time, sim::Time) {
        return replica == 1 ? "gpu3.tx" : "";
    });
    // Replica 1 violates hard across two intervals (3 violations to
    // every healthy replica-0 request); the sustained 0.75 fraction
    // keeps the burn rate >= 1.0 at every per-sample evaluation, so
    // exactly one alert fires and stays active until recovery —
    // blaming replica 1 and its link.
    for (int i = 0; i < 2; ++i) {
        const sim::Time base = sim::msec(10) * i;
        observe(m, 0, base + sim::msec(1), sim::msec(20));
        for (int v = 0; v < 3; ++v) {
            observe(m, 1, base + sim::msec(2) * (v + 1), sim::msec(90));
        }
    }
    ASSERT_EQ(m.alerts().size(), 1u);
    const obs::SloAlert& a = m.alerts()[0];
    EXPECT_EQ(a.dimension, "ttft");
    EXPECT_TRUE(a.active());
    EXPECT_EQ(m.activeAlerts(), 1u);
    EXPECT_GE(a.burnFast, 1.0);
    EXPECT_GE(a.burnSlow, 1.0);
    EXPECT_EQ(a.blamedReplica, 1);
    EXPECT_EQ(a.blamedLink, "gpu3.tx");
    // Recovery: two all-healthy intervals push the fast window below
    // the threshold and the alert clears at a recovering sample's
    // timestamp.
    for (int i = 2; i < 4; ++i) {
        const sim::Time base = sim::msec(10) * i;
        observe(m, 0, base + sim::msec(1), sim::msec(20));
        for (int v = 0; v < 3; ++v) {
            observe(m, 1, base + sim::msec(2) * (v + 1), sim::msec(20));
        }
    }
    EXPECT_FALSE(m.alerts()[0].active());
    EXPECT_EQ(m.activeAlerts(), 0u);
    EXPECT_GT(m.alerts()[0].clearedAt, m.alerts()[0].firedAt);
    // No re-fire happened.
    EXPECT_EQ(m.alerts().size(), 1u);
}

TEST(SloMonitor, StragglerSampleNeverRewindsTheTimeline)
{
    if (!obs::SloMonitor::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::SloMonitor m = makeMonitor();
    // Fire and clear an alert (as above, single replica).
    for (int i = 0; i < 2; ++i) {
        observe(m, 0, sim::msec(10) * i + sim::msec(1), sim::msec(90));
    }
    for (int i = 2; i < 4; ++i) {
        observe(m, 0, sim::msec(10) * i + sim::msec(1), sim::msec(20));
    }
    ASSERT_EQ(m.alerts().size(), 1u);
    const sim::Time cleared = m.alerts()[0].clearedAt;
    ASSERT_GT(cleared, 0);
    // A long-decode straggler retires now but carries a first-token
    // timestamp from the (already-evaluated) fault era. Its sample
    // lands in the old bucket, but fire/clear decisions only happen
    // at the frontier — the timeline must not rewind or re-fire.
    m.onRequestDone(0, /*firstTokenAt=*/sim::msec(5),
                    /*completedAt=*/sim::msec(45), sim::msec(90), 0);
    EXPECT_EQ(m.alerts().size(), 1u);
    EXPECT_EQ(m.alerts()[0].clearedAt, cleared);
    EXPECT_EQ(m.activeAlerts(), 0u);
}

TEST(SloMonitor, RejectsDegenerateConfig)
{
    obs::SloMonitor m;
    EXPECT_THROW(m.setWindows(0, 4), Error);
    EXPECT_THROW(m.setWindows(4, 2), Error);
    EXPECT_THROW(m.setBudget(0.0), Error);
    EXPECT_THROW(m.setBudget(1.5), Error);
    EXPECT_THROW(m.setBurnThreshold(0.0), Error);
}

// ---------------------------------------------------------------------------
// Zero virtual-time perturbation: the telemetry stack is a pure
// observer of the serving run.
// ---------------------------------------------------------------------------

TEST(TimeSeriesIntegration, TelemetryNeverPerturbsVirtualTime)
{
    if (!obs::SloMonitor::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    serving::ServingConfig plain;
    plain.replicas = 2;
    plain.workload.requests = 8;
    plain.workload.ratePerSec = 8.0;
    serving::ServingCluster base(plain);
    for (int i = 0; i < base.numReplicas(); ++i) {
        base.replica(i).machine().obs().setDumpOnDestroy(false);
    }
    serving::ServingReport baseRep = base.run();

    serving::ServingConfig observed = plain;
    observed.slomon = true;
    observed.slomonFile.clear();
    observed.env.timeseriesEnabled = true;
    serving::ServingCluster telemetry(observed);
    for (int i = 0; i < telemetry.numReplicas(); ++i) {
        telemetry.replica(i).machine().obs().setDumpOnDestroy(false);
    }
    serving::ServingReport obsRep = telemetry.run();

    EXPECT_EQ(baseRep.makespan, obsRep.makespan);
    EXPECT_EQ(baseRep.ttftP99, obsRep.ttftP99);
    EXPECT_EQ(baseRep.e2eP99, obsRep.e2eP99);
    EXPECT_EQ(baseRep.requests, obsRep.requests);
}

} // namespace
} // namespace mscclpp
