#include "channel/channel_mesh.hpp"
#include "collective/api.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "core/errors.hpp"
#include "dsl/algorithms.hpp"
#include "dsl/executor.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace dsl = mscclpp::dsl;
using namespace mscclpp;

namespace {

struct MeshHarness
{
    MeshHarness(Protocol proto, Transport transport = Transport::Memory)
        : machine(fab::makeA100_40G(), 1)
    {
        auto boots = createInProcessBootstrap(machine.numGpus());
        for (int r = 0; r < machine.numGpus(); ++r) {
            comms.push_back(
                std::make_unique<Communicator>(boots[r], machine));
            data.push_back(machine.gpu(r).alloc(64 << 10));
            scratch.push_back(machine.gpu(r).alloc(64 << 10));
            gpu::fillPattern(data.back(), gpu::DataType::F32, r);
        }
        std::vector<Communicator*> cp;
        for (auto& c : comms) {
            cp.push_back(c.get());
        }
        MeshOptions opt;
        opt.protocol = proto;
        opt.transport = transport;
        mesh.emplace(ChannelMesh::build(cp, data, scratch, opt));
    }

    gpu::Machine machine;
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> data;
    std::vector<gpu::DeviceBuffer> scratch;
    std::optional<ChannelMesh> mesh;
};

} // namespace

// ---------------------------------------------------------------------------
// Figure 6 element read/write (LL protocol).
// ---------------------------------------------------------------------------

TEST(ElementReadWrite, SingleElementRoundTrip)
{
    MeshHarness h(Protocol::LL);
    double got = 0;
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 0) {
            co_await h.mesh->mem(0, 1).write<double>(ctx, 3, 2.718);
        } else if (rank == 1) {
            got = co_await h.mesh->mem(1, 0).read<double>(ctx, 3);
        }
    };
    gpu::runOnAllRanks(h.machine, gpu::LaunchConfig{}, fn);
    EXPECT_DOUBLE_EQ(got, 2.718);
    // The element landed in rank 1's receive (scratch) buffer.
    EXPECT_DOUBLE_EQ(h.scratch[1].as<double>()[3], 2.718);
}

TEST(ElementReadWrite, SequenceOfElements)
{
    MeshHarness h(Protocol::LL);
    std::vector<float> got;
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 2) {
            for (int i = 0; i < 5; ++i) {
                co_await h.mesh->mem(2, 3).write<float>(ctx, i,
                                                        1.5f * i);
            }
        } else if (rank == 3) {
            for (int i = 0; i < 5; ++i) {
                got.push_back(
                    co_await h.mesh->mem(3, 2).read<float>(ctx, i));
            }
        }
    };
    gpu::runOnAllRanks(h.machine, gpu::LaunchConfig{}, fn);
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_FLOAT_EQ(got[i], 1.5f * i);
    }
}

TEST(ElementReadWrite, RequiresLlProtocol)
{
    MeshHarness h(Protocol::HB);
    bool threw = false;
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 0) {
            try {
                co_await h.mesh->mem(0, 1).write<int>(ctx, 0, 1);
            } catch (const Error&) {
                threw = true;
            }
        }
    };
    gpu::runOnAllRanks(h.machine, gpu::LaunchConfig{}, fn);
    EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------------
// PortChannel putWithSignalAndFlush.
// ---------------------------------------------------------------------------

TEST(PortChannelFused, PutWithSignalAndFlushDrainsWire)
{
    MeshHarness h(Protocol::HB, Transport::Port);
    sim::Time doneAt = 0;
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == 0) {
            co_await h.mesh->port(0, 1).putWithSignalAndFlush(ctx, 0, 0,
                                                              32 << 10);
            doneAt = ctx.scheduler().now();
        } else if (rank == 1) {
            co_await h.mesh->port(1, 0).wait(ctx);
        }
    };
    gpu::runOnAllRanks(h.machine, gpu::LaunchConfig{}, fn);
    h.mesh->shutdown();
    h.machine.run();
    // Flush implies the wire drained: at least the transfer time.
    EXPECT_GT(doneAt, sim::us(4));
    EXPECT_EQ(gpu::readElement(h.scratch[1], gpu::DataType::F32, 3),
              gpu::patternValue(gpu::DataType::F32, 0, 3));
}

TEST(PortChannelFused, DeviceInitiatedSkipsProxyCosts)
{
    // Section 3.2.1 extension: identical kernel, cheaper engine.
    auto round = [](bool deviceInitiated) {
        MeshHarness h(Protocol::HB, Transport::Memory);
        MeshOptions opt;
        opt.transport = Transport::Port;
        opt.deviceInitiatedPort = deviceInitiated;
        std::vector<Communicator*> cp;
        for (auto& c : h.comms) {
            cp.push_back(c.get());
        }
        auto mesh = ChannelMesh::build(cp, h.data, h.scratch, opt);
        sim::Time done = 0;
        auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
            if (rank == 0) {
                co_await mesh.port(0, 1).putWithSignalAndFlush(ctx, 0, 0,
                                                               4096);
                done = ctx.scheduler().now();
            } else if (rank == 1) {
                co_await mesh.port(1, 0).wait(ctx);
            }
        };
        gpu::runOnAllRanks(h.machine, gpu::LaunchConfig{}, fn);
        mesh.shutdown();
        h.machine.run();
        return done;
    };
    sim::Time proxy = round(false);
    sim::Time device = round(true);
    EXPECT_LT(device, proxy);
    // The managed-memory poll alone is 900ns; expect a solid cut.
    EXPECT_LT(device + sim::ns(900), proxy);
}

// ---------------------------------------------------------------------------
// Environment-variable tuning overrides.
// ---------------------------------------------------------------------------

TEST(EnvOverrides, VariablesOverrideFields)
{
    setenv("MSCCLPP_INTRA_BW_GBPS", "123.5", 1);
    setenv("MSCCLPP_SEM_POLL_NS", "999", 1);
    setenv("MSCCLPP_NCCL_SLOT_KB", "256", 1);
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::applyEnvOverrides(cfg);
    EXPECT_DOUBLE_EQ(cfg.intraBwGBps, 123.5);
    EXPECT_EQ(cfg.semaphorePoll, sim::ns(999));
    EXPECT_EQ(cfg.ncclSlotBytes, 256u << 10);
    unsetenv("MSCCLPP_INTRA_BW_GBPS");
    unsetenv("MSCCLPP_SEM_POLL_NS");
    unsetenv("MSCCLPP_NCCL_SLOT_KB");
    // Unset variables leave defaults untouched.
    fab::EnvConfig fresh = fab::makeA100_40G();
    fab::applyEnvOverrides(fresh);
    EXPECT_DOUBLE_EQ(fresh.intraBwGBps, 300.0);
}

// ---------------------------------------------------------------------------
// Fabric utilisation report.
// ---------------------------------------------------------------------------

TEST(FabricStats, PortStatsTrackCollectiveTraffic)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    coll.allReduce(1 << 20, gpu::DataType::F32, gpu::ReduceOp::Sum,
                   AllReduceAlgo::AllPairs2PHB);
    for (int r = 0; r < 8; ++r) {
        auto st = m.fabric().portStats(r);
        // 2PA: each tx carries 2 * 7/8 of the message.
        EXPECT_GE(st.txBytes, std::uint64_t(2 * 7) * (1 << 20) / 8);
        EXPECT_GE(st.rxBytes, std::uint64_t(2 * 7) * (1 << 20) / 8);
        EXPECT_EQ(st.nicTxBytes, 0u);
    }
    std::string report = m.fabric().utilizationReport();
    EXPECT_NE(report.find("rank"), std::string::npos);
    EXPECT_NE(report.find("\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DSL validation and serialization.
// ---------------------------------------------------------------------------

TEST(DslValidate, WellFormedProgramsPass)
{
    dsl::Program p = dsl::buildAllPairs2PAllReduceHB(8, 256 << 10);
    EXPECT_TRUE(p.validate(1 << 20, 4 << 20).empty());
    dsl::Program rs = dsl::buildAllPairsReduceScatter(8, 256 << 10);
    EXPECT_TRUE(rs.validate(1 << 20, 4 << 20).empty());
}

TEST(DslValidate, CatchesMissingWait)
{
    dsl::Program p("broken", 2);
    p.onRank(0)
        .put(1, {dsl::BufKind::Input, 0, 64}, {dsl::BufKind::Input, 0, 64})
        .signal(1);
    // rank 1 never waits.
    auto problems = p.validate(1 << 10, 1 << 10);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("signal"), std::string::npos);
}

TEST(DslValidate, CatchesBufferOverrunAndSelfPeer)
{
    dsl::Program p("broken", 2);
    p.onRank(0).put(1, {dsl::BufKind::Input, 512, 1024},
                    {dsl::BufKind::Scratch, 0, 1024});
    p.onRank(1).put(1, {dsl::BufKind::Input, 0, 64},
                    {dsl::BufKind::Scratch, 0, 64});
    auto problems = p.validate(1 << 10, 1 << 20);
    // Overrun (512+1024 > 1024) and self-addressed peer.
    EXPECT_GE(problems.size(), 2u);
}

TEST(DslValidate, CatchesBarrierMismatch)
{
    dsl::Program p("broken", 2);
    p.onRank(0).barrier();
    auto problems = p.validate(1 << 10, 1 << 10);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("barrier"), std::string::npos);
}

TEST(DslValidate, CatchesGridBarrierImbalance)
{
    dsl::Program p("broken", 2);
    p.onRank(0).threadBlock(0).gridBarrier();
    p.onRank(0)
        .threadBlock(1)
        .put(1, {dsl::BufKind::Input, 0, 64},
             {dsl::BufKind::Input, 0, 64})
        .signal(1);
    p.onRank(1).wait(0);
    auto problems = p.validate(1 << 10, 1 << 10);
    bool found = false;
    for (const auto& msg : problems) {
        found = found || msg.find("gridBarrier") != std::string::npos;
    }
    EXPECT_TRUE(found);
}

TEST(DslSerialize, RoundTripPreservesProgram)
{
    dsl::Program p = dsl::buildAllPairs2PAllReduceLL(8, 128 << 10);
    std::string text = p.serialize();
    dsl::Program q = dsl::Program::deserialize(text);
    EXPECT_EQ(q.name(), p.name());
    EXPECT_EQ(q.numRanks(), p.numRanks());
    EXPECT_EQ(q.totalInstructions(), p.totalInstructions());
    EXPECT_EQ(q.numThreadBlocks(), p.numThreadBlocks());
    for (int r = 0; r < 8; ++r) {
        ASSERT_EQ(q.instructions(r).size(), p.instructions(r).size());
        for (std::size_t i = 0; i < p.instructions(r).size(); ++i) {
            EXPECT_EQ(q.instructions(r)[i].describe(),
                      p.instructions(r)[i].describe());
        }
    }
    EXPECT_THROW(dsl::Program::deserialize("garbage"), Error);
}

TEST(DslSerialize, DeserializedProgramExecutes)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    dsl::Executor ex(m, 1 << 20);
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(ex.dataBuffer(r), gpu::DataType::F32, r);
    }
    dsl::Program p = dsl::Program::deserialize(
        dsl::buildAllPairs2PAllReduceHB(8, 64 << 10).serialize());
    ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
    float expected = 0.0f;
    for (int r = 0; r < 8; ++r) {
        expected += gpu::patternValue(gpu::DataType::F32, r, 9);
    }
    EXPECT_FLOAT_EQ(
        gpu::readElement(ex.dataBuffer(4), gpu::DataType::F32, 9),
        expected);
}

// ---------------------------------------------------------------------------
// Rooted collectives: Reduce, Gather, Scatter.
// ---------------------------------------------------------------------------

TEST(RootedCollectives, ReduceToRoot)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(coll.dataBuffer(r), gpu::DataType::F32, r);
    }
    coll.reduce(64 << 10, gpu::DataType::F32, gpu::ReduceOp::Sum, 3);
    for (std::size_t i = 0; i < (64 << 10) / 4; i += 101) {
        float expected = 0.0f;
        for (int r = 0; r < 8; ++r) {
            expected += gpu::patternValue(gpu::DataType::F32, r, i);
        }
        ASSERT_FLOAT_EQ(gpu::readElement(coll.dataBuffer(3),
                                         gpu::DataType::F32, i),
                        expected);
    }
    // Non-roots keep their own data.
    EXPECT_FLOAT_EQ(
        gpu::readElement(coll.dataBuffer(1), gpu::DataType::F32, 10),
        gpu::patternValue(gpu::DataType::F32, 1, 10));
}

TEST(RootedCollectives, GatherAndScatterAcrossNodes)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    const std::size_t shard = 16 << 10;
    for (int r = 0; r < 16; ++r) {
        gpu::fillPattern(coll.dataBuffer(r).view(r * shard, shard),
                         gpu::DataType::F32, r);
    }
    coll.gather(shard, 0);
    for (int src = 0; src < 16; ++src) {
        ASSERT_FLOAT_EQ(gpu::readElement(coll.dataBuffer(0),
                                         gpu::DataType::F32,
                                         src * (shard / 4) + 2),
                        gpu::patternValue(gpu::DataType::F32, src, 2))
            << src;
    }
    // Root rewrites every shard, scatter distributes them back.
    for (int r = 0; r < 16; ++r) {
        gpu::fillPattern(coll.dataBuffer(0).view(r * shard, shard),
                         gpu::DataType::F32, r, /*seed=*/42);
    }
    coll.scatter(shard, 0);
    for (int r = 1; r < 16; ++r) {
        ASSERT_FLOAT_EQ(gpu::readElement(coll.dataBuffer(r),
                                         gpu::DataType::F32,
                                         r * (shard / 4) + 5),
                        gpu::patternValue(gpu::DataType::F32, r, 5, 42))
            << r;
    }
}

TEST(RootedCollectives, ValidateArguments)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    EXPECT_THROW(coll.reduce(64 << 10, gpu::DataType::F32,
                             gpu::ReduceOp::Sum, 99),
                 Error);
    EXPECT_THROW(coll.gather(1 << 20, 0), Error);
    EXPECT_THROW(coll.scatter(0, 0), Error);
}

// ---------------------------------------------------------------------------
// AllToAllV (MoE-style variable dispatch).
// ---------------------------------------------------------------------------

namespace {

std::vector<std::vector<std::size_t>>
moePattern(int n, unsigned seed)
{
    // Deterministic skewed pattern: 16-byte-aligned block sizes.
    std::vector<std::vector<std::size_t>> bytes(
        n, std::vector<std::size_t>(n, 0));
    for (int r = 0; r < n; ++r) {
        for (int p = 0; p < n; ++p) {
            std::size_t units = ((r * 31 + p * 17 + seed) % 9);
            bytes[r][p] = units * 256; // 0 .. 2 KiB, some zero
        }
    }
    return bytes;
}

} // namespace

TEST(AllToAllV, VariableBlocksLandGroupedBySource)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    const int n = 8;
    auto bytes = moePattern(n, 3);

    // Fill each send block with a (src,dst)-seeded pattern.
    std::vector<std::vector<std::size_t>> sendOff(
        n, std::vector<std::size_t>(n, 0));
    for (int r = 0; r < n; ++r) {
        std::size_t off = 0;
        for (int p = 0; p < n; ++p) {
            sendOff[r][p] = off;
            if (bytes[r][p] > 0) {
                gpu::fillPattern(
                    coll.dataBuffer(r).view(off, bytes[r][p]),
                    gpu::DataType::F32, r, 1000u * p);
            }
            off += bytes[r][p];
        }
    }
    coll.allToAllV(bytes);
    for (int p = 0; p < n; ++p) {
        std::size_t off = 0;
        for (int src = 0; src < n; ++src) {
            std::size_t b = bytes[src][p];
            for (std::size_t i = 0; i < b / 4; i += 7) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(coll.dataBuffer(p),
                                     gpu::DataType::F32, off / 4 + i),
                    gpu::patternValue(gpu::DataType::F32, src, i,
                                      1000u * p))
                    << "dst " << p << " src " << src;
            }
            off += b;
        }
    }
}

TEST(AllToAllV, CrossNodeAndRepeatedCalls)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    const int n = 16;
    for (unsigned round = 0; round < 3; ++round) {
        auto bytes = moePattern(n, round);
        std::size_t off0 = 0;
        std::vector<std::vector<std::size_t>> sendOff(
            n, std::vector<std::size_t>(n, 0));
        for (int r = 0; r < n; ++r) {
            std::size_t off = 0;
            for (int p = 0; p < n; ++p) {
                sendOff[r][p] = off;
                if (bytes[r][p] > 0) {
                    gpu::fillPattern(
                        coll.dataBuffer(r).view(off, bytes[r][p]),
                        gpu::DataType::F32, r, round * 100 + p);
                }
                off += bytes[r][p];
            }
        }
        (void)off0;
        sim::Time t = coll.allToAllV(bytes);
        EXPECT_GT(t, 0u);
        // Spot-check one cross-node block: src 2 -> dst 11.
        std::size_t off = 0;
        for (int src = 0; src < 2; ++src) {
            off += bytes[src][11];
        }
        if (bytes[2][11] > 0) {
            ASSERT_FLOAT_EQ(
                gpu::readElement(coll.dataBuffer(11), gpu::DataType::F32,
                                 off / 4),
                gpu::patternValue(gpu::DataType::F32, 2, 0,
                                  round * 100 + 11));
        }
    }
}

TEST(AllToAllV, ValidatesShapes)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    CollectiveComm::Options opt;
    opt.maxBytes = 64 << 10;
    CollectiveComm coll(m, opt);
    std::vector<std::vector<std::size_t>> tooFewRows(4);
    EXPECT_THROW(coll.allToAllV(tooFewRows), Error);
    std::vector<std::vector<std::size_t>> misaligned(
        8, std::vector<std::size_t>(8, 24)); // not 16-aligned
    EXPECT_THROW(coll.allToAllV(misaligned), Error);
    std::vector<std::vector<std::size_t>> tooBig(
        8, std::vector<std::size_t>(8, 32 << 10));
    EXPECT_THROW(coll.allToAllV(tooBig), Error);
}

// ---------------------------------------------------------------------------
// Shared proxy service.
// ---------------------------------------------------------------------------

TEST(ProxyServiceShared, ServesManyChannelsCorrectly)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    auto boots = createInProcessBootstrap(m.numGpus());
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
    for (int r = 0; r < m.numGpus(); ++r) {
        comms.push_back(std::make_unique<Communicator>(boots[r], m));
        bufs.push_back(m.gpu(r).alloc(8 << 10));
        gpu::fillPattern(bufs.back(), gpu::DataType::F32, r);
    }
    std::vector<gpu::DeviceBuffer> recv;
    for (int r = 0; r < m.numGpus(); ++r) {
        recv.push_back(m.gpu(r).alloc(8 << 10));
    }
    std::vector<Communicator*> cp;
    for (auto& c : comms) {
        cp.push_back(c.get());
    }
    MeshOptions opt;
    opt.transport = Transport::Port;
    opt.sharedProxyService = true;
    auto mesh = ChannelMesh::build(cp, bufs, recv, opt);
    EXPECT_TRUE(mesh.port(0, 1).serviceManaged());

    // All-pairs exchange of 1 KiB blocks through the shared services.
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        int peer = (rank + 1 + ctx.blockIdx()) % 8;
        co_await mesh.port(rank, peer).putWithSignal(
            ctx, std::size_t(rank) << 10, std::size_t(peer) << 10, 1024);
        co_await mesh.port(rank, peer).wait(ctx);
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 7;
    gpu::runOnAllRanks(m, cfg, fn);
    mesh.shutdown();
    m.run();

    for (int r = 0; r < 8; ++r) {
        for (int src = 0; src < 8; ++src) {
            if (src == r) {
                continue;
            }
            // src sent its block at offset r<<10 of its buffer into
            // our receive slot src<<10.
            ASSERT_FLOAT_EQ(
                gpu::readElement(recv[r], gpu::DataType::F32,
                                 (std::size_t(src) << 10) / 4),
                gpu::patternValue(gpu::DataType::F32, src,
                                  (std::size_t(r) << 10) / 4))
                << r << " from " << src;
        }
    }
}
