/**
 * obs::SimProf: the simulator's host-time self-profiler. The tests
 * pin the two contracts the tentpole rests on: gap accounting (every
 * measured nanosecond lands in exactly one bucket, so the buckets sum
 * to the wall time by construction) and zero perturbation (attaching
 * the profiler cannot change any simulated result — it only reads the
 * host clock). Under MSCCLPP_NO_OBS the profiler compiles to a no-op;
 * the behavioural tests skip themselves and the no-op test runs.
 */
#include "obs/simprof.hpp"

#include "collective/api.hpp"
#include "fabric/env.hpp"
#include "gpu/machine.hpp"
#include "sim/scheduler.hpp"
#include "tuner/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace sim = mscclpp::sim;
namespace obs = mscclpp::obs;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace json = mscclpp::tuner::json;
using mscclpp::CollectiveComm;

namespace {

/** One fixed AllReduce workload; returns its summed virtual time and
 *  reports the machine's event count — the pair the zero-perturbation
 *  test compares bit-identically with the profiler on and off. */
sim::Time
runWorkload(bool profiled, std::uint64_t* events)
{
    gpu::Machine machine(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    machine.obs().setDumpOnDestroy(false);
    obs::SimProf prof;
    if (profiled) {
        prof.setEnabled(true);
        prof.attach(machine.scheduler());
    }
    CollectiveComm::Options opt;
    opt.maxBytes = std::size_t(1) << 20;
    CollectiveComm comm(machine, opt);
    sim::Time total = 0;
    for (int i = 0; i < 2; ++i) {
        total += comm.allReduce(std::size_t(1) << 20,
                                gpu::DataType::F16, gpu::ReduceOp::Sum);
    }
    *events = machine.scheduler().eventsProcessed();
    return total;
}

} // namespace

TEST(SimProf, CompiledOutIsInertNoOp)
{
    if (obs::SimProf::kCompiledIn) {
        GTEST_SKIP() << "obs compiled in; no-op contract not testable";
    }
    sim::Scheduler s;
    obs::SimProf prof;
    prof.setEnabled(true); // must stay off: compiled out
    EXPECT_FALSE(prof.enabled());
    prof.attach(s);
    EXPECT_FALSE(prof.attached());
    {
        obs::SimProf::Section sec(prof, "test.section");
    }
    s.schedule(sim::ns(1), [] {}, "test.a");
    s.run();
    EXPECT_EQ(prof.wallMeasuredNs(), 0u);
    EXPECT_EQ(prof.eventsProfiled(), 0u);
}

TEST(SimProf, ZeroPerturbation)
{
    // Identical workload, profiler off vs on: every simulated result
    // must match bit-identically. Runs in BOTH CI legs — under NO_OBS
    // it proves the disabled profiler is inert too.
    std::uint64_t eventsOff = 0;
    std::uint64_t eventsOn = 0;
    const sim::Time off = runWorkload(false, &eventsOff);
    const sim::Time on = runWorkload(true, &eventsOn);
    EXPECT_EQ(off, on);
    EXPECT_EQ(eventsOff, eventsOn);
    EXPECT_GT(eventsOff, 0u);
}

TEST(SimProf, BucketsSumToWallMeasured)
{
    if (!obs::SimProf::kCompiledIn) {
        GTEST_SKIP() << "obs compiled out";
    }
    sim::Scheduler s;
    obs::SimProf prof;
    prof.setEnabled(true);
    prof.attach(s);
    ASSERT_TRUE(prof.attached());
    for (int i = 0; i < 100; ++i) {
        s.schedule(sim::ns(i), [] {}, i % 2 ? "test.a" : "test.b");
    }
    s.schedule(sim::ns(200), [] {}); // unlabelled -> unattributed
    {
        // Wrapping the run in a Section must not double count: the
        // section is charged elapsed-minus-inner, so the global
        // identity below still holds exactly.
        obs::SimProf::Section sec(prof, "test.section");
        s.run();
    }
    EXPECT_EQ(prof.eventsProfiled(), 101u);
    EXPECT_EQ(prof.runs(), 1u);
    EXPECT_EQ(prof.closureCopiesSinceAttach(), 0u);
    auto byLabel = prof.hostNsByLabel();
    EXPECT_EQ(byLabel.count("test.a"), 1u);
    EXPECT_EQ(byLabel.count("test.b"), 1u);
    EXPECT_EQ(byLabel.count("test.section"), 1u);
    EXPECT_EQ(byLabel.count(sim::Scheduler::kUnattributed), 1u);
    std::uint64_t sum = 0;
    for (const auto& [label, ns] : byLabel) {
        sum += ns;
    }
    // The gap-accounting identity: every bucket is an inter-sample
    // gap, so the buckets reconstruct the wall time exactly.
    EXPECT_EQ(sum, prof.wallMeasuredNs());
    EXPECT_EQ(prof.attributedNs() + prof.unattributedNs(),
              prof.wallMeasuredNs());
    EXPECT_GE(prof.attributedPct(), 0.0);
    EXPECT_LE(prof.attributedPct(), 100.0);
}

TEST(SimProf, DetachStopsMeasuring)
{
    if (!obs::SimProf::kCompiledIn) {
        GTEST_SKIP() << "obs compiled out";
    }
    sim::Scheduler s;
    obs::SimProf prof;
    prof.setEnabled(true);
    prof.attach(s);
    s.schedule(sim::ns(1), [] {}, "test.a");
    s.run();
    const std::uint64_t profiled = prof.eventsProfiled();
    EXPECT_EQ(profiled, 1u);
    prof.detach();
    EXPECT_FALSE(prof.attached());
    s.schedule(sim::ns(1), [] {}, "test.a");
    s.run();
    EXPECT_EQ(prof.eventsProfiled(), profiled);
}

TEST(SimProf, TopKFoldingKeepsExactTotals)
{
    if (!obs::SimProf::kCompiledIn) {
        GTEST_SKIP() << "obs compiled out";
    }
    sim::Scheduler s;
    obs::SimProf prof;
    prof.setEnabled(true);
    prof.setTopK(2);
    prof.attach(s);
    static const char* kLabels[] = {"t.a", "t.b", "t.c", "t.d", "t.e"};
    for (int i = 0; i < 50; ++i) {
        s.schedule(sim::ns(i), [] {}, kLabels[i % 5]);
    }
    s.run();
    std::optional<json::Value> doc = json::parse(prof.toJson());
    ASSERT_TRUE(doc.has_value());
    const json::Value* origins = doc->get("origins");
    ASSERT_NE(origins, nullptr);
    ASSERT_TRUE(origins->isArray());
    // 5 labels folded to the 2 hottest plus one "(other)" aggregate.
    ASSERT_EQ(origins->array.size(), 3u);
    EXPECT_EQ(origins->array.back().get("origin")->string, "(other)");
    double rowEvents = 0;
    double rowNs = 0;
    for (const json::Value& row : origins->array) {
        rowEvents += row.get("events")->number;
        rowNs += row.get("host_ns")->number;
    }
    EXPECT_EQ(rowEvents, 50.0); // folding never loses events
    const json::Value* sched = doc->get("scheduler");
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(rowNs + sched->get("dispatch_ns")->number +
                  sched->get("idle_hook_ns")->number,
              doc->get("wall_measured_ns")->number);
    EXPECT_EQ(doc->get("dispatch_closure_copies")->number, 0.0);
}

TEST(SimProf, JsonDumpCarriesSchemaAndCounters)
{
    if (!obs::SimProf::kCompiledIn) {
        GTEST_SKIP() << "obs compiled out";
    }
    sim::Scheduler s;
    obs::SimProf prof;
    prof.setEnabled(true);
    prof.attach(s);
    s.schedule(sim::ns(1), [] {}, "test.a");
    s.run();
    std::optional<json::Value> doc = json::parse(prof.toJson());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get("schema")->string, "mscclpp.simprof");
    EXPECT_EQ(doc->get("version")->number, 1.0);
    EXPECT_EQ(doc->get("events_total")->number, 1.0);
    EXPECT_EQ(doc->get("events_profiled")->number, 1.0);
    const json::Value* byOrigin = doc->get("events_by_origin");
    ASSERT_NE(byOrigin, nullptr);
    ASSERT_TRUE(byOrigin->isObject());
    EXPECT_EQ(byOrigin->get("test.a")->number, 1.0);
    const json::Value* frames = doc->get("frames");
    ASSERT_NE(frames, nullptr);
    EXPECT_TRUE(frames->get("peak")->isNumber());
}
