#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "core/connection.hpp"
#include "core/errors.hpp"
#include "core/fifo.hpp"
#include "core/registered_memory.hpp"
#include "core/semaphore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using mscclpp::Bootstrap;
using mscclpp::Communicator;
using mscclpp::Connection;
using mscclpp::DeviceSemaphore;
using mscclpp::Error;
using mscclpp::Fifo;
using mscclpp::ProxyRequest;
using mscclpp::RegisteredMemory;
using mscclpp::Transport;

namespace {

/** Run fn(rank) on one thread per rank and join. */
void
onRankThreads(int n, const std::function<void(int)>& fn)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (int r = 0; r < n; ++r) {
        threads.emplace_back(fn, r);
    }
    for (auto& t : threads) {
        t.join();
    }
}

std::atomic<int> portCounter{0};

int
uniquePort()
{
    return 21000 + (getpid() * 7 + portCounter++ * 131) % 30000;
}

} // namespace

TEST(InProcessBootstrap, SendRecvAcrossThreads)
{
    auto boots = mscclpp::createInProcessBootstrap(4);
    onRankThreads(4, [&](int r) {
        int next = (r + 1) % 4;
        int prev = (r + 3) % 4;
        int payload = 100 + r;
        boots[r]->send(next, 7, &payload, sizeof(payload));
        int got = 0;
        boots[r]->recv(prev, 7, &got, sizeof(got));
        EXPECT_EQ(got, 100 + prev);
    });
}

TEST(InProcessBootstrap, SendRecvSingleThreadTwoPhase)
{
    // Setup code runs sequentially: sends must be buffered.
    auto boots = mscclpp::createInProcessBootstrap(3);
    for (int r = 0; r < 3; ++r) {
        for (int p = 0; p < 3; ++p) {
            if (p != r) {
                boots[r]->send(p, r, &r, sizeof(r));
            }
        }
    }
    for (int r = 0; r < 3; ++r) {
        for (int p = 0; p < 3; ++p) {
            if (p != r) {
                int got = -1;
                boots[r]->recv(p, p, &got, sizeof(got));
                EXPECT_EQ(got, p);
            }
        }
    }
}

TEST(InProcessBootstrap, TagsAreIndependentChannels)
{
    auto boots = mscclpp::createInProcessBootstrap(2);
    int a = 1;
    int b = 2;
    boots[0]->send(1, 10, &a, sizeof(a));
    boots[0]->send(1, 20, &b, sizeof(b));
    int got = 0;
    boots[1]->recv(0, 20, &got, sizeof(got));
    EXPECT_EQ(got, 2);
    boots[1]->recv(0, 10, &got, sizeof(got));
    EXPECT_EQ(got, 1);
}

TEST(InProcessBootstrap, AllGatherCollectsAllRanks)
{
    auto boots = mscclpp::createInProcessBootstrap(4);
    onRankThreads(4, [&](int r) {
        std::array<int, 4> data{};
        data[r] = r * r + 1;
        boots[r]->allGather(data.data(), sizeof(int));
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(data[i], i * i + 1);
        }
    });
}

TEST(InProcessBootstrap, AllGatherBackToBackRounds)
{
    auto boots = mscclpp::createInProcessBootstrap(3);
    onRankThreads(3, [&](int r) {
        for (int round = 0; round < 5; ++round) {
            std::array<int, 3> data{};
            data[r] = round * 10 + r;
            boots[r]->allGather(data.data(), sizeof(int));
            for (int i = 0; i < 3; ++i) {
                EXPECT_EQ(data[i], round * 10 + i);
            }
        }
    });
}

TEST(InProcessBootstrap, BarrierSynchronizes)
{
    auto boots = mscclpp::createInProcessBootstrap(4);
    std::atomic<int> arrived{0};
    onRankThreads(4, [&](int r) {
        arrived.fetch_add(1);
        boots[r]->barrier();
        EXPECT_EQ(arrived.load(), 4);
    });
}

TEST(InProcessBootstrap, RejectsBadPeer)
{
    auto boots = mscclpp::createInProcessBootstrap(2);
    int x = 0;
    EXPECT_THROW(boots[0]->send(0, 0, &x, sizeof(x)), Error);
    EXPECT_THROW(boots[0]->send(5, 0, &x, sizeof(x)), Error);
    EXPECT_THROW(mscclpp::createInProcessBootstrap(0), Error);
}

TEST(TcpBootstrap, MeshSendRecvAndGather)
{
    const int n = 4;
    const int port = uniquePort();
    onRankThreads(n, [&](int r) {
        auto b = mscclpp::createTcpBootstrap(r, n, port);
        // Ring exchange.
        int payload = 1000 + r;
        b->send((r + 1) % n, 3, &payload, sizeof(payload));
        int got = 0;
        b->recv((r + n - 1) % n, 3, &got, sizeof(got));
        EXPECT_EQ(got, 1000 + (r + n - 1) % n);
        // AllGather.
        std::array<double, n> data{};
        data[r] = r * 2.5;
        b->allGather(data.data(), sizeof(double));
        for (int i = 0; i < n; ++i) {
            EXPECT_DOUBLE_EQ(data[i], i * 2.5);
        }
        b->barrier();
    });
}

TEST(TcpBootstrap, OutOfOrderTagsAreBuffered)
{
    const int port = uniquePort();
    onRankThreads(2, [&](int r) {
        auto b = mscclpp::createTcpBootstrap(r, 2, port);
        if (r == 0) {
            int a = 11;
            int c = 33;
            b->send(1, 1, &a, sizeof(a));
            b->send(1, 3, &c, sizeof(c));
        } else {
            int got = 0;
            b->recv(0, 3, &got, sizeof(got)); // later tag first
            EXPECT_EQ(got, 33);
            b->recv(0, 1, &got, sizeof(got));
            EXPECT_EQ(got, 11);
        }
        b->barrier();
    });
}

TEST(TcpBootstrap, SingleRankIsTrivial)
{
    auto b = mscclpp::createTcpBootstrap(0, 1, uniquePort());
    int x = 5;
    b->allGather(&x, sizeof(x));
    EXPECT_EQ(x, 5);
    b->barrier();
}

TEST(RegisteredMemory, SerializeRoundTrip)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::DeviceBuffer buf = m.gpu(2).alloc(256);
    RegisteredMemory mem(2, buf.view(16, 64));
    auto wire = mem.serialize();
    RegisteredMemory back = RegisteredMemory::deserialize(wire);
    EXPECT_EQ(back.rank(), 2);
    EXPECT_EQ(back.size(), 64u);
    EXPECT_EQ(back.buffer().data(), buf.data() + 16);
    EXPECT_THROW(
        RegisteredMemory::deserialize(std::vector<std::uint8_t>(3)), Error);
}

TEST(Connection, MemoryTransportIntraNodeOnly)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    Connection intra(m, 0, 1, Transport::Memory);
    EXPECT_TRUE(intra.sameNode());
    EXPECT_NEAR(intra.effectiveBwGBps(), 227.0, 1.0);
    EXPECT_THROW(Connection(m, 0, 8, Transport::Memory), Error);
    EXPECT_THROW(Connection(m, 0, 0, Transport::Port), Error);
}

TEST(Connection, PortTransportSelectsRoute)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    Connection dma(m, 0, 1, Transport::Port);
    EXPECT_NEAR(dma.effectiveBwGBps(), 263.0, 1.0); // DMA over NVLink
    Connection rdma(m, 0, 8, Transport::Port);
    EXPECT_DOUBLE_EQ(rdma.effectiveBwGBps(), 25.0); // HDR NIC line rate
}

TEST(Connection, AtomicOrderedAfterWrites)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    Connection c(m, 0, 1, Transport::Memory);
    auto [s1, writeArrival] = c.reserveWrite(1 << 20);
    sim::Time atomicArrival = c.reserveAtomic();
    EXPECT_GT(atomicArrival, writeArrival);
    (void)s1;
}

TEST(Semaphore, SignalWaitAcrossSim)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    DeviceSemaphore sem(m, 1);
    sim::Time released = 0;

    auto waiter = [&]() -> sim::Task<> {
        co_await sem.wait();
        released = m.scheduler().now();
    };
    sim::detach(m.scheduler(), waiter());
    sem.arriveAt(sim::us(5));
    m.run();
    EXPECT_EQ(released, sim::us(5) + m.config().semaphorePoll);
    EXPECT_EQ(sem.value(), 1u);
    EXPECT_EQ(sem.expected(), 1u);
}

TEST(Semaphore, SequentialWaitsNeedSequentialSignals)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    DeviceSemaphore sem(m, 0);
    int waits = 0;

    auto waiter = [&]() -> sim::Task<> {
        co_await sem.wait();
        ++waits;
        co_await sem.wait();
        ++waits;
    };
    sim::detach(m.scheduler(), waiter());
    sem.arriveAt(sim::us(1));
    m.run();
    EXPECT_EQ(waits, 1);
    sem.arriveAt(sim::us(2));
    m.run();
    EXPECT_EQ(waits, 2);
}

TEST(Fifo, PushPopRoundTripWithPollLatency)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    Fifo fifo(m.scheduler(), m.config());
    sim::Time popped = 0;
    ProxyRequest got;

    auto gpuSide = [&]() -> sim::Task<> {
        ProxyRequest req;
        req.kind = ProxyRequest::Kind::Put;
        req.bytes = 4096;
        co_await fifo.push(req);
    };
    auto cpuSide = [&]() -> sim::Task<> {
        got = co_await fifo.pop();
        popped = m.scheduler().now();
    };
    sim::detach(m.scheduler(), cpuSide());
    sim::detach(m.scheduler(), gpuSide());
    m.run();
    EXPECT_EQ(got.bytes, 4096u);
    EXPECT_EQ(popped, m.config().fifoPushCost + m.config().fifoPollLatency);
    EXPECT_EQ(fifo.head(), 1u);
    EXPECT_EQ(fifo.tail(), 1u);
}

TEST(Fifo, BackPressureBlocksWhenFull)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    fab::EnvConfig cfg = m.config();
    Fifo fifo(m.scheduler(), cfg);
    const int depth = cfg.fifoDepth;
    int pushed = 0;

    auto gpuSide = [&]() -> sim::Task<> {
        for (int i = 0; i < depth + 5; ++i) {
            ProxyRequest req;
            req.kind = ProxyRequest::Kind::Put;
            co_await fifo.push(req);
            ++pushed;
        }
    };
    sim::detach(m.scheduler(), gpuSide());
    m.run();
    EXPECT_EQ(pushed, depth); // stuck until someone pops

    auto cpuSide = [&]() -> sim::Task<> {
        for (int i = 0; i < depth + 5; ++i) {
            co_await fifo.pop();
        }
    };
    sim::detach(m.scheduler(), cpuSide());
    m.run();
    EXPECT_EQ(pushed, depth + 5);
    EXPECT_EQ(fifo.depth(), 0u);
}

TEST(Communicator, BasicPropertiesAndRegistration)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    auto boots = mscclpp::createInProcessBootstrap(8);
    Communicator comm(boots[3], m);
    EXPECT_EQ(comm.rank(), 3);
    EXPECT_EQ(comm.size(), 8);

    gpu::DeviceBuffer mine = m.gpu(3).alloc(128);
    RegisteredMemory mem = comm.registerMemory(mine);
    EXPECT_EQ(mem.rank(), 3);

    gpu::DeviceBuffer other = m.gpu(4).alloc(128);
    EXPECT_THROW(comm.registerMemory(other), Error);
}

TEST(Communicator, SizeMustMatchMachine)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    auto boots = mscclpp::createInProcessBootstrap(4);
    EXPECT_THROW(Communicator(boots[0], m), Error);
}

TEST(Communicator, MemoryAndSemaphoreExchange)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    auto boots = mscclpp::createInProcessBootstrap(8);
    std::vector<std::unique_ptr<Communicator>> comms;
    for (int r = 0; r < 8; ++r) {
        comms.push_back(std::make_unique<Communicator>(boots[r], m));
    }
    // Two-phase exchange between ranks 0 and 1 (sequential setup).
    gpu::DeviceBuffer b0 = m.gpu(0).alloc(64);
    gpu::DeviceBuffer b1 = m.gpu(1).alloc(64);
    comms[0]->sendMemory(comms[0]->registerMemory(b0), 1, 1);
    comms[1]->sendMemory(comms[1]->registerMemory(b1), 0, 1);
    DeviceSemaphore* s0 = comms[0]->createSemaphore();
    comms[0]->sendSemaphore(s0, 1, 2);

    RegisteredMemory got0 = comms[1]->recvMemory(0, 1);
    RegisteredMemory got1 = comms[0]->recvMemory(1, 1);
    EXPECT_EQ(got0.buffer().data(), b0.data());
    EXPECT_EQ(got1.buffer().data(), b1.data());
    DeviceSemaphore* gotSem = comms[1]->recvSemaphore(0, 2);
    EXPECT_EQ(gotSem, s0);
}
