// Tests of the cluster-scale serving simulator (src/serving/): the
// deterministic workload generator, the KV capacity model, continuous
// batching, prefill/decode disaggregation, and the acceptance
// experiment — a mid-run degraded link must show up as a p99 TTFT/TPOT
// regression that the step profiler attributes to the guilty link.
#include "core/errors.hpp"
#include "serving/cluster.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace mscclpp;
using namespace mscclpp::serving;

namespace {

/** A model small enough that a whole cluster run takes milliseconds
 *  of wall time but still issues real simulated AllReduces. */
inference::InferenceConfig
tinyModel()
{
    inference::InferenceConfig inf;
    inf.model.name = "tiny";
    inf.model.layers = 4;
    inf.model.hidden = 256;
    inf.model.heads = 8;
    inf.model.kvHeads = 8;
    inf.model.ffn = 512;
    inf.model.vocab = 512;
    inf.perLayerOverhead = sim::us(5);
    return inf;
}

ServingConfig
tinyConfig()
{
    ServingConfig cfg;
    cfg.inference = tinyModel();
    cfg.workload.requests = 16;
    cfg.workload.ratePerSec = 2000.0;
    cfg.workload.mix = {{1.0, 32, 64, 8, 16}};
    return cfg;
}

} // namespace

TEST(ServingWorkload, PoissonDeterministicPerSeed)
{
    WorkloadConfig cfg;
    cfg.requests = 64;
    auto a = generateWorkload(cfg, 7);
    auto b = generateWorkload(cfg, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].promptLen, b[i].promptLen);
        EXPECT_EQ(a[i].outputLen, b[i].outputLen);
    }
    auto c = generateWorkload(cfg, 8);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        differs = differs || a[i].arrival != c[i].arrival;
    }
    EXPECT_TRUE(differs) << "seed must matter";
}

TEST(ServingWorkload, ArrivalsSortedAndLengthsInRange)
{
    WorkloadConfig cfg;
    cfg.requests = 200;
    cfg.mode = ArrivalMode::Bursty;
    auto reqs = generateWorkload(cfg, 3);
    sim::Time prev = 0;
    for (const Request& r : reqs) {
        EXPECT_GE(r.arrival, prev);
        prev = r.arrival;
        EXPECT_GE(r.promptLen, 64);
        EXPECT_LE(r.promptLen, 3584);
        EXPECT_GE(r.outputLen, 32);
        EXPECT_LE(r.outputLen, 384);
    }
}

TEST(ServingWorkload, TraceModeParsesAndRejects)
{
    auto reqs = parseTrace("0:512:64;1500:128:32");
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].arrival, sim::us(0));
    EXPECT_EQ(reqs[0].promptLen, 512);
    EXPECT_EQ(reqs[1].arrival, sim::us(1500));
    EXPECT_EQ(reqs[1].outputLen, 32);

    EXPECT_THROW(parseTrace(""), Error);
    EXPECT_THROW(parseTrace("12:64"), Error);
    EXPECT_THROW(parseTrace("0:0:5"), Error);
}

TEST(ServingKvCache, ReserveReleasePeak)
{
    KvCache kv(100);
    EXPECT_TRUE(kv.reserve(60));
    EXPECT_FALSE(kv.reserve(41));
    EXPECT_TRUE(kv.reserve(40));
    EXPECT_EQ(kv.free(), 0u);
    kv.release(30);
    EXPECT_EQ(kv.used(), 70u);
    EXPECT_EQ(kv.peakUsed(), 100u);
}

TEST(ServingConfigTest, DerivedKvTokensPositive)
{
    ServingConfig cfg; // Llama2-70b TP=8 on A100-80G
    const std::uint64_t tokens = cfg.effectiveKvTokens();
    // ~80 GB/GPU node, ~17.5 GB weight shard, ~160 KB/token/GPU KV.
    EXPECT_GT(tokens, 100'000u);
    EXPECT_LT(tokens, 10'000'000u);
    cfg.kvTokens = 1234;
    EXPECT_EQ(cfg.effectiveKvTokens(), 1234u);
}

TEST(ServingConfigTest, FromEnvParsesAndValidates)
{
    setenv("MSCCLPP_SEED", "99", 1);
    setenv("MSCCLPP_SERVING_REPLICAS", "3", 1);
    setenv("MSCCLPP_SERVING_ARRIVALS", "bursty", 1);
    ServingConfig cfg = ServingConfig::fromEnv();
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_EQ(cfg.replicas, 3);
    EXPECT_EQ(cfg.workload.mode, ArrivalMode::Bursty);

    setenv("MSCCLPP_SERVING_ARRIVALS", "sometimes", 1);
    EXPECT_THROW(ServingConfig::fromEnv(), Error);
    unsetenv("MSCCLPP_SERVING_ARRIVALS");
    setenv("MSCCLPP_SEED", "soon", 1);
    EXPECT_THROW(ServingConfig::fromEnv(), Error);
    unsetenv("MSCCLPP_SEED");
    unsetenv("MSCCLPP_SERVING_REPLICAS");

    ServingConfig bad;
    bad.prefillReplicas = bad.replicas; // no decode replica left
    EXPECT_THROW(bad.validate(), Error);
}

TEST(ServingCluster, ServesEveryRequestOpenLoop)
{
    ServingCluster cluster(tinyConfig());
    ServingReport rep = cluster.run();
    EXPECT_EQ(rep.requests, 16u);
    EXPECT_EQ(rep.dropped, 0u);
    EXPECT_GT(rep.decodeSteps, 0u);
    EXPECT_GT(rep.prefillSteps, 0u);
    EXPECT_GT(rep.throughputTps, 0.0);
    EXPECT_GE(rep.ttftP99, rep.ttftP50);
    for (const RequestStats& r : cluster.requests()) {
        EXPECT_GT(r.firstToken, r.arrival);
        EXPECT_GE(r.completed, r.firstToken);
        EXPECT_GE(r.replica, 0);
    }
}

TEST(ServingCluster, BitIdenticalAcrossRuns)
{
    // The determinism contract behind MSCCLPP_SEED: same config, same
    // seed => the same per-request lifecycle to the picosecond.
    ServingConfig cfg = tinyConfig();
    cfg.replicas = 2;
    cfg.seed = 1234;
    ServingCluster a(cfg), b(cfg);
    ServingReport ra = a.run();
    ServingReport rb = b.run();
    EXPECT_EQ(ra.ttftP99, rb.ttftP99);
    EXPECT_EQ(ra.tpotP99, rb.tpotP99);
    EXPECT_EQ(ra.e2eP99, rb.e2eP99);
    EXPECT_EQ(ra.makespan, rb.makespan);
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        EXPECT_EQ(a.requests()[i].firstToken,
                  b.requests()[i].firstToken);
        EXPECT_EQ(a.requests()[i].completed, b.requests()[i].completed);
        EXPECT_EQ(a.requests()[i].replica, b.requests()[i].replica);
    }
}

TEST(ServingCluster, KvPressurePreemptsAndRecovers)
{
    ServingConfig cfg = tinyConfig();
    cfg.workload.mode = ArrivalMode::Trace;
    cfg.workload.trace = "0:64:40;0:64:40";
    cfg.kvTokens = 150; // both admit at 128, collide while growing
    ServingCluster cluster(cfg);
    ServingReport rep = cluster.run();
    EXPECT_EQ(rep.requests, 2u);
    EXPECT_EQ(rep.dropped, 0u);
    EXPECT_GT(rep.preemptions, 0u);
}

TEST(ServingCluster, OversizedRequestDroppedNotWedged)
{
    ServingConfig cfg = tinyConfig();
    cfg.workload.mode = ArrivalMode::Trace;
    cfg.workload.trace = "0:64:16;0:512:64"; // second can never fit
    cfg.kvTokens = 120;
    ServingCluster cluster(cfg);
    ServingReport rep = cluster.run();
    EXPECT_EQ(rep.requests, 1u);
    EXPECT_EQ(rep.dropped, 1u);
    EXPECT_TRUE(cluster.requests()[1].dropped);
}

TEST(ServingCluster, DisaggregationMigratesKv)
{
    ServingConfig cfg = tinyConfig();
    cfg.replicas = 2;
    cfg.prefillReplicas = 1;
    ServingCluster cluster(cfg);
    ServingReport rep = cluster.run();
    EXPECT_EQ(rep.requests, 16u);
    EXPECT_EQ(rep.dropped, 0u);
    EXPECT_EQ(rep.migrations, 16u); // every request crosses the NIC
    // Prefill replica never decodes; decode replica never prefills.
    EXPECT_EQ(cluster.replica(0).decodeSteps(), 0u);
    EXPECT_EQ(cluster.replica(1).prefillSteps(), 0u);
    // The NIC hop is on every TTFT path: first tokens still count
    // from the prefill, so TTFT matches unified runs, but decode
    // starts only after the transfer.
    for (const RequestStats& r : cluster.requests()) {
        EXPECT_EQ(r.replica, 1);
    }
}

// The PR's acceptance experiment: a clean cluster run vs the same
// run with one replica's fabric link degraded mid-run. The degraded
// run must show a strictly worse p99 TTFT and TPOT, and the step
// profiler's flight recorder must attribute the regression to the
// degraded link within a few steps of the injection.
TEST(ServingFaults, DegradedLinkRegressesTailsAndIsAttributed)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "observability compiled out (MSCCLPP_NO_OBS)";
    }
    ServingConfig cfg = tinyConfig();
    cfg.maxPrefillSeqs = 8;
    cfg.maxBatch = 8;
    cfg.workload.mode = ArrivalMode::Trace;
    // Two waves of 8: wave 1 saturates the batch and establishes the
    // flight baseline; wave 2 prefills long after the fault, so TTFT
    // regresses too (the fault lands mid-decode of wave 1).
    std::string trace;
    for (int i = 0; i < 8; ++i) {
        trace += "0:256:48;";
    }
    for (int i = 0; i < 8; ++i) {
        trace += "20000:256:48;";
    }
    cfg.workload.trace = trace;
    cfg.env.flightEnabled = true;

    // Keep the flight data in memory; no artifact files from a test.
    auto quiet = [](ServingCluster& c) {
        for (int i = 0; i < c.numReplicas(); ++i) {
            c.replica(i).machine().obs().setDumpOnDestroy(false);
        }
    };

    ServingCluster clean1(cfg), clean2(cfg);
    quiet(clean1);
    quiet(clean2);
    ServingReport rc1 = clean1.run();
    ServingReport rc2 = clean2.run();
    EXPECT_EQ(rc1.ttftP99, rc2.ttftP99) << "clean runs must be"
                                           " deterministic";
    EXPECT_EQ(rc1.tpotP99, rc2.tpotP99);

    // 1 prefill step + 12 decode steps (> flight warmup of 8), then
    // the link degrades to 20% bandwidth.
    const std::uint64_t injectStep = 13;
    ServingConfig degradedCfg = cfg;
    degradedCfg.faults.push_back({0, "gpu3.tx", 0.2, injectStep});
    ServingCluster degraded(degradedCfg);
    quiet(degraded);
    ServingReport rd = degraded.run();

    EXPECT_EQ(rd.requests, rc1.requests);
    EXPECT_GT(rd.tpotP99, rc1.tpotP99)
        << "decode AllReduces cross the degraded link every step";
    EXPECT_GT(rd.ttftP99, rc1.ttftP99)
        << "wave-2 prefills run after the fault";

    // Online attribution: the flight recorder on the faulty replica
    // must flag a step at/after the injection naming the link.
    obs::FlightRecorder& flight =
        degraded.replica(0).machine().obs().flight();
    const obs::FlightAnomaly* hit =
        flight.firstAnomalyAtOrAfter(injectStep);
    ASSERT_NE(hit, nullptr) << "fault was not flagged online";
    EXPECT_LE(hit->digest.index, injectStep + 5)
        << "detection latency too high";
    EXPECT_EQ(hit->digest.culpritLink, "gpu3.tx");

    // SLO accounting stays consistent under the fault.
    EXPECT_GE(rd.sloTpotViolations + rd.sloTtftViolations,
              rc1.sloTpotViolations + rc1.sloTtftViolations);
}
