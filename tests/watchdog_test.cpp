#include "channel/channel_mesh.hpp"
#include "collective/api.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "core/errors.hpp"
#include "gpu/kernel.hpp"
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace obs = mscclpp::obs;
using namespace mscclpp;
using MscclppError = mscclpp::Error;

// Everything the watchdog does is compiled out under MSCCLPP_NO_OBS;
// these tests exercise the runtime, so they skip in that build (the
// no-obs CI leg also excludes them at the ctest level).
#define SKIP_WITHOUT_OBS()                                                 \
    if (!obs::Tracer::kCompiledIn) {                                       \
        GTEST_SKIP() << "observability compiled out (MSCCLPP_NO_OBS)";     \
    }

namespace {

/** Test harness: machine + communicators + per-rank data buffers,
 *  with the watchdog armed before any channel is constructed (parties
 *  and liveness register at channel construction time). */
struct Harness
{
    Harness(fab::EnvConfig cfg, int nodes, std::size_t bytes,
            obs::WatchdogMode mode, sim::Time threshold)
        : machine(std::move(cfg), nodes, gpu::DataMode::Functional)
    {
        machine.obs().setDumpOnDestroy(false);
        obs::Watchdog& wd = machine.obs().watchdog();
        wd.setMode(mode);
        wd.setThreshold(threshold);
        auto boots = createInProcessBootstrap(machine.numGpus());
        for (int r = 0; r < machine.numGpus(); ++r) {
            comms.push_back(
                std::make_unique<Communicator>(boots[r], machine));
            bufs.push_back(machine.gpu(r).alloc(bytes));
        }
    }

    std::vector<Communicator*> commPtrs()
    {
        std::vector<Communicator*> out;
        for (auto& c : comms) {
            out.push_back(c.get());
        }
        return out;
    }

    obs::Watchdog& wd() { return machine.obs().watchdog(); }

    gpu::Machine machine;
    std::vector<std::unique_ptr<Communicator>> comms;
    std::vector<gpu::DeviceBuffer> bufs;
};

/** Launch a one-block kernel per rank running fn(ctx, rank). */
void
runOnAllRanks(gpu::Machine& m,
              const std::function<sim::Task<>(gpu::BlockCtx&, int)>& fn)
{
    for (int r = 0; r < m.numGpus(); ++r) {
        gpu::LaunchConfig cfg;
        sim::detach(m.scheduler(),
                    gpu::launchKernel(m.gpu(r), cfg,
                                      [&fn, r](gpu::BlockCtx& ctx) {
                                          return fn(ctx, r);
                                      }));
    }
    m.run();
}

constexpr sim::Time kThreshold = sim::ns(1'000'000); // 1 ms virtual

} // namespace

TEST(Watchdog, LostSignalNamesTheOwingRankAndChannel)
{
    SKIP_WITHOUT_OBS();
    Harness h(fab::makeA100_40G(), 1, 4096, obs::WatchdogMode::Report,
              kThreshold);
    const int n = h.machine.numGpus();
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);

    // Rank 3's ring signal to rank 4 is lost on the wire.
    const int owing = 3;
    const int victim = (owing + 1) % n;
    mesh.mem(victim, owing).inboundSemaphore()->dropNextArrivals(1);

    h.wd().pushOp("test.signal_ring");
    runOnAllRanks(h.machine,
                  [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                      co_await mesh.mem(r, (r + 1) % n)
                          .putWithSignal(ctx, 0, 0, 256);
                      co_await mesh.mem(r, (r - 1 + n) % n).wait(ctx);
                  });
    h.wd().popOp();

    ASSERT_EQ(h.wd().reports().size(), 1u);
    const obs::HangReport& rep = h.wd().reports().front();
    EXPECT_EQ(rep.classification, "straggler");
    EXPECT_EQ(rep.blocked.waiter, "rank4");
    EXPECT_EQ(rep.blocked.owed, "rank3");
    EXPECT_NE(rep.blocked.owedDetail.find("memory channel"),
              std::string::npos);
    EXPECT_EQ(rep.blocked.opLabel, "test.signal_ring");
    EXPECT_EQ(rep.rootCause, "rank3");
    EXPECT_EQ(rep.rootCauseReason, "missing_signal");
    EXPECT_TRUE(rep.cycle.empty());
    // The report fired exactly one threshold after the wait began.
    EXPECT_EQ(rep.at - rep.blocked.since, kThreshold);
}

TEST(Watchdog, CyclicWaitIsClassifiedAsDeadlock)
{
    SKIP_WITHOUT_OBS();
    Harness h(fab::makeA100_40G(), 1, 4096, obs::WatchdogMode::Report,
              kThreshold);
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);

    // Ranks 0 and 1 wait *before* signaling each other.
    h.wd().pushOp("test.cycle");
    runOnAllRanks(h.machine,
                  [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                      if (r > 1) {
                          co_return;
                      }
                      co_await mesh.mem(r, 1 - r).wait(ctx);
                      co_await mesh.mem(r, 1 - r).putWithSignal(ctx, 0, 0,
                                                                256);
                  });
    h.wd().popOp();

    ASSERT_EQ(h.wd().reports().size(), 1u);
    const obs::HangReport& rep = h.wd().reports().front();
    EXPECT_EQ(rep.classification, "deadlock");
    EXPECT_EQ(rep.rootCauseReason, "cyclic_wait");
    ASSERT_EQ(rep.cycle.size(), 2u);
    EXPECT_NE(std::find(rep.cycle.begin(), rep.cycle.end(), "rank0"),
              rep.cycle.end());
    EXPECT_NE(std::find(rep.cycle.begin(), rep.cycle.end(), "rank1"),
              rep.cycle.end());
}

TEST(Watchdog, DeadProxyIsBlamed)
{
    SKIP_WITHOUT_OBS();
    Harness h(fab::makeA100_40G(), 1, 4096, obs::WatchdogMode::Report,
              kThreshold);
    const int n = h.machine.numGpus();
    MeshOptions opt;
    opt.transport = Transport::Port;
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs, opt);
    // Stop every proxy before any traffic; this run drains the Stop
    // requests so the loops exit and flip their liveness to dead.
    mesh.shutdown();
    h.machine.run();

    runOnAllRanks(h.machine,
                  [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                      co_await mesh.port(r, (r + 1) % n)
                          .putWithSignal(ctx, 0, 0, 256);
                      co_await mesh.port(r, (r - 1 + n) % n).wait(ctx);
                  });

    ASSERT_FALSE(h.wd().reports().empty());
    const obs::HangReport& rep = h.wd().reports().front();
    EXPECT_EQ(rep.rootCauseReason, "dead_proxy");
    EXPECT_EQ(rep.rootCause.rfind("proxy:", 0), 0u);
}

TEST(Watchdog, AbortModeThrowsTimeoutOutOfRun)
{
    SKIP_WITHOUT_OBS();
    Harness h(fab::makeA100_40G(), 1, 4096, obs::WatchdogMode::Abort,
              kThreshold);
    const int n = h.machine.numGpus();
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);
    mesh.mem(1, 0).inboundSemaphore()->dropNextArrivals(1);

    try {
        runOnAllRanks(h.machine,
                      [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                          co_await mesh.mem(r, (r + 1) % n)
                              .putWithSignal(ctx, 0, 0, 256);
                          co_await mesh.mem(r, (r - 1 + n) % n).wait(ctx);
                      });
        FAIL() << "hung run did not abort";
    } catch (const MscclppError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Timeout);
        EXPECT_NE(std::string(e.what()).find("rank0"),
                  std::string::npos);
    }
    // The report that triggered the abort is retained.
    ASSERT_EQ(h.wd().reports().size(), 1u);
    EXPECT_EQ(h.wd().reports().front().rootCause, "rank0");
}

TEST(Watchdog, CleanCollectiveRunEmitsNoReports)
{
    SKIP_WITHOUT_OBS();
    // fig08-shape clean run: AllReduce across the small/medium sizes
    // with a tight 1 ms threshold. A clean run must produce zero
    // reports AND identical virtual timing to a watchdog-off run —
    // the watchdog never schedules an event unless something hangs.
    auto runShapes = [](bool watchdogOn) {
        gpu::Machine m(fab::makeA100_40G(), 1,
                       gpu::DataMode::Functional);
        m.obs().setDumpOnDestroy(false);
        if (watchdogOn) {
            m.obs().watchdog().setMode(obs::WatchdogMode::Report);
            m.obs().watchdog().setThreshold(kThreshold);
        }
        CollectiveComm::Options opt;
        opt.maxBytes = 1 << 20;
        CollectiveComm comm(m, opt);
        std::vector<sim::Time> elapsed;
        for (std::size_t bytes : {1u << 10, 32u << 10, 1u << 20}) {
            elapsed.push_back(comm.allReduce(bytes, gpu::DataType::F16,
                                             gpu::ReduceOp::Sum));
        }
        EXPECT_TRUE(m.obs().watchdog().reports().empty());
        return elapsed;
    };
    EXPECT_EQ(runShapes(true), runShapes(false));
}

TEST(Watchdog, DisabledModeRegistersNothing)
{
    Harness h(fab::makeA100_40G(), 1, 4096, obs::WatchdogMode::Off,
              kThreshold);
    const int n = h.machine.numGpus();
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);
    mesh.mem(1, 0).inboundSemaphore()->dropNextArrivals(1);
    // The hung run still terminates (the queue drains; the idle hook
    // is a no-op) and nothing was recorded.
    runOnAllRanks(h.machine,
                  [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                      co_await mesh.mem(r, (r + 1) % n)
                          .putWithSignal(ctx, 0, 0, 256);
                      co_await mesh.mem(r, (r - 1 + n) % n).wait(ctx);
                  });
    EXPECT_EQ(h.wd().outstandingWaits(), 0u);
    EXPECT_TRUE(h.wd().reports().empty());
}

TEST(Watchdog, HangReportJsonCarriesTheSchema)
{
    SKIP_WITHOUT_OBS();
    Harness h(fab::makeA100_40G(), 1, 4096, obs::WatchdogMode::Report,
              kThreshold);
    const int n = h.machine.numGpus();
    auto mesh = ChannelMesh::build(h.commPtrs(), h.bufs, h.bufs);
    mesh.mem(3, 2).inboundSemaphore()->dropNextArrivals(1);
    runOnAllRanks(h.machine,
                  [&](gpu::BlockCtx& ctx, int r) -> sim::Task<> {
                      co_await mesh.mem(r, (r + 1) % n)
                          .putWithSignal(ctx, 0, 0, 256);
                      co_await mesh.mem(r, (r - 1 + n) % n).wait(ctx);
                  });
    std::string json = h.wd().toJson();
    EXPECT_NE(json.find("\"schema\": \"mscclpp.hang\""),
              std::string::npos);
    EXPECT_NE(json.find("\"classification\": \"straggler\""),
              std::string::npos);
    EXPECT_NE(json.find("\"party\": \"rank2\""), std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"missing_signal\""),
              std::string::npos);
}

TEST(FlightBaselines, AreSplitPerStepLabel)
{
    SKIP_WITHOUT_OBS();
    // Satellite of the watchdog work: EWMA baselines are per step
    // label, so two interleaved latency regimes (prefill vs decode)
    // each converge on their own mean instead of polluting a shared
    // one — and the legacy single-baseline accessors follow whichever
    // label was recorded last.
    obs::FlightRecorder flight;
    flight.setEnabled(true);
    flight.setWarmup(2);
    auto feed = [&](const std::string& label, double ms) {
        obs::StepAttribution att;
        att.label = label;
        att.begin = 0;
        att.end = sim::msec(ms);
        att.measured = sim::msec(ms);
        flight.onStep(att, {}, {});
    };
    for (int i = 0; i < 10; ++i) {
        feed("prefill", 8.0);
        feed("decode", 1.0);
    }
    const obs::LatencyBaseline* prefill = flight.baselineFor("prefill");
    const obs::LatencyBaseline* decode = flight.baselineFor("decode");
    ASSERT_NE(prefill, nullptr);
    ASSERT_NE(decode, nullptr);
    EXPECT_NEAR(prefill->mean, 8e6, 1e3);
    EXPECT_NEAR(decode->mean, 1e6, 1e3);
    EXPECT_EQ(prefill->samples, 10u);
    EXPECT_EQ(decode->samples, 10u);
    // Legacy accessors mirror the most recent label.
    EXPECT_NEAR(flight.ewmaMeanNs(), 1e6, 1e3);
    EXPECT_EQ(flight.baselineSamples(), 10u);
    // No anomalies: each regime matched its own baseline. With a
    // shared baseline every step would have been 3 sigma away.
    EXPECT_EQ(flight.anomalyCount(), 0u);
    // An 8 ms step recorded under the decode label IS anomalous.
    feed("decode", 8.0);
    EXPECT_EQ(flight.anomalyCount(), 1u);
    EXPECT_NE(flight.toJson().find("\"baselines\""), std::string::npos);
}
