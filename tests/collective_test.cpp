#include "collective/api.hpp"
#include "core/errors.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using mscclpp::AllGatherAlgo;
using mscclpp::AllReduceAlgo;
using mscclpp::CollectiveComm;

namespace {

struct CollSetup
{
    CollSetup(const std::string& env, int nodes, std::size_t maxBytes,
          CollectiveComm::Options opt = {})
        : machine(fab::makeEnv(env), nodes)
    {
        opt.maxBytes = maxBytes;
        comm = std::make_unique<CollectiveComm>(machine, opt);
    }

    void fillAll(gpu::DataType dt, std::size_t seed = 0)
    {
        for (int r = 0; r < machine.numGpus(); ++r) {
            gpu::fillPattern(comm->dataBuffer(r), dt, r, seed);
        }
    }

    /** Verify an AllReduce(sum) result over `count` elements. */
    void checkAllReduceSum(gpu::DataType dt, std::size_t count,
                           std::size_t seed = 0)
    {
        const int n = machine.numGpus();
        for (std::size_t i = 0; i < count; i += std::max<std::size_t>(
                                              1, count / 97)) {
            float expected = 0.0f;
            for (int r = 0; r < n; ++r) {
                expected += gpu::patternValue(dt, r, i, seed);
            }
            for (int r = 0; r < n; ++r) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(comm->dataBuffer(r), dt, i), expected)
                    << "rank " << r << " elem " << i;
            }
        }
    }

    gpu::Machine machine;
    std::unique_ptr<CollectiveComm> comm;
};

} // namespace


namespace {

/** gtest param names must be [A-Za-z0-9_]. */
std::string
sanitize(std::string s)
{
    for (char& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
            c = '_';
        }
    }
    return s;
}

} // namespace

// ---------------------------------------------------------------------------
// AllReduce correctness, parameterized over algorithm x environment.
// ---------------------------------------------------------------------------

struct ArCase
{
    const char* env;
    int nodes;
    AllReduceAlgo algo;
    std::size_t bytes;
};

class AllReduceP : public ::testing::TestWithParam<ArCase>
{
};

TEST_P(AllReduceP, SumIsExactEverywhere)
{
    const ArCase& c = GetParam();
    CollSetup s(c.env, c.nodes, std::max<std::size_t>(c.bytes, 1 << 20));
    s.fillAll(gpu::DataType::F32);
    sim::Time t = s.comm->allReduce(c.bytes, gpu::DataType::F32,
                                    gpu::ReduceOp::Sum, c.algo);
    EXPECT_GT(t, 0u);
    s.checkAllReduceSum(gpu::DataType::F32, c.bytes / 4);
}

INSTANTIATE_TEST_SUITE_P(
    SingleNode, AllReduceP,
    ::testing::Values(
        ArCase{"A100-40G", 1, AllReduceAlgo::AllPairs1P, 1 << 10},
        ArCase{"A100-40G", 1, AllReduceAlgo::AllPairs1P, 16 << 10},
        ArCase{"A100-40G", 1, AllReduceAlgo::AllPairs2PLL, 64 << 10},
        ArCase{"A100-40G", 1, AllReduceAlgo::AllPairs2PHB, 1 << 20},
        ArCase{"A100-40G", 1, AllReduceAlgo::AllPairs2PPort, 1 << 20},
        ArCase{"A100-80G", 1, AllReduceAlgo::AllPairs2PHB, 4 << 20},
        ArCase{"H100", 1, AllReduceAlgo::Switch2P, 1 << 20},
        ArCase{"H100", 1, AllReduceAlgo::AllPairs2PHB, 1 << 20},
        ArCase{"MI300x", 1, AllReduceAlgo::AllPairs1P, 4 << 10},
        ArCase{"MI300x", 1, AllReduceAlgo::AllPairs2PHB, 1 << 20}),
    [](const auto& info) {
        return sanitize(std::string(info.param.env) + "_" +
                        mscclpp::toString(info.param.algo) + "_" +
                        std::to_string(info.param.bytes));
    });

INSTANTIATE_TEST_SUITE_P(
    MultiNode, AllReduceP,
    ::testing::Values(
        ArCase{"A100-40G", 2, AllReduceAlgo::Hier2PLL, 64 << 10},
        ArCase{"A100-40G", 2, AllReduceAlgo::Hier2PHB, 4 << 20},
        ArCase{"A100-40G", 4, AllReduceAlgo::Hier2PLL, 128 << 10},
        ArCase{"A100-40G", 4, AllReduceAlgo::Hier2PHB, 8 << 20},
        ArCase{"H100", 2, AllReduceAlgo::Hier2PHB, 2 << 20}),
    [](const auto& info) {
        return sanitize(std::string(info.param.env) + "_" +
                        std::to_string(info.param.nodes) + "n_" +
                        mscclpp::toString(info.param.algo) + "_" +
                        std::to_string(info.param.bytes));
    });

// ---------------------------------------------------------------------------
// AllReduce property sweep: every size class through Auto.
// ---------------------------------------------------------------------------

class AllReduceAutoSweep
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AllReduceAutoSweep, AutoAlgoProducesExactSum)
{
    std::size_t bytes = GetParam();
    CollSetup s("A100-40G", 1, 8 << 20);
    s.fillAll(gpu::DataType::F16, /*seed=*/3);
    s.comm->allReduce(bytes, gpu::DataType::F16, gpu::ReduceOp::Sum);
    const int n = s.machine.numGpus();
    for (std::size_t i = 0; i < bytes / 2; i += 131) {
        float expected = 0.0f;
        for (int r = 0; r < n; ++r) {
            expected += gpu::patternValue(gpu::DataType::F16, r, i, 3);
        }
        ASSERT_FLOAT_EQ(gpu::readElement(s.comm->dataBuffer(0),
                                         gpu::DataType::F16, i),
                        expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllReduceAutoSweep,
                         ::testing::Values(1 << 10, 4 << 10, 32 << 10,
                                           256 << 10, 1 << 20, 4 << 20));

// ---------------------------------------------------------------------------
// Repeated calls (rotating scratch) stay correct.
// ---------------------------------------------------------------------------

TEST(AllReduce, BackToBackCallsWithRotatingScratch)
{
    CollSetup s("A100-40G", 1, 1 << 20);
    for (int round = 0; round < 4; ++round) {
        s.fillAll(gpu::DataType::F32, round);
        s.comm->allReduce(64 << 10, gpu::DataType::F32, gpu::ReduceOp::Sum,
                          AllReduceAlgo::AllPairs2PLL);
        s.checkAllReduceSum(gpu::DataType::F32, (64 << 10) / 4, round);
    }
}

TEST(AllReduce, MaxReductionWorks)
{
    CollSetup s("A100-40G", 1, 1 << 20);
    s.fillAll(gpu::DataType::F32);
    s.comm->allReduce(32 << 10, gpu::DataType::F32, gpu::ReduceOp::Max,
                      AllReduceAlgo::AllPairs2PHB);
    const int n = s.machine.numGpus();
    for (std::size_t i = 0; i < (32 << 10) / 4; i += 53) {
        float expected = 0.0f;
        for (int r = 0; r < n; ++r) {
            expected = std::max(expected,
                                gpu::patternValue(gpu::DataType::F32, r, i));
        }
        ASSERT_FLOAT_EQ(
            gpu::readElement(s.comm->dataBuffer(2), gpu::DataType::F32, i),
            expected);
    }
}

// ---------------------------------------------------------------------------
// Timing shape checks against the paper's qualitative claims.
// ---------------------------------------------------------------------------

TEST(AllReduce, OnePhaseBeatsTwoPhaseForTinyMessages)
{
    CollSetup s("A100-40G", 1, 1 << 20);
    sim::Time t1 = s.comm->allReduce(2048, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs1P);
    sim::Time t2 = s.comm->allReduce(2048, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs2PHB);
    EXPECT_LT(t1, t2);
}

TEST(AllReduce, TwoPhaseBeatsOnePhaseForLargeMessages)
{
    // 1PA's scratch needs 2N copies of the message; use a size within
    // that bound but large enough for bandwidth terms to dominate.
    CollSetup s("A100-40G", 1, 8 << 20);
    sim::Time t1 = s.comm->allReduce(1 << 20, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs1P);
    sim::Time t2 = s.comm->allReduce(1 << 20, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs2PHB);
    EXPECT_LT(t2, t1);
}

TEST(AllReduce, SwitchChannelBeatsMemoryChannelOnH100)
{
    // Section 5.3: up to 56% higher bandwidth via SwitchChannel.
    CollSetup s("H100", 1, 64 << 20);
    sim::Time tSwitch = s.comm->allReduce(32 << 20, gpu::DataType::F16,
                                          gpu::ReduceOp::Sum,
                                          AllReduceAlgo::Switch2P);
    sim::Time tMem = s.comm->allReduce(32 << 20, gpu::DataType::F16,
                                       gpu::ReduceOp::Sum,
                                       AllReduceAlgo::AllPairs2PHB);
    EXPECT_LT(tSwitch, tMem);
}

TEST(AllReduce, PortChannelBeatsMemoryChannelForHugeSingleNode)
{
    // Section 5.1: PortChannel ~6% faster at 1 GB single-node. Use
    // timed mode to keep memory use sane.
    gpu::Machine m(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = 1ull << 30;
    CollectiveComm comm(m, opt);
    sim::Time tPort =
        comm.allReduce(1ull << 30, gpu::DataType::F16, gpu::ReduceOp::Sum,
                       AllReduceAlgo::AllPairs2PPort);
    sim::Time tMem =
        comm.allReduce(1ull << 30, gpu::DataType::F16, gpu::ReduceOp::Sum,
                       AllReduceAlgo::AllPairs2PHB);
    EXPECT_LT(tPort, tMem);
    double gain = double(tMem) / double(tPort) - 1.0;
    EXPECT_GT(gain, 0.01);
    EXPECT_LT(gain, 0.30);
}

TEST(AllReduce, SelectorFollowsSizeAndTopology)
{
    CollSetup s1("A100-40G", 1, 1 << 20);
    EXPECT_EQ(s1.comm->chooseAllReduce(1 << 10),
              AllReduceAlgo::AllPairs1P);
    EXPECT_EQ(s1.comm->chooseAllReduce(256 << 10),
              AllReduceAlgo::AllPairs2PLL);
    EXPECT_EQ(s1.comm->chooseAllReduce(1 << 20),
              AllReduceAlgo::AllPairs2PHB);

    CollSetup s2("H100", 1, 64 << 20);
    EXPECT_EQ(s2.comm->chooseAllReduce(32 << 20), AllReduceAlgo::Switch2P);

    CollSetup s3("A100-40G", 2, 8 << 20);
    EXPECT_EQ(s3.comm->chooseAllReduce(64 << 10), AllReduceAlgo::Hier2PLL);
    EXPECT_EQ(s3.comm->chooseAllReduce(8 << 20), AllReduceAlgo::Hier2PHB);
}

TEST(AllReduce, RejectsBadArguments)
{
    CollSetup s("A100-40G", 1, 1 << 20);
    EXPECT_THROW(s.comm->allReduce(0, gpu::DataType::F32,
                                   gpu::ReduceOp::Sum),
                 mscclpp::Error);
    EXPECT_THROW(s.comm->allReduce(2 << 20, gpu::DataType::F32,
                                   gpu::ReduceOp::Sum),
                 mscclpp::Error);
    EXPECT_THROW(s.comm->allReduce(1 << 20, gpu::DataType::F32,
                                   gpu::ReduceOp::Sum,
                                   AllReduceAlgo::Hier2PHB),
                 mscclpp::Error);
    CollSetup s2("A100-40G", 1, 1 << 20);
    EXPECT_THROW(s2.comm->allReduce(1 << 20, gpu::DataType::F32,
                                    gpu::ReduceOp::Sum,
                                    AllReduceAlgo::Switch2P),
                 mscclpp::Error);
}

// ---------------------------------------------------------------------------
// AllGather
// ---------------------------------------------------------------------------

struct AgCase
{
    const char* env;
    int nodes;
    AllGatherAlgo algo;
    std::size_t shard;
};

class AllGatherP : public ::testing::TestWithParam<AgCase>
{
};

TEST_P(AllGatherP, EveryRankHoldsAllShards)
{
    const AgCase& c = GetParam();
    const std::size_t total =
        c.shard * static_cast<std::size_t>(c.nodes) * 8;
    CollSetup s(c.env, c.nodes, std::max<std::size_t>(total, 1 << 20));
    const int n = s.machine.numGpus();
    // Each rank owns only its shard initially.
    for (int r = 0; r < n; ++r) {
        gpu::fillPattern(
            s.comm->dataBuffer(r).view(r * c.shard, c.shard),
            gpu::DataType::F32, r);
    }
    sim::Time t = s.comm->allGather(c.shard, c.algo);
    EXPECT_GT(t, 0u);
    for (int r = 0; r < n; ++r) {
        for (int src = 0; src < n; ++src) {
            for (std::size_t i = 0; i < c.shard / 4; i += 61) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(s.comm->dataBuffer(r),
                                     gpu::DataType::F32,
                                     src * (c.shard / 4) + i),
                    gpu::patternValue(gpu::DataType::F32, src, i))
                    << "rank " << r << " shard " << src;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllGatherP,
    ::testing::Values(
        AgCase{"A100-40G", 1, AllGatherAlgo::AllPairsLL, 4 << 10},
        AgCase{"A100-40G", 1, AllGatherAlgo::AllPairsHB, 128 << 10},
        AgCase{"A100-40G", 1, AllGatherAlgo::AllPairsPort, 128 << 10},
        AgCase{"MI300x", 1, AllGatherAlgo::AllPairsHB, 64 << 10},
        AgCase{"A100-40G", 2, AllGatherAlgo::Hier, 64 << 10},
        AgCase{"A100-40G", 4, AllGatherAlgo::Hier, 32 << 10}),
    [](const auto& info) {
        return sanitize(std::string(info.param.env) + "_" +
                        std::to_string(info.param.nodes) + "n_" +
                        mscclpp::toString(info.param.algo) + "_" +
                        std::to_string(info.param.shard));
    });

// ---------------------------------------------------------------------------
// ReduceScatter (Figure 5), Broadcast, AllToAll
// ---------------------------------------------------------------------------

TEST(ReduceScatter, AllPairsMatchesReference)
{
    CollSetup s("A100-40G", 1, 1 << 20);
    s.fillAll(gpu::DataType::F32);
    const std::size_t bytes = 256 << 10;
    s.comm->reduceScatter(bytes, gpu::DataType::F32, gpu::ReduceOp::Sum);
    const int n = s.machine.numGpus();
    const std::size_t shardElems = bytes / 4 / n;
    for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < shardElems; i += 97) {
            std::size_t elem = r * shardElems + i;
            float expected = 0.0f;
            for (int src = 0; src < n; ++src) {
                expected += gpu::patternValue(gpu::DataType::F32, src, elem);
            }
            ASSERT_FLOAT_EQ(gpu::readElement(s.comm->dataBuffer(r),
                                             gpu::DataType::F32, elem),
                            expected);
        }
    }
}

TEST(Broadcast, SingleNodeFlat)
{
    CollSetup s("A100-40G", 1, 1 << 20);
    gpu::fillPattern(s.comm->dataBuffer(3), gpu::DataType::F32, 3);
    s.comm->broadcast(64 << 10, 3);
    for (int r = 0; r < 8; ++r) {
        for (std::size_t i = 0; i < (64 << 10) / 4; i += 101) {
            ASSERT_FLOAT_EQ(gpu::readElement(s.comm->dataBuffer(r),
                                             gpu::DataType::F32, i),
                            gpu::patternValue(gpu::DataType::F32, 3, i));
        }
    }
}

TEST(Broadcast, TwoLevelAcrossNodes)
{
    CollSetup s("A100-40G", 2, 1 << 20);
    gpu::fillPattern(s.comm->dataBuffer(5), gpu::DataType::F32, 5);
    sim::Time t = s.comm->broadcast(128 << 10, 5);
    EXPECT_GT(t, 0u);
    for (int r = 0; r < 16; ++r) {
        for (std::size_t i = 0; i < (128 << 10) / 4; i += 211) {
            ASSERT_FLOAT_EQ(gpu::readElement(s.comm->dataBuffer(r),
                                             gpu::DataType::F32, i),
                            gpu::patternValue(gpu::DataType::F32, 5, i))
                << "rank " << r;
        }
    }
}

TEST(AllToAll, TransposesBlocks)
{
    CollSetup s("A100-40G", 2, 1 << 20);
    const std::size_t slot = 16 << 10;
    const int n = 16;
    for (int r = 0; r < n; ++r) {
        for (int p = 0; p < n; ++p) {
            // Block destined to p gets pattern seeded by (r, p).
            gpu::fillPattern(
                s.comm->dataBuffer(r).view(p * slot, slot),
                gpu::DataType::F32, r, static_cast<std::size_t>(p));
        }
    }
    s.comm->allToAll(slot);
    for (int r = 0; r < n; ++r) {
        for (int p = 0; p < n; ++p) {
            if (p == r) {
                continue;
            }
            // Rank r's slot p now holds what p sent to r.
            for (std::size_t i = 0; i < slot / 4; i += 257) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(s.comm->dataBuffer(r),
                                     gpu::DataType::F32,
                                     p * (slot / 4) + i),
                    gpu::patternValue(gpu::DataType::F32, p,
                                      i, static_cast<std::size_t>(r)))
                    << "rank " << r << " from " << p;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ablation: rotating scratch buffers cut synchronisation cost.
// ---------------------------------------------------------------------------

TEST(Ablation, RotatingScratchIsFasterThanBarriers)
{
    CollectiveComm::Options rotating;
    rotating.rotatingScratch = true;
    CollectiveComm::Options barriers;
    barriers.rotatingScratch = false;

    CollSetup sRot("A100-40G", 1, 1 << 20, rotating);
    CollSetup sBar("A100-40G", 1, 1 << 20, barriers);
    sim::Time tRot = 0;
    sim::Time tBar = 0;
    for (int i = 0; i < 4; ++i) {
        tRot += sRot.comm->allReduce(32 << 10, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs2PLL);
        tBar += sBar.comm->allReduce(32 << 10, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs2PLL);
    }
    EXPECT_LT(tRot, tBar);
}
