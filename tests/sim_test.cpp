#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sim = mscclpp::sim;

TEST(Time, UnitConversions)
{
    EXPECT_EQ(sim::ns(1), 1000u);
    EXPECT_EQ(sim::us(1), 1000000u);
    EXPECT_EQ(sim::msec(1), 1000000000u);
    EXPECT_DOUBLE_EQ(sim::toUs(sim::us(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(sim::toNs(sim::ns(7)), 7.0);
}

TEST(Time, TransferTime)
{
    // 1 GB at 1 GB/s is exactly one second.
    EXPECT_EQ(sim::transferTime(1'000'000'000ull, 1.0), sim::Time(1e12));
    // 300 GB/s moves 3 MB in 10 us.
    EXPECT_EQ(sim::transferTime(3'000'000ull, 300.0), sim::us(10));
    // Zero bandwidth means infinitely fast (latency-only models).
    EXPECT_EQ(sim::transferTime(12345, 0.0), 0u);
}

TEST(Time, AchievedBandwidth)
{
    EXPECT_DOUBLE_EQ(sim::achievedGBps(1'000'000'000ull, sim::Time(1e12)),
                     1.0);
    EXPECT_DOUBLE_EQ(sim::achievedGBps(123, 0), 0.0);
}

TEST(Time, Format)
{
    EXPECT_EQ(sim::formatTime(sim::us(12.5)), "12.50us");
    EXPECT_EQ(sim::formatTime(sim::ns(3)), "3.00ns");
    EXPECT_EQ(sim::formatTime(500), "500ps");
    EXPECT_EQ(sim::formatTime(sim::msec(4.5)), "4.500ms");
}

TEST(Scheduler, RunsEventsInTimeOrder)
{
    sim::Scheduler s;
    std::vector<int> order;
    s.schedule(sim::ns(30), [&] { order.push_back(3); });
    s.schedule(sim::ns(10), [&] { order.push_back(1); });
    s.schedule(sim::ns(20), [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), sim::ns(30));
    EXPECT_EQ(s.eventsProcessed(), 3u);
}

TEST(Scheduler, TiesRunInFifoOrder)
{
    sim::Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        s.schedule(sim::ns(10), [&order, i] { order.push_back(i); });
    }
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, NestedSchedulingAdvancesTime)
{
    sim::Scheduler s;
    sim::Time inner = 0;
    s.schedule(sim::ns(5), [&] {
        s.schedule(sim::ns(7), [&] { inner = s.now(); });
    });
    s.run();
    EXPECT_EQ(inner, sim::ns(12));
}

TEST(Scheduler, RunUntilStopsAtDeadline)
{
    sim::Scheduler s;
    int fired = 0;
    s.schedule(sim::ns(10), [&] { ++fired; });
    s.schedule(sim::ns(100), [&] { ++fired; });
    EXPECT_FALSE(s.runUntil(sim::ns(50)));
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(s.runUntil(sim::ns(1000)));
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PastEventsClampToNow)
{
    sim::Scheduler s;
    s.schedule(sim::ns(10), [] {});
    s.run();
    sim::Time fired = 0;
    s.scheduleAt(sim::ns(1), [&] { fired = s.now(); });
    s.run();
    EXPECT_EQ(fired, sim::ns(10));
}

namespace {

sim::Task<>
delayTask(sim::Scheduler& s, sim::Time d, int* out)
{
    co_await sim::Delay(s, d);
    *out = 1;
}

sim::Task<int>
valueTask(sim::Scheduler& s)
{
    co_await sim::Delay(s, sim::ns(5));
    co_return 42;
}

sim::Task<>
parentTask(sim::Scheduler& s, int* out)
{
    int v = co_await valueTask(s);
    co_await sim::Delay(s, sim::ns(5));
    *out = v;
}

sim::Task<>
throwingTask(sim::Scheduler& s)
{
    co_await sim::Delay(s, sim::ns(1));
    throw std::runtime_error("boom");
}

} // namespace

TEST(Task, DetachedTaskRunsToCompletion)
{
    sim::Scheduler s;
    int done = 0;
    sim::detach(s, delayTask(s, sim::ns(100), &done));
    EXPECT_EQ(done, 0); // suspended at the delay
    s.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(s.now(), sim::ns(100));
}

TEST(Task, NestedAwaitPropagatesValue)
{
    sim::Scheduler s;
    int out = 0;
    sim::detach(s, parentTask(s, &out));
    s.run();
    EXPECT_EQ(out, 42);
    EXPECT_EQ(s.now(), sim::ns(10));
}

TEST(Task, ExceptionPropagatesThroughRun)
{
    sim::Scheduler s;
    sim::detach(s, throwingTask(s));
    EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(Task, JoinCounterTracksCompletion)
{
    sim::Scheduler s;
    sim::JoinCounter join;
    int a = 0;
    int b = 0;
    sim::detach(s, delayTask(s, sim::ns(10), &a), &join);
    sim::detach(s, delayTask(s, sim::ns(20), &b), &join);
    EXPECT_EQ(join.pending(), 2);
    s.run();
    EXPECT_TRUE(join.complete());
    EXPECT_EQ(a + b, 2);
}

namespace {

sim::Task<>
waiterTask(sim::SimSignal& sig, int* wakeups)
{
    co_await sig.wait();
    ++*wakeups;
}

sim::Task<>
semWaiter(sim::SimSemaphore& sem, std::uint64_t expected, sim::Time poll,
          sim::Scheduler& s, sim::Time* when)
{
    co_await sem.waitUntil(expected, poll);
    *when = s.now();
}

sim::Task<>
barrierParty(sim::SimBarrier& bar, sim::Scheduler& s, sim::Time arrive,
             sim::Time* released)
{
    co_await sim::Delay(s, arrive);
    co_await bar.arriveAndWait();
    *released = s.now();
}

} // namespace

TEST(Sync, SignalWakesAllWaiters)
{
    sim::Scheduler s;
    sim::SimSignal sig(s);
    int wakeups = 0;
    sim::detach(s, waiterTask(sig, &wakeups));
    sim::detach(s, waiterTask(sig, &wakeups));
    EXPECT_EQ(sig.numWaiters(), 2u);
    s.schedule(sim::ns(50), [&] { sig.notifyAll(); });
    s.run();
    EXPECT_EQ(wakeups, 2);
}

TEST(Sync, SemaphoreWaitUntilValue)
{
    sim::Scheduler s;
    sim::SimSemaphore sem(s);
    sim::Time when = 0;
    sim::detach(s, semWaiter(sem, 2, sim::ns(100), s, &when));
    s.schedule(sim::ns(10), [&] { sem.add(); });
    s.schedule(sim::ns(30), [&] { sem.add(); });
    s.run();
    // Released at the second add plus the poll-detection latency.
    EXPECT_EQ(when, sim::ns(130));
    EXPECT_EQ(sem.value(), 2u);
}

TEST(Sync, SemaphoreAlreadySatisfiedSkipsPollCharge)
{
    // An already-set flag is observed on the first spin iteration:
    // no detection latency is charged.
    sim::Scheduler s;
    sim::SimSemaphore sem(s);
    sem.add(5);
    sim::Time when = 1;
    sim::detach(s, semWaiter(sem, 3, sim::ns(7), s, &when));
    s.run();
    EXPECT_EQ(when, 0u);
}

TEST(Sync, BarrierReleasesAtLastArrival)
{
    sim::Scheduler s;
    sim::SimBarrier bar(s, 3);
    sim::Time rel[3] = {0, 0, 0};
    sim::detach(s, barrierParty(bar, s, sim::ns(10), &rel[0]));
    sim::detach(s, barrierParty(bar, s, sim::ns(50), &rel[1]));
    sim::detach(s, barrierParty(bar, s, sim::ns(90), &rel[2]));
    s.run();
    EXPECT_EQ(rel[0], sim::ns(90));
    EXPECT_EQ(rel[1], sim::ns(90));
    EXPECT_EQ(rel[2], sim::ns(90));
}

TEST(Sync, BarrierIsReusableAcrossGenerations)
{
    sim::Scheduler s;
    sim::SimBarrier bar(s, 2);
    std::vector<sim::Time> released;

    auto party = [&](sim::Time first, sim::Time second) -> sim::Task<> {
        co_await sim::Delay(s, first);
        co_await bar.arriveAndWait();
        released.push_back(s.now());
        co_await sim::Delay(s, second);
        co_await bar.arriveAndWait();
        released.push_back(s.now());
    };
    sim::detach(s, party(sim::ns(10), sim::ns(100)));
    sim::detach(s, party(sim::ns(20), sim::ns(10)));
    s.run();
    ASSERT_EQ(released.size(), 4u);
    EXPECT_EQ(released[0], sim::ns(20));
    EXPECT_EQ(released[1], sim::ns(20));
    EXPECT_EQ(released[2], sim::ns(120));
    EXPECT_EQ(released[3], sim::ns(120));
}

TEST(Sync, WaitGroupReleasesWhenAllDone)
{
    sim::Scheduler s;
    sim::WaitGroup wg(s);
    sim::Time when = 0;

    auto worker = [&](sim::Time d) -> sim::Task<> {
        co_await sim::Delay(s, d);
        wg.done();
    };
    auto waiter = [&]() -> sim::Task<> {
        co_await wg.wait();
        when = s.now();
    };
    wg.add(3);
    sim::detach(s, worker(sim::ns(10)));
    sim::detach(s, worker(sim::ns(70)));
    sim::detach(s, worker(sim::ns(40)));
    sim::detach(s, waiter());
    s.run();
    EXPECT_EQ(when, sim::ns(70));
}

// ---- scheduler edge cases (PR 10) ------------------------------------------

TEST(Scheduler, AdvanceToIsNoOpWithPendingEvents)
{
    sim::Scheduler s;
    s.schedule(sim::ns(100), [] {});
    s.advanceTo(sim::ns(500)); // events in flight own the clock
    EXPECT_EQ(s.now(), 0);
    s.run();
    EXPECT_EQ(s.now(), sim::ns(100));
}

TEST(Scheduler, AdvanceToPastIsNoOp)
{
    sim::Scheduler s;
    s.schedule(sim::ns(100), [] {});
    s.run();
    s.advanceTo(sim::ns(50));
    EXPECT_EQ(s.now(), sim::ns(100));
    s.advanceTo(sim::ns(200));
    EXPECT_EQ(s.now(), sim::ns(200));
}

TEST(Scheduler, RunUntilIncludesExactDeadline)
{
    sim::Scheduler s;
    int fired = 0;
    s.schedule(sim::ns(100), [&] { ++fired; });
    s.schedule(sim::ns(101), [&] { ++fired; });
    // An event AT the deadline is inside the window (when <= deadline).
    EXPECT_FALSE(s.runUntil(sim::ns(100)));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s.now(), sim::ns(100));
    EXPECT_TRUE(s.runUntil(sim::ns(101)));
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ThousandWayTieRunsInFifoOrder)
{
    sim::Scheduler s;
    std::vector<int> order;
    order.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
        s.schedule(sim::us(1), [&order, i] { order.push_back(i); });
    }
    s.run();
    ASSERT_EQ(order.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(order[i], i) << "FIFO tie-break broke at " << i;
    }
}

TEST(Scheduler, IdleHookMayScheduleFromInsideTheHook)
{
    sim::Scheduler s;
    int hookRuns = 0;
    int rescheduled = 0;
    s.setIdleHook([&] {
        if (++hookRuns == 1) {
            s.schedule(sim::ns(10), [&] { ++rescheduled; });
        }
    });
    s.schedule(sim::ns(5), [] {});
    s.run();
    // First drain fires the hook, the hook's event runs, the second
    // drain fires the hook again (which stays quiet), then run returns.
    EXPECT_EQ(hookRuns, 2);
    EXPECT_EQ(rescheduled, 1);
    EXPECT_EQ(s.now(), sim::ns(15));
}

TEST(Scheduler, EventsProcessedMonotonicAcrossRunAndStep)
{
    sim::Scheduler s;
    for (int i = 0; i < 3; ++i) {
        s.schedule(sim::ns(10 * (i + 1)), [] {});
    }
    EXPECT_EQ(s.eventsProcessed(), 0u);
    EXPECT_TRUE(s.step());
    EXPECT_EQ(s.eventsProcessed(), 1u);
    s.run();
    EXPECT_EQ(s.eventsProcessed(), 3u);
    EXPECT_FALSE(s.step()); // empty queue: no-op, counter unchanged
    EXPECT_EQ(s.eventsProcessed(), 3u);
    s.schedule(0, [] {});
    s.run();
    EXPECT_EQ(s.eventsProcessed(), 4u);
}

// ---- self-profiling counters (PR 10) ---------------------------------------

TEST(Scheduler, DispatchIsMoveOnly)
{
    const std::uint64_t before = sim::Scheduler::closureCopies();
    sim::Scheduler s;
    // Interleaved timestamps force real heap churn (sift-up and
    // sift-down on every push/pop), and a capture big enough that a
    // copied closure would have to allocate.
    std::vector<std::uint64_t> payload(64, 7);
    int ran = 0;
    for (int i = 0; i < 500; ++i) {
        s.schedule(sim::ns((i * 37) % 100), [&ran, payload] {
            ran += static_cast<int>(payload[0] != 0);
        });
    }
    s.run();
    EXPECT_EQ(ran, 500);
    EXPECT_EQ(sim::Scheduler::closureCopies(), before)
        << "event dispatch copied a closure";
}

TEST(Scheduler, MaxQueueDepthTracksHighWaterMark)
{
    sim::Scheduler s;
    EXPECT_EQ(s.maxQueueDepth(), 0u);
    for (int i = 0; i < 7; ++i) {
        s.schedule(sim::ns(i), [] {});
    }
    EXPECT_EQ(s.queueDepth(), 7u);
    s.run();
    EXPECT_EQ(s.queueDepth(), 0u);
    EXPECT_EQ(s.maxQueueDepth(), 7u); // survives the drain
}

TEST(Scheduler, OriginCountsPerLabel)
{
    sim::Scheduler s;
    s.enableOriginCounts(true);
    s.schedule(sim::ns(1), [] {}, "test.a");
    s.schedule(sim::ns(2), [] {}, "test.a");
    s.schedule(sim::ns(3), [] {}, "test.b");
    s.schedule(sim::ns(4), [] {});
    s.run();
    auto counts = s.originCountsByName();
    EXPECT_EQ(counts["test.a"], 2u);
    EXPECT_EQ(counts["test.b"], 1u);
    EXPECT_EQ(counts[sim::Scheduler::kUnattributed], 1u);
}

TEST(Scheduler, NestedSchedulesInheritDispatchOrigin)
{
    sim::Scheduler s;
    s.enableOriginCounts(true);
    // The closure dispatched under "test.chain" schedules a follow-up
    // with no label: the causal chain keeps the originating subsystem.
    s.schedule(sim::ns(1), [&] { s.schedule(sim::ns(1), [] {}); },
               "test.chain");
    s.run();
    auto counts = s.originCountsByName();
    EXPECT_EQ(counts["test.chain"], 2u);
    EXPECT_EQ(counts.count(sim::Scheduler::kUnattributed), 0u);
}

TEST(Scheduler, OriginScopeStampsHostSideSchedules)
{
    sim::Scheduler s;
    s.enableOriginCounts(true);
    EXPECT_EQ(s.currentOrigin(), nullptr);
    {
        sim::Scheduler::OriginScope scope(s, "test.scope");
        EXPECT_STREQ(s.currentOrigin(), "test.scope");
        s.schedule(sim::ns(1), [] {});
    }
    EXPECT_EQ(s.currentOrigin(), nullptr);
    s.run();
    EXPECT_EQ(s.originCountsByName()["test.scope"], 1u);
}

TEST(Task, FrameCensusTracksCoroutineFrames)
{
    sim::Scheduler s;
    const sim::FrameStats before = sim::frameStats();
    int done = 0;
    sim::detach(s, delayTask(s, sim::ns(10), &done));
    EXPECT_GT(sim::frameStats().live, before.live); // suspended frame
    s.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(sim::frameStats().live, before.live); // all freed
    EXPECT_GE(sim::frameStats().created, before.created + 2);
    EXPECT_GE(sim::frameStats().peak, sim::frameStats().live);
}
