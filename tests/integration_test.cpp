/**
 * Cross-module integration tests: a fuzzed sequence of mixed
 * collectives over one communicator (scratch rotation, semaphore
 * counters and proxies must all stay consistent), and the full host
 * runtime over real TCP sockets.
 */
#include "collective/api.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

#include <random>
#include <thread>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using namespace mscclpp;

namespace {

float
sumAt(int n, std::size_t i, std::size_t seed)
{
    float v = 0.0f;
    for (int r = 0; r < n; ++r) {
        v += gpu::patternValue(gpu::DataType::F32, r, i, seed);
    }
    return v;
}

} // namespace

class MixedCollectiveFuzz
    : public ::testing::TestWithParam<std::tuple<const char*, int, unsigned>>
{
};

TEST_P(MixedCollectiveFuzz, LongRandomSequenceStaysCorrect)
{
    const auto& [env, nodes, seed] = GetParam();
    gpu::Machine m(fab::makeEnv(env), nodes);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    const int n = m.numGpus();

    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> opDist(0, 3);
    std::uniform_int_distribution<int> sizeDist(0, 3);
    const std::size_t sizes[] = {8 << 10, 64 << 10, 256 << 10, 1 << 20};

    for (int round = 0; round < 12; ++round) {
        std::size_t bytes = sizes[sizeDist(rng)];
        std::size_t elems = bytes / 4;
        int op = opDist(rng);
        std::size_t s = seed + round;
        switch (op) {
          case 0: { // AllReduce
            for (int r = 0; r < n; ++r) {
                gpu::fillPattern(coll.dataBuffer(r).view(0, bytes),
                                 gpu::DataType::F32, r, s);
            }
            coll.allReduce(bytes, gpu::DataType::F32, gpu::ReduceOp::Sum);
            for (std::size_t i = 0; i < elems; i += elems / 7 + 1) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(coll.dataBuffer(round % n),
                                     gpu::DataType::F32, i),
                    sumAt(n, i, s))
                    << "round " << round << " AllReduce";
            }
            break;
          }
          case 1: { // AllGather
            std::size_t shard = bytes / n;
            if (shard < 64) {
                continue;
            }
            for (int r = 0; r < n; ++r) {
                gpu::fillPattern(
                    coll.dataBuffer(r).view(r * shard, shard),
                    gpu::DataType::F32, r, s);
            }
            coll.allGather(shard);
            std::size_t se = shard / 4;
            for (int src = 0; src < n; src += 3) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(coll.dataBuffer((round + 1) % n),
                                     gpu::DataType::F32, src * se + 1),
                    gpu::patternValue(gpu::DataType::F32, src, 1, s))
                    << "round " << round << " AllGather";
            }
            break;
          }
          case 2: { // ReduceScatter (single-node kernel only)
            if (nodes > 1) {
                continue;
            }
            for (int r = 0; r < n; ++r) {
                gpu::fillPattern(coll.dataBuffer(r).view(0, bytes),
                                 gpu::DataType::F32, r, s);
            }
            coll.reduceScatter(bytes, gpu::DataType::F32,
                               gpu::ReduceOp::Sum);
            std::size_t se = elems / n;
            int who = round % n;
            ASSERT_FLOAT_EQ(
                gpu::readElement(coll.dataBuffer(who),
                                 gpu::DataType::F32, who * se + 2),
                sumAt(n, who * se + 2, s))
                << "round " << round << " ReduceScatter";
            break;
          }
          default: { // Broadcast
            int root = round % n;
            gpu::fillPattern(coll.dataBuffer(root).view(0, bytes),
                             gpu::DataType::F32, root, s);
            coll.broadcast(bytes, root);
            ASSERT_FLOAT_EQ(
                gpu::readElement(coll.dataBuffer((root + 3) % n),
                                 gpu::DataType::F32, 4),
                gpu::patternValue(gpu::DataType::F32, root, 4, s))
                << "round " << round << " Broadcast";
            break;
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MixedCollectiveFuzz,
    ::testing::Values(std::make_tuple("A100-40G", 1, 11u),
                      std::make_tuple("A100-40G", 1, 23u),
                      std::make_tuple("A100-40G", 2, 37u),
                      std::make_tuple("H100", 1, 41u),
                      std::make_tuple("MI300x", 1, 53u)),
    [](const auto& info) {
        std::string s = std::string(std::get<0>(info.param)) + "_" +
                        std::to_string(std::get<1>(info.param)) + "n_s" +
                        std::to_string(std::get<2>(info.param));
        for (char& c : s) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return s;
    });

// ---------------------------------------------------------------------------
// Full host runtime over real TCP sockets: every rank on its own
// thread exchanges registered-memory and semaphore handles exactly
// like a multi-process deployment would.
// ---------------------------------------------------------------------------

TEST(TcpRuntime, MemoryAndSemaphoreExchangeOverSockets)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    const int n = m.numGpus();
    const int port = 23000 + (getpid() * 13 + 7) % 20000;

    std::vector<gpu::DeviceBuffer> bufs(n);
    for (int r = 0; r < n; ++r) {
        bufs[r] = m.gpu(r).alloc(4096);
    }

    std::vector<std::thread> threads;
    std::vector<std::string> errors(n);
    for (int r = 0; r < n; ++r) {
        threads.emplace_back([&, r] {
            try {
                auto boot = createTcpBootstrap(r, n, port);
                Communicator comm(boot, m);
                // Ring-exchange registered memory handles.
                RegisteredMemory mine = comm.registerMemory(bufs[r]);
                comm.sendMemory(mine, (r + 1) % n, 1);
                RegisteredMemory prev =
                    comm.recvMemory((r + n - 1) % n, 1);
                if (prev.rank() != (r + n - 1) % n ||
                    prev.buffer().data() != bufs[prev.rank()].data()) {
                    errors[r] = "bad memory handle";
                }
                // And a semaphore handle the other way round.
                DeviceSemaphore* sem = comm.createSemaphore();
                comm.sendSemaphore(sem, (r + n - 1) % n, 2);
                DeviceSemaphore* peer =
                    comm.recvSemaphore((r + 1) % n, 2);
                if (peer->gpuRank() != (r + 1) % n) {
                    errors[r] = "bad semaphore handle";
                }
                comm.bootstrap().barrier();
            } catch (const std::exception& e) {
                errors[r] = e.what();
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int r = 0; r < n; ++r) {
        EXPECT_EQ(errors[r], "") << "rank " << r;
    }
}
