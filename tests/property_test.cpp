/**
 * Property-style sweeps: every algorithm variant, protocol and
 * machine shape must produce bit-exact collectives; serialization
 * must round-trip every DSL builder; selectors must be total.
 */
#include "baseline/nccl.hpp"
#include "collective/api.hpp"
#include "core/errors.hpp"
#include "dsl/algorithms.hpp"
#include "dsl/executor.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace dsl = mscclpp::dsl;
using namespace mscclpp;

namespace {

std::string
sanitize(std::string s)
{
    for (char& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
            c = '_';
        }
    }
    return s;
}

float
expectedSum(int n, std::size_t i, std::size_t seed, gpu::DataType dt)
{
    float v = 0.0f;
    for (int r = 0; r < n; ++r) {
        v += gpu::patternValue(dt, r, i, seed);
    }
    return v;
}

} // namespace

// ---------------------------------------------------------------------------
// Unusual machine shapes: 4 GPUs per node (the models must not bake
// in 8 anywhere).
// ---------------------------------------------------------------------------

class SmallNodeShapes : public ::testing::TestWithParam<int>
{
};

TEST_P(SmallNodeShapes, CollectivesWorkWithFourGpuNodes)
{
    fab::EnvConfig cfg = fab::makeA100_40G();
    cfg.gpusPerNode = 4;
    const int nodes = GetParam();
    gpu::Machine m(cfg, nodes);
    const int n = m.numGpus();
    CollectiveComm::Options opt;
    opt.maxBytes = 256 << 10;
    CollectiveComm coll(m, opt);

    for (int r = 0; r < n; ++r) {
        gpu::fillPattern(coll.dataBuffer(r), gpu::DataType::F32, r);
    }
    coll.allReduce(64 << 10, gpu::DataType::F32, gpu::ReduceOp::Sum);
    for (std::size_t i = 0; i < (64 << 10) / 4; i += 149) {
        ASSERT_FLOAT_EQ(
            gpu::readElement(coll.dataBuffer(n - 1), gpu::DataType::F32,
                             i),
            expectedSum(n, i, 0, gpu::DataType::F32));
    }

    // AllGather too.
    const std::size_t shard = 8 << 10;
    for (int r = 0; r < n; ++r) {
        gpu::fillPattern(coll.dataBuffer(r).view(r * shard, shard),
                         gpu::DataType::F32, r, 5);
    }
    coll.allGather(shard);
    for (int src = 0; src < n; ++src) {
        ASSERT_FLOAT_EQ(gpu::readElement(coll.dataBuffer(0),
                                         gpu::DataType::F32,
                                         src * (shard / 4) + 3),
                        gpu::patternValue(gpu::DataType::F32, src, 3, 5));
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, SmallNodeShapes, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// NCCL baseline: every protocol must be correct when forced.
// ---------------------------------------------------------------------------

struct ProtoCase
{
    const char* env;
    baseline::NcclAlgo algo;
    std::size_t bytes;
};

class NcclProtocolSweep : public ::testing::TestWithParam<ProtoCase>
{
};

TEST_P(NcclProtocolSweep, ForcedAlgosStayExact)
{
    const ProtoCase& c = GetParam();
    // Forced algorithms get their protocol from the tuner by size,
    // exercising LL (small), LL128 (mid) and Simple (large).
    gpu::Machine m(fab::makeEnv(c.env), 1);
    baseline::NcclComm comm(m, std::max<std::size_t>(c.bytes, 1 << 20));
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(comm.dataBuffer(r), gpu::DataType::F32, r, 9);
    }
    comm.allReduce(c.bytes, gpu::DataType::F32, gpu::ReduceOp::Sum,
                   c.algo);
    for (std::size_t i = 0; i < c.bytes / 4;
         i += std::max<std::size_t>(1, c.bytes / 4 / 61)) {
        ASSERT_FLOAT_EQ(
            gpu::readElement(comm.dataBuffer(6), gpu::DataType::F32, i),
            expectedSum(8, i, 9, gpu::DataType::F32));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NcclProtocolSweep,
    ::testing::Values(
        ProtoCase{"A100-40G", baseline::NcclAlgo::Ring, 4 << 10},   // LL
        ProtoCase{"A100-40G", baseline::NcclAlgo::Ring, 1 << 20},   // LL128
        ProtoCase{"A100-40G", baseline::NcclAlgo::Ring, 16 << 20},  // Simple
        ProtoCase{"MI300x", baseline::NcclAlgo::Ring, 1 << 20},  // no LL128
        ProtoCase{"H100", baseline::NcclAlgo::Nvls, 16 << 20},
        ProtoCase{"A100-40G", baseline::NcclAlgo::Tree, 96 << 10}),
    [](const auto& info) {
        return sanitize(std::string(info.param.env) + "_" +
                        toString(info.param.algo) + "_" +
                        std::to_string(info.param.bytes));
    });

// ---------------------------------------------------------------------------
// FP16 end-to-end across all MSCCL++ algorithms (values chosen so
// half sums stay exact).
// ---------------------------------------------------------------------------

class F16AlgoSweep : public ::testing::TestWithParam<AllReduceAlgo>
{
};

TEST_P(F16AlgoSweep, HalfPrecisionSumsExactly)
{
    AllReduceAlgo algo = GetParam();
    const char* env =
        algo == AllReduceAlgo::Switch2P ? "H100" : "A100-40G";
    gpu::Machine m(fab::makeEnv(env), 1);
    CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    CollectiveComm coll(m, opt);
    const std::size_t bytes = 128 << 10;
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(coll.dataBuffer(r), gpu::DataType::F16, r, 2);
    }
    coll.allReduce(bytes, gpu::DataType::F16, gpu::ReduceOp::Sum, algo);
    for (std::size_t i = 0; i < bytes / 2; i += 463) {
        ASSERT_FLOAT_EQ(
            gpu::readElement(coll.dataBuffer(2), gpu::DataType::F16, i),
            expectedSum(8, i, 2, gpu::DataType::F16));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, F16AlgoSweep,
    ::testing::Values(AllReduceAlgo::AllPairs2PLL,
                      AllReduceAlgo::AllPairs2PHB,
                      AllReduceAlgo::AllPairs2PPort,
                      AllReduceAlgo::Switch2P),
    [](const auto& info) {
        return sanitize(mscclpp::toString(info.param));
    });

// ---------------------------------------------------------------------------
// DSL: every builder serializes, deserializes, validates and executes.
// ---------------------------------------------------------------------------

struct DslBuilderCase
{
    const char* name;
    dsl::Program (*build)(int, std::size_t);
    std::size_t bytes;
    const char* env;
};

class DslBuilderSweep : public ::testing::TestWithParam<DslBuilderCase>
{
};

TEST_P(DslBuilderSweep, RoundTripValidateExecute)
{
    const DslBuilderCase& c = GetParam();
    dsl::Program p = c.build(8, c.bytes);
    // Validation passes.
    EXPECT_TRUE(p.validate(1 << 20, 4 << 20).empty()) << c.name;
    // Serialization round-trips.
    dsl::Program q = dsl::Program::deserialize(p.serialize());
    EXPECT_EQ(q.totalInstructions(), p.totalInstructions());
    // And the deserialized program still computes the right thing.
    gpu::Machine m(fab::makeEnv(c.env), 1);
    dsl::Executor ex(m, 1 << 20);
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(ex.dataBuffer(r), gpu::DataType::F32, r, 4);
    }
    ex.execute(q, gpu::DataType::F32, gpu::ReduceOp::Sum);
    for (std::size_t i = 0; i < c.bytes / 4; i += 977) {
        ASSERT_FLOAT_EQ(
            gpu::readElement(ex.dataBuffer(5), gpu::DataType::F32, i),
            expectedSum(8, i, 4, gpu::DataType::F32))
            << c.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Builders, DslBuilderSweep,
    ::testing::Values(
        DslBuilderCase{"1PA", dsl::buildAllPairs1PAllReduce, 16 << 10,
                       "A100-40G"},
        DslBuilderCase{"2PA-LL", dsl::buildAllPairs2PAllReduceLL,
                       128 << 10, "A100-40G"},
        DslBuilderCase{"2PA-HB", dsl::buildAllPairs2PAllReduceHB,
                       256 << 10, "A100-40G"},
        DslBuilderCase{"2PA-Port", dsl::buildAllPairs2PAllReducePort,
                       256 << 10, "A100-40G"},
        DslBuilderCase{"ring", dsl::buildRingAllReduce, 256 << 10,
                       "A100-40G"},
        DslBuilderCase{"switch", dsl::buildSwitchAllReduce, 256 << 10,
                       "H100"}),
    [](const auto& info) { return sanitize(info.param.name); });

// ---------------------------------------------------------------------------
// Selector totality: Auto must resolve every size without throwing.
// ---------------------------------------------------------------------------

TEST(SelectorProperty, AutoIsTotalOverSizesAndShapes)
{
    for (const char* env : {"A100-40G", "H100", "MI300x"}) {
        for (int nodes : {1, 2}) {
            gpu::Machine m(fab::makeEnv(env), nodes,
                           gpu::DataMode::Timed);
            CollectiveComm::Options opt;
            opt.maxBytes = 64 << 20;
            CollectiveComm coll(m, opt);
            for (std::size_t bytes = 1 << 10; bytes <= (64 << 20);
                 bytes <<= 2) {
                sim::Time t = coll.allReduce(bytes, gpu::DataType::F16,
                                             gpu::ReduceOp::Sum);
                ASSERT_GT(t, 0u) << env << " " << nodes << " " << bytes;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Monotonicity: more bytes never get faster (per algorithm).
// ---------------------------------------------------------------------------

TEST(TimingProperty, LatencyIsMonotonicInSize)
{
    gpu::Machine m(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    CollectiveComm::Options opt;
    opt.maxBytes = 64 << 20;
    CollectiveComm coll(m, opt);
    sim::Time prev = 0;
    for (std::size_t bytes = 2 << 10; bytes <= (64 << 20); bytes <<= 1) {
        sim::Time t = coll.allReduce(bytes, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum,
                                     AllReduceAlgo::AllPairs2PHB);
        EXPECT_GE(t + sim::us(1), prev) << bytes; // small jitter slack
        prev = t;
    }
}

// ---------------------------------------------------------------------------
// Multi-node ReduceScatter (hierarchical).
// ---------------------------------------------------------------------------

TEST(HierReduceScatter, TwoAndFourNodesExact)
{
    for (int nodes : {2, 4}) {
        gpu::Machine m(fab::makeA100_40G(), nodes);
        const int n = m.numGpus();
        CollectiveComm::Options opt;
        opt.maxBytes = 1 << 20;
        CollectiveComm coll(m, opt);
        const std::size_t bytes = 512 << 10;
        for (int r = 0; r < n; ++r) {
            gpu::fillPattern(coll.dataBuffer(r), gpu::DataType::F32, r,
                             7);
        }
        coll.reduceScatter(bytes, gpu::DataType::F32, gpu::ReduceOp::Sum);
        const std::size_t shardElems = bytes / 4 / n;
        for (int r = 0; r < n; r += 3) {
            for (std::size_t i = 0; i < shardElems; i += 311) {
                std::size_t elem = r * shardElems + i;
                ASSERT_FLOAT_EQ(
                    gpu::readElement(coll.dataBuffer(r),
                                     gpu::DataType::F32, elem),
                    expectedSum(n, elem, 7, gpu::DataType::F32))
                    << nodes << "n rank " << r;
            }
        }
    }
}
