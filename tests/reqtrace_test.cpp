// Tests of end-to-end request tracing (src/obs/reqtrace.*): the
// cluster-level RequestTracer must fold every finished request into a
// seven-bucket latency split that reconciles *exactly* — to the
// picosecond — with the measured TTFT and e2e, including requests
// that were preempted and recomputed and requests whose KV crossed
// the NIC in a disaggregated cluster. Also covers top-k retention,
// dump schema/determinism, and the zero-perturbation invariant the
// bench_report overhead metric gates.
#include "core/errors.hpp"
#include "obs/reqtrace.hpp"
#include "serving/cluster.hpp"
#include "tuner/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace mscclpp;
using namespace mscclpp::serving;

namespace {

inference::InferenceConfig
tinyModel()
{
    inference::InferenceConfig inf;
    inf.model.name = "tiny";
    inf.model.layers = 4;
    inf.model.hidden = 256;
    inf.model.heads = 8;
    inf.model.kvHeads = 8;
    inf.model.ffn = 512;
    inf.model.vocab = 512;
    inf.perLayerOverhead = sim::us(5);
    return inf;
}

ServingConfig
tracedConfig(int topK = 64)
{
    ServingConfig cfg;
    cfg.inference = tinyModel();
    cfg.workload.requests = 16;
    cfg.workload.ratePerSec = 2000.0;
    cfg.workload.mix = {{1.0, 32, 64, 8, 16}};
    cfg.reqtrace = true;
    cfg.reqtraceFile.clear(); // in-memory only, no artifact
    cfg.reqtraceTopK = topK;
    return cfg;
}

/** Both bucket splits of @p t must sum exactly to the latency they
 *  attribute — the tentpole invariant. */
void
expectExactReconciliation(const obs::RequestTrace& t)
{
    sim::Time ttftSum = 0;
    sim::Time e2eSum = 0;
    for (obs::ReqCategory c : obs::kReqCategories) {
        ttftSum += t.ttftBucket(c);
        e2eSum += t.e2eBucket(c);
    }
    EXPECT_EQ(ttftSum, t.ttft()) << "request " << t.id;
    EXPECT_EQ(e2eSum, t.e2e()) << "request " << t.id;
}

} // namespace

TEST(ReqTrace, BucketsReconcileExactlyForEveryExemplar)
{
    if (!obs::RequestTracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    ServingConfig cfg = tracedConfig();
    cfg.replicas = 2;
    ServingCluster cluster(cfg);
    cluster.run();
    const obs::RequestTracer& rt = cluster.reqtrace();
    EXPECT_TRUE(rt.enabled());
    EXPECT_EQ(rt.observed(), 16u);
    EXPECT_EQ(rt.completedCount(), 16u);
    for (const char* cls : {"ttft", "e2e"}) {
        const auto& worst = rt.exemplars(cls);
        ASSERT_EQ(worst.size(), 16u) << "topK 64 must retain all";
        for (const obs::RequestTrace& t : worst) {
            expectExactReconciliation(t);
            ASSERT_FALSE(t.spans.empty());
            // The finalised tree is contiguous over [arrival,
            // completed]: it starts at arrival and no span leaves a
            // gap behind it.
            EXPECT_EQ(t.spans.front().begin, t.arrival);
            sim::Time cursor = t.arrival;
            for (const obs::RequestSpan& sp : t.spans) {
                EXPECT_LE(sp.begin, cursor);
                cursor = std::max(cursor, sp.end);
            }
            EXPECT_EQ(cursor, t.completed);
            EXPECT_GT(t.blame.cost, 0u);
            EXPECT_GE(t.blame.replica, 0);
        }
    }
    // The machine tracer is implied by reqtrace, so step attributions
    // flowed in: some exemplar must carry exposed communication.
    sim::Time commTotal = 0;
    for (const obs::RequestTrace& t : rt.exemplars("e2e")) {
        commTotal += t.e2eBucket(obs::ReqCategory::ExposedComms) +
                     t.e2eBucket(obs::ReqCategory::SyncWait);
    }
    EXPECT_GT(commTotal, 0u);
}

TEST(ReqTrace, PreemptedRequestChargedPreemptionLost)
{
    if (!obs::RequestTracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    ServingConfig cfg = tracedConfig(8);
    cfg.workload.mode = ArrivalMode::Trace;
    cfg.workload.trace = "0:64:40;0:64:40";
    cfg.kvTokens = 150; // both admit at 128, collide while growing
    ServingCluster cluster(cfg);
    cluster.run();
    const obs::RequestTracer& rt = cluster.reqtrace();
    EXPECT_GT(rt.preemptionEvents(), 0u);
    bool sawPreempted = false;
    for (const obs::RequestTrace& t : rt.exemplars("e2e")) {
        expectExactReconciliation(t);
        if (t.preemptions == 0) {
            continue;
        }
        sawPreempted = true;
        // The eviction cost the request real time, and the recompute
        // prefill shows up as its own phase in the span tree.
        EXPECT_GT(t.e2eBucket(obs::ReqCategory::PreemptionLost), 0u);
        bool sawRecompute = false;
        for (const obs::RequestSpan& sp : t.spans) {
            sawRecompute = sawRecompute ||
                           sp.phase == obs::ReqPhase::Recompute;
        }
        EXPECT_TRUE(sawRecompute) << "request " << t.id;
    }
    EXPECT_TRUE(sawPreempted);
}

TEST(ReqTrace, DisaggregatedRequestChargedKvMigration)
{
    if (!obs::RequestTracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    ServingConfig cfg = tracedConfig();
    cfg.replicas = 2;
    cfg.prefillReplicas = 1;
    ServingCluster cluster(cfg);
    cluster.run();
    const obs::RequestTracer& rt = cluster.reqtrace();
    EXPECT_EQ(rt.migrations(), 16u);
    const auto& worst = rt.exemplars("e2e");
    ASSERT_EQ(worst.size(), 16u);
    for (const obs::RequestTrace& t : worst) {
        expectExactReconciliation(t);
        // Every request's KV crossed the NIC: the transfer is in the
        // tree and charged to the kv_migration bucket.
        EXPECT_GT(t.e2eBucket(obs::ReqCategory::KvMigration), 0u)
            << "request " << t.id;
        bool sawMigration = false;
        for (const obs::RequestSpan& sp : t.spans) {
            if (sp.phase == obs::ReqPhase::Migration) {
                sawMigration = true;
                EXPECT_GT(sp.bytes, 0u);
            }
        }
        EXPECT_TRUE(sawMigration) << "request " << t.id;
    }
}

TEST(ReqTrace, TopKBoundsRetentionWorstFirst)
{
    if (!obs::RequestTracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    ServingConfig cfg = tracedConfig(2);
    ServingCluster cluster(cfg);
    cluster.run();
    const obs::RequestTracer& rt = cluster.reqtrace();
    EXPECT_EQ(rt.completedCount(), 16u);
    for (const char* cls : {"ttft", "e2e"}) {
        const auto& worst = rt.exemplars(cls);
        ASSERT_EQ(worst.size(), 2u);
    }
    // Worst-first, and the retained worst matches the ground truth
    // the cluster's own per-request stats recorded.
    const auto& e2e = rt.exemplars("e2e");
    EXPECT_GE(e2e[0].e2e(), e2e[1].e2e());
    sim::Time trueWorst = 0;
    for (const RequestStats& s : cluster.requests()) {
        trueWorst = std::max(trueWorst, s.e2e());
    }
    EXPECT_EQ(e2e[0].e2e(), trueWorst);
    EXPECT_THROW(rt.exemplars("p50"), Error);
}

TEST(ReqTrace, DroppedRequestsCountedNotRetained)
{
    if (!obs::RequestTracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    ServingConfig cfg = tracedConfig();
    cfg.workload.mode = ArrivalMode::Trace;
    cfg.workload.trace = "0:64:16;0:512:64"; // second can never fit
    cfg.kvTokens = 120;
    ServingCluster cluster(cfg);
    cluster.run();
    const obs::RequestTracer& rt = cluster.reqtrace();
    EXPECT_EQ(rt.droppedCount(), 1u);
    EXPECT_EQ(rt.completedCount(), 1u);
    EXPECT_EQ(rt.find(1), nullptr);
    ASSERT_NE(rt.find(0), nullptr);
    expectExactReconciliation(*rt.find(0));
}

TEST(ReqTrace, DumpParsesCarriesSchemaAndIsDeterministic)
{
    if (!obs::RequestTracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    ServingConfig cfg = tracedConfig(4);
    cfg.replicas = 2;
    ServingCluster a(cfg), b(cfg);
    a.run();
    b.run();
    const std::string dump = a.reqtrace().toJson();
    EXPECT_EQ(dump, b.reqtrace().toJson())
        << "same seed must serialise bit-identically";
    std::optional<tuner::json::Value> doc = tuner::json::parse(dump);
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->get("schema"), nullptr);
    EXPECT_EQ(doc->get("schema")->string, "mscclpp.reqtrace");
    ASSERT_NE(doc->get("version"), nullptr);
    EXPECT_EQ(doc->get("version")->number, 1.0);
    const tuner::json::Value* classes = doc->get("classes");
    ASSERT_NE(classes, nullptr);
    for (const char* cls : {"ttft", "e2e"}) {
        const tuner::json::Value* list = classes->get(cls);
        ASSERT_NE(list, nullptr);
        ASSERT_TRUE(list->isArray());
        EXPECT_EQ(list->array.size(), 4u);
    }
    ASSERT_NE(doc->get("faults"), nullptr);
    EXPECT_TRUE(doc->get("faults")->isArray());
}

// The invariant behind bench_report's serving.reqtrace_overhead_pct
// gate: request tracing observes virtual time, it never advances it.
// Runs in the NO_OBS leg too (tracing is then a no-op, trivially 0).
TEST(ReqTrace, TracingNeverPerturbsVirtualTime)
{
    ServingConfig clean;
    clean.inference = tinyModel();
    clean.workload.requests = 16;
    clean.workload.ratePerSec = 2000.0;
    clean.workload.mix = {{1.0, 32, 64, 8, 16}};
    ServingConfig traced = clean;
    traced.reqtrace = true;
    traced.reqtraceFile.clear();
    ServingCluster off(clean), on(traced);
    ServingReport repOff = off.run();
    ServingReport repOn = on.run();
    EXPECT_EQ(repOff.makespan, repOn.makespan);
    EXPECT_EQ(repOff.ttftP99, repOn.ttftP99);
    EXPECT_EQ(repOff.tpotP99, repOn.tpotP99);
    ASSERT_EQ(off.requests().size(), on.requests().size());
    for (std::size_t i = 0; i < off.requests().size(); ++i) {
        EXPECT_EQ(off.requests()[i].firstToken,
                  on.requests()[i].firstToken);
        EXPECT_EQ(off.requests()[i].completed,
                  on.requests()[i].completed);
    }
}

TEST(ReqTrace, DisabledTracerRecordsNothing)
{
    // Works in both CI legs: reqtrace off (or compiled out) means
    // every hook is a dead branch.
    ServingConfig cfg;
    cfg.inference = tinyModel();
    cfg.workload.requests = 4;
    cfg.workload.ratePerSec = 2000.0;
    cfg.workload.mix = {{1.0, 32, 64, 8, 16}};
    ServingCluster cluster(cfg);
    cluster.run();
    const obs::RequestTracer& rt = cluster.reqtrace();
    EXPECT_FALSE(rt.enabled());
    EXPECT_EQ(rt.observed(), 0u);
    EXPECT_TRUE(rt.exemplars("ttft").empty());
    EXPECT_TRUE(rt.exemplars("e2e").empty());
}
