#include "baseline/msccl.hpp"
#include "baseline/nccl.hpp"
#include "collective/api.hpp"
#include "core/errors.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
using namespace mscclpp::baseline;

namespace {

void
fill(gpu::Machine& m, const std::function<gpu::DeviceBuffer(int)>& buf,
     std::size_t seed = 0)
{
    for (int r = 0; r < m.numGpus(); ++r) {
        gpu::fillPattern(buf(r), gpu::DataType::F32, r, seed);
    }
}

void
checkSum(gpu::Machine& m, const std::function<gpu::DeviceBuffer(int)>& buf,
         std::size_t count, std::size_t seed = 0)
{
    const int n = m.numGpus();
    for (std::size_t i = 0; i < count;
         i += std::max<std::size_t>(1, count / 89)) {
        float expected = 0.0f;
        for (int r = 0; r < n; ++r) {
            expected += gpu::patternValue(gpu::DataType::F32, r, i, seed);
        }
        for (int r = 0; r < n; ++r) {
            ASSERT_FLOAT_EQ(gpu::readElement(buf(r), gpu::DataType::F32, i),
                            expected)
                << "rank " << r << " elem " << i;
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// NCCL baseline correctness.
// ---------------------------------------------------------------------------

struct NcclCase
{
    const char* env;
    int nodes;
    NcclAlgo algo;
    std::size_t bytes;
};

class NcclAllReduceP : public ::testing::TestWithParam<NcclCase>
{
};

TEST_P(NcclAllReduceP, RingTreeNvlsAreExact)
{
    const NcclCase& c = GetParam();
    gpu::Machine m(fab::makeEnv(c.env), c.nodes);
    NcclComm comm(m, std::max<std::size_t>(c.bytes, 1 << 20));
    fill(m, [&](int r) { return comm.dataBuffer(r); });
    sim::Time t = comm.allReduce(c.bytes, gpu::DataType::F32,
                                 gpu::ReduceOp::Sum, c.algo);
    EXPECT_GT(t, 0u);
    checkSum(m, [&](int r) { return comm.dataBuffer(r); }, c.bytes / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NcclAllReduceP,
    ::testing::Values(
        NcclCase{"A100-40G", 1, NcclAlgo::Ring, 1 << 10},
        NcclCase{"A100-40G", 1, NcclAlgo::Ring, 1 << 20},
        NcclCase{"A100-40G", 1, NcclAlgo::Ring, 8 << 20},
        NcclCase{"A100-40G", 2, NcclAlgo::Ring, 2 << 20},
        NcclCase{"A100-40G", 2, NcclAlgo::Tree, 64 << 10},
        NcclCase{"A100-40G", 4, NcclAlgo::Tree, 16 << 10},
        NcclCase{"H100", 1, NcclAlgo::Nvls, 8 << 20},
        NcclCase{"MI300x", 1, NcclAlgo::Ring, 4 << 20}),
    [](const auto& info) {
        std::string s = std::string(info.param.env) + "_" +
                        std::to_string(info.param.nodes) + "n_" +
                        toString(info.param.algo) + "_" +
                        std::to_string(info.param.bytes);
        for (char& ch : s) {
            if (!std::isalnum(static_cast<unsigned char>(ch))) {
                ch = '_';
            }
        }
        return s;
    });

TEST(NcclBaseline, AllGatherRing)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    const std::size_t shard = 64 << 10;
    NcclComm comm(m, shard * 8);
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(comm.dataBuffer(r).view(r * shard, shard),
                         gpu::DataType::F32, r);
    }
    comm.allGather(shard);
    for (int r = 0; r < 8; ++r) {
        for (int src = 0; src < 8; ++src) {
            for (std::size_t i = 0; i < shard / 4; i += 73) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(comm.dataBuffer(r),
                                     gpu::DataType::F32,
                                     src * (shard / 4) + i),
                    gpu::patternValue(gpu::DataType::F32, src, i));
            }
        }
    }
}

TEST(NcclBaseline, AllGatherStrideRingsOnMesh)
{
    gpu::Machine m(fab::makeMI300x(), 1);
    const std::size_t shard = 512 << 10; // forces multiple channels
    NcclComm comm(m, shard * 8);
    for (int r = 0; r < 8; ++r) {
        gpu::fillPattern(comm.dataBuffer(r).view(r * shard, shard),
                         gpu::DataType::F32, r);
    }
    comm.allGather(shard);
    for (int r = 0; r < 8; ++r) {
        for (int src = 0; src < 8; ++src) {
            for (std::size_t i = 0; i < shard / 4; i += 997) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(comm.dataBuffer(r),
                                     gpu::DataType::F32,
                                     src * (shard / 4) + i),
                    gpu::patternValue(gpu::DataType::F32, src, i))
                    << r << "/" << src;
            }
        }
    }
}

TEST(NcclBaseline, ReduceScatterLeavesOwnShard)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    NcclComm comm(m, 1 << 20);
    fill(m, [&](int r) { return comm.dataBuffer(r); });
    const std::size_t bytes = 256 << 10;
    comm.reduceScatter(bytes, gpu::DataType::F32, gpu::ReduceOp::Sum);
    const std::size_t segElems = bytes / 4 / 8;
    for (int r = 0; r < 8; ++r) {
        for (std::size_t i = 0; i < segElems; i += 83) {
            std::size_t elem = r * segElems + i;
            float expected = 0.0f;
            for (int src = 0; src < 8; ++src) {
                expected +=
                    gpu::patternValue(gpu::DataType::F32, src, elem);
            }
            ASSERT_FLOAT_EQ(gpu::readElement(comm.dataBuffer(r),
                                             gpu::DataType::F32, elem),
                            expected)
                << "rank " << r;
        }
    }
}

TEST(NcclBaseline, BroadcastRing)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    NcclComm comm(m, 1 << 20);
    gpu::fillPattern(comm.dataBuffer(5), gpu::DataType::F32, 5);
    comm.broadcast(256 << 10, 5);
    for (int r = 0; r < 16; ++r) {
        for (std::size_t i = 0; i < (256 << 10) / 4; i += 331) {
            ASSERT_FLOAT_EQ(gpu::readElement(comm.dataBuffer(r),
                                             gpu::DataType::F32, i),
                            gpu::patternValue(gpu::DataType::F32, 5, i));
        }
    }
}

TEST(NcclBaseline, TunerFollowsNcclHeuristics)
{
    gpu::Machine m1(fab::makeA100_40G(), 1);
    NcclComm c1(m1, 1 << 20);
    EXPECT_EQ(c1.tuneAllReduce(4 << 10).first, NcclAlgo::Ring);
    EXPECT_EQ(c1.tuneAllReduce(4 << 10).second, NcclProto::LL);
    EXPECT_EQ(c1.tuneAllReduce(1 << 20).second, NcclProto::LL128);
    EXPECT_EQ(c1.tuneAllReduce(64 << 20).second, NcclProto::Simple);

    gpu::Machine m2(fab::makeH100(), 1);
    NcclComm c2(m2, 1 << 20);
    EXPECT_EQ(c2.tuneAllReduce(64 << 20).first, NcclAlgo::Nvls);

    gpu::Machine m3(fab::makeA100_40G(), 2);
    NcclComm c3(m3, 1 << 20);
    EXPECT_EQ(c3.tuneAllReduce(16 << 10).first, NcclAlgo::Tree);
    EXPECT_EQ(c3.tuneAllReduce(64 << 20).first, NcclAlgo::Ring);

    gpu::Machine m4(fab::makeMI300x(), 1);
    NcclComm c4(m4, 1 << 20);
    // RCCL has no LL128 (no NVLink ordering guarantee).
    EXPECT_NE(c4.tuneAllReduce(1 << 20).second, NcclProto::LL128);
}

// ---------------------------------------------------------------------------
// MSCCL baseline correctness.
// ---------------------------------------------------------------------------

struct MscclCase
{
    int nodes;
    MscclAlgo algo;
    std::size_t bytes;
};

class MscclAllReduceP : public ::testing::TestWithParam<MscclCase>
{
};

TEST_P(MscclAllReduceP, CustomAlgosAreExact)
{
    const MscclCase& c = GetParam();
    gpu::Machine m(fab::makeA100_40G(), c.nodes);
    MscclComm comm(m, std::max<std::size_t>(c.bytes, 1 << 20));
    fill(m, [&](int r) { return comm.dataBuffer(r); });
    sim::Time t = comm.allReduce(c.bytes, gpu::DataType::F32,
                                 gpu::ReduceOp::Sum, c.algo);
    EXPECT_GT(t, 0u);
    checkSum(m, [&](int r) { return comm.dataBuffer(r); }, c.bytes / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MscclAllReduceP,
    ::testing::Values(MscclCase{1, MscclAlgo::AllPairs1P, 4 << 10},
                      MscclCase{1, MscclAlgo::AllPairs2P, 1 << 20},
                      MscclCase{1, MscclAlgo::AllPairs2P, 8 << 20},
                      MscclCase{2, MscclAlgo::Hier2PLL, 64 << 10},
                      MscclCase{2, MscclAlgo::Hier2PHB, 4 << 20},
                      MscclCase{4, MscclAlgo::Hier2PHB, 8 << 20}),
    [](const auto& info) {
        std::string s = std::to_string(info.param.nodes) + "n_" +
                        toString(info.param.algo) + "_" +
                        std::to_string(info.param.bytes);
        for (char& ch : s) {
            if (!std::isalnum(static_cast<unsigned char>(ch))) {
                ch = '_';
            }
        }
        return s;
    });

TEST(MscclBaseline, AllGatherIsExact)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    const std::size_t shard = 64 << 10;
    MscclComm comm(m, shard * 16);
    for (int r = 0; r < 16; ++r) {
        gpu::fillPattern(comm.dataBuffer(r).view(r * shard, shard),
                         gpu::DataType::F32, r);
    }
    comm.allGather(shard);
    for (int r = 0; r < 16; ++r) {
        for (int src = 0; src < 16; ++src) {
            for (std::size_t i = 0; i < shard / 4; i += 173) {
                ASSERT_FLOAT_EQ(
                    gpu::readElement(comm.dataBuffer(r),
                                     gpu::DataType::F32,
                                     src * (shard / 4) + i),
                    gpu::patternValue(gpu::DataType::F32, src, i))
                    << r << " " << src;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-stack timing shapes (the paper's headline ordering).
// ---------------------------------------------------------------------------

TEST(StackComparison, SmallMessageOrderingMatchesPaper)
{
    // 1 KiB AllReduce on A100: MSCCL++ < MSCCL < NCCL, with NCCL
    // several times slower (Figure 8 left).
    gpu::Machine m(fab::makeA100_40G(), 1);
    mscclpp::CollectiveComm::Options opt;
    opt.maxBytes = 1 << 20;
    mscclpp::CollectiveComm ours(m, opt);
    NcclComm nccl(m, 1 << 20);
    MscclComm msccl(m, 1 << 20);

    sim::Time tOurs = ours.allReduce(1 << 10, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum);
    sim::Time tNccl =
        nccl.allReduce(1 << 10, gpu::DataType::F16, gpu::ReduceOp::Sum);
    sim::Time tMsccl =
        msccl.allReduce(1 << 10, gpu::DataType::F16, gpu::ReduceOp::Sum);

    EXPECT_LT(tOurs, tMsccl);
    EXPECT_LT(tMsccl, tNccl);
    EXPECT_GT(double(tNccl) / double(tOurs), 2.0);
}

TEST(StackComparison, LargeMessageOrderingMatchesPaper)
{
    gpu::Machine m(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    mscclpp::CollectiveComm::Options opt;
    opt.maxBytes = 64 << 20;
    mscclpp::CollectiveComm ours(m, opt);
    NcclComm nccl(m, 64 << 20);
    MscclComm msccl(m, 64 << 20);

    sim::Time tOurs = ours.allReduce(64 << 20, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum);
    sim::Time tNccl =
        nccl.allReduce(64 << 20, gpu::DataType::F16, gpu::ReduceOp::Sum);
    sim::Time tMsccl =
        msccl.allReduce(64 << 20, gpu::DataType::F16, gpu::ReduceOp::Sum);

    EXPECT_LT(tOurs, tMsccl);
    // At the largest sizes both baselines are wire-bound and converge;
    // allow a small interpreter-overhead margin.
    EXPECT_LE(tMsccl, tNccl + tNccl / 20);
}

TEST(StackComparison, MultiNodeHierBeatsRingLargeMessages)
{
    gpu::Machine m(fab::makeA100_40G(), 2, gpu::DataMode::Timed);
    mscclpp::CollectiveComm::Options opt;
    opt.maxBytes = 64 << 20;
    mscclpp::CollectiveComm ours(m, opt);
    NcclComm nccl(m, 64 << 20);

    sim::Time tOurs = ours.allReduce(64 << 20, gpu::DataType::F16,
                                     gpu::ReduceOp::Sum);
    sim::Time tNccl =
        nccl.allReduce(64 << 20, gpu::DataType::F16, gpu::ReduceOp::Sum);
    EXPECT_LT(tOurs, tNccl);
}
