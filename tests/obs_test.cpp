/**
 * Observability subsystem tests: tracer ring buffer, Chrome trace
 * export, metrics registry percentile math, log formatting, the env
 * gate, and end-to-end category/byte reconciliation on traced
 * collectives.
 */
#include "collective/api.hpp"
#include "core/errors.hpp"
#include "core/logging.hpp"
#include "dsl/algorithms.hpp"
#include "dsl/executor.hpp"
#include "fabric/env.hpp"
#include "fabric/topology.hpp"
#include "gpu/machine.hpp"
#include "inference/llm.hpp"
#include "obs/critpath.hpp"
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace obs = mscclpp::obs;
namespace sim = mscclpp::sim;
namespace dsl = mscclpp::dsl;
namespace inference = mscclpp::inference;
using mscclpp::CollectiveComm;
using mscclpp::Error;

// ---------------------------------------------------------------------------
// A minimal JSON parser, just enough to validate the exporters'
// output structurally (no external dependency available).
// ---------------------------------------------------------------------------

namespace {

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue& at(const std::string& key) const
    {
        auto it = object.find(key);
        if (it == object.end()) {
            static JsonValue missing;
            return missing;
        }
        return it->second;
    }

    bool has(const std::string& key) const
    {
        return object.find(key) != object.end();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    /** Parse the whole input; sets ok() false on any syntax error. */
    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size()) {
            ok_ = false;
        }
        return v;
    }

    bool ok() const { return ok_; }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            ok_ = false;
            return {};
        }
        char c = text_[pos_];
        if (c == '{') {
            return parseObject();
        }
        if (c == '[') {
            return parseArray();
        }
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f') {
            return parseKeyword(c == 't' ? "true" : "false", c == 't');
        }
        if (c == 'n') {
            return parseKeyword("null", false);
        }
        return parseNumber();
    }

    JsonValue parseKeyword(const std::string& word, bool value)
    {
        JsonValue v;
        if (text_.compare(pos_, word.size(), word) != 0) {
            ok_ = false;
            return v;
        }
        pos_ += word.size();
        v.kind = word == "null" ? JsonValue::Kind::Null
                                : JsonValue::Kind::Bool;
        v.boolean = value;
        return v;
    }

    std::string parseString()
    {
        std::string out;
        if (!consume('"')) {
            ok_ = false;
            return out;
        }
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                char esc = text_[pos_++];
                switch (esc) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u':
                    pos_ += 4; // good enough for validation
                    break;
                  default:
                    out += esc;
                }
            } else {
                out += c;
            }
        }
        if (!consume('"')) {
            ok_ = false;
        }
        return out;
    }

    JsonValue parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) {
            ok_ = false;
            return v;
        }
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        consume('[');
        skipWs();
        if (consume(']')) {
            return v;
        }
        do {
            v.array.push_back(parseValue());
        } while (consume(','));
        if (!consume(']')) {
            ok_ = false;
        }
        return v;
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        consume('{');
        skipWs();
        if (consume('}')) {
            return v;
        }
        do {
            skipWs();
            std::string key = parseString();
            if (!consume(':')) {
                ok_ = false;
                return v;
            }
            v.object[key] = parseValue();
        } while (consume(','));
        if (!consume('}')) {
            ok_ = false;
        }
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

JsonValue
parseJsonOrDie(const std::string& text)
{
    JsonParser p(text);
    JsonValue v = p.parse();
    EXPECT_TRUE(p.ok()) << "malformed JSON:\n" << text.substr(0, 400);
    return v;
}

} // namespace

// ---------------------------------------------------------------------------
// Tracer ring buffer.
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledByDefaultRecordsNothing)
{
    obs::Tracer t;
    EXPECT_FALSE(t.enabled());
    t.span(obs::Category::Link, "xfer", 0, "l0", 0, 100, 64);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RecordsSpansInOrder)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Category::Channel, "put", 0, "tb0", 10, 20, 256, 3);
    t.span(obs::Category::Proxy, "proxy.put", 0, "proxy", 20, 40, 256);
    ASSERT_EQ(t.size(), 2u);
    auto evs = t.snapshot();
    EXPECT_EQ(evs[0].name, "put");
    EXPECT_EQ(evs[0].begin, 10u);
    EXPECT_EQ(evs[0].end, 20u);
    EXPECT_EQ(evs[0].bytes, 256u);
    EXPECT_EQ(evs[0].channelId, 3);
    EXPECT_EQ(evs[1].name, "proxy.put");
    EXPECT_EQ(evs[1].track, "proxy");
}

TEST(Tracer, RingBufferOverwritesOldestAndCountsDrops)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t(4);
    t.setEnabled(true);
    for (int i = 0; i < 6; ++i) {
        t.span(obs::Category::Fifo, "e" + std::to_string(i), 0, "f",
               static_cast<sim::Time>(i), static_cast<sim::Time>(i + 1));
    }
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    auto evs = t.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    // The two oldest events were overwritten; order is preserved.
    EXPECT_EQ(evs.front().name, "e2");
    EXPECT_EQ(evs.back().name, "e5");
}

TEST(Tracer, ClearResetsBufferButKeepsEnabledState)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t(2);
    t.setEnabled(true);
    t.span(obs::Category::Kernel, "a", 0, "t", 0, 1);
    t.span(obs::Category::Kernel, "b", 0, "t", 1, 2);
    t.span(obs::Category::Kernel, "c", 0, "t", 2, 3);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.enabled());
}

// ---------------------------------------------------------------------------
// Chrome trace export.
// ---------------------------------------------------------------------------

TEST(ChromeTrace, WellFormedWithProcessAndThreadMetadata)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Category::Channel, "mem.put", 0, "tb0", sim::us(1),
           sim::us(3), 1024);
    t.span(obs::Category::Link, "xfer", obs::kFabricPid, "gpu0.tx",
           sim::us(2), sim::us(4), 1024);
    t.span(obs::Category::Channel, "mem.wait", 1, "tb0", sim::us(1),
           sim::us(5));

    JsonValue doc = parseJsonOrDie(t.chromeTraceJson());
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    const JsonValue& evs = doc.at("traceEvents");
    ASSERT_EQ(evs.kind, JsonValue::Kind::Array);

    std::set<double> processNames;
    std::set<double> xPids;
    int xEvents = 0;
    int threadNames = 0;
    for (const JsonValue& e : evs.array) {
        ASSERT_EQ(e.kind, JsonValue::Kind::Object);
        const std::string& ph = e.at("ph").str;
        if (ph == "M") {
            if (e.at("name").str == "process_name") {
                processNames.insert(e.at("pid").number);
            } else if (e.at("name").str == "thread_name") {
                ++threadNames;
            }
        } else if (ph == "X") {
            ++xEvents;
            xPids.insert(e.at("pid").number);
            EXPECT_TRUE(e.has("ts"));
            EXPECT_TRUE(e.has("dur"));
            EXPECT_TRUE(e.has("cat"));
            EXPECT_GE(e.at("dur").number, 0.0);
        }
    }
    EXPECT_EQ(xEvents, 3);
    // One process per pid used (0, 1, fabric), each with metadata.
    EXPECT_EQ(processNames.size(), 3u);
    EXPECT_EQ(processNames, xPids);
    EXPECT_EQ(threadNames, 3); // tb0@0, gpu0.tx@fabric, tb0@1
}

TEST(ChromeTrace, TimestampsAreMicrosecondsAndMonotonePerTrack)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Category::Executor, "s0", 0, "tb0", sim::us(10),
           sim::us(12));
    t.span(obs::Category::Executor, "s1", 0, "tb0", sim::us(12),
           sim::us(20));

    JsonValue doc = parseJsonOrDie(t.chromeTraceJson());
    std::vector<double> ts;
    for (const JsonValue& e : doc.at("traceEvents").array) {
        if (e.at("ph").str == "X") {
            ts.push_back(e.at("ts").number);
            EXPECT_EQ(e.at("cat").str, "executor");
        }
    }
    ASSERT_EQ(ts.size(), 2u);
    EXPECT_DOUBLE_EQ(ts[0], 10.0);
    EXPECT_DOUBLE_EQ(ts[1], 12.0);
    EXPECT_LE(ts[0], ts[1]);
}

TEST(ChromeTrace, TidAssignmentIsOrderIndependentAndSorted)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    // Track ids must depend on the set of (pid, track) names, not on
    // first-seen order, so diffs between runs (or replicas) line up
    // in the viewer. Record the same spans in opposite orders and
    // require identical thread-name assignments, sorted within a pid,
    // plus a process_sort_index per pid pinning the process order.
    struct S
    {
        const char* name;
        int pid;
        const char* track;
    };
    std::vector<S> spans = {
        {"a", 0, "tb1"},
        {"b", 0, "tb0"},
        {"c", obs::kRequestPid, "req7"},
        {"d", obs::kFabricPid, "gpu0.tx"},
    };
    auto tidMapOf = [](obs::Tracer& t) {
        std::map<std::pair<double, std::string>, double> tids;
        std::map<double, double> sortIndex;
        JsonValue doc = parseJsonOrDie(t.chromeTraceJson());
        for (const JsonValue& e : doc.at("traceEvents").array) {
            if (e.at("ph").str != "M") {
                continue;
            }
            if (e.at("name").str == "thread_name") {
                tids[{e.at("pid").number,
                      e.at("args").at("name").str}] =
                    e.at("tid").number;
            } else if (e.at("name").str == "process_sort_index") {
                sortIndex[e.at("pid").number] =
                    e.at("args").at("sort_index").number;
            }
        }
        EXPECT_EQ(sortIndex.size(), 3u);
        for (const auto& [pid, idx] : sortIndex) {
            EXPECT_EQ(pid, idx);
        }
        return tids;
    };
    obs::Tracer fwd, rev;
    fwd.setEnabled(true);
    rev.setEnabled(true);
    for (const S& s : spans) {
        fwd.span(obs::Category::Channel, s.name, s.pid, s.track,
                 sim::us(1), sim::us(2));
    }
    for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
        rev.span(obs::Category::Channel, it->name, it->pid, it->track,
                 sim::us(1), sim::us(2));
    }
    auto fwdTids = tidMapOf(fwd);
    auto revTids = tidMapOf(rev);
    EXPECT_EQ(fwdTids, revTids);
    // Within pid 0 the tids follow sorted track order regardless of
    // the order the tracks first appeared.
    const std::pair<double, std::string> tb0Key{0.0, "tb0"};
    const std::pair<double, std::string> tb1Key{0.0, "tb1"};
    ASSERT_TRUE(fwdTids.count(tb0Key));
    ASSERT_TRUE(fwdTids.count(tb1Key));
    EXPECT_LT(fwdTids[tb0Key], fwdTids[tb1Key]);
    // The requests pseudo-process carries its label.
    bool sawRequestsProcess = false;
    JsonValue doc = parseJsonOrDie(fwd.chromeTraceJson());
    for (const JsonValue& e : doc.at("traceEvents").array) {
        if (e.at("ph").str == "M" &&
            e.at("name").str == "process_name" &&
            e.at("pid").number == double(obs::kRequestPid)) {
            EXPECT_EQ(e.at("args").at("name").str, "requests");
            sawRequestsProcess = true;
        }
    }
    EXPECT_TRUE(sawRequestsProcess);
}

TEST(ChromeTrace, EscapesQuotesInNames)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Category::Kernel, "say \"hi\"\n", 0, "tb0", 0, 1);
    JsonValue doc = parseJsonOrDie(t.chromeTraceJson());
    bool found = false;
    for (const JsonValue& e : doc.at("traceEvents").array) {
        if (e.at("ph").str == "X") {
            EXPECT_EQ(e.at("name").str, "say \"hi\"\n");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAccumulates)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::MetricsRegistry reg;
    EXPECT_TRUE(reg.enabled());
    reg.counter("bytes").add(100);
    reg.counter("bytes").add(28);
    reg.counter("calls").add();
    EXPECT_EQ(reg.counter("bytes").value(), 128u);
    EXPECT_EQ(reg.counter("calls").value(), 1u);
}

TEST(Metrics, HandlesAreStableAcrossInsertions)
{
    obs::MetricsRegistry reg;
    obs::Counter* first = &reg.counter("a");
    for (int i = 0; i < 100; ++i) {
        reg.counter("k" + std::to_string(i));
    }
    first->add(7);
    EXPECT_EQ(reg.counter("a").value(), 7u);
}

TEST(Metrics, SummaryExactStatsOnKnownDistribution)
{
    obs::Summary s;
    for (int i = 1; i <= 100; ++i) {
        s.add(static_cast<double>(i));
    }
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.sum(), 5050.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
    // Reservoir (1024) holds all 100 samples: percentiles are the
    // linear interpolation over the sorted values.
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.5);
    EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Metrics, SummaryEmptyAndSingleton)
{
    obs::Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
}

TEST(Metrics, SmallReservoirStaysDeterministic)
{
    obs::Summary a(16);
    obs::Summary b(16);
    for (int i = 0; i < 1000; ++i) {
        double v = static_cast<double>((i * 37) % 500);
        a.add(v);
        b.add(v);
    }
    EXPECT_EQ(a.count(), 1000u);
    EXPECT_DOUBLE_EQ(a.percentile(50), b.percentile(50));
    EXPECT_DOUBLE_EQ(a.percentile(99), b.percentile(99));
    // The sampled median is still within the value range.
    EXPECT_GE(a.percentile(50), a.min());
    EXPECT_LE(a.percentile(50), a.max());
}

TEST(Metrics, SummaryMergeCombinesExactStats)
{
    obs::Summary a;
    obs::Summary b;
    for (int i = 1; i <= 50; ++i) {
        a.add(i);
    }
    for (int i = 51; i <= 100; ++i) {
        b.add(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.sum(), 5050.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
    EXPECT_DOUBLE_EQ(a.mean(), 50.5);
    // Both halves fit in the default reservoir, so the percentile
    // over the merged samples is exact.
    EXPECT_DOUBLE_EQ(a.percentile(50), 50.5);
}

TEST(Metrics, SummaryMergeWithEmptySides)
{
    obs::Summary a;
    obs::Summary empty;
    a.add(7.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 7.0);

    obs::Summary fresh;
    fresh.merge(a);
    EXPECT_EQ(fresh.count(), 1u);
    EXPECT_DOUBLE_EQ(fresh.sum(), 7.0);
    EXPECT_DOUBLE_EQ(fresh.min(), 7.0);
    EXPECT_DOUBLE_EQ(fresh.max(), 7.0);
}

TEST(Metrics, SummaryMergeEmptyIntoEmpty)
{
    // Merging two empty summaries must stay a well-defined empty
    // summary — no NaNs from 0/0 means, no stale min/max sentinels —
    // and must still accept samples afterwards.
    obs::Summary a;
    obs::Summary b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.percentile(50), 0.0);
    a.add(3.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Metrics, SummarySingleSamplePercentileAtEveryP)
{
    // With exactly one sample every percentile degenerates to that
    // sample — there is nothing to interpolate toward.
    obs::Summary s;
    s.add(42.0);
    for (double p : {0.0, 1.0, 37.5, 50.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(s.percentile(p), 42.0) << "p=" << p;
    }
}

TEST(Metrics, RegistryMergeFromAggregatesByName)
{
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    a.counter("collective.count").add(2);
    b.counter("collective.count").add(3);
    b.counter("only.in.b").add(1);
    a.summary("latency").add(10.0);
    b.summary("latency").add(30.0);
    a.mergeFrom(b);
    EXPECT_EQ(a.counters().at("collective.count").value(), 5u);
    EXPECT_EQ(a.counters().at("only.in.b").value(), 1u);
    EXPECT_EQ(a.summaries().at("latency").count(), 2u);
    EXPECT_DOUBLE_EQ(a.summaries().at("latency").sum(), 40.0);
    EXPECT_DOUBLE_EQ(a.summaries().at("latency").max(), 30.0);
    // The source registry is untouched.
    EXPECT_EQ(b.counters().at("collective.count").value(), 3u);
}

TEST(Metrics, JsonDumpIsWellFormed)
{
    obs::MetricsRegistry reg;
    reg.counter("link.bytes_tx").add(4096);
    reg.summary("fifo.depth").add(1);
    reg.summary("fifo.depth").add(3);
    JsonValue doc = parseJsonOrDie(reg.toJson());
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    EXPECT_DOUBLE_EQ(doc.at("counters").at("link.bytes_tx").number,
                     4096.0);
    const JsonValue& depth = doc.at("summaries").at("fifo.depth");
    EXPECT_DOUBLE_EQ(depth.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(depth.at("sum").number, 4.0);
    EXPECT_DOUBLE_EQ(depth.at("min").number, 1.0);
    EXPECT_DOUBLE_EQ(depth.at("max").number, 3.0);
    EXPECT_TRUE(depth.has("p50"));
    EXPECT_TRUE(depth.has("p99"));
}

// ---------------------------------------------------------------------------
// Log formatting (the formatLog overflow fix).
// ---------------------------------------------------------------------------

TEST(Logging, FormatLogShortMessages)
{
    EXPECT_EQ(mscclpp::detail::formatLog("rank %d of %d", 3, 8),
              "rank 3 of 8");
    EXPECT_EQ(mscclpp::detail::formatLog("plain"), "plain");
}

TEST(Logging, FormatLogGrowsPastTheStackBuffer)
{
    // Messages over 512 bytes used to be silently truncated.
    std::string big(2000, 'x');
    std::string out =
        mscclpp::detail::formatLog("head %s tail", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 10);
    EXPECT_EQ(out.substr(0, 5), "head ");
    EXPECT_EQ(out.substr(out.size() - 5), " tail");
    EXPECT_EQ(out.find('\0'), std::string::npos);
}

TEST(Logging, FormatLogExactBoundary)
{
    // 511 formatted chars fit the stack buffer; 512 and 513 must grow.
    for (std::size_t len : {511u, 512u, 513u}) {
        std::string s(len, 'y');
        EXPECT_EQ(mscclpp::detail::formatLog("%s", s.c_str()), s);
    }
}

// ---------------------------------------------------------------------------
// Environment gate parsing.
// ---------------------------------------------------------------------------

class ObsEnv : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        unsetenv("MSCCLPP_TRACE");
        unsetenv("MSCCLPP_METRICS");
        unsetenv("MSCCLPP_TRACE_FILE");
        unsetenv("MSCCLPP_METRICS_FILE");
        unsetenv("MSCCLPP_FLIGHT");
        unsetenv("MSCCLPP_FLIGHT_FILE");
        unsetenv("MSCCLPP_FLIGHT_SIGMA");
    }
};

TEST_F(ObsEnv, DefaultsWhenUnset)
{
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::applyObsEnvOverrides(cfg);
    EXPECT_FALSE(cfg.traceEnabled);
    EXPECT_TRUE(cfg.metricsEnabled);
    EXPECT_EQ(cfg.traceFile, "trace.json");
    EXPECT_EQ(cfg.metricsFile, "metrics.json");
}

TEST_F(ObsEnv, ParsesBooleansAndPaths)
{
    setenv("MSCCLPP_TRACE", "1", 1);
    setenv("MSCCLPP_METRICS", "false", 1);
    setenv("MSCCLPP_TRACE_FILE", "/tmp/my_trace.json", 1);
    setenv("MSCCLPP_METRICS_FILE", "/tmp/my_metrics.json", 1);
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::applyObsEnvOverrides(cfg);
    EXPECT_TRUE(cfg.traceEnabled);
    EXPECT_FALSE(cfg.metricsEnabled);
    EXPECT_EQ(cfg.traceFile, "/tmp/my_trace.json");
    EXPECT_EQ(cfg.metricsFile, "/tmp/my_metrics.json");
}

TEST_F(ObsEnv, RejectsMalformedBoolean)
{
    setenv("MSCCLPP_TRACE", "maybe", 1);
    fab::EnvConfig cfg = fab::makeA100_40G();
    EXPECT_THROW(fab::applyObsEnvOverrides(cfg), Error);
}

TEST_F(ObsEnv, RejectsEmptyPath)
{
    setenv("MSCCLPP_TRACE_FILE", "", 1);
    fab::EnvConfig cfg = fab::makeA100_40G();
    EXPECT_THROW(fab::applyObsEnvOverrides(cfg), Error);
}

TEST_F(ObsEnv, ParsesFlightRecorderVars)
{
    setenv("MSCCLPP_FLIGHT", "1", 1);
    setenv("MSCCLPP_FLIGHT_FILE", "/tmp/my_flight.json", 1);
    setenv("MSCCLPP_FLIGHT_SIGMA", "2.5", 1);
    fab::EnvConfig cfg = fab::makeA100_40G();
    fab::applyObsEnvOverrides(cfg);
    EXPECT_TRUE(cfg.flightEnabled);
    EXPECT_EQ(cfg.flightFile, "/tmp/my_flight.json");
    EXPECT_DOUBLE_EQ(cfg.flightSigma, 2.5);
}

TEST_F(ObsEnv, RejectsNonPositiveFlightSigma)
{
    setenv("MSCCLPP_FLIGHT_SIGMA", "0", 1);
    fab::EnvConfig cfg = fab::makeA100_40G();
    EXPECT_THROW(fab::applyObsEnvOverrides(cfg), Error);
    setenv("MSCCLPP_FLIGHT_SIGMA", "-1.5", 1);
    EXPECT_THROW(fab::applyObsEnvOverrides(cfg), Error);
}

TEST_F(ObsEnv, FlightImpliesTracing)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    setenv("MSCCLPP_FLIGHT", "1", 1);
    gpu::Machine m(fab::makeA100_40G(), 1);
    // The flight recorder needs window snapshots, so enabling it
    // turns the tracer on even without MSCCLPP_TRACE=1.
    EXPECT_TRUE(m.obs().tracer().enabled());
    EXPECT_TRUE(m.obs().flight().enabled());
    m.obs().setDumpOnDestroy(false);
}

TEST_F(ObsEnv, MachineHonoursTheGate)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    setenv("MSCCLPP_TRACE", "1", 1);
    gpu::Machine m(fab::makeA100_40G(), 1);
    EXPECT_TRUE(m.obs().tracer().enabled());
    // Keep teardown quiet: this test only checks the gate.
    m.obs().setDumpOnDestroy(false);
}

TEST(ObsFiles, WritersRejectUnwritablePaths)
{
    obs::Tracer t;
    EXPECT_THROW(t.writeChromeTrace("/nonexistent-dir/trace.json"),
                 Error);
    obs::MetricsRegistry reg;
    EXPECT_THROW(reg.writeJson("/nonexistent-dir/metrics.json"), Error);
}

// ---------------------------------------------------------------------------
// End to end: traced collectives on the A100 environment.
// ---------------------------------------------------------------------------

namespace {

std::set<obs::Category>
categoriesOf(const std::vector<obs::TraceEvent>& evs)
{
    std::set<obs::Category> cats;
    for (const auto& e : evs) {
        cats.insert(e.cat);
    }
    return cats;
}

} // namespace

TEST(TracedCollective, AllReducePortCoversEveryLayer)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    gpu::Machine m(fab::makeA100_40G(), 1);
    m.obs().tracer().setEnabled(true);
    {
        CollectiveComm comm(m, {});
        comm.allReduce(1 << 20, gpu::DataType::F32, gpu::ReduceOp::Sum,
                       mscclpp::AllReduceAlgo::AllPairs2PPort);
        comm.shutdown();
    }
    m.run();
    auto evs = m.obs().tracer().snapshot();
    auto cats = categoriesOf(evs);
    // collective -> kernel/channel ops -> fifo -> proxy -> link.
    EXPECT_TRUE(cats.count(obs::Category::Collective));
    EXPECT_TRUE(cats.count(obs::Category::Kernel));
    EXPECT_TRUE(cats.count(obs::Category::Channel));
    EXPECT_TRUE(cats.count(obs::Category::Fifo));
    EXPECT_TRUE(cats.count(obs::Category::Proxy));
    EXPECT_TRUE(cats.count(obs::Category::Link));

    // Every span ends no earlier than it starts, and the collective
    // root span encloses the whole timeline.
    sim::Time rootBegin = 0;
    sim::Time rootEnd = 0;
    for (const auto& e : evs) {
        EXPECT_LE(e.begin, e.end) << e.name;
        if (e.cat == obs::Category::Collective) {
            rootBegin = e.begin;
            rootEnd = e.end;
        }
    }
    // Device-side channel ops nest inside the collective. (Fifo pops
    // do not: the proxy's last pop blocks until the teardown Stop
    // request, past the collective's end.)
    for (const auto& e : evs) {
        if (e.cat == obs::Category::Channel) {
            EXPECT_GE(e.begin, rootBegin) << e.name;
            EXPECT_LE(e.end, rootEnd) << e.name;
        }
    }
}

TEST(TracedCollective, BroadcastBytesReconcile)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    const std::size_t bytes = 256 << 10;
    gpu::Machine m(fab::makeA100_40G(), 1);
    m.obs().tracer().setEnabled(true);
    {
        CollectiveComm::Options opt;
        opt.buildPort = false; // pure MemoryChannel broadcast
        CollectiveComm comm(m, opt);
        comm.broadcast(bytes, /*root=*/0);
    }
    const int g = m.config().gpusPerNode;
    // Single-node broadcast: the root puts `bytes` once to each of
    // the g-1 peers, and nothing else moves payload.
    const std::uint64_t expected =
        static_cast<std::uint64_t>(g - 1) * bytes;
    EXPECT_EQ(m.obs().metrics().counter("channel.put_bytes").value(),
              expected);
    EXPECT_EQ(m.obs().metrics().counter("channel.signal_count").value(),
              static_cast<std::uint64_t>(g - 1));

    // The Channel put spans carry the same bytes the counter saw.
    std::uint64_t spanBytes = 0;
    for (const auto& e : m.obs().tracer().snapshot()) {
        if (e.cat == obs::Category::Channel && e.name == "mem.put") {
            spanBytes += e.bytes;
        }
    }
    EXPECT_EQ(spanBytes, expected);
    // The collective root span reports the payload size.
    bool foundRoot = false;
    for (const auto& e : m.obs().tracer().snapshot()) {
        if (e.cat == obs::Category::Collective) {
            EXPECT_EQ(e.name, "broadcast");
            EXPECT_EQ(e.bytes, bytes);
            foundRoot = true;
        }
    }
    EXPECT_TRUE(foundRoot);
}

TEST(TracedCollective, ExecutorEmitsPerStepSpans)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    gpu::Machine m(fab::makeA100_40G(), 1);
    m.obs().tracer().setEnabled(true);
    dsl::Executor ex(m, 1 << 20);
    dsl::Program p = dsl::buildAllPairs2PAllReduceHB(8, 64 << 10);
    ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);

    auto evs = m.obs().tracer().snapshot();
    std::set<std::string> stepNames;
    for (const auto& e : evs) {
        if (e.cat == obs::Category::Executor) {
            stepNames.insert(e.name);
        }
    }
    EXPECT_FALSE(stepNames.empty());
    // The executor decodes IR steps; step count matches the metric.
    std::uint64_t steps =
        m.obs().metrics().counter("executor.steps").value();
    EXPECT_GT(steps, 0u);
    std::uint64_t executorSpans = 0;
    for (const auto& e : evs) {
        executorSpans += e.cat == obs::Category::Executor ? 1 : 0;
    }
    EXPECT_EQ(executorSpans, steps);
    EXPECT_EQ(m.obs().metrics().summary("executor.step_ns").count(),
              steps);
}

TEST(TracedCollective, DisabledTracerLeavesTimingUntouched)
{
    // Instrumentation must never advance virtual time: the same
    // collective takes exactly as long with and without tracing.
    auto run = [](bool traced) {
        gpu::Machine m(fab::makeA100_40G(), 1);
        m.obs().tracer().setEnabled(traced);
        CollectiveComm comm(m, {});
        return comm.allReduce(1 << 20, gpu::DataType::F32,
                              gpu::ReduceOp::Sum,
                              mscclpp::AllReduceAlgo::AllPairs2PHB);
    };
    EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Gauges and occupancy histograms.
// ---------------------------------------------------------------------------

TEST(Gauge, TracksLevelAndHighWater)
{
    obs::Gauge g;
    EXPECT_TRUE(g.empty());
    EXPECT_DOUBLE_EQ(g.max(), 0.0);
    g.set(5.0);
    g.add(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 8.0);
    g.sub(6.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
    // The high-water mark survives the drop.
    EXPECT_DOUBLE_EQ(g.max(), 8.0);
    EXPECT_FALSE(g.empty());
}

TEST(Gauge, MergeSumsLevelsAndKeepsLargestHighWater)
{
    obs::Gauge a;
    obs::Gauge b;
    a.set(10.0);
    a.set(4.0); // level 4, high water 10
    b.set(3.0); // level 3, high water 3
    a.merge(b);
    // Levels add (both queues are simultaneously outstanding);
    // high-water marks take the max, they never add.
    EXPECT_DOUBLE_EQ(a.value(), 7.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);

    obs::Gauge fresh;
    fresh.merge(a);
    EXPECT_DOUBLE_EQ(fresh.value(), 7.0);
    EXPECT_DOUBLE_EQ(fresh.max(), 10.0);

    obs::Gauge untouched;
    a.merge(untouched); // merging an empty gauge changes nothing
    EXPECT_DOUBLE_EQ(a.value(), 7.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Histogram, AddRangeSpreadsBusyTimeAcrossBuckets)
{
    obs::Histogram h(sim::us(10));
    h.addRange(0, sim::us(5));            // half of bucket 0
    h.addRange(sim::us(10), sim::us(20)); // all of bucket 1
    h.addRange(sim::us(25), sim::us(35)); // straddles buckets 2 and 3
    EXPECT_DOUBLE_EQ(h.occupancy(0), 0.5);
    EXPECT_DOUBLE_EQ(h.occupancy(1), 1.0);
    EXPECT_DOUBLE_EQ(h.occupancy(2), 0.5);
    EXPECT_DOUBLE_EQ(h.occupancy(3), 0.5);
    EXPECT_DOUBLE_EQ(h.total(), static_cast<double>(sim::us(25)));
    EXPECT_DOUBLE_EQ(h.peakOccupancy(), 1.0);
}

TEST(Histogram, MergeRebucketsFinerIntoCoarser)
{
    obs::Histogram fine(sim::us(10));
    obs::Histogram coarse(sim::us(20));
    fine.addRange(0, sim::us(10));             // fine bucket 0 full
    coarse.addRange(sim::us(20), sim::us(40)); // coarse bucket 1 full
    fine.merge(coarse);
    // Widths only ever double, so the merge is exact: the fine
    // histogram adopts the coarse width and refolds its buckets.
    EXPECT_EQ(fine.bucketWidth(), sim::us(20));
    EXPECT_DOUBLE_EQ(fine.total(), static_cast<double>(sim::us(30)));
    EXPECT_DOUBLE_EQ(fine.occupancy(0), 0.5); // 10us busy of 20us
    EXPECT_DOUBLE_EQ(fine.occupancy(1), 1.0);
    EXPECT_DOUBLE_EQ(fine.peakOccupancy(), 1.0);
}

TEST(Histogram, CoarsensInsteadOfGrowingUnbounded)
{
    obs::Histogram h(sim::us(1));
    // 600 fully-busy 1us buckets exceed the bucket cap (512); the
    // histogram doubles its width and coalesces neighbours instead of
    // growing without bound.
    for (int i = 0; i < 600; ++i) {
        h.addRange(sim::us(i), sim::us(i + 1));
    }
    EXPECT_EQ(h.bucketWidth(), sim::us(2));
    EXPECT_EQ(h.buckets().size(), 300u);
    // No busy time is lost to the rebucketing, and the merged
    // buckets are still fully occupied.
    EXPECT_DOUBLE_EQ(h.total(), static_cast<double>(sim::us(600)));
    EXPECT_DOUBLE_EQ(h.occupancy(0), 1.0);
    EXPECT_DOUBLE_EQ(h.peakOccupancy(), 1.0);
}

TEST(Histogram, CoarsenWidthCountInvariant)
{
    // The coarsening invariant across *repeated* doublings: the width
    // is always the initial width times a power of two, the populated
    // bucket count never exceeds the cap (512), and the charged total
    // survives every rebucketing exactly. 1040 busy 1us buckets force
    // two doublings (1 -> 2 -> 4 us).
    obs::Histogram h(sim::us(1));
    for (int i = 0; i < 1040; ++i) {
        h.addRange(sim::us(i), sim::us(i + 1));
    }
    EXPECT_EQ(h.bucketWidth(), sim::us(4));
    const double ratio = static_cast<double>(h.bucketWidth()) /
                         static_cast<double>(sim::us(1));
    EXPECT_DOUBLE_EQ(ratio, 4.0); // power of two, not e.g. 3x
    EXPECT_LE(h.buckets().size(), 512u);
    EXPECT_DOUBLE_EQ(h.total(), static_cast<double>(sim::us(1040)));
    // A uniformly-busy timeline stays uniformly busy after folding:
    // every surviving bucket holds exactly width_ of busy time.
    EXPECT_DOUBLE_EQ(h.occupancy(0), 1.0);
    EXPECT_DOUBLE_EQ(h.peakOccupancy(), 1.0);
}

// ---------------------------------------------------------------------------
// Critical-path extraction on a hand-built trace.
// ---------------------------------------------------------------------------

namespace {

/**
 * Two ranks, one collective window [0, 1000ns]. The longest
 * dependency chain is, backwards from the straggler (rank 1):
 *
 *   drain [900,1000] -> rank1 waits on rank0's signal [500,900]
 *   -> rank0's put over gpu0.tx [200,500] -> pre-op compute [100,200]
 *   -> rank0 kernel launch [0,100]
 *
 * Rank 1's own put over gpu1.tx [120,400] finishes early and is NOT
 * on the critical path; the analyzer must attribute gpu0.tx, not
 * gpu1.tx.
 */
obs::Tracer
handBuiltTrace()
{
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Category::Collective, "allreduce test", obs::kHostPid,
           "collectives", 0, sim::ns(1000), 1 << 20);
    t.span(obs::Category::Kernel, "kernel.launch", 0, "launch", 0,
           sim::ns(100));
    t.span(obs::Category::Kernel, "kernel.launch", 1, "launch", 0,
           sim::ns(100));
    t.span(obs::Category::Kernel, "block", 0, "tb0", sim::ns(100),
           sim::ns(500));
    t.span(obs::Category::Kernel, "block", 1, "tb0", sim::ns(120),
           sim::ns(900));
    t.span(obs::Category::Channel, "mem.put", 0, "tb0", sim::ns(200),
           sim::ns(500), 512 << 10, -1, "gpu0.tx");
    t.span(obs::Category::Channel, "mem.put", 1, "tb0", sim::ns(120),
           sim::ns(400), 512 << 10, -1, "gpu1.tx");
    t.span(obs::Category::Channel, "mem.wait", 1, "tb0", sim::ns(400),
           sim::ns(900));
    t.edge(obs::EdgeKind::Launch, 0, "launch", sim::ns(100), 0, "tb0",
           sim::ns(100));
    t.edge(obs::EdgeKind::Launch, 1, "launch", sim::ns(100), 1, "tb0",
           sim::ns(120));
    t.edge(obs::EdgeKind::Signal, 0, "tb0", sim::ns(500), 1, "tb0",
           sim::ns(900));
    return t;
}

} // namespace

TEST(CriticalPath, HandBuiltTraceFindsKnownLongestPath)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t = handBuiltTrace();
    obs::CritPathAnalyzer an(t.snapshot(), t.edgesSnapshot());
    ASSERT_EQ(an.collectives().size(), 1u);
    std::optional<obs::CriticalPathReport> rep = an.analyzeLast();
    ASSERT_TRUE(rep.has_value());

    // The attributed segments tile the whole window exactly.
    EXPECT_EQ(rep->total(), sim::ns(1000));
    EXPECT_EQ(rep->byCategory.at(obs::PathCategory::SyncWait),
              sim::ns(400));
    EXPECT_EQ(rep->byCategory.at(obs::PathCategory::LinkSerialization),
              sim::ns(300));
    EXPECT_EQ(rep->byCategory.at(obs::PathCategory::KernelCompute),
              sim::ns(100));
    // Launch [0,100] plus drain [900,1000].
    EXPECT_EQ(rep->byCategory.at(obs::PathCategory::LaunchOverhead),
              sim::ns(200));
    EXPECT_EQ(rep->dominant(), obs::PathCategory::SyncWait);

    // The path runs through rank 0's link, not the straggler's own.
    ASSERT_EQ(rep->byLink.count("gpu0.tx"), 1u);
    EXPECT_EQ(rep->byLink.at("gpu0.tx"), sim::ns(300));
    EXPECT_EQ(rep->byLink.count("gpu1.tx"), 0u);

    // Straggler skew: rank 1's block ends 400ns after rank 0's.
    EXPECT_EQ(rep->rankSkew.at(0), sim::ns(400));
    EXPECT_EQ(rep->rankSkew.at(1), sim::ns(0));

    // Segments are returned oldest-first and contiguous in time.
    ASSERT_FALSE(rep->segments.empty());
    EXPECT_EQ(rep->segments.front().begin, sim::ns(0));
    EXPECT_EQ(rep->segments.back().end, sim::ns(1000));
    for (std::size_t i = 1; i < rep->segments.size(); ++i) {
        EXPECT_GE(rep->segments[i].begin, rep->segments[i - 1].begin);
    }

    // The JSON rendering of the report parses and carries the totals.
    JsonValue doc = parseJsonOrDie(rep->toJson());
    EXPECT_DOUBLE_EQ(doc.at("total_ns").number, 1000.0);
    EXPECT_DOUBLE_EQ(doc.at("categories").at("sync_wait").number, 400.0);
    EXPECT_DOUBLE_EQ(doc.at("links").at("gpu0.tx").number, 300.0);
}

TEST(CriticalPath, HostTailExtendsAttributionPastTheWindow)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t = handBuiltTrace();
    obs::CritPathAnalyzer an(t.snapshot(), t.edgesSnapshot());
    std::optional<obs::CriticalPathReport> rep =
        an.analyzeLast(sim::ns(50));
    ASSERT_TRUE(rep.has_value());
    // The host-sync tail is appended after the window so the report
    // reconciles with the host-measured latency, not just the span.
    EXPECT_EQ(rep->total(), sim::ns(1050));
    EXPECT_EQ(rep->byCategory.at(obs::PathCategory::LaunchOverhead),
              sim::ns(250));
    EXPECT_EQ(rep->segments.back().what, "(host sync)");
    EXPECT_EQ(rep->segments.back().end, sim::ns(1050));
}

TEST(CriticalPath, AttributionSumsExactlyToMeasuredLatency)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    fab::EnvConfig cfg = fab::makeA100_40G();
    cfg.critpathEnabled = true;
    gpu::Machine m(cfg, 1);
    m.obs().setDumpOnDestroy(false);
    CollectiveComm comm(m, {});
    sim::Time elapsed = comm.allReduce(1 << 20, gpu::DataType::F16,
                                       gpu::ReduceOp::Sum);
    const obs::CriticalPathReport* rep = comm.lastCriticalPath();
    ASSERT_NE(rep, nullptr);
    // The category breakdown reconstructs the measured latency
    // exactly: every picosecond of the collective is attributed.
    sim::Time attributed = 0;
    for (const auto& [cat, t] : rep->byCategory) {
        (void)cat;
        attributed += t;
    }
    EXPECT_EQ(attributed, elapsed);
    EXPECT_EQ(rep->total(), elapsed);
    // The per-collective summaries were recorded.
    EXPECT_GT(
        m.obs().metrics().summaries().count("critpath.sync_wait_ns") +
            m.obs().metrics().summaries().count(
                "critpath.link_serialization_ns"),
        0u);
}

TEST(CriticalPath, DegradedLinkDominatesAttribution)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    // Slow one GPU's tx port to 5% of line rate: the critical path of
    // a large HB AllReduce must now run through that link, and the
    // report must say so.
    fab::EnvConfig cfg = fab::makeA100_40G();
    cfg.critpathEnabled = true;
    cfg.degradedLinks = "gpu3.tx:0.05";
    gpu::Machine m(cfg, 1);
    m.obs().setDumpOnDestroy(false);
    CollectiveComm::Options opt;
    opt.maxBytes = 4 << 20;
    CollectiveComm comm(m, opt);
    comm.allReduce(4 << 20, gpu::DataType::F16, gpu::ReduceOp::Sum,
                   mscclpp::AllReduceAlgo::AllPairs2PHB);
    const obs::CriticalPathReport* rep = comm.lastCriticalPath();
    ASSERT_NE(rep, nullptr);
    auto it = rep->byLink.find("gpu3.tx");
    ASSERT_NE(it, rep->byLink.end())
        << "slowed link never appeared on the critical path";
    // The slow link serialization is the majority of the whole
    // AllReduce, and dwarfs every healthy link.
    EXPECT_GT(it->second, rep->total() / 2) << rep->summaryLine();
    for (const auto& [link, t] : rep->byLink) {
        if (link != "gpu3.tx") {
            EXPECT_LT(t, it->second) << link;
        }
    }
}

TEST(CriticalPath, FaultInjectionSpecIsValidated)
{
    fab::EnvConfig cfg = fab::makeA100_40G();
    cfg.degradedLinks = "gpu3.tx"; // missing :factor
    EXPECT_THROW(gpu::Machine(cfg, 1), std::invalid_argument);
    cfg.degradedLinks = "gpu3.tx:0";
    EXPECT_THROW(gpu::Machine(cfg, 1), std::invalid_argument);
    cfg.degradedLinks = "gpu3.tx:0.5,nic0.tx:2.0";
    EXPECT_NO_THROW(gpu::Machine(cfg, 1));
}

// ---------------------------------------------------------------------------
// Drop accounting surfaces in both exports.
// ---------------------------------------------------------------------------

TEST(TraceDropped, SurfacesInChromeExportMetadata)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t(2);
    t.setEnabled(true);
    for (int i = 0; i < 5; ++i) {
        t.span(obs::Category::Kernel, "e", 0, "t",
               static_cast<sim::Time>(i), static_cast<sim::Time>(i + 1));
    }
    JsonValue doc = parseJsonOrDie(t.chromeTraceJson());
    EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped").number, 3.0);
    bool metaSeen = false;
    for (const JsonValue& e : doc.at("traceEvents").array) {
        if (e.at("ph").str == "M" && e.at("name").str == "trace.dropped") {
            metaSeen = true;
        }
    }
    EXPECT_TRUE(metaSeen);
}

TEST(TraceDropped, SurfacesInMetricsJsonOnDump)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::ObsContext ctx;
    ctx.tracer().setEnabled(true);
    // Overflow the (large) default ring so dropped() goes nonzero.
    const std::size_t over = ctx.tracer().capacity() + 3;
    for (std::size_t i = 0; i < over; ++i) {
        ctx.tracer().span(obs::Category::Kernel, "e", 0, "t", 0, 1);
    }
    ASSERT_EQ(ctx.tracer().dropped(), 3u);
    ctx.setTraceFile("/dev/null");
    ctx.setMetricsFile("/dev/null");
    ctx.dump();
    // dump() folds the drop counters into the metrics registry so
    // metrics.json records the loss alongside the Chrome metadata.
    EXPECT_EQ(ctx.metrics().counter("trace.dropped").value(), 3u);
}

// ---------------------------------------------------------------------------
// Step windows: whole-step attribution (DESIGN.md Section 10).
// ---------------------------------------------------------------------------

namespace {

/**
 * One step window [0, 2000ns] holding a single collective [200,700]
 * whose critical path is launch [200,250] + kernel [250,700], plus
 * two overlapping wire spans [800,1000] and [900,1100] that sit
 * entirely in the inter-collective gap — communication the step hid
 * under compute. Expected split of the 2000ns window:
 *
 *   Compute      = 450 (kernel) + 1500 (gaps) - 300 (slack) = 1650
 *   Launch       = 50
 *   OverlapSlack = 300  (merged [800,1100], not 200+200)
 */
obs::Tracer
handBuiltStepTrace()
{
    obs::Tracer t;
    t.setEnabled(true);
    t.span(obs::Category::Collective, "allreduce step", obs::kHostPid,
           "collectives", sim::ns(200), sim::ns(700), 1 << 20);
    t.span(obs::Category::Kernel, "kernel.launch", 0, "launch",
           sim::ns(200), sim::ns(250));
    t.span(obs::Category::Kernel, "block", 0, "tb0", sim::ns(250),
           sim::ns(700));
    t.edge(obs::EdgeKind::Launch, 0, "launch", sim::ns(250), 0, "tb0",
           sim::ns(250));
    t.span(obs::Category::Link, "gpu0.tx", obs::kFabricPid, "gpu0.tx",
           sim::ns(800), sim::ns(1000), 64 << 10);
    t.span(obs::Category::Link, "gpu1.tx", obs::kFabricPid, "gpu1.tx",
           sim::ns(900), sim::ns(1100), 64 << 10);
    return t;
}

} // namespace

TEST(StepWindow, HandBuiltWindowSplitsComputeCommAndSlack)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t = handBuiltStepTrace();
    obs::StepAttribution att = obs::attributeWindow(
        t.snapshot(), t.edgesSnapshot(), 0, sim::ns(2000), "step");
    EXPECT_EQ(att.collectives, 1);
    EXPECT_EQ(att.stragglerRank, 0);
    EXPECT_EQ(att.bucket(obs::StepCategory::Compute), sim::ns(1650));
    EXPECT_EQ(att.bucket(obs::StepCategory::Launch), sim::ns(50));
    EXPECT_EQ(att.bucket(obs::StepCategory::OverlapSlack), sim::ns(300));
    EXPECT_EQ(att.bucket(obs::StepCategory::ExposedComms), sim::ns(0));
    // No measured latency declared: the buckets tile the window.
    EXPECT_EQ(att.measured, sim::ns(2000));
    EXPECT_EQ(att.total(), att.measured);
}

TEST(StepWindow, SurplusLatencyLandsInCommBucketsExactly)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t = handBuiltStepTrace();
    // The caller measured 2600ns for a 2000ns traced window (e.g. one
    // traced collective standing in for several issues): the 600ns
    // surplus is apportioned over the comm buckets — here Launch is
    // the only nonzero comm weight, so it takes all of it.
    obs::StepAttribution att = obs::attributeWindow(
        t.snapshot(), t.edgesSnapshot(), 0, sim::ns(2000), "step",
        sim::ns(2600));
    EXPECT_EQ(att.bucket(obs::StepCategory::Launch), sim::ns(650));
    EXPECT_EQ(att.bucket(obs::StepCategory::Compute), sim::ns(1650));
    EXPECT_EQ(att.total(), sim::ns(2600));
}

TEST(StepWindow, ExternalComputeAndDeficitReconcileExactly)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t = handBuiltStepTrace();
    // Declared analytic compute extends the traced window: 2000ns of
    // trace + 500ns of roofline compute == the 2500ns measured step.
    obs::StepAttribution ext = obs::attributeWindow(
        t.snapshot(), t.edgesSnapshot(), 0, sim::ns(2000), "step",
        sim::ns(2500), sim::ns(500));
    EXPECT_EQ(ext.bucket(obs::StepCategory::Compute), sim::ns(2150));
    EXPECT_EQ(ext.total(), sim::ns(2500));
    // Measured below the traced window: compute gives way first.
    obs::StepAttribution deficit = obs::attributeWindow(
        t.snapshot(), t.edgesSnapshot(), 0, sim::ns(2000), "step",
        sim::ns(300));
    EXPECT_EQ(deficit.bucket(obs::StepCategory::Compute), sim::ns(0));
    EXPECT_EQ(deficit.total(), sim::ns(300));
}

TEST(StepWindow, EndStepEmitsSpanOnStepsTrack)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t;
    t.setEnabled(true);
    obs::StepWindow win(t);
    EXPECT_FALSE(win.active());
    win.beginStep("step-a", 0);
    EXPECT_TRUE(win.active());
    t.span(obs::Category::Kernel, "block", 0, "tb0", sim::ns(10),
           sim::ns(90));
    obs::StepAttribution att = win.endStep(sim::ns(100));
    EXPECT_FALSE(win.active());
    EXPECT_EQ(win.stepsCompleted(), 1u);
    ASSERT_NE(win.lastStep(), nullptr);
    EXPECT_EQ(att.total(), sim::ns(100));

    bool stepSpan = false;
    for (const obs::TraceEvent& e : t.snapshot()) {
        if (e.cat == obs::Category::Step) {
            EXPECT_EQ(e.name, "step-a");
            EXPECT_EQ(e.track, "steps");
            EXPECT_EQ(e.pid, obs::kHostPid);
            EXPECT_EQ(e.begin, 0u);
            EXPECT_EQ(e.end, sim::ns(100));
            stepSpan = true;
        }
    }
    EXPECT_TRUE(stepSpan);
    // The Chrome export names the dedicated track so Perfetto groups
    // steps visually: a thread_name metadata record says "steps" and
    // the window itself is a complete ("X") span.
    JsonValue doc = parseJsonOrDie(t.chromeTraceJson());
    bool namedTrack = false;
    bool xSpan = false;
    for (const JsonValue& e : doc.at("traceEvents").array) {
        if (e.at("ph").str == "M" && e.at("name").str == "thread_name" &&
            e.at("args").at("name").str == "steps") {
            namedTrack = true;
        }
        if (e.at("ph").str == "X" && e.at("name").str == "step-a") {
            xSpan = true;
        }
    }
    EXPECT_TRUE(namedTrack);
    EXPECT_TRUE(xSpan);
}

TEST(StepWindow, MissedEndStepIsDiagnosed)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::Tracer t;
    t.setEnabled(true);
    obs::StepWindow win(t);
    win.beginStep("first", 0);
    // A second beginStep is a missed endStep upstream: the error names
    // the step that is still open so the caller can find it.
    try {
        win.beginStep("second", sim::ns(10));
        FAIL() << "nested beginStep was not diagnosed";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("first"),
                  std::string::npos);
    }
    // endStep with nothing open is the mirror-image misuse.
    obs::StepWindow idle(t);
    EXPECT_THROW(idle.endStep(sim::ns(10)), Error);
    // Disabled tracer: the whole API is a silent no-op, so untraced
    // production runs never pay or throw.
    obs::Tracer off;
    obs::StepWindow quiet(off);
    EXPECT_NO_THROW(quiet.beginStep("x", 0));
    EXPECT_NO_THROW(quiet.beginStep("y", 0));
    EXPECT_NO_THROW(quiet.endStep(sim::ns(5)));
    EXPECT_EQ(quiet.lastStep(), nullptr);
}

TEST(StepWindow, DecodeStepBucketsSumToMeasuredLatency)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    fab::EnvConfig cfg = fab::makeA100_80G();
    cfg.critpathEnabled = true;
    gpu::Machine m(cfg, 1);
    m.obs().setDumpOnDestroy(false);
    inference::InferenceSim server(m, inference::InferenceConfig{});
    auto step = server.decodeStep(16, 512,
                                  inference::CommBackend::Mscclpp);
    const obs::StepAttribution* att = m.obs().window().lastStep();
    ASSERT_NE(att, nullptr);
    // The paper's fig10 property, as an exact integer identity: the
    // six buckets reconstruct the measured decode-step latency.
    EXPECT_EQ(att->measured, step.total());
    EXPECT_EQ(att->total(), step.total());
    // Decode is compute-dominated on this model; the traced AllReduce
    // leaves real communication in the comm buckets.
    EXPECT_GT(att->bucket(obs::StepCategory::Compute),
              att->measured / 2);
    EXPECT_GT(att->bucket(obs::StepCategory::ExposedComms), 0u);
    EXPECT_EQ(att->collectives, 1);
    EXPECT_FALSE(att->culpritLink.empty());
}

TEST(StepWindow, DslRunOpensItsOwnWindow)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    gpu::Machine m(fab::makeA100_40G(), 1);
    m.obs().tracer().setEnabled(true);
    m.obs().setDumpOnDestroy(false);
    dsl::Executor ex(m, 1 << 20);
    dsl::Program p = dsl::buildAllPairs2PAllReduceHB(8, 64 << 10);
    sim::Time elapsed = ex.execute(p, gpu::DataType::F32,
                                   gpu::ReduceOp::Sum);
    const obs::StepAttribution* att = m.obs().window().lastStep();
    ASSERT_NE(att, nullptr);
    EXPECT_EQ(att->label.rfind("dsl:", 0), 0u) << att->label;
    EXPECT_EQ(att->collectives, 1);
    EXPECT_EQ(att->measured, elapsed);
    EXPECT_EQ(att->total(), elapsed);
}

// ---------------------------------------------------------------------------
// Flight recorder: bounded ring, exact merge, online anomaly trigger.
// ---------------------------------------------------------------------------

namespace {

obs::StepAttribution
syntheticStep(sim::Time measured)
{
    obs::StepAttribution att;
    att.label = "synthetic";
    att.begin = 0;
    att.end = measured;
    att.measured = measured;
    att.buckets[obs::StepCategory::Compute] = measured * 3 / 4;
    att.buckets[obs::StepCategory::ExposedComms] =
        measured - measured * 3 / 4;
    return att;
}

} // namespace

TEST(Flight, RingWraparoundKeepsExactAggregate)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::FlightRecorder fr(4);
    fr.setEnabled(true);
    fr.setWarmup(1000); // no anomalies in this test
    for (int i = 0; i < 11; ++i) {
        fr.onStep(syntheticStep(sim::us(100 + i)), {}, {});
    }
    EXPECT_EQ(fr.steps(), 11u);
    std::vector<obs::StepDigest> ring = fr.ring();
    ASSERT_EQ(ring.size(), 4u);
    // Oldest-first, and the oldest seven were evicted into dropped.
    EXPECT_EQ(ring.front().index, 7u);
    EXPECT_EQ(ring.back().index, 10u);
    EXPECT_EQ(fr.dropped().count, 7u);
    // The exact-merge invariant: aggregate == dropped + sum(ring), to
    // the picosecond, in count, measured time and every bucket.
    obs::DigestAggregate merged = fr.dropped();
    for (const obs::StepDigest& d : ring) {
        merged.merge(d);
    }
    EXPECT_TRUE(merged == fr.aggregate());
    // Shrinking the ring preserves the invariant (evicts into
    // dropped); growing drops nothing.
    fr.setCapacity(2);
    EXPECT_EQ(fr.ring().size(), 2u);
    merged = fr.dropped();
    for (const obs::StepDigest& d : fr.ring()) {
        merged.merge(d);
    }
    EXPECT_TRUE(merged == fr.aggregate());
    EXPECT_EQ(fr.steps(), 11u);
}

TEST(Flight, AnomalyTriggersWithinFiveStepsAndNamesTheLink)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    fab::EnvConfig cfg = fab::makeA100_80G();
    cfg.flightEnabled = true;
    gpu::Machine m(cfg, 1);
    m.obs().setDumpOnDestroy(false);
    inference::InferenceSim server(m, inference::InferenceConfig{});
    obs::FlightRecorder& fr = m.obs().flight();
    const int faultAt = 12;
    for (int t = 0; t < 20; ++t) {
        if (t == faultAt) {
            m.fabric().degradeLink("gpu3.tx", 0.2);
        }
        server.decodeStep(16, 512, inference::CommBackend::Mscclpp);
    }
    EXPECT_EQ(fr.steps(), 20u);
    ASSERT_GT(fr.anomalyCount(), 0u) << "degradation never flagged";
    const obs::FlightAnomaly& first = fr.anomalies().front();
    // Online detection: flagged within five steps of the fault, with
    // the degraded link named as the culprit.
    EXPECT_GE(first.digest.index, static_cast<std::uint64_t>(faultAt));
    EXPECT_LE(first.digest.index,
              static_cast<std::uint64_t>(faultAt + 5));
    EXPECT_EQ(first.digest.culpritLink, "gpu3.tx");
    EXPECT_GT(first.digest.sigmas, fr.sigmaK());
    // The trigger dumped the offending window: a full attribution and
    // the window's events + per-collective critical paths.
    EXPECT_NE(first.attributionJson.find("\"buckets\""),
              std::string::npos);
    EXPECT_NE(first.windowJson.find("\"critical_paths\""),
              std::string::npos);
    parseJsonOrDie(first.attributionJson);
    parseJsonOrDie(first.windowJson);
    // Healthy steps before the fault were not flagged.
    for (const obs::StepDigest& d : fr.ring()) {
        if (d.index < static_cast<std::uint64_t>(faultAt)) {
            EXPECT_FALSE(d.anomalous) << d.index;
        }
    }
    // The fault does not poison the baseline: the EWMA mean stays at
    // the healthy level, so recovery would be recognised too.
    const obs::StepDigest& healthy = fr.ring().front();
    EXPECT_LT(fr.ewmaMeanNs(),
              sim::toNs(healthy.measured) * 1.05);
}

TEST(Flight, JsonDumpParsesAndCarriesSchema)
{
    if (!obs::Tracer::kCompiledIn) {
        GTEST_SKIP() << "built with MSCCLPP_NO_OBS";
    }
    obs::FlightRecorder fr(8);
    fr.setEnabled(true);
    fr.setWarmup(2);
    for (int i = 0; i < 6; ++i) {
        // A latency cliff at step 4 so the dump carries an anomaly.
        fr.onStep(syntheticStep(sim::us(i == 4 ? 500 : 100)), {}, {});
    }
    JsonValue doc = parseJsonOrDie(fr.toJson());
    EXPECT_EQ(doc.at("schema").str, "mscclpp.flight");
    EXPECT_DOUBLE_EQ(doc.at("version").number, 1.0);
    EXPECT_DOUBLE_EQ(doc.at("steps_total").number, 6.0);
    EXPECT_DOUBLE_EQ(doc.at("anomalies_total").number, 1.0);
    EXPECT_EQ(doc.at("ring").array.size(), 6u);
    EXPECT_EQ(doc.at("anomalies").array.size(), 1u);
}
