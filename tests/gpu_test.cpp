#include "gpu/compute.hpp"
#include "gpu/kernel.hpp"
#include "gpu/machine.hpp"
#include "gpu/types.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;

TEST(Half, RoundTripExactValues)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.25f, 1024.0f, -0.125f}) {
        EXPECT_EQ(gpu::Half(v).toFloat(), v) << v;
    }
}

TEST(Half, RoundsToNearest)
{
    // 1 + 2^-11 is exactly between 1 and the next half value.
    float v = 1.0f + std::ldexp(1.0f, -11);
    float r = gpu::Half(v).toFloat();
    EXPECT_TRUE(r == 1.0f || r == 1.0f + std::ldexp(1.0f, -10));
}

TEST(Half, HandlesOverflowAndSubnormals)
{
    EXPECT_TRUE(std::isinf(gpu::Half(1e30f).toFloat()));
    EXPECT_TRUE(std::isinf(gpu::Half(-1e30f).toFloat()));
    float sub = std::ldexp(1.0f, -20);
    EXPECT_NEAR(gpu::Half(sub).toFloat(), sub, sub * 0.01f);
    EXPECT_EQ(gpu::Half(1e-30f).toFloat(), 0.0f);
    EXPECT_TRUE(std::isnan(gpu::Half(std::nanf("")).toFloat()));
}

TEST(Machine, BuildsGpusAndFabric)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    EXPECT_EQ(m.numGpus(), 16);
    EXPECT_EQ(m.gpu(9).node(), 1);
    EXPECT_EQ(m.gpu(9).localRank(), 1);
    EXPECT_EQ(m.config().name, "A100-40G");
}

TEST(Machine, FunctionalModeMaterializesBuffers)
{
    gpu::Machine m(fab::makeA100_40G(), 1, gpu::DataMode::Functional);
    gpu::DeviceBuffer b = m.gpu(0).alloc(1024);
    EXPECT_NE(b.data(), nullptr);
    EXPECT_EQ(b.size(), 1024u);
    EXPECT_EQ(b.gpuRank(), 0);
}

TEST(Machine, TimedModeSkipsMaterialization)
{
    gpu::Machine m(fab::makeA100_40G(), 1, gpu::DataMode::Timed);
    gpu::DeviceBuffer b = m.gpu(0).alloc(1024);
    EXPECT_EQ(b.data(), nullptr);
    EXPECT_EQ(b.size(), 1024u);
    // Data ops are harmless no-ops in timed mode.
    gpu::DeviceBuffer c = m.gpu(0).alloc(1024);
    gpu::copyBytes(b, c, 1024);
    gpu::accumulate(b, c, 1024, gpu::DataType::F32, gpu::ReduceOp::Sum);
}

TEST(Buffer, ViewsAreBoundsChecked)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::DeviceBuffer b = m.gpu(0).alloc(100);
    gpu::DeviceBuffer v = b.view(10, 20);
    EXPECT_EQ(v.size(), 20u);
    EXPECT_EQ(v.data(), b.data() + 10);
    EXPECT_THROW(b.view(90, 20), std::out_of_range);
    EXPECT_THROW(v.view(10, 11), std::out_of_range);
}

TEST(Compute, CopyAndAccumulateF32)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::DeviceBuffer a = m.gpu(0).alloc(16);
    gpu::DeviceBuffer b = m.gpu(0).alloc(16);
    for (int i = 0; i < 4; ++i) {
        gpu::writeElement(a, gpu::DataType::F32, i, float(i));
        gpu::writeElement(b, gpu::DataType::F32, i, 10.0f * i);
    }
    gpu::accumulate(a, b, 16, gpu::DataType::F32, gpu::ReduceOp::Sum);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(gpu::readElement(a, gpu::DataType::F32, i), 11.0f * i);
    }
    gpu::copyBytes(b, a, 16);
    EXPECT_EQ(gpu::readElement(b, gpu::DataType::F32, 3), 33.0f);
}

TEST(Compute, AccumulateF16MaxAndSum)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::DeviceBuffer a = m.gpu(0).alloc(8);
    gpu::DeviceBuffer b = m.gpu(0).alloc(8);
    float av[4] = {1.0f, -2.0f, 0.5f, 4.0f};
    float bv[4] = {0.5f, 3.0f, 0.25f, -1.0f};
    for (int i = 0; i < 4; ++i) {
        gpu::writeElement(a, gpu::DataType::F16, i, av[i]);
        gpu::writeElement(b, gpu::DataType::F16, i, bv[i]);
    }
    gpu::accumulate(a, b, 8, gpu::DataType::F16, gpu::ReduceOp::Max);
    EXPECT_EQ(gpu::readElement(a, gpu::DataType::F16, 0), 1.0f);
    EXPECT_EQ(gpu::readElement(a, gpu::DataType::F16, 1), 3.0f);
    gpu::accumulate(a, b, 8, gpu::DataType::F16, gpu::ReduceOp::Sum);
    EXPECT_EQ(gpu::readElement(a, gpu::DataType::F16, 0), 1.5f);
}

TEST(Compute, PatternIsDeterministicAndRankDependent)
{
    EXPECT_EQ(gpu::patternValue(gpu::DataType::F32, 3, 17),
              gpu::patternValue(gpu::DataType::F32, 3, 17));
    bool differs = false;
    for (int i = 0; i < 64 && !differs; ++i) {
        differs = gpu::patternValue(gpu::DataType::F32, 0, i) !=
                  gpu::patternValue(gpu::DataType::F32, 1, i);
    }
    EXPECT_TRUE(differs);
}

TEST(Compute, ErrorsOnBadRanges)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::DeviceBuffer a = m.gpu(0).alloc(16);
    gpu::DeviceBuffer b = m.gpu(0).alloc(8);
    EXPECT_THROW(gpu::copyBytes(b, a, 16), std::out_of_range);
    EXPECT_THROW(
        gpu::accumulate(a, b, 7, gpu::DataType::F32, gpu::ReduceOp::Sum),
        std::invalid_argument);
    EXPECT_THROW(gpu::readElement(b, gpu::DataType::F32, 2),
                 std::out_of_range);
}

TEST(Gpu, CostModelScalesWithBytes)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::Gpu& g = m.gpu(0);
    EXPECT_EQ(g.memTime(0), 0u);
    EXPECT_GT(g.memTime(1 << 20), 0u);
    EXPECT_EQ(g.copyTime(1 << 20), g.memTime(2 << 20));
    EXPECT_EQ(g.reduceTime(1 << 20, 3), g.memTime(4 << 20));
}

namespace {

sim::Task<>
emptyBlock(gpu::BlockCtx&)
{
    co_return;
}

} // namespace

TEST(Kernel, LaunchChargesGraphLatency)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::LaunchConfig cfg;
    cfg.blocks = 1;
    cfg.graph = true;
    sim::detach(m.scheduler(),
                gpu::launchKernel(m.gpu(0), cfg, emptyBlock));
    sim::Time t = m.run();
    EXPECT_EQ(t, m.config().graphLaunch);
}

TEST(Kernel, StreamLaunchCostsMore)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::LaunchConfig cfg;
    cfg.graph = false;
    sim::detach(m.scheduler(),
                gpu::launchKernel(m.gpu(0), cfg, emptyBlock));
    EXPECT_EQ(m.run(), m.config().kernelLaunch);
}

TEST(Kernel, AllBlocksRunAndJoin)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::LaunchConfig cfg;
    cfg.blocks = 8;
    int ran = 0;
    sim::detach(m.scheduler(),
                gpu::launchKernel(m.gpu(0), cfg, [&](gpu::BlockCtx& ctx) {
                    return [](gpu::BlockCtx& c, int* r) -> sim::Task<> {
                        co_await c.busy(sim::us(1));
                        ++*r;
                    }(ctx, &ran);
                }));
    m.run();
    EXPECT_EQ(ran, 8);
}

TEST(Kernel, GridBarrierSynchronizesBlocks)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::LaunchConfig cfg;
    cfg.blocks = 4;
    std::vector<sim::Time> after(4);
    auto blockFn = [&](gpu::BlockCtx& ctx) -> sim::Task<> {
        co_await ctx.busy(sim::us(1) * (ctx.blockIdx() + 1));
        co_await ctx.gridBarrier();
        after[ctx.blockIdx()] = ctx.scheduler().now();
    };
    sim::detach(m.scheduler(), gpu::launchKernel(m.gpu(0), cfg, blockFn));
    m.run();
    for (int b = 1; b < 4; ++b) {
        EXPECT_EQ(after[b], after[0]);
    }
    EXPECT_GE(after[0], m.config().graphLaunch + sim::us(4));
}

TEST(Kernel, ThreadCopyRateScalesWithThreads)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::LaunchConfig cfg;
    cfg.threadsPerBlock = 256;
    double rate = 0;
    auto blockFn = [&](gpu::BlockCtx& ctx) -> sim::Task<> {
        rate = ctx.threadCopyGBps();
        co_return;
    };
    sim::detach(m.scheduler(), gpu::launchKernel(m.gpu(0), cfg, blockFn));
    m.run();
    EXPECT_DOUBLE_EQ(rate, 256 * m.config().perThreadCopyGBps);
}

TEST(Kernel, RejectsInvalidLaunch)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    gpu::LaunchConfig cfg;
    cfg.blocks = 0;
    // The throw happens when the coroutine body first runs (detach
    // starts it eagerly), surfacing through Scheduler::run().
    sim::detach(m.scheduler(), gpu::launchKernel(m.gpu(0), cfg, emptyBlock));
    EXPECT_THROW(m.run(), std::invalid_argument);
}
