#include "collective/api.hpp"
#include "core/errors.hpp"
#include "dsl/algorithms.hpp"
#include "dsl/executor.hpp"
#include "gpu/compute.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace sim = mscclpp::sim;
namespace fab = mscclpp::fabric;
namespace gpu = mscclpp::gpu;
namespace dsl = mscclpp::dsl;

namespace {

void
fillAll(dsl::Executor& ex, std::size_t seed = 0)
{
    for (int r = 0; r < ex.size(); ++r) {
        gpu::fillPattern(ex.dataBuffer(r), gpu::DataType::F32, r, seed);
    }
}

void
checkAllReduce(dsl::Executor& ex, std::size_t count, std::size_t seed = 0)
{
    for (std::size_t i = 0; i < count;
         i += std::max<std::size_t>(1, count / 71)) {
        float expected = 0.0f;
        for (int r = 0; r < ex.size(); ++r) {
            expected += gpu::patternValue(gpu::DataType::F32, r, i, seed);
        }
        for (int r = 0; r < ex.size(); ++r) {
            ASSERT_FLOAT_EQ(
                gpu::readElement(ex.dataBuffer(r), gpu::DataType::F32, i),
                expected)
                << "rank " << r << " elem " << i;
        }
    }
}

} // namespace

TEST(DslProgram, BuilderEmitsBoundInstructions)
{
    dsl::Program p("test", 4);
    p.onRank(0)
        .threadBlock(2)
        .put(1, {dsl::BufKind::Input, 0, 64},
             {dsl::BufKind::Scratch, 128, 64})
        .signal(1, dsl::BufKind::Scratch);
    ASSERT_EQ(p.instructions(0).size(), 2u);
    const dsl::Instr& in = p.instructions(0)[0];
    EXPECT_EQ(in.op, dsl::OpCode::Put);
    EXPECT_EQ(in.peer, 1);
    EXPECT_EQ(in.tb, 2);
    EXPECT_EQ(in.dst.offset, 128u);
    EXPECT_EQ(p.numThreadBlocks(), 3);
    EXPECT_FALSE(p.usesSwitch());
    EXPECT_NE(in.describe().find("put"), std::string::npos);
}

TEST(DslProgram, FusePutSignalPass)
{
    dsl::Program p("fuse", 2);
    p.onRank(0)
        .put(1, {dsl::BufKind::Input, 0, 64}, {dsl::BufKind::Input, 0, 64})
        .signal(1)
        .wait(1);
    EXPECT_EQ(p.fusePutSignal(), 1u);
    ASSERT_EQ(p.instructions(0).size(), 2u);
    EXPECT_EQ(p.instructions(0)[0].op, dsl::OpCode::PutWithSignal);
}

TEST(DslProgram, BatchSignalsKeepsLast)
{
    dsl::Program p("batch", 2);
    auto rb = p.onRank(0);
    for (int i = 0; i < 3; ++i) {
        rb.put(1, {dsl::BufKind::Input, 0, 64},
               {dsl::BufKind::Input, 0, 64})
            .signal(1);
    }
    EXPECT_EQ(p.batchSignals(), 2u);
    int signals = 0;
    for (const auto& in : p.instructions(0)) {
        signals += in.op == dsl::OpCode::Signal ? 1 : 0;
    }
    EXPECT_EQ(signals, 1);
}

TEST(DslProgram, DedupBarriers)
{
    dsl::Program p("bar", 2);
    p.onRank(0).barrier().barrier().barrier();
    EXPECT_EQ(p.dedupBarriers(), 2u);
    EXPECT_EQ(p.instructions(0).size(), 1u);
}

struct DslArCase
{
    const char* env;
    dsl::Program (*build)(int, std::size_t);
    std::size_t bytes;
};

class DslAllReduceP : public ::testing::TestWithParam<DslArCase>
{
};

TEST_P(DslAllReduceP, ExecutesExactly)
{
    const DslArCase& c = GetParam();
    gpu::Machine m(fab::makeEnv(c.env), 1);
    dsl::Executor ex(m, std::max<std::size_t>(c.bytes, 1 << 20));
    fillAll(ex);
    dsl::Program p = c.build(8, c.bytes);
    sim::Time t = ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
    EXPECT_GT(t, 0u);
    checkAllReduce(ex, c.bytes / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DslAllReduceP,
    ::testing::Values(
        DslArCase{"A100-40G", dsl::buildAllPairs1PAllReduce, 4 << 10},
        DslArCase{"A100-40G", dsl::buildAllPairs2PAllReduceLL, 256 << 10},
        DslArCase{"A100-40G", dsl::buildAllPairs2PAllReduceHB, 1 << 20},
        DslArCase{"A100-40G", dsl::buildAllPairs2PAllReducePort, 1 << 20},
        DslArCase{"A100-40G", dsl::buildRingAllReduce, 1 << 20},
        DslArCase{"H100", dsl::buildSwitchAllReduce, 1 << 20},
        DslArCase{"MI300x", dsl::buildAllPairs2PAllReduceHB, 512 << 10}),
    [](const auto& info) {
        std::string s = std::string(info.param.env) + "_case" +
                        std::to_string(info.index);
        for (char& c : s) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return s;
    });

TEST(DslExecutor, RepeatedExecutionStaysCorrect)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    dsl::Executor ex(m, 1 << 20);
    dsl::Program p = dsl::buildAllPairs2PAllReduceHB(8, 64 << 10);
    for (int round = 0; round < 3; ++round) {
        fillAll(ex, round);
        ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
        checkAllReduce(ex, (64 << 10) / 4, round);
    }
}

TEST(DslExecutor, ReduceScatterFigure5)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    dsl::Executor ex(m, 1 << 20);
    fillAll(ex);
    const std::size_t bytes = 256 << 10;
    dsl::Program p = dsl::buildAllPairsReduceScatter(8, bytes);
    ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
    const std::size_t shardElems = bytes / 4 / 8;
    for (int r = 0; r < 8; ++r) {
        for (std::size_t i = 0; i < shardElems; i += 61) {
            std::size_t elem = r * shardElems + i;
            float expected = 0.0f;
            for (int src = 0; src < 8; ++src) {
                expected += gpu::patternValue(gpu::DataType::F32, src,
                                              elem);
            }
            ASSERT_FLOAT_EQ(gpu::readElement(ex.dataBuffer(r),
                                             gpu::DataType::F32, elem),
                            expected);
        }
    }
}

TEST(DslExecutor, AllGatherVariants)
{
    for (bool ll : {false, true}) {
        gpu::Machine m(fab::makeA100_40G(), 1);
        dsl::Executor ex(m, 1 << 20);
        const std::size_t shard = ll ? 8 << 10 : 64 << 10;
        for (int r = 0; r < 8; ++r) {
            gpu::fillPattern(ex.dataBuffer(r).view(r * shard, shard),
                             gpu::DataType::F32, r);
        }
        dsl::Program p = ll ? dsl::buildAllPairsAllGatherLL(8, shard)
                            : dsl::buildAllPairsAllGather(8, shard);
        ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
        for (int r = 0; r < 8; ++r) {
            for (int src = 0; src < 8; ++src) {
                for (std::size_t i = 0; i < shard / 4; i += 53) {
                    ASSERT_FLOAT_EQ(
                        gpu::readElement(ex.dataBuffer(r),
                                         gpu::DataType::F32,
                                         src * (shard / 4) + i),
                        gpu::patternValue(gpu::DataType::F32, src, i))
                        << (ll ? "ll" : "hb");
                }
            }
        }
    }
}

TEST(DslExecutor, HierarchicalMultiNode)
{
    gpu::Machine m(fab::makeA100_40G(), 2);
    dsl::Executor ex(m, 1 << 20);
    fillAll(ex);
    dsl::Program p = dsl::buildHierAllReduce(16, 8, 512 << 10);
    ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
    checkAllReduce(ex, (512 << 10) / 4);
}

TEST(DslExecutor, ValidatesProgramAgainstMachine)
{
    gpu::Machine m(fab::makeA100_40G(), 1);
    dsl::Executor ex(m, 1 << 20);
    dsl::Program wrongRanks = dsl::buildAllPairs1PAllReduce(4, 1024);
    EXPECT_THROW(ex.execute(wrongRanks, gpu::DataType::F32,
                            gpu::ReduceOp::Sum),
                 mscclpp::Error);
    dsl::Program needsSwitch = dsl::buildSwitchAllReduce(8, 1 << 20);
    EXPECT_THROW(ex.execute(needsSwitch, gpu::DataType::F32,
                            gpu::ReduceOp::Sum),
                 mscclpp::Error);
}

TEST(DslVsPrimitive, ExecutorOverheadIsSmall)
{
    // Section 5.1: DSL versions are ~3% slower on average than the
    // hand-written Primitive kernels (same algorithm).
    gpu::Machine m(fab::makeA100_40G(), 1);
    mscclpp::CollectiveComm::Options opt;
    opt.maxBytes = 4 << 20;
    mscclpp::CollectiveComm prim(m, opt);
    dsl::Executor ex(m, 4 << 20);

    const std::size_t bytes = 4 << 20;
    sim::Time tPrim = prim.allReduce(bytes, gpu::DataType::F32,
                                     gpu::ReduceOp::Sum,
                                     mscclpp::AllReduceAlgo::AllPairs2PHB);
    dsl::Program p = dsl::buildAllPairs2PAllReduceHB(8, bytes);
    sim::Time tDsl = ex.execute(p, gpu::DataType::F32, gpu::ReduceOp::Sum);
    EXPECT_GE(tDsl, tPrim);
    EXPECT_LT(double(tDsl) / double(tPrim), 1.20);
}
