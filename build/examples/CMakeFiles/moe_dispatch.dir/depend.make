# Empty dependencies file for moe_dispatch.
# This may be replaced when dependencies are built.
