file(REMOVE_RECURSE
  "CMakeFiles/moe_dispatch.dir/moe_dispatch.cpp.o"
  "CMakeFiles/moe_dispatch.dir/moe_dispatch.cpp.o.d"
  "moe_dispatch"
  "moe_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
