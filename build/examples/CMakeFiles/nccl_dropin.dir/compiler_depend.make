# Empty compiler generated dependencies file for nccl_dropin.
# This may be replaced when dependencies are built.
