file(REMOVE_RECURSE
  "CMakeFiles/nccl_dropin.dir/nccl_dropin.cpp.o"
  "CMakeFiles/nccl_dropin.dir/nccl_dropin.cpp.o.d"
  "nccl_dropin"
  "nccl_dropin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nccl_dropin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
