# Empty compiler generated dependencies file for cross_hardware.
# This may be replaced when dependencies are built.
