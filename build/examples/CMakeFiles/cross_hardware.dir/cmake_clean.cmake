file(REMOVE_RECURSE
  "CMakeFiles/cross_hardware.dir/cross_hardware.cpp.o"
  "CMakeFiles/cross_hardware.dir/cross_hardware.cpp.o.d"
  "cross_hardware"
  "cross_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
