# Empty dependencies file for abl_rotating_buffers.
# This may be replaced when dependencies are built.
