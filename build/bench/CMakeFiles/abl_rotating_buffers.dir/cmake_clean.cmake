file(REMOVE_RECURSE
  "CMakeFiles/abl_rotating_buffers.dir/abl_rotating_buffers.cpp.o"
  "CMakeFiles/abl_rotating_buffers.dir/abl_rotating_buffers.cpp.o.d"
  "abl_rotating_buffers"
  "abl_rotating_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rotating_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
