# Empty dependencies file for tbl_port_vs_memory.
# This may be replaced when dependencies are built.
