file(REMOVE_RECURSE
  "CMakeFiles/tbl_port_vs_memory.dir/tbl_port_vs_memory.cpp.o"
  "CMakeFiles/tbl_port_vs_memory.dir/tbl_port_vs_memory.cpp.o.d"
  "tbl_port_vs_memory"
  "tbl_port_vs_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_port_vs_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
