# Empty compiler generated dependencies file for abl_step_overhead.
# This may be replaced when dependencies are built.
