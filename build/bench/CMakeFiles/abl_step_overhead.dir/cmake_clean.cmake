file(REMOVE_RECURSE
  "CMakeFiles/abl_step_overhead.dir/abl_step_overhead.cpp.o"
  "CMakeFiles/abl_step_overhead.dir/abl_step_overhead.cpp.o.d"
  "abl_step_overhead"
  "abl_step_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_step_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
