file(REMOVE_RECURSE
  "CMakeFiles/tbl_environments.dir/tbl_environments.cpp.o"
  "CMakeFiles/tbl_environments.dir/tbl_environments.cpp.o.d"
  "tbl_environments"
  "tbl_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
