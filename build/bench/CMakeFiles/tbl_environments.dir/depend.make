# Empty dependencies file for tbl_environments.
# This may be replaced when dependencies are built.
