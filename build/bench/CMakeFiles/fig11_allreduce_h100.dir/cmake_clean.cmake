file(REMOVE_RECURSE
  "CMakeFiles/fig11_allreduce_h100.dir/fig11_allreduce_h100.cpp.o"
  "CMakeFiles/fig11_allreduce_h100.dir/fig11_allreduce_h100.cpp.o.d"
  "fig11_allreduce_h100"
  "fig11_allreduce_h100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_allreduce_h100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
