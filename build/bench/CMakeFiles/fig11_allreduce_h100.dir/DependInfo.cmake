
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_allreduce_h100.cpp" "bench/CMakeFiles/fig11_allreduce_h100.dir/fig11_allreduce_h100.cpp.o" "gcc" "bench/CMakeFiles/fig11_allreduce_h100.dir/fig11_allreduce_h100.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collective/CMakeFiles/mscclpp_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mscclpp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/mscclpp_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/inference/CMakeFiles/mscclpp_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/mscclpp_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mscclpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mscclpp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/mscclpp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mscclpp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mscclpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
