# Empty dependencies file for fig11_allreduce_h100.
# This may be replaced when dependencies are built.
