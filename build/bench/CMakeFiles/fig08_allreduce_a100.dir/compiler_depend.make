# Empty compiler generated dependencies file for fig08_allreduce_a100.
# This may be replaced when dependencies are built.
