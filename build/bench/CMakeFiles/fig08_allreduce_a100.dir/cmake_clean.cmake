file(REMOVE_RECURSE
  "CMakeFiles/fig08_allreduce_a100.dir/fig08_allreduce_a100.cpp.o"
  "CMakeFiles/fig08_allreduce_a100.dir/fig08_allreduce_a100.cpp.o.d"
  "fig08_allreduce_a100"
  "fig08_allreduce_a100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_allreduce_a100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
