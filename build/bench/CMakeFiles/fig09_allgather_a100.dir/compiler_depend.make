# Empty compiler generated dependencies file for fig09_allgather_a100.
# This may be replaced when dependencies are built.
