file(REMOVE_RECURSE
  "CMakeFiles/fig09_allgather_a100.dir/fig09_allgather_a100.cpp.o"
  "CMakeFiles/fig09_allgather_a100.dir/fig09_allgather_a100.cpp.o.d"
  "fig09_allgather_a100"
  "fig09_allgather_a100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_allgather_a100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
