# Empty dependencies file for tbl_dsl_vs_primitive.
# This may be replaced when dependencies are built.
