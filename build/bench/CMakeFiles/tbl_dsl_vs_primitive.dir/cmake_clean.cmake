file(REMOVE_RECURSE
  "CMakeFiles/tbl_dsl_vs_primitive.dir/tbl_dsl_vs_primitive.cpp.o"
  "CMakeFiles/tbl_dsl_vs_primitive.dir/tbl_dsl_vs_primitive.cpp.o.d"
  "tbl_dsl_vs_primitive"
  "tbl_dsl_vs_primitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_dsl_vs_primitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
