# Empty compiler generated dependencies file for tbl_copy_modes.
# This may be replaced when dependencies are built.
