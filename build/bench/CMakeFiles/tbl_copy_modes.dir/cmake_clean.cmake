file(REMOVE_RECURSE
  "CMakeFiles/tbl_copy_modes.dir/tbl_copy_modes.cpp.o"
  "CMakeFiles/tbl_copy_modes.dir/tbl_copy_modes.cpp.o.d"
  "tbl_copy_modes"
  "tbl_copy_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_copy_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
