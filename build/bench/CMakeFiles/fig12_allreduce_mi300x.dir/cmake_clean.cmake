file(REMOVE_RECURSE
  "CMakeFiles/fig12_allreduce_mi300x.dir/fig12_allreduce_mi300x.cpp.o"
  "CMakeFiles/fig12_allreduce_mi300x.dir/fig12_allreduce_mi300x.cpp.o.d"
  "fig12_allreduce_mi300x"
  "fig12_allreduce_mi300x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_allreduce_mi300x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
