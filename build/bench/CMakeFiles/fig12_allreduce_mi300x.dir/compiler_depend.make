# Empty compiler generated dependencies file for fig12_allreduce_mi300x.
# This may be replaced when dependencies are built.
