# Empty compiler generated dependencies file for tbl_stack_overhead.
# This may be replaced when dependencies are built.
