file(REMOVE_RECURSE
  "CMakeFiles/tbl_stack_overhead.dir/tbl_stack_overhead.cpp.o"
  "CMakeFiles/tbl_stack_overhead.dir/tbl_stack_overhead.cpp.o.d"
  "tbl_stack_overhead"
  "tbl_stack_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_stack_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
