# Empty dependencies file for fig10_llm_inference.
# This may be replaced when dependencies are built.
