file(REMOVE_RECURSE
  "CMakeFiles/fig10_llm_inference.dir/fig10_llm_inference.cpp.o"
  "CMakeFiles/fig10_llm_inference.dir/fig10_llm_inference.cpp.o.d"
  "fig10_llm_inference"
  "fig10_llm_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_llm_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
