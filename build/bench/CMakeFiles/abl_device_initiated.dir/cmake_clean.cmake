file(REMOVE_RECURSE
  "CMakeFiles/abl_device_initiated.dir/abl_device_initiated.cpp.o"
  "CMakeFiles/abl_device_initiated.dir/abl_device_initiated.cpp.o.d"
  "abl_device_initiated"
  "abl_device_initiated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_device_initiated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
