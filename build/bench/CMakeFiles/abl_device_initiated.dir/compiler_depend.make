# Empty compiler generated dependencies file for abl_device_initiated.
# This may be replaced when dependencies are built.
