# Empty dependencies file for abl_proxy_service.
# This may be replaced when dependencies are built.
