file(REMOVE_RECURSE
  "CMakeFiles/abl_proxy_service.dir/abl_proxy_service.cpp.o"
  "CMakeFiles/abl_proxy_service.dir/abl_proxy_service.cpp.o.d"
  "abl_proxy_service"
  "abl_proxy_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_proxy_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
