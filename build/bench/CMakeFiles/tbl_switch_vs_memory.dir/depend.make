# Empty dependencies file for tbl_switch_vs_memory.
# This may be replaced when dependencies are built.
