file(REMOVE_RECURSE
  "CMakeFiles/tbl_switch_vs_memory.dir/tbl_switch_vs_memory.cpp.o"
  "CMakeFiles/tbl_switch_vs_memory.dir/tbl_switch_vs_memory.cpp.o.d"
  "tbl_switch_vs_memory"
  "tbl_switch_vs_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_switch_vs_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
