# Empty dependencies file for mscclpp_obs.
# This may be replaced when dependencies are built.
