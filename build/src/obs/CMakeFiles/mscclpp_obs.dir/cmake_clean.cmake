file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_obs.dir/metrics.cpp.o"
  "CMakeFiles/mscclpp_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/mscclpp_obs.dir/obs.cpp.o"
  "CMakeFiles/mscclpp_obs.dir/obs.cpp.o.d"
  "CMakeFiles/mscclpp_obs.dir/trace.cpp.o"
  "CMakeFiles/mscclpp_obs.dir/trace.cpp.o.d"
  "libmscclpp_obs.a"
  "libmscclpp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
