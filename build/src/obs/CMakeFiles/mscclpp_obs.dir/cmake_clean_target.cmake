file(REMOVE_RECURSE
  "libmscclpp_obs.a"
)
