file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_dsl.dir/algorithms.cpp.o"
  "CMakeFiles/mscclpp_dsl.dir/algorithms.cpp.o.d"
  "CMakeFiles/mscclpp_dsl.dir/executor.cpp.o"
  "CMakeFiles/mscclpp_dsl.dir/executor.cpp.o.d"
  "CMakeFiles/mscclpp_dsl.dir/program.cpp.o"
  "CMakeFiles/mscclpp_dsl.dir/program.cpp.o.d"
  "CMakeFiles/mscclpp_dsl.dir/program_checks.cpp.o"
  "CMakeFiles/mscclpp_dsl.dir/program_checks.cpp.o.d"
  "libmscclpp_dsl.a"
  "libmscclpp_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
