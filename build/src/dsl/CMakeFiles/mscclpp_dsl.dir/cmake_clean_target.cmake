file(REMOVE_RECURSE
  "libmscclpp_dsl.a"
)
