# Empty dependencies file for mscclpp_dsl.
# This may be replaced when dependencies are built.
