file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_gpu.dir/compute.cpp.o"
  "CMakeFiles/mscclpp_gpu.dir/compute.cpp.o.d"
  "CMakeFiles/mscclpp_gpu.dir/kernel.cpp.o"
  "CMakeFiles/mscclpp_gpu.dir/kernel.cpp.o.d"
  "CMakeFiles/mscclpp_gpu.dir/machine.cpp.o"
  "CMakeFiles/mscclpp_gpu.dir/machine.cpp.o.d"
  "CMakeFiles/mscclpp_gpu.dir/types.cpp.o"
  "CMakeFiles/mscclpp_gpu.dir/types.cpp.o.d"
  "libmscclpp_gpu.a"
  "libmscclpp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
