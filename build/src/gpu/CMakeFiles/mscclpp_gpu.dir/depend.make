# Empty dependencies file for mscclpp_gpu.
# This may be replaced when dependencies are built.
