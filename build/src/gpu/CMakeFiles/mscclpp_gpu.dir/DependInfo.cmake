
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/compute.cpp" "src/gpu/CMakeFiles/mscclpp_gpu.dir/compute.cpp.o" "gcc" "src/gpu/CMakeFiles/mscclpp_gpu.dir/compute.cpp.o.d"
  "/root/repo/src/gpu/kernel.cpp" "src/gpu/CMakeFiles/mscclpp_gpu.dir/kernel.cpp.o" "gcc" "src/gpu/CMakeFiles/mscclpp_gpu.dir/kernel.cpp.o.d"
  "/root/repo/src/gpu/machine.cpp" "src/gpu/CMakeFiles/mscclpp_gpu.dir/machine.cpp.o" "gcc" "src/gpu/CMakeFiles/mscclpp_gpu.dir/machine.cpp.o.d"
  "/root/repo/src/gpu/types.cpp" "src/gpu/CMakeFiles/mscclpp_gpu.dir/types.cpp.o" "gcc" "src/gpu/CMakeFiles/mscclpp_gpu.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/mscclpp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mscclpp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mscclpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
