file(REMOVE_RECURSE
  "libmscclpp_gpu.a"
)
