file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/mscclpp_sim.dir/scheduler.cpp.o.d"
  "libmscclpp_sim.a"
  "libmscclpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
