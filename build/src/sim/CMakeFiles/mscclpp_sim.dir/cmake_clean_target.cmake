file(REMOVE_RECURSE
  "libmscclpp_sim.a"
)
