# Empty compiler generated dependencies file for mscclpp_sim.
# This may be replaced when dependencies are built.
