
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/env.cpp" "src/fabric/CMakeFiles/mscclpp_fabric.dir/env.cpp.o" "gcc" "src/fabric/CMakeFiles/mscclpp_fabric.dir/env.cpp.o.d"
  "/root/repo/src/fabric/env_overrides.cpp" "src/fabric/CMakeFiles/mscclpp_fabric.dir/env_overrides.cpp.o" "gcc" "src/fabric/CMakeFiles/mscclpp_fabric.dir/env_overrides.cpp.o.d"
  "/root/repo/src/fabric/link.cpp" "src/fabric/CMakeFiles/mscclpp_fabric.dir/link.cpp.o" "gcc" "src/fabric/CMakeFiles/mscclpp_fabric.dir/link.cpp.o.d"
  "/root/repo/src/fabric/topology.cpp" "src/fabric/CMakeFiles/mscclpp_fabric.dir/topology.cpp.o" "gcc" "src/fabric/CMakeFiles/mscclpp_fabric.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mscclpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mscclpp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
