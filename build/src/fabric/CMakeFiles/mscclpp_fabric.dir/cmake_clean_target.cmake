file(REMOVE_RECURSE
  "libmscclpp_fabric.a"
)
