# Empty compiler generated dependencies file for mscclpp_fabric.
# This may be replaced when dependencies are built.
