file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_fabric.dir/env.cpp.o"
  "CMakeFiles/mscclpp_fabric.dir/env.cpp.o.d"
  "CMakeFiles/mscclpp_fabric.dir/env_overrides.cpp.o"
  "CMakeFiles/mscclpp_fabric.dir/env_overrides.cpp.o.d"
  "CMakeFiles/mscclpp_fabric.dir/link.cpp.o"
  "CMakeFiles/mscclpp_fabric.dir/link.cpp.o.d"
  "CMakeFiles/mscclpp_fabric.dir/topology.cpp.o"
  "CMakeFiles/mscclpp_fabric.dir/topology.cpp.o.d"
  "libmscclpp_fabric.a"
  "libmscclpp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
