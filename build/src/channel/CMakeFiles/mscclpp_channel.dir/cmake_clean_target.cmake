file(REMOVE_RECURSE
  "libmscclpp_channel.a"
)
