file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_channel.dir/channel_mesh.cpp.o"
  "CMakeFiles/mscclpp_channel.dir/channel_mesh.cpp.o.d"
  "CMakeFiles/mscclpp_channel.dir/device_syncer.cpp.o"
  "CMakeFiles/mscclpp_channel.dir/device_syncer.cpp.o.d"
  "CMakeFiles/mscclpp_channel.dir/memory_channel.cpp.o"
  "CMakeFiles/mscclpp_channel.dir/memory_channel.cpp.o.d"
  "CMakeFiles/mscclpp_channel.dir/port_channel.cpp.o"
  "CMakeFiles/mscclpp_channel.dir/port_channel.cpp.o.d"
  "CMakeFiles/mscclpp_channel.dir/proxy_service.cpp.o"
  "CMakeFiles/mscclpp_channel.dir/proxy_service.cpp.o.d"
  "CMakeFiles/mscclpp_channel.dir/switch_channel.cpp.o"
  "CMakeFiles/mscclpp_channel.dir/switch_channel.cpp.o.d"
  "libmscclpp_channel.a"
  "libmscclpp_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
