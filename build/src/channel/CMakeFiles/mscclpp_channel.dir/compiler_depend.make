# Empty compiler generated dependencies file for mscclpp_channel.
# This may be replaced when dependencies are built.
