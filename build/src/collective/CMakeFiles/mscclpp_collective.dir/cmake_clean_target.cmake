file(REMOVE_RECURSE
  "libmscclpp_collective.a"
)
