# Empty dependencies file for mscclpp_collective.
# This may be replaced when dependencies are built.
