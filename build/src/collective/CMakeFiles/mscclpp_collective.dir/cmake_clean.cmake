file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_collective.dir/allreduce.cpp.o"
  "CMakeFiles/mscclpp_collective.dir/allreduce.cpp.o.d"
  "CMakeFiles/mscclpp_collective.dir/api.cpp.o"
  "CMakeFiles/mscclpp_collective.dir/api.cpp.o.d"
  "CMakeFiles/mscclpp_collective.dir/nccl_compat.cpp.o"
  "CMakeFiles/mscclpp_collective.dir/nccl_compat.cpp.o.d"
  "CMakeFiles/mscclpp_collective.dir/others.cpp.o"
  "CMakeFiles/mscclpp_collective.dir/others.cpp.o.d"
  "libmscclpp_collective.a"
  "libmscclpp_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
