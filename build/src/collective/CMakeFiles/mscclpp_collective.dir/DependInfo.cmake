
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/allreduce.cpp" "src/collective/CMakeFiles/mscclpp_collective.dir/allreduce.cpp.o" "gcc" "src/collective/CMakeFiles/mscclpp_collective.dir/allreduce.cpp.o.d"
  "/root/repo/src/collective/api.cpp" "src/collective/CMakeFiles/mscclpp_collective.dir/api.cpp.o" "gcc" "src/collective/CMakeFiles/mscclpp_collective.dir/api.cpp.o.d"
  "/root/repo/src/collective/nccl_compat.cpp" "src/collective/CMakeFiles/mscclpp_collective.dir/nccl_compat.cpp.o" "gcc" "src/collective/CMakeFiles/mscclpp_collective.dir/nccl_compat.cpp.o.d"
  "/root/repo/src/collective/others.cpp" "src/collective/CMakeFiles/mscclpp_collective.dir/others.cpp.o" "gcc" "src/collective/CMakeFiles/mscclpp_collective.dir/others.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/mscclpp_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mscclpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mscclpp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/mscclpp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mscclpp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mscclpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
