
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/mscclpp_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/mscclpp_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/communicator.cpp" "src/core/CMakeFiles/mscclpp_core.dir/communicator.cpp.o" "gcc" "src/core/CMakeFiles/mscclpp_core.dir/communicator.cpp.o.d"
  "/root/repo/src/core/connection.cpp" "src/core/CMakeFiles/mscclpp_core.dir/connection.cpp.o" "gcc" "src/core/CMakeFiles/mscclpp_core.dir/connection.cpp.o.d"
  "/root/repo/src/core/logging.cpp" "src/core/CMakeFiles/mscclpp_core.dir/logging.cpp.o" "gcc" "src/core/CMakeFiles/mscclpp_core.dir/logging.cpp.o.d"
  "/root/repo/src/core/registered_memory.cpp" "src/core/CMakeFiles/mscclpp_core.dir/registered_memory.cpp.o" "gcc" "src/core/CMakeFiles/mscclpp_core.dir/registered_memory.cpp.o.d"
  "/root/repo/src/core/semaphore.cpp" "src/core/CMakeFiles/mscclpp_core.dir/semaphore.cpp.o" "gcc" "src/core/CMakeFiles/mscclpp_core.dir/semaphore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/mscclpp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/mscclpp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mscclpp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mscclpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
