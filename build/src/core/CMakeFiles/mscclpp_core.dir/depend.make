# Empty dependencies file for mscclpp_core.
# This may be replaced when dependencies are built.
