file(REMOVE_RECURSE
  "libmscclpp_core.a"
)
