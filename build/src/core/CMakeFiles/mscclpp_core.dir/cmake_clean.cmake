file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_core.dir/bootstrap.cpp.o"
  "CMakeFiles/mscclpp_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/mscclpp_core.dir/communicator.cpp.o"
  "CMakeFiles/mscclpp_core.dir/communicator.cpp.o.d"
  "CMakeFiles/mscclpp_core.dir/connection.cpp.o"
  "CMakeFiles/mscclpp_core.dir/connection.cpp.o.d"
  "CMakeFiles/mscclpp_core.dir/logging.cpp.o"
  "CMakeFiles/mscclpp_core.dir/logging.cpp.o.d"
  "CMakeFiles/mscclpp_core.dir/registered_memory.cpp.o"
  "CMakeFiles/mscclpp_core.dir/registered_memory.cpp.o.d"
  "CMakeFiles/mscclpp_core.dir/semaphore.cpp.o"
  "CMakeFiles/mscclpp_core.dir/semaphore.cpp.o.d"
  "libmscclpp_core.a"
  "libmscclpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
