# Empty compiler generated dependencies file for mscclpp_inference.
# This may be replaced when dependencies are built.
