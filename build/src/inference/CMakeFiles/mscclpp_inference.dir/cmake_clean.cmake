file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_inference.dir/llm.cpp.o"
  "CMakeFiles/mscclpp_inference.dir/llm.cpp.o.d"
  "libmscclpp_inference.a"
  "libmscclpp_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
