file(REMOVE_RECURSE
  "libmscclpp_inference.a"
)
