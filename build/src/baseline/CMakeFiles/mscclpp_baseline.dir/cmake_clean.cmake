file(REMOVE_RECURSE
  "CMakeFiles/mscclpp_baseline.dir/msccl.cpp.o"
  "CMakeFiles/mscclpp_baseline.dir/msccl.cpp.o.d"
  "CMakeFiles/mscclpp_baseline.dir/nccl.cpp.o"
  "CMakeFiles/mscclpp_baseline.dir/nccl.cpp.o.d"
  "CMakeFiles/mscclpp_baseline.dir/two_sided.cpp.o"
  "CMakeFiles/mscclpp_baseline.dir/two_sided.cpp.o.d"
  "libmscclpp_baseline.a"
  "libmscclpp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscclpp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
