file(REMOVE_RECURSE
  "libmscclpp_baseline.a"
)
