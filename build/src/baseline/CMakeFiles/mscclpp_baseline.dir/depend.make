# Empty dependencies file for mscclpp_baseline.
# This may be replaced when dependencies are built.
