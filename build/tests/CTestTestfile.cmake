# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/inference_test[1]_include.cmake")
include("/root/repo/build/tests/compat_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
add_test(obs_bench_trace_smoke "/root/repo/build/bench/micro_primitives" "--benchmark_filter=BM_MemoryChannelPut/1024\$" "--benchmark_min_time=0.01" "--metrics" "/root/repo/build/tests/bench_metrics.json")
set_tests_properties(obs_bench_trace_smoke PROPERTIES  ENVIRONMENT "MSCCLPP_TRACE=1;MSCCLPP_TRACE_FILE=/root/repo/build/tests/bench_trace.json;MSCCLPP_METRICS_FILE=/root/repo/build/tests/bench_machine_metrics.json" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(obs_bench_json_parses "/root/repo/build/tests/obs_json_check" "/root/repo/build/tests/bench_trace.json" "/root/repo/build/tests/bench_metrics.json" "/root/repo/build/tests/bench_machine_metrics.json")
set_tests_properties(obs_bench_json_parses PROPERTIES  DEPENDS "obs_bench_trace_smoke" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
