# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/inference_test[1]_include.cmake")
include("/root/repo/build/tests/compat_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
