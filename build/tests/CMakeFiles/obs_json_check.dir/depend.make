# Empty dependencies file for obs_json_check.
# This may be replaced when dependencies are built.
