file(REMOVE_RECURSE
  "CMakeFiles/obs_json_check.dir/obs_json_check.cpp.o"
  "CMakeFiles/obs_json_check.dir/obs_json_check.cpp.o.d"
  "obs_json_check"
  "obs_json_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_json_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
