#include "collective/nccl_compat.hpp"

#include "channel/channel_mesh.hpp"
#include "collective/api.hpp"
#include "core/bootstrap.hpp"
#include "core/communicator.hpp"
#include "gpu/kernel.hpp"
#include "gpu/compute.hpp"

#include <cstring>
#include <map>
#include <deque>
#include <memory>
#include <vector>

namespace mscclpp::compat {

const char*
ncclGetErrorString(ncclResult_t result)
{
    switch (result) {
      case ncclSuccess:
        return "no error";
      case ncclInvalidArgument:
        return "invalid argument";
      case ncclInvalidUsage:
        return "invalid usage";
      case ncclInternalError:
        return "internal error";
    }
    return "unknown result code";
}

namespace {

gpu::DataType
toDataType(ncclDataType_t t)
{
    return t == ncclFloat16 ? gpu::DataType::F16 : gpu::DataType::F32;
}

gpu::ReduceOp
toReduceOp(ncclRedOp_t op)
{
    return op == ncclSum ? gpu::ReduceOp::Sum : gpu::ReduceOp::Max;
}

enum class OpKind
{
    AllReduce,
    AllGather,
    ReduceScatter,
    Broadcast,
};

/** One collective in flight: ranks join in call order. */
struct PendingOp
{
    OpKind kind;
    std::size_t count = 0;
    ncclDataType_t dtype = ncclFloat32;
    ncclRedOp_t op = ncclSum;
    int root = 0;
    std::vector<const void*> send;
    std::vector<void*> recv;
    std::vector<bool> joined;
    int numJoined = 0;
};

/** A posted (unmatched) point-to-point operation. */
struct PendingP2p
{
    std::size_t count = 0;
    ncclDataType_t dtype = ncclFloat32;
    const void* send = nullptr;
    void* recv = nullptr;
};

/** Shim state shared by all ranks of the bound machine. */
struct World
{
    gpu::Machine* machine = nullptr;
    std::size_t maxBytes = 0;
    std::unique_ptr<CollectiveComm> coll;
    std::deque<PendingOp> queue;
    sim::Time elapsed = 0;
    int nranks = 0;

    // Point-to-point infrastructure: dedicated staging buffers and an
    // all-pairs channel mesh (memory intra-node, port across nodes).
    std::vector<std::unique_ptr<Communicator>> p2pComms;
    std::vector<gpu::DeviceBuffer> p2pBufs;
    std::unique_ptr<ChannelMesh> p2pMem;
    std::unique_ptr<ChannelMesh> p2pPort;
    // (src, dst) -> queues of unmatched sends / recvs.
    std::map<std::pair<int, int>, std::deque<PendingP2p>> sends;
    std::map<std::pair<int, int>, std::deque<PendingP2p>> recvs;
};

World&
world()
{
    static World w;
    return w;
}

} // namespace

struct NcclCompatComm
{
    int rank = -1;
};

void
mscclppNcclBindMachine(gpu::Machine& machine, std::size_t maxBytes)
{
    mscclppNcclReset();
    World& w = world();
    w.machine = &machine;
    w.maxBytes = maxBytes;
    w.nranks = machine.numGpus();
    CollectiveComm::Options opt;
    opt.maxBytes = maxBytes;
    w.coll = std::make_unique<CollectiveComm>(machine, opt);
}

void
mscclppNcclReset()
{
    World& w = world();
    if (w.p2pMem) {
        w.p2pMem->shutdown();
    }
    if (w.p2pPort) {
        w.p2pPort->shutdown();
    }
    if (w.machine != nullptr) {
        w.machine->run();
    }
    w.p2pMem.reset();
    w.p2pPort.reset();
    w.p2pComms.clear();
    w.p2pBufs.clear();
    w.sends.clear();
    w.recvs.clear();
    w.coll.reset();
    w.machine = nullptr;
    w.queue.clear();
    w.elapsed = 0;
    w.nranks = 0;
}

ncclResult_t
ncclGetUniqueId(ncclUniqueId* uniqueId)
{
    if (uniqueId == nullptr) {
        return ncclInvalidArgument;
    }
    std::memset(uniqueId->internal, 0x5c, sizeof(uniqueId->internal));
    return ncclSuccess;
}

ncclResult_t
ncclCommInitRank(ncclComm_t* comm, int nranks, ncclUniqueId, int rank)
{
    World& w = world();
    if (comm == nullptr || rank < 0 || rank >= nranks) {
        return ncclInvalidArgument;
    }
    if (w.machine == nullptr) {
        return ncclInvalidUsage; // mscclppNcclBindMachine() first
    }
    if (nranks != w.nranks) {
        return ncclInvalidUsage;
    }
    auto* c = new NcclCompatComm;
    c->rank = rank;
    *comm = c;
    return ncclSuccess;
}

ncclResult_t
ncclCommDestroy(ncclComm_t comm)
{
    delete comm;
    return ncclSuccess;
}

ncclResult_t
ncclCommCount(const ncclComm_t comm, int* count)
{
    if (comm == nullptr || count == nullptr) {
        return ncclInvalidArgument;
    }
    *count = world().nranks;
    return ncclSuccess;
}

ncclResult_t
ncclCommUserRank(const ncclComm_t comm, int* rank)
{
    if (comm == nullptr || rank == nullptr) {
        return ncclInvalidArgument;
    }
    *rank = comm->rank;
    return ncclSuccess;
}

namespace {

/** Execute @p op once every rank has joined it. */
ncclResult_t
execute(PendingOp& op)
{
    World& w = world();
    CollectiveComm& coll = *w.coll;
    const std::size_t elem = gpu::sizeOf(toDataType(op.dtype));
    const std::size_t n = static_cast<std::size_t>(w.nranks);
    const bool functional =
        w.machine->dataMode() == gpu::DataMode::Functional;

    auto stageIn = [&](int r, const void* src, std::size_t off,
                       std::size_t bytes) {
        gpu::DeviceBuffer buf = coll.dataBuffer(r);
        if (functional && src != nullptr && buf.data() != nullptr) {
            std::memcpy(buf.data() + off, src, bytes);
        }
    };
    auto stageOut = [&](int r, void* dst, std::size_t off,
                        std::size_t bytes) {
        gpu::DeviceBuffer buf = coll.dataBuffer(r);
        if (functional && dst != nullptr && buf.data() != nullptr) {
            std::memcpy(dst, buf.data() + off, bytes);
        }
    };

    switch (op.kind) {
      case OpKind::AllReduce: {
        std::size_t bytes = op.count * elem;
        for (int r = 0; r < w.nranks; ++r) {
            stageIn(r, op.send[r], 0, bytes);
        }
        w.elapsed += coll.allReduce(bytes, toDataType(op.dtype),
                                    toReduceOp(op.op));
        for (int r = 0; r < w.nranks; ++r) {
            stageOut(r, op.recv[r], 0, bytes);
        }
        break;
      }
      case OpKind::AllGather: {
        std::size_t shard = op.count * elem;
        for (int r = 0; r < w.nranks; ++r) {
            stageIn(r, op.send[r], r * shard, shard);
        }
        w.elapsed += coll.allGather(shard);
        for (int r = 0; r < w.nranks; ++r) {
            stageOut(r, op.recv[r], 0, shard * n);
        }
        break;
      }
      case OpKind::ReduceScatter: {
        std::size_t shard = op.count * elem;
        for (int r = 0; r < w.nranks; ++r) {
            stageIn(r, op.send[r], 0, shard * n);
        }
        w.elapsed += coll.reduceScatter(shard * n, toDataType(op.dtype),
                                        toReduceOp(op.op));
        for (int r = 0; r < w.nranks; ++r) {
            stageOut(r, op.recv[r], r * shard, shard);
        }
        break;
      }
      case OpKind::Broadcast: {
        std::size_t bytes = op.count * elem;
        stageIn(op.root, op.send[op.root], 0, bytes);
        w.elapsed += coll.broadcast(bytes, op.root);
        for (int r = 0; r < w.nranks; ++r) {
            stageOut(r, op.recv[r], 0, bytes);
        }
        break;
      }
    }
    return ncclSuccess;
}

/**
 * Join this rank into the next un-joined op it has not joined yet;
 * ops must be enqueued in the same order on every rank (the NCCL
 * contract). Runs the op when it becomes fully joined.
 */
ncclResult_t
enqueue(ncclComm_t comm, OpKind kind, const void* sendbuff, void* recvbuff,
        std::size_t count, ncclDataType_t dtype, ncclRedOp_t op, int root)
{
    World& w = world();
    if (comm == nullptr || w.coll == nullptr) {
        return ncclInvalidUsage;
    }
    if (count == 0 || recvbuff == nullptr) {
        return ncclInvalidArgument;
    }
    const int rank = comm->rank;

    // Find this rank's next op slot.
    PendingOp* slot = nullptr;
    for (PendingOp& p : w.queue) {
        if (!p.joined[rank]) {
            slot = &p;
            break;
        }
    }
    if (slot == nullptr) {
        PendingOp p;
        p.kind = kind;
        p.count = count;
        p.dtype = dtype;
        p.op = op;
        p.root = root;
        p.send.assign(w.nranks, nullptr);
        p.recv.assign(w.nranks, nullptr);
        p.joined.assign(w.nranks, false);
        w.queue.push_back(std::move(p));
        slot = &w.queue.back();
    } else if (slot->kind != kind || slot->count != count ||
               slot->dtype != dtype || slot->op != op ||
               slot->root != root) {
        return ncclInvalidUsage; // mismatched collective across ranks
    }
    slot->send[rank] = sendbuff;
    slot->recv[rank] = recvbuff;
    slot->joined[rank] = true;
    ++slot->numJoined;

    // Execute fully-joined ops in order from the front.
    while (!w.queue.empty() && w.queue.front().numJoined == w.nranks) {
        ncclResult_t res = execute(w.queue.front());
        w.queue.pop_front();
        if (res != ncclSuccess) {
            return res;
        }
    }
    return ncclSuccess;
}

} // namespace

ncclResult_t
ncclAllReduce(const void* sendbuff, void* recvbuff, std::size_t count,
              ncclDataType_t datatype, ncclRedOp_t op, ncclComm_t comm,
              mscclppStream_t)
{
    return enqueue(comm, OpKind::AllReduce, sendbuff, recvbuff, count,
                   datatype, op, 0);
}

ncclResult_t
ncclAllGather(const void* sendbuff, void* recvbuff, std::size_t sendcount,
              ncclDataType_t datatype, ncclComm_t comm, mscclppStream_t)
{
    return enqueue(comm, OpKind::AllGather, sendbuff, recvbuff, sendcount,
                   datatype, ncclSum, 0);
}

ncclResult_t
ncclReduceScatter(const void* sendbuff, void* recvbuff,
                  std::size_t recvcount, ncclDataType_t datatype,
                  ncclRedOp_t op, ncclComm_t comm, mscclppStream_t)
{
    return enqueue(comm, OpKind::ReduceScatter, sendbuff, recvbuff,
                   recvcount, datatype, op, 0);
}

ncclResult_t
ncclBroadcast(const void* sendbuff, void* recvbuff, std::size_t count,
              ncclDataType_t datatype, int root, ncclComm_t comm,
              mscclppStream_t)
{
    if (root < 0 || root >= world().nranks) {
        return ncclInvalidArgument;
    }
    return enqueue(comm, OpKind::Broadcast, sendbuff, recvbuff, count,
                   datatype, ncclSum, root);
}

namespace {

/** Build the p2p mesh lazily on the first send/recv. */
void
ensureP2p()
{
    World& w = world();
    if (w.p2pMem || w.machine == nullptr) {
        return;
    }
    auto boots = createInProcessBootstrap(w.nranks);
    std::vector<Communicator*> cp;
    for (int r = 0; r < w.nranks; ++r) {
        w.p2pComms.push_back(
            std::make_unique<Communicator>(boots[r], *w.machine));
        w.p2pBufs.push_back(w.machine->gpu(r).alloc(w.maxBytes));
        cp.push_back(w.p2pComms.back().get());
    }
    const int gpn = w.machine->config().gpusPerNode;
    MeshOptions mem{Transport::Memory, Protocol::HB, false, false};
    if (w.machine->numNodes() == 1) {
        w.p2pMem = std::make_unique<ChannelMesh>(
            ChannelMesh::build(cp, w.p2pBufs, w.p2pBufs, mem));
    } else {
        w.p2pMem = std::make_unique<ChannelMesh>(ChannelMesh::buildIntraNode(
            cp, w.p2pBufs, w.p2pBufs, mem, gpn));
    }
    MeshOptions port{Transport::Port, Protocol::HB, false, false};
    w.p2pPort = std::make_unique<ChannelMesh>(
        ChannelMesh::build(cp, w.p2pBufs, w.p2pBufs, port));
}

/** Run one matched send/recv pair through the channels. */
ncclResult_t
executeP2p(int src, int dst, const PendingP2p& s, const PendingP2p& r)
{
    World& w = world();
    std::size_t bytes = s.count * gpu::sizeOf(toDataType(s.dtype));
    const bool functional =
        w.machine->dataMode() == gpu::DataMode::Functional;
    if (functional && s.send != nullptr &&
        w.p2pBufs[src].data() != nullptr) {
        std::memcpy(w.p2pBufs[src].data(), s.send, bytes);
    }
    const bool sameNode = w.machine->fabric().sameNode(src, dst);
    sim::Scheduler& sched = w.machine->scheduler();
    sim::Time t0 = sched.now();
    auto fn = [&](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == src) {
            if (sameNode) {
                co_await w.p2pMem->mem(src, dst).putWithSignal(ctx, 0, 0,
                                                               bytes);
            } else {
                co_await w.p2pPort->port(src, dst).putWithSignal(
                    ctx, 0, 0, bytes);
            }
        } else if (rank == dst) {
            if (sameNode) {
                co_await w.p2pMem->mem(dst, src).wait(ctx);
            } else {
                co_await w.p2pPort->port(dst, src).wait(ctx);
            }
        }
    };
    w.elapsed += gpu::runOnAllRanks(*w.machine, gpu::LaunchConfig{}, fn);
    (void)t0;
    if (functional && r.recv != nullptr &&
        w.p2pBufs[dst].data() != nullptr) {
        std::memcpy(r.recv, w.p2pBufs[dst].data(), bytes);
    }
    return ncclSuccess;
}

ncclResult_t
tryMatch(int src, int dst)
{
    World& w = world();
    auto key = std::make_pair(src, dst);
    while (!w.sends[key].empty() && !w.recvs[key].empty()) {
        PendingP2p s = w.sends[key].front();
        PendingP2p r = w.recvs[key].front();
        if (s.count != r.count || s.dtype != r.dtype) {
            return ncclInvalidUsage;
        }
        w.sends[key].pop_front();
        w.recvs[key].pop_front();
        ncclResult_t res = executeP2p(src, dst, s, r);
        if (res != ncclSuccess) {
            return res;
        }
    }
    return ncclSuccess;
}

} // namespace

ncclResult_t
ncclSend(const void* sendbuff, std::size_t count, ncclDataType_t datatype,
         int peer, ncclComm_t comm, mscclppStream_t)
{
    World& w = world();
    if (comm == nullptr || w.machine == nullptr) {
        return ncclInvalidUsage;
    }
    if (count == 0 || peer < 0 || peer >= w.nranks ||
        peer == comm->rank ||
        count * gpu::sizeOf(toDataType(datatype)) > w.maxBytes) {
        return ncclInvalidArgument;
    }
    ensureP2p();
    PendingP2p p;
    p.count = count;
    p.dtype = datatype;
    p.send = sendbuff;
    w.sends[{comm->rank, peer}].push_back(p);
    return tryMatch(comm->rank, peer);
}

ncclResult_t
ncclRecv(void* recvbuff, std::size_t count, ncclDataType_t datatype,
         int peer, ncclComm_t comm, mscclppStream_t)
{
    World& w = world();
    if (comm == nullptr || w.machine == nullptr) {
        return ncclInvalidUsage;
    }
    if (count == 0 || recvbuff == nullptr || peer < 0 ||
        peer >= w.nranks || peer == comm->rank ||
        count * gpu::sizeOf(toDataType(datatype)) > w.maxBytes) {
        return ncclInvalidArgument;
    }
    ensureP2p();
    PendingP2p p;
    p.count = count;
    p.dtype = datatype;
    p.recv = recvbuff;
    w.recvs[{peer, comm->rank}].push_back(p);
    return tryMatch(peer, comm->rank);
}

ncclResult_t
ncclGroupStart()
{
    return ncclSuccess;
}

ncclResult_t
ncclGroupEnd()
{
    return ncclSuccess;
}

ncclResult_t
mscclppNcclStreamSynchronize(ncclComm_t comm, mscclppStream_t)
{
    if (comm == nullptr) {
        return ncclInvalidArgument;
    }
    // Collectives run at the last rank's enqueue; a rank with a
    // pending (un-run) op has not mismatched anything yet, and NCCL
    // would also block here until peers join. In the simulation every
    // rank eventually enqueues from the same thread, so pending ops
    // simply mean "peers haven't joined yet".
    return ncclSuccess;
}

sim::Time
mscclppNcclElapsed(ncclComm_t)
{
    return world().elapsed;
}

} // namespace mscclpp::compat
