#ifndef MSCCLPP_COLLECTIVE_NCCL_COMPAT_HPP
#define MSCCLPP_COLLECTIVE_NCCL_COMPAT_HPP

#include "gpu/machine.hpp"
#include "sim/time.hpp"

#include <cstddef>

/**
 * @file
 * The MSCCL++ Collective API as a drop-in NCCL replacement (Section
 * 3.1): the same C-style entry points as nccl.h, implemented over the
 * MSCCL++ channels — applications written against NCCL adopt it
 * without changing code.
 *
 * Simulation note: the one addition is mscclppNcclBindMachine(),
 * which tells the shim which simulated machine hosts the GPUs (the
 * real library discovers devices via CUDA). Collective calls are
 * asynchronous like NCCL's: each rank enqueues, the operation runs
 * once all ranks have joined, and mscclppNcclStreamSynchronize()
 * blocks until the rank's work is complete.
 */

namespace mscclpp::compat {

using ncclResult_t = int;
inline constexpr ncclResult_t ncclSuccess = 0;
inline constexpr ncclResult_t ncclInvalidArgument = 1;
inline constexpr ncclResult_t ncclInvalidUsage = 2;
inline constexpr ncclResult_t ncclInternalError = 3;

const char* ncclGetErrorString(ncclResult_t result);

enum ncclDataType_t
{
    ncclFloat16 = 0,
    ncclFloat32 = 1,
};

enum ncclRedOp_t
{
    ncclSum = 0,
    ncclMax = 1,
};

struct ncclUniqueId
{
    char internal[128];
};

/** Opaque communicator handle, one per rank (like NCCL's). */
typedef struct NcclCompatComm* ncclComm_t;

/** Opaque stream handle; 0 is the default stream. */
using mscclppStream_t = unsigned;

/** Bind the shim to a simulated machine (call once, before init). */
void mscclppNcclBindMachine(gpu::Machine& machine,
                            std::size_t maxBytes = 64 << 20);

/** Unbind and destroy all shim state (test teardown). */
void mscclppNcclReset();

// ---- the NCCL API surface ---------------------------------------------

ncclResult_t ncclGetUniqueId(ncclUniqueId* uniqueId);

ncclResult_t ncclCommInitRank(ncclComm_t* comm, int nranks,
                              ncclUniqueId commId, int rank);

ncclResult_t ncclCommDestroy(ncclComm_t comm);

ncclResult_t ncclCommCount(const ncclComm_t comm, int* count);

ncclResult_t ncclCommUserRank(const ncclComm_t comm, int* rank);

/**
 * In-place or out-of-place AllReduce over @p count elements.
 * @p sendbuff/@p recvbuff are host pointers in the simulation (the
 * analogue of device pointers); pass the same pointer for in place.
 */
ncclResult_t ncclAllReduce(const void* sendbuff, void* recvbuff,
                           std::size_t count, ncclDataType_t datatype,
                           ncclRedOp_t op, ncclComm_t comm,
                           mscclppStream_t stream);

ncclResult_t ncclAllGather(const void* sendbuff, void* recvbuff,
                           std::size_t sendcount, ncclDataType_t datatype,
                           ncclComm_t comm, mscclppStream_t stream);

ncclResult_t ncclReduceScatter(const void* sendbuff, void* recvbuff,
                               std::size_t recvcount,
                               ncclDataType_t datatype, ncclRedOp_t op,
                               ncclComm_t comm, mscclppStream_t stream);

ncclResult_t ncclBroadcast(const void* sendbuff, void* recvbuff,
                           std::size_t count, ncclDataType_t datatype,
                           int root, ncclComm_t comm,
                           mscclppStream_t stream);

/**
 * Point-to-point send: pairs with the peer's ncclRecv of the same
 * count/type. Like NCCL, sends and receives may be grouped; the
 * transfer runs once both sides have posted.
 */
ncclResult_t ncclSend(const void* sendbuff, std::size_t count,
                      ncclDataType_t datatype, int peer, ncclComm_t comm,
                      mscclppStream_t stream);

/** Point-to-point receive pairing with the peer's ncclSend. */
ncclResult_t ncclRecv(void* recvbuff, std::size_t count,
                      ncclDataType_t datatype, int peer, ncclComm_t comm,
                      mscclppStream_t stream);

/** Group markers (accepted for NCCL compatibility; the shim already
 *  matches sends and receives lazily, so these are no-ops). */
ncclResult_t ncclGroupStart();
ncclResult_t ncclGroupEnd();

/** Block until all of this rank's enqueued collectives completed. */
ncclResult_t mscclppNcclStreamSynchronize(ncclComm_t comm,
                                          mscclppStream_t stream);

/** Simulated time spent in collectives on this communicator. */
sim::Time mscclppNcclElapsed(ncclComm_t comm);

} // namespace mscclpp::compat

#endif // MSCCLPP_COLLECTIVE_NCCL_COMPAT_HPP
