#ifndef MSCCLPP_COLLECTIVE_PROFILE_HPP
#define MSCCLPP_COLLECTIVE_PROFILE_HPP

#include "collective/api.hpp"
#include "tuner/profiler.hpp"

#include <optional>
#include <string>
#include <vector>

namespace mscclpp {

/**
 * The collective side of the tuner (Section 4.4 meets the NCCL tuner
 * model): the tuner library sits below this one and cannot run
 * collectives, so this driver builds a throwaway simulated machine
 * for the environment, sweeps every candidate algorithm over the
 * profiler's size grid in virtual time, and hands back the measured
 * crossover table. CollectiveComm injects it as the Tuner's profile
 * hook; benches and tests call it directly.
 */

/** Inverse of toString(AllReduceAlgo); nullopt for unknown names. */
std::optional<AllReduceAlgo> allReduceAlgoFromString(
    const std::string& name);

/** Inverse of toString(AllGatherAlgo); nullopt for unknown names. */
std::optional<AllGatherAlgo> allGatherAlgoFromString(
    const std::string& name);

/**
 * Candidate algorithms worth profiling on @p cfg with @p nNodes
 * nodes. @p withPort/@p withSwitch mirror the consuming
 * communicator's channel inventory so the table never recommends an
 * algorithm the communicator cannot launch.
 */
std::vector<tuner::Candidate> tunerCandidates(
    const fabric::EnvConfig& cfg, int nNodes, bool withPort = true,
    bool withSwitch = true);

/**
 * Profile @p cfg with @p nNodes nodes: every candidate algorithm at
 * every grid size, measured on a fresh Timed-mode machine whose
 * observability is silenced (the main machine's trace stays clean).
 * AllGather grid sizes are per rank and capped at maxBytes / nRanks.
 * @p metrics (nullable) receives the tuner.profile_points counter.
 */
tuner::TuningTable profileEnvironment(
    const fabric::EnvConfig& cfg, int nNodes,
    const tuner::ProfileOptions& opt = {},
    obs::MetricsRegistry* metrics = nullptr, bool withPort = true,
    bool withSwitch = true);

} // namespace mscclpp

#endif // MSCCLPP_COLLECTIVE_PROFILE_HPP
