#include "collective/api.hpp"

#include "collective/kernels.hpp"
#include "collective/profile.hpp"
#include "core/errors.hpp"
#include "gpu/compute.hpp"
#include "obs/critpath.hpp"

#include <algorithm>

namespace mscclpp {

/**
 * Run one collective and record it: a host-side Collective span plus
 * the collective.count/bytes counters and a latency summary. The span
 * covers the virtual time the scheduler actually advanced; with
 * MSCCLPP_CRITPATH=1 the happens-before analyzer then attributes that
 * window (plus the host-sync tail that completes @p elapsed) across
 * path categories.
 */
template <typename Fn>
sim::Time
CollectiveComm::record(const std::string& name, std::size_t bytes,
                       Fn&& body)
{
    obs::ObsContext& obs = machine_->obs();
    sim::Time t0 = machine_->scheduler().now();
    // Waits registered while the body runs inherit the collective's
    // name, so a hang report can say which collective stalled.
    obs.watchdog().pushOp(name);
    sim::Time elapsed = body();
    obs.watchdog().popOp();
    if (obs.metrics().enabled()) {
        obs.metrics().counter("collective.count").add(1);
        obs.metrics().counter("collective.bytes").add(bytes);
        obs.metrics()
            .summary("collective.latency_ns")
            .add(sim::toNs(elapsed));
    }
    if (obs.timeseries().enabled()) {
        // Per-interval launch and byte rates, the continuous view of
        // the counters above.
        sim::Time at = machine_->scheduler().now();
        obs.timeseries().accumulate("collective.count", at, 1.0);
        obs.timeseries().accumulate("collective.bytes", at,
                                    static_cast<double>(bytes));
    }
    if (obs.tracer().enabled()) {
        // The serving layer parks the ids of the requests it is
        // stepping in the tracer; stamping them here ties each
        // collective to the requests that rode it (request-scoped
        // tracing, DESIGN.md Section 13).
        obs.tracer().span(obs::Category::Collective, name, obs::kHostPid,
                          "collectives", t0, machine_->scheduler().now(),
                          bytes, -1, obs.tracer().requestContext());
    }
    if (machine_->config().critpathEnabled) {
        sim::Time window = machine_->scheduler().now() - t0;
        analyzeLastCollective(elapsed > window ? elapsed - window : 0);
    }
    return elapsed;
}

void
CollectiveComm::analyzeLastCollective(sim::Time hostTail)
{
    obs::ObsContext& obs = machine_->obs();
    obs::CritPathAnalyzer analyzer(obs.tracer().snapshot(),
                                   obs.tracer().edgesSnapshot());
    std::optional<obs::CriticalPathReport> rep =
        analyzer.analyzeLast(hostTail);
    if (!rep) {
        return;
    }
    lastCritPath_ =
        std::make_unique<obs::CriticalPathReport>(std::move(*rep));
    if (obs.metrics().enabled()) {
        for (const auto& [cat, t] : lastCritPath_->byCategory) {
            obs.metrics()
                .summary(std::string("critpath.") + obs::toString(cat) +
                         "_ns")
                .add(sim::toNs(t));
        }
    }
}

const obs::CriticalPathReport*
CollectiveComm::lastCriticalPath() const
{
    return lastCritPath_.get();
}

const char*
toString(AllReduceAlgo a)
{
    switch (a) {
      case AllReduceAlgo::Auto:
        return "auto";
      case AllReduceAlgo::AllPairs1P:
        return "1PA-LL";
      case AllReduceAlgo::AllPairs2PLL:
        return "2PA-LL";
      case AllReduceAlgo::AllPairs2PHB:
        return "2PA-HB";
      case AllReduceAlgo::AllPairs2PPort:
        return "2PA-Port";
      case AllReduceAlgo::Switch2P:
        return "2PA-Switch";
      case AllReduceAlgo::Hier2PLL:
        return "2PH-LL";
      case AllReduceAlgo::Hier2PHB:
        return "2PH-HB";
    }
    return "?";
}

const char*
toString(AllGatherAlgo a)
{
    switch (a) {
      case AllGatherAlgo::Auto:
        return "auto";
      case AllGatherAlgo::AllPairsLL:
        return "AP-LL";
      case AllGatherAlgo::AllPairsHB:
        return "AP-HB";
      case AllGatherAlgo::AllPairsPort:
        return "AP-Port";
      case AllGatherAlgo::Hier:
        return "Hier";
    }
    return "?";
}

CollectiveComm::CollectiveComm(gpu::Machine& machine, Options options)
    : machine_(&machine), options_(options)
{
    n_ = machine.numGpus();
    gpn_ = machine.config().gpusPerNode;
    nodes_ = machine.numNodes();
    if (n_ < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "collectives need at least two GPUs");
    }

    auto boots = createInProcessBootstrap(n_);
    std::size_t scratchBytes =
        std::max<std::size_t>(4 * options_.maxBytes,
                              2 * static_cast<std::size_t>(n_) * 65536);
    for (int r = 0; r < n_; ++r) {
        comms_.push_back(std::make_unique<Communicator>(boots[r], machine));
        data_.push_back(machine.gpu(r).alloc(options_.maxBytes));
        scratch_.push_back(machine.gpu(r).alloc(scratchBytes));
    }

    std::vector<Communicator*> comms;
    for (auto& c : comms_) {
        comms.push_back(c.get());
    }

    bool intraOnly = nodes_ == 1;
    MeshOptions ll{Transport::Memory, Protocol::LL};
    MeshOptions hb{Transport::Memory, Protocol::HB};
    MeshOptions port{Transport::Port, Protocol::HB};
    if (intraOnly) {
        memLL_.emplace(ChannelMesh::build(comms, data_, scratch_, ll));
        memHB_.emplace(ChannelMesh::build(comms, data_, scratch_, hb));
        memHBDirect_.emplace(ChannelMesh::build(comms, data_, data_, hb));
    } else {
        // Memory channels only exist within a node; build per-node
        // sub-meshes by letting the mesh builder skip cross-node pairs
        // via the node-local variant below.
        memLL_.emplace(ChannelMesh::buildIntraNode(comms, data_, scratch_,
                                                   ll, gpn_));
        memHB_.emplace(ChannelMesh::buildIntraNode(comms, data_, scratch_,
                                                   hb, gpn_));
        memHBDirect_.emplace(
            ChannelMesh::buildIntraNode(comms, data_, data_, hb, gpn_));
    }
    if (options_.buildPort) {
        port_.emplace(ChannelMesh::build(comms, data_, data_, port));
        portScratch_.emplace(ChannelMesh::build(comms, data_, scratch_,
                                                port));
    }
    if (options_.buildSwitch && machine.config().hasMultimem &&
        intraOnly) {
        std::vector<int> ranks(n_);
        std::vector<RegisteredMemory> mems;
        for (int r = 0; r < n_; ++r) {
            ranks[r] = r;
            mems.push_back(comms_[r]->registerMemory(data_[r]));
        }
        for (int r = 0; r < n_; ++r) {
            switch_.push_back(std::make_unique<SwitchChannel>(
                machine, ranks, mems, r));
        }
    }
    std::vector<int> allRanks(n_);
    for (int r = 0; r < n_; ++r) {
        allRanks[r] = r;
    }
    syncer_ = std::make_unique<DeviceSyncer>(machine, allRanks);

    // Tuner + plan cache (src/tuner). Communicator options beat the
    // machine's MSCCLPP_TUNER / MSCCLPP_TUNER_CACHE settings; the
    // default static mode constructs an inert tuner (no file I/O, no
    // profiling) so today's behaviour is untouched.
    const std::string modeStr =
        options_.tunerMode.value_or(machine.config().tunerMode);
    std::optional<tuner::TunerMode> mode = tuner::parseTunerMode(modeStr);
    if (!mode) {
        throw Error(ErrorCode::InvalidUsage,
                    "unknown tuner mode '" + modeStr +
                        "' (use static/profile/file)");
    }
    tuner::Tuner::Hooks hooks;
    hooks.profile = [this] {
        // Profiling runs on a private machine in virtual time; only
        // the metrics counters land in this machine's registry.
        return profileEnvironment(machine_->config(), nodes_, {},
                                  &machine_->obs().metrics(),
                                  options_.buildPort, !switch_.empty());
    };
    tuner_ = std::make_unique<tuner::Tuner>(
        *mode, machine.config(), n_, nodes_,
        options_.tunerCacheFile.value_or(machine.config().tunerCacheFile),
        &machine.obs().metrics(), std::move(hooks));
    planCache_ = std::make_unique<tuner::PlanCache>(
        options_.planCacheCapacity, &machine.obs().metrics());
}

CollectiveComm::~CollectiveComm()
{
    shutdown();
    // Drain the Stop requests so proxy coroutines exit cleanly.
    machine_->run();
}

void
CollectiveComm::shutdown()
{
    if (port_) {
        port_->shutdown();
    }
    if (portScratch_) {
        portScratch_->shutdown();
    }
}

gpu::DeviceBuffer
CollectiveComm::dataBuffer(int rank) const
{
    return data_.at(rank);
}

gpu::DeviceBuffer
CollectiveComm::scratchSlot(int rank, int sender, std::size_t slot,
                            std::uint64_t region) const
{
    std::size_t off = (region * n_ + sender) * slot;
    return scratch_.at(rank).view(off, slot);
}

sim::Time
CollectiveComm::runOnAllRanks(int blocks, const RankFn& fn)
{
    sim::Scheduler& sched = machine_->scheduler();
    sim::Time t0 = sched.now();
    gpu::LaunchConfig cfg;
    cfg.blocks = blocks;
    cfg.threadsPerBlock = options_.threadsPerBlock;
    for (int r = 0; r < n_; ++r) {
        sim::detach(sched, gpu::launchKernel(
                               machine_->gpu(r), cfg,
                               [&fn, r](gpu::BlockCtx& ctx) {
                                   return fn(ctx, r);
                               }));
    }
    machine_->run();
    return sched.now() - t0 + machine_->config().hostSyncOverhead;
}

AllReduceAlgo
CollectiveComm::chooseAllReduce(std::size_t bytes) const
{
    if (tuner_->active()) {
        std::optional<std::string> name =
            tuner_->choose(tuner::Collective::AllReduce, bytes);
        if (name) {
            std::optional<AllReduceAlgo> algo =
                allReduceAlgoFromString(*name);
            // Guard against tables profiled with channels this
            // communicator did not build (e.g. a shared cache file).
            if (algo &&
                !(*algo == AllReduceAlgo::AllPairs2PPort && !port_) &&
                !(*algo == AllReduceAlgo::Switch2P && switch_.empty())) {
                return *algo;
            }
        }
    }
    return chooseAllReduceStatic(bytes);
}

AllReduceAlgo
CollectiveComm::chooseAllReduceStatic(std::size_t bytes) const
{
    const fabric::EnvConfig& cfg = machine_->config();
    if (nodes_ > 1) {
        // Hierarchical algorithms for multi-node (Section 4.4 #3).
        return bytes <= (1 << 20) ? AllReduceAlgo::Hier2PLL
                                  : AllReduceAlgo::Hier2PHB;
    }
    if (bytes <= (16 << 10)) {
        return AllReduceAlgo::AllPairs1P;
    }
    if (bytes < (1 << 20)) {
        return AllReduceAlgo::AllPairs2PLL;
    }
    if (cfg.hasMultimem && !switch_.empty()) {
        return AllReduceAlgo::Switch2P;
    }
    if (bytes >= (512 << 20) && port_) {
        // PortChannel DMA copy sustains more bandwidth than thread
        // copy for very large single-node messages (Section 5.1).
        return AllReduceAlgo::AllPairs2PPort;
    }
    return AllReduceAlgo::AllPairs2PHB;
}

AllGatherAlgo
CollectiveComm::chooseAllGather(std::size_t bytesPerRank) const
{
    if (tuner_->active()) {
        std::optional<std::string> name =
            tuner_->choose(tuner::Collective::AllGather, bytesPerRank);
        if (name) {
            std::optional<AllGatherAlgo> algo =
                allGatherAlgoFromString(*name);
            if (algo &&
                !(*algo == AllGatherAlgo::AllPairsPort && !port_)) {
                return *algo;
            }
        }
    }
    return chooseAllGatherStatic(bytesPerRank);
}

AllGatherAlgo
CollectiveComm::chooseAllGatherStatic(std::size_t bytesPerRank) const
{
    if (nodes_ > 1) {
        return AllGatherAlgo::Hier;
    }
    if (bytesPerRank <= (32 << 10)) {
        return AllGatherAlgo::AllPairsLL;
    }
    if (bytesPerRank * static_cast<std::size_t>(n_) >= (512 << 20) &&
        port_) {
        return AllGatherAlgo::AllPairsPort;
    }
    return AllGatherAlgo::AllPairsHB;
}

AllReduceAlgo
CollectiveComm::resolveAllReduce(std::size_t bytes, gpu::DataType type,
                                gpu::ReduceOp op)
{
    tuner::PlanKey key;
    key.collective = static_cast<int>(tuner::Collective::AllReduce);
    key.bytes = bytes;
    key.dtype = static_cast<int>(type);
    key.op = static_cast<int>(op);
    if (const tuner::Plan* plan = planCache_->find(key)) {
        return static_cast<AllReduceAlgo>(plan->algoId);
    }
    AllReduceAlgo algo = chooseAllReduce(bytes);
    tuner::Plan plan;
    plan.algoId = static_cast<int>(algo);
    plan.algoName = toString(algo);
    plan.blocks = options_.blocks > 0 ? options_.blocks : n_ - 1;
    plan.chunkBytes = bytes / static_cast<std::size_t>(n_);
    planCache_->insert(key, std::move(plan));
    return algo;
}

AllGatherAlgo
CollectiveComm::resolveAllGather(std::size_t bytesPerRank)
{
    tuner::PlanKey key;
    key.collective = static_cast<int>(tuner::Collective::AllGather);
    key.bytes = bytesPerRank;
    if (const tuner::Plan* plan = planCache_->find(key)) {
        return static_cast<AllGatherAlgo>(plan->algoId);
    }
    AllGatherAlgo algo = chooseAllGather(bytesPerRank);
    tuner::Plan plan;
    plan.algoId = static_cast<int>(algo);
    plan.algoName = toString(algo);
    plan.blocks = options_.blocks > 0 ? options_.blocks : n_ - 1;
    plan.chunkBytes = bytesPerRank;
    planCache_->insert(key, std::move(plan));
    return algo;
}

sim::Time
CollectiveComm::allReduce(std::size_t bytes, gpu::DataType type,
                          gpu::ReduceOp op, AllReduceAlgo algo)
{
    if (bytes == 0 || bytes > options_.maxBytes) {
        throw Error(ErrorCode::InvalidUsage, "allReduce size out of range");
    }
    if (algo == AllReduceAlgo::Auto) {
        // The memoized plan skips selector + tuner lookup on the
        // decode-loop hot path (same shape thousands of times).
        algo = resolveAllReduce(bytes, type, op);
    }
    return record(
        std::string("allreduce ") + toString(algo), bytes,
        [&] { return CollKernels::allReduce(*this, bytes, type, op, algo); });
}

sim::Time
CollectiveComm::allGather(std::size_t bytesPerRank, AllGatherAlgo algo)
{
    if (bytesPerRank == 0 ||
        bytesPerRank * static_cast<std::size_t>(n_) > options_.maxBytes) {
        throw Error(ErrorCode::InvalidUsage, "allGather size out of range");
    }
    if (algo == AllGatherAlgo::Auto) {
        algo = resolveAllGather(bytesPerRank);
    }
    return record(
        std::string("allgather ") + toString(algo),
        bytesPerRank * static_cast<std::size_t>(n_),
        [&] { return CollKernels::allGather(*this, bytesPerRank, algo); });
}

sim::Time
CollectiveComm::reduceScatter(std::size_t bytes, gpu::DataType type,
                              gpu::ReduceOp op)
{
    if (bytes == 0 || bytes > options_.maxBytes ||
        bytes % static_cast<std::size_t>(n_) != 0) {
        throw Error(ErrorCode::InvalidUsage,
                    "reduceScatter size must be a non-zero multiple of the "
                    "rank count within maxBytes");
    }
    return record("reducescatter", bytes, [&] {
        return CollKernels::reduceScatter(*this, bytes, type, op);
    });
}

sim::Time
CollectiveComm::broadcast(std::size_t bytes, int root)
{
    if (bytes == 0 || bytes > options_.maxBytes || root < 0 || root >= n_) {
        throw Error(ErrorCode::InvalidUsage, "broadcast arguments invalid");
    }
    return record("broadcast", bytes, [&] {
        return CollKernels::broadcast(*this, bytes, root);
    });
}

sim::Time
CollectiveComm::allToAllV(
    const std::vector<std::vector<std::size_t>>& sendBytes)
{
    if (sendBytes.size() != static_cast<std::size_t>(n_)) {
        throw Error(ErrorCode::InvalidUsage,
                    "allToAllV needs one send row per rank");
    }
    for (const auto& row : sendBytes) {
        if (row.size() != static_cast<std::size_t>(n_)) {
            throw Error(ErrorCode::InvalidUsage,
                        "allToAllV rows must have one entry per rank");
        }
        std::size_t total = 0;
        for (std::size_t b : row) {
            if (b % 16 != 0) {
                throw Error(ErrorCode::InvalidUsage,
                            "allToAllV blocks must be 16-byte aligned");
            }
            total += b;
        }
        if (total > options_.maxBytes) {
            throw Error(ErrorCode::InvalidUsage,
                        "allToAllV row exceeds buffer capacity");
        }
    }
    // Receive totals must fit too.
    for (int p = 0; p < n_; ++p) {
        std::size_t total = 0;
        for (int r = 0; r < n_; ++r) {
            total += sendBytes[r][p];
        }
        if (total > options_.maxBytes ||
            2 * total > scratch_[0].size()) {
            throw Error(ErrorCode::InvalidUsage,
                        "allToAllV receive total exceeds capacity");
        }
    }
    std::size_t total = 0;
    for (const auto& row : sendBytes) {
        for (std::size_t b : row) {
            total += b;
        }
    }
    return record("alltoallv", total, [&] {
        return CollKernels::allToAllV(*this, sendBytes);
    });
}

sim::Time
CollectiveComm::reduce(std::size_t bytes, gpu::DataType type,
                       gpu::ReduceOp op, int root)
{
    if (bytes == 0 || bytes > options_.maxBytes || root < 0 ||
        root >= n_) {
        throw Error(ErrorCode::InvalidUsage, "reduce arguments invalid");
    }
    return record("reduce", bytes, [&] {
        return CollKernels::reduce(*this, bytes, type, op, root);
    });
}

sim::Time
CollectiveComm::gather(std::size_t bytesPerRank, int root)
{
    if (bytesPerRank == 0 ||
        bytesPerRank * static_cast<std::size_t>(n_) > options_.maxBytes ||
        root < 0 || root >= n_) {
        throw Error(ErrorCode::InvalidUsage, "gather arguments invalid");
    }
    return record(
        "gather", bytesPerRank * static_cast<std::size_t>(n_),
        [&] { return CollKernels::gather(*this, bytesPerRank, root); });
}

sim::Time
CollectiveComm::scatter(std::size_t bytesPerRank, int root)
{
    if (bytesPerRank == 0 ||
        bytesPerRank * static_cast<std::size_t>(n_) > options_.maxBytes ||
        root < 0 || root >= n_) {
        throw Error(ErrorCode::InvalidUsage, "scatter arguments invalid");
    }
    return record(
        "scatter", bytesPerRank * static_cast<std::size_t>(n_),
        [&] { return CollKernels::scatter(*this, bytesPerRank, root); });
}

sim::Time
CollectiveComm::allToAll(std::size_t bytesPerPair)
{
    if (bytesPerPair == 0 ||
        bytesPerPair * static_cast<std::size_t>(n_) > options_.maxBytes) {
        throw Error(ErrorCode::InvalidUsage, "allToAll size out of range");
    }
    return record(
        "alltoall",
        bytesPerPair * static_cast<std::size_t>(n_) *
            static_cast<std::size_t>(n_),
        [&] { return CollKernels::allToAll(*this, bytesPerPair); });
}

} // namespace mscclpp
