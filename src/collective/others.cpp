#include "collective/kernels.hpp"

#include "core/errors.hpp"
#include "gpu/compute.hpp"
#include "sim/sync.hpp"

#include <memory>

namespace mscclpp {

// ---------------------------------------------------------------------------
// AllGather
// ---------------------------------------------------------------------------

template <typename GetChan>
sim::Time
CollKernels::allGatherDirect(CollectiveComm& cc, std::size_t shard, GetChan getChan)
{
    const int n = cc.n_;
    auto fn = [&, shard](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        auto& ch = getChan(rank, peer);
        co_await ch.putWithSignal(ctx, rank * shard, rank * shard, shard);
        co_await ch.wait(ctx);
    };
    return cc.runOnAllRanks(n - 1, fn);
}

sim::Time
CollKernels::allGatherLL(CollectiveComm& cc, std::size_t shard, std::uint64_t parity)
{
    const int n = cc.n_;
    auto fn = [&, shard, parity](gpu::BlockCtx& ctx,
                                 int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        MemoryChannel& ch = cc.memLL_->mem(rank, peer);
        co_await ch.putPackets(ctx, (parity * n + rank) * shard,
                               rank * shard, shard);
        co_await ch.readPackets(ctx);
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            for (int p = 0; p < n; ++p) {
                if (p != rank) {
                    gpu::copyBytes(cc.data_[rank].view(p * shard, shard),
                                   cc.scratchSlot(rank, p, shard, parity),
                                   shard);
                }
            }
            co_await ctx.busy(
                cc.machine_->gpu(rank).copyTime(shard * (n - 1)));
        }
        co_await ctx.gridBarrier();
        if (!cc.options_.rotatingScratch) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

/** Two pipelined stages: cross-node shard exchange, local spread. */
sim::Time
CollKernels::allGatherHier(CollectiveComm& cc, std::size_t shard)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    const int m = cc.nodes_;
    int kDepth = 4;
    while (kDepth > 1 && (shard % static_cast<std::size_t>(kDepth) != 0 ||
                          shard / static_cast<std::size_t>(kDepth) < 2048)) {
        kDepth >>= 1;
    }
    const std::size_t sub = shard / kDepth;

    std::vector<std::unique_ptr<sim::SimSemaphore>> xDone;
    for (int r = 0; r < n; ++r) {
        xDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
    }

    auto fn = [&, shard, sub, kDepth](gpu::BlockCtx& ctx,
                                      int rank) -> sim::Task<> {
        const int node = rank / g;
        const int local = rank % g;
        if (ctx.blockIdx() == 0) {
            // Stage 1: exchange my shard with same-index peers on the
            // other nodes (RDMA), sub-chunk by sub-chunk.
            for (int k = 0; k < kDepth; ++k) {
                std::size_t off = rank * shard +
                                  static_cast<std::size_t>(k) * sub;
                for (int dn = 1; dn < m; ++dn) {
                    int q = ((node + dn) % m) * g + local;
                    co_await cc.port_->port(rank, q).putWithSignal(
                        ctx, off, off, sub);
                }
                for (int dn = 1; dn < m; ++dn) {
                    co_await cc.port_
                        ->port(rank, ((node + dn) % m) * g + local)
                        .wait(ctx);
                }
                xDone[rank]->add(1);
            }
        } else {
            // Stage 2: spread my column (my shard + the M-1 received
            // ones) to local peers.
            for (int k = 0; k < kDepth; ++k) {
                co_await xDone[rank]->waitUntil(k + 1);
                for (int dl = 1; dl < g; ++dl) {
                    int q = node * g + (local + dl) % g;
                    MemoryChannel& ch = cc.memHBDirect_->mem(rank, q);
                    for (int nn = 0; nn < m; ++nn) {
                        std::size_t srcRank =
                            static_cast<std::size_t>(nn) * g + local;
                        std::size_t off =
                            srcRank * shard +
                            static_cast<std::size_t>(k) * sub;
                        if (nn + 1 == m) {
                            co_await ch.putWithSignal(ctx, off, off, sub);
                        } else {
                            co_await ch.put(ctx, off, off, sub);
                        }
                    }
                }
                for (int dl = 1; dl < g; ++dl) {
                    co_await cc.memHBDirect_
                        ->mem(rank, node * g + (local + dl) % g)
                        .wait(ctx);
                }
            }
        }
    };
    return cc.runOnAllRanks(2, fn);
}

sim::Time
CollKernels::allGather(CollectiveComm& cc, std::size_t shard,
                       AllGatherAlgo algo)
{
    std::uint64_t parity =
        cc.options_.rotatingScratch ? (cc.round_++ & 1) : 0;
    switch (algo) {
      case AllGatherAlgo::AllPairsLL:
        if (cc.nodes_ > 1) {
            throw Error(ErrorCode::InvalidUsage,
                        "AP-LL AllGather is single-node");
        }
        if (2 * static_cast<std::size_t>(cc.n_) * shard >
            cc.scratch_[0].size()) {
            throw Error(ErrorCode::InvalidUsage,
                        "shard too large for LL scratch");
        }
        return allGatherLL(cc, shard, parity);
      case AllGatherAlgo::AllPairsHB:
        if (cc.nodes_ > 1) {
            throw Error(ErrorCode::InvalidUsage,
                        "AP-HB AllGather is single-node");
        }
        return allGatherDirect(cc, shard,
                               [&cc](int r, int p) -> MemoryChannel& {
                                   return cc.memHBDirect_->mem(r, p);
                               });
      case AllGatherAlgo::AllPairsPort:
        if (!cc.port_) {
            throw Error(ErrorCode::InvalidUsage, "port mesh not built");
        }
        return allGatherDirect(cc, shard,
                               [&cc](int r, int p) -> PortChannel& {
                                   return cc.port_->port(r, p);
                               });
      case AllGatherAlgo::Hier:
        if (cc.nodes_ < 2 || !cc.port_) {
            throw Error(ErrorCode::InvalidUsage,
                        "hierarchical AllGather requires multi-node");
        }
        return allGatherHier(cc, shard);
      case AllGatherAlgo::Auto:
        break;
    }
    throw Error(ErrorCode::InternalError, "unresolved AllGather algorithm");
}

// ---------------------------------------------------------------------------
// ReduceScatter: the all-pairs kernel of Figure 5.
// ---------------------------------------------------------------------------

sim::Time
CollKernels::reduceScatter(CollectiveComm& cc, std::size_t bytes,
                           gpu::DataType type, gpu::ReduceOp op)
{
    const int n = cc.n_;
    const std::size_t shard = bytes / n;
    std::uint64_t parity =
        cc.options_.rotatingScratch ? (cc.round_++ & 1) : 0;
    auto fn = [&, shard, parity, type, op](gpu::BlockCtx& ctx,
                                           int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        // Send 1/Nth of my data to each GPU's scratch (Figure 5).
        MemoryChannel& ch = cc.nodes_ == 1
                                ? cc.memHB_->mem(rank, peer)
                                : cc.memHB_->mem(rank, peer); // intra only
        co_await ch.putWithSignal(ctx, (parity * n + rank) * shard,
                                  peer * shard, shard);
        co_await ch.wait(ctx);
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            gpu::DeviceBuffer dst = cc.data_[rank].view(rank * shard,
                                                        shard);
            for (int p = 0; p < n; ++p) {
                if (p != rank) {
                    gpu::accumulate(dst,
                                    cc.scratchSlot(rank, p, shard, parity),
                                    shard, type, op);
                }
            }
            co_await ctx.busy(
                cc.machine_->gpu(rank).reduceTime(shard, n - 1));
        }
        co_await ctx.gridBarrier();
        if (!cc.options_.rotatingScratch) {
            // Barrier on all GPUs so scratch can be rewritten
            // (Figure 5 line 18).
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    if (cc.nodes_ > 1) {
        return hierReduceScatter(cc, bytes, type, op);
    }
    return cc.runOnAllRanks(n - 1, fn);
}

/**
 * Multi-node ReduceScatter: the first two (pipelined) stages of the
 * hierarchical AllReduce — node-local all-pairs ReduceScatter, then a
 * cross-node exchange + reduce of each rank's own chunk.
 */
sim::Time
CollKernels::hierReduceScatter(CollectiveComm& cc, std::size_t bytes,
                               gpu::DataType type, gpu::ReduceOp op)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    const int m = cc.nodes_;
    const std::size_t chunk = bytes / n;
    int kDepth = cc.options_.pipelineChunks;
    while (kDepth > 1 &&
           (chunk % static_cast<std::size_t>(kDepth) != 0 ||
            chunk / static_cast<std::size_t>(kDepth) < 2048)) {
        kDepth >>= 1;
    }
    kDepth = std::max(kDepth, 1);
    const std::size_t sub = chunk / kDepth;
    if (sub == 0 || chunk % 16 != 0) {
        throw Error(ErrorCode::InvalidUsage,
                    "reduceScatter size must chunk evenly");
    }

    std::vector<std::unique_ptr<sim::SimSemaphore>> aDone;
    for (int r = 0; r < n; ++r) {
        aDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
    }
    auto slotA = [&](int rank, int senderLocal, int nodeIdx, int k) {
        std::size_t off =
            ((static_cast<std::size_t>(senderLocal) * m + nodeIdx) *
                 kDepth +
             k) *
            sub;
        return cc.scratch_[rank].view(off, sub);
    };
    auto slotB = [&](int rank, int senderNode, int k) {
        std::size_t off =
            bytes +
            (static_cast<std::size_t>(senderNode) * kDepth + k) * sub;
        return cc.scratch_[rank].view(off, sub);
    };

    auto fn = [&, bytes, chunk, sub, kDepth, type,
               op](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        (void)bytes;
        const int node = rank / g;
        const int local = rank % g;
        gpu::Gpu& dev = cc.machine_->gpu(rank);
        if (ctx.blockIdx() == 0) {
            // Stage A: node-local ReduceScatter of every column.
            for (int k = 0; k < kDepth; ++k) {
                for (int dl = 1; dl < g; ++dl) {
                    int pl = (local + dl) % g;
                    int q = node * g + pl;
                    MemoryChannel& ch = cc.memHB_->mem(rank, q);
                    for (int nn = 0; nn < m; ++nn) {
                        std::size_t c =
                            static_cast<std::size_t>(nn) * g + pl;
                        std::size_t srcOff =
                            c * chunk +
                            static_cast<std::size_t>(k) * sub;
                        std::size_t dstOff =
                            ((static_cast<std::size_t>(local) * m + nn) *
                                 kDepth +
                             k) *
                            sub;
                        if (nn + 1 == m) {
                            co_await ch.putWithSignal(ctx, dstOff, srcOff,
                                                      sub);
                        } else {
                            co_await ch.put(ctx, dstOff, srcOff, sub);
                        }
                    }
                }
                for (int dl = 1; dl < g; ++dl) {
                    co_await cc.memHB_
                        ->mem(rank, node * g + (local + dl) % g)
                        .wait(ctx);
                }
                for (int sl = 0; sl < g; ++sl) {
                    if (sl == local) {
                        continue;
                    }
                    for (int nn = 0; nn < m; ++nn) {
                        std::size_t c =
                            static_cast<std::size_t>(nn) * g + local;
                        gpu::accumulate(
                            cc.data_[rank].view(
                                c * chunk +
                                    static_cast<std::size_t>(k) * sub,
                                sub),
                            slotA(rank, sl, nn, k), sub, type, op);
                    }
                }
                co_await ctx.busy(dev.reduceTime(sub * m, g - 1));
                aDone[rank]->add(1);
            }
        } else {
            // Stage B: cross-node ReduceScatter of my own chunk.
            const std::size_t myChunk =
                static_cast<std::size_t>(node) * g + local;
            for (int k = 0; k < kDepth; ++k) {
                co_await aDone[rank]->waitUntil(k + 1);
                for (int dn = 1; dn < m; ++dn) {
                    int pn = (node + dn) % m;
                    int q = pn * g + local;
                    std::size_t c =
                        static_cast<std::size_t>(pn) * g + local;
                    co_await cc.portScratch_->port(rank, q).putWithSignal(
                        ctx,
                        bytes + (static_cast<std::size_t>(node) * kDepth +
                                 k) *
                                    sub,
                        c * chunk + static_cast<std::size_t>(k) * sub,
                        sub);
                }
                for (int dn = 1; dn < m; ++dn) {
                    co_await cc.portScratch_
                        ->port(rank, ((node + dn) % m) * g + local)
                        .wait(ctx);
                }
                for (int sn = 0; sn < m; ++sn) {
                    if (sn != node) {
                        gpu::accumulate(
                            cc.data_[rank].view(
                                myChunk * chunk +
                                    static_cast<std::size_t>(k) * sub,
                                sub),
                            slotB(rank, sn, k), sub, type, op);
                    }
                }
                co_await ctx.busy(dev.reduceTime(sub, m - 1));
            }
        }
    };
    return cc.runOnAllRanks(2, fn);
}

// ---------------------------------------------------------------------------
// Broadcast: flat within a node, two-level across nodes.
// ---------------------------------------------------------------------------

sim::Time
CollKernels::broadcast(CollectiveComm& cc, std::size_t bytes, int root)
{
    const int g = cc.gpn_;
    const int m = cc.nodes_;
    const int rootNode = root / g;
    const int rootLocal = root % g;

    auto fn = [&, bytes, root](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        const int node = rank / g;
        const int local = rank % g;
        const bool isLeader = local == rootLocal; // relay on each node
        if (rank == root) {
            if (ctx.blockIdx() == 0 && m > 1) {
                // Feed the other nodes' leaders over RDMA.
                for (int dn = 1; dn < m; ++dn) {
                    int q = ((rootNode + dn) % m) * g + rootLocal;
                    co_await cc.port_->port(rank, q).putWithSignal(
                        ctx, 0, 0, bytes);
                }
            }
            if (ctx.blockIdx() == 1 || m == 1) {
                for (int dl = 1; dl < g; ++dl) {
                    int q = node * g + (local + dl) % g;
                    co_await cc.memHBDirect_->mem(rank, q).putWithSignal(
                        ctx, 0, 0, bytes);
                }
            }
        } else if (isLeader && m > 1) {
            if (ctx.blockIdx() == 0) {
                co_await cc.port_->port(rank, root).wait(ctx);
                for (int dl = 1; dl < g; ++dl) {
                    int q = node * g + (local + dl) % g;
                    co_await cc.memHBDirect_->mem(rank, q).putWithSignal(
                        ctx, 0, 0, bytes);
                }
            }
        } else {
            if (ctx.blockIdx() == 0) {
                int leader = node * g + rootLocal;
                co_await cc.memHBDirect_->mem(rank, leader).wait(ctx);
            }
        }
    };
    return cc.runOnAllRanks(m > 1 ? 2 : 1, fn);
}

// ---------------------------------------------------------------------------
// AllToAll: direct all-pairs puts (mixed transports across nodes).
// ---------------------------------------------------------------------------

sim::Time
CollKernels::allToAll(CollectiveComm& cc, std::size_t slot)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    std::uint64_t parity =
        cc.options_.rotatingScratch ? (cc.round_++ & 1) : 0;
    // The exchange is in place, so incoming blocks stage through
    // scratch: writing directly into data[p*slot] could overwrite a
    // block the receiver has not sent yet.
    auto fn = [&, slot, parity](gpu::BlockCtx& ctx,
                                int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        const bool sameNode = peer / g == rank / g;
        if (sameNode) {
            MemoryChannel& ch = cc.memHB_->mem(rank, peer);
            co_await ch.putWithSignal(ctx, (parity * n + rank) * slot,
                                      peer * slot, slot);
            co_await ch.wait(ctx);
        } else {
            if (!cc.portScratch_) {
                throw Error(ErrorCode::InvalidUsage,
                            "cross-node AllToAll needs the port mesh");
            }
            PortChannel& ch = cc.portScratch_->port(rank, peer);
            co_await ch.putWithSignal(ctx, (parity * n + rank) * slot,
                                      peer * slot, slot);
            co_await ch.wait(ctx);
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            for (int p = 0; p < n; ++p) {
                if (p != rank) {
                    gpu::copyBytes(cc.data_[rank].view(p * slot, slot),
                                   cc.scratchSlot(rank, p, slot, parity),
                                   slot);
                }
            }
            co_await ctx.busy(
                cc.machine_->gpu(rank).copyTime(slot * (n - 1)));
        }
        co_await ctx.gridBarrier();
        if (!cc.options_.rotatingScratch) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

sim::Time
CollKernels::allToAllV(
    CollectiveComm& cc,
    const std::vector<std::vector<std::size_t>>& sendBytes)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    std::uint64_t parity =
        cc.options_.rotatingScratch ? (cc.round_++ & 1) : 0;

    // Precompute send offsets (prefix sums of each row) and receive
    // offsets in the destination scratch, grouped by source rank.
    std::vector<std::vector<std::size_t>> sendOff(
        n, std::vector<std::size_t>(n, 0));
    std::vector<std::vector<std::size_t>> recvOff(
        n, std::vector<std::size_t>(n, 0));
    std::vector<std::size_t> recvTotal(n, 0);
    for (int r = 0; r < n; ++r) {
        std::size_t off = 0;
        for (int p = 0; p < n; ++p) {
            sendOff[r][p] = off;
            off += sendBytes[r][p];
        }
    }
    for (int p = 0; p < n; ++p) {
        std::size_t off = 0;
        for (int r = 0; r < n; ++r) {
            recvOff[p][r] = off;
            off += sendBytes[r][p];
        }
        recvTotal[p] = off;
    }
    std::size_t scratchHalf = cc.scratch_[0].size() / 2;

    auto fn = [&, parity](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        const std::size_t bytes = sendBytes[rank][peer];
        const std::size_t dstOff =
            parity * scratchHalf + recvOff[peer][rank];
        const bool sameNode = peer / g == rank / g;
        if (bytes > 0) {
            if (sameNode) {
                co_await cc.memHB_->mem(rank, peer).putWithSignal(
                    ctx, dstOff, sendOff[rank][peer], bytes);
            } else {
                co_await cc.portScratch_->port(rank, peer).putWithSignal(
                    ctx, dstOff, sendOff[rank][peer], bytes);
            }
        } else {
            // Zero-byte blocks still signal so waits stay matched.
            if (sameNode) {
                co_await cc.memHB_->mem(rank, peer).signal(ctx);
            } else {
                co_await cc.portScratch_->port(rank, peer).signal(ctx);
            }
        }
        const bool senderLocal = peer / g == rank / g;
        if (senderLocal) {
            co_await cc.memHB_->mem(rank, peer).wait(ctx);
        } else {
            co_await cc.portScratch_->port(rank, peer).wait(ctx);
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            // Unpack: my own block first, then the received ones, so
            // the result is contiguous by source rank.
            std::size_t mine = sendBytes[rank][rank];
            if (mine > 0) {
                gpu::copyBytes(
                    cc.data_[rank].view(recvOff[rank][rank], mine),
                    cc.data_[rank].view(sendOff[rank][rank], mine),
                    mine);
            }
            for (int src = 0; src < n; ++src) {
                std::size_t b = sendBytes[src][rank];
                if (src == rank || b == 0) {
                    continue;
                }
                gpu::copyBytes(
                    cc.data_[rank].view(recvOff[rank][src], b),
                    cc.scratch_[rank].view(
                        parity * scratchHalf + recvOff[rank][src], b),
                    b);
            }
            co_await ctx.busy(
                cc.machine_->gpu(rank).copyTime(recvTotal[rank]));
        }
        co_await ctx.gridBarrier();
        if (!cc.options_.rotatingScratch) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

// ---------------------------------------------------------------------------
// Reduce / Gather / Scatter: rooted collectives over the same meshes.
// ---------------------------------------------------------------------------

sim::Time
CollKernels::reduce(CollectiveComm& cc, std::size_t bytes,
                    gpu::DataType type, gpu::ReduceOp op, int root)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    std::uint64_t parity =
        cc.options_.rotatingScratch ? (cc.round_++ & 1) : 0;
    if (2 * static_cast<std::size_t>(n) * bytes > cc.scratch_[0].size()) {
        throw Error(ErrorCode::InvalidUsage,
                    "message too large for flat reduce scratch");
    }
    // Flat fan-in: every rank sends its whole buffer into the root's
    // scratch slot; the root reduces. Intra-node senders use memory
    // channels, cross-node senders RDMA.
    auto fn = [&, bytes, parity, type, op, root](gpu::BlockCtx& ctx,
                                                 int rank) -> sim::Task<> {
        const bool sameNode = rank / g == root / g;
        if (rank != root && ctx.blockIdx() == 0) {
            std::size_t dstOff = (parity * n + rank) * bytes;
            if (sameNode) {
                co_await cc.memHB_->mem(rank, root).putWithSignal(
                    ctx, dstOff, 0, bytes);
            } else {
                co_await cc.portScratch_->port(rank, root).putWithSignal(
                    ctx, dstOff, 0, bytes);
            }
        } else if (rank == root) {
            // One block per sender: wait, then fold the slot in.
            int sender = (root + 1 + ctx.blockIdx()) % n;
            const bool senderLocal = sender / g == root / g;
            if (senderLocal) {
                co_await cc.memHB_->mem(root, sender).wait(ctx);
            } else {
                co_await cc.portScratch_->port(root, sender).wait(ctx);
            }
            gpu::accumulate(cc.data_[root].view(0, bytes),
                            cc.scratchSlot(root, sender, bytes, parity),
                            bytes, type, op);
            co_await ctx.busy(
                cc.machine_->gpu(root).reduceTime(bytes, 1) / (n - 1));
            co_await ctx.gridBarrier();
        }
        if (!cc.options_.rotatingScratch && ctx.blockIdx() == 0) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

sim::Time
CollKernels::gather(CollectiveComm& cc, std::size_t shard, int root)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    // Everyone puts its shard straight into the root's data buffer at
    // its rank slot (disjoint regions, no scratch needed).
    auto fn = [&, shard, root](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (ctx.blockIdx() != 0) {
            co_return;
        }
        const bool sameNode = rank / g == root / g;
        if (rank != root) {
            std::size_t off = static_cast<std::size_t>(rank) * shard;
            if (sameNode) {
                co_await cc.memHBDirect_->mem(rank, root).putWithSignal(
                    ctx, off, off, shard);
            } else {
                co_await cc.port_->port(rank, root).putWithSignal(
                    ctx, off, off, shard);
            }
        } else {
            for (int p = 0; p < n; ++p) {
                if (p == root) {
                    continue;
                }
                const bool senderLocal = p / g == root / g;
                if (senderLocal) {
                    co_await cc.memHBDirect_->mem(root, p).wait(ctx);
                } else {
                    co_await cc.port_->port(root, p).wait(ctx);
                }
            }
        }
    };
    return cc.runOnAllRanks(1, fn);
}

sim::Time
CollKernels::scatter(CollectiveComm& cc, std::size_t shard, int root)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    auto fn = [&, shard, root](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        if (rank == root) {
            // One block per receiver: push its shard.
            int dst = (root + 1 + ctx.blockIdx()) % n;
            std::size_t off = static_cast<std::size_t>(dst) * shard;
            const bool sameNode = dst / g == root / g;
            if (sameNode) {
                co_await cc.memHBDirect_->mem(root, dst).putWithSignal(
                    ctx, off, off, shard);
            } else {
                co_await cc.port_->port(root, dst).putWithSignal(
                    ctx, off, off, shard);
            }
        } else if (ctx.blockIdx() == 0) {
            const bool sameNode = rank / g == root / g;
            if (sameNode) {
                co_await cc.memHBDirect_->mem(rank, root).wait(ctx);
            } else {
                co_await cc.port_->port(rank, root).wait(ctx);
            }
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

} // namespace mscclpp
