#include "collective/kernels.hpp"

#include "core/errors.hpp"
#include "gpu/compute.hpp"
#include "sim/sync.hpp"

#include <memory>

namespace mscclpp {

namespace {

void
requireShardable(std::size_t bytes, int parts, const char* what)
{
    if (bytes % (static_cast<std::size_t>(parts) * 16) != 0) {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(what) +
                        ": size must be divisible by 16x the shard count");
    }
}

} // namespace

// ---------------------------------------------------------------------------
// One-phase all-pairs, LL protocol (small single-node messages).
// ---------------------------------------------------------------------------

sim::Time
CollKernels::allPairs1P(CollectiveComm& cc, std::size_t bytes, gpu::DataType dt,
           gpu::ReduceOp op, std::uint64_t parity)
{
    const int n = cc.n_;
    auto fn = [&, bytes, parity, dt, op](gpu::BlockCtx& ctx,
                                         int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        MemoryChannel& ch = cc.memLL_->mem(rank, peer);
        // Broadcast my whole input into the peer's scratch slot; the
        // LL flags make the transfer self-synchronising.
        co_await ch.putPackets(ctx, (parity * n + rank) * bytes, 0, bytes);
        co_await ch.readPackets(ctx);
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            gpu::DeviceBuffer dst = cc.data_[rank].view(0, bytes);
            for (int p = 0; p < n; ++p) {
                if (p != rank) {
                    gpu::accumulate(dst,
                                    cc.scratchSlot(rank, p, bytes, parity),
                                    bytes, dt, op);
                }
            }
            co_await ctx.busy(
                cc.machine_->gpu(rank).reduceTime(bytes, n - 1));
        }
        co_await ctx.gridBarrier();
        if (!cc.options_.rotatingScratch) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

// ---------------------------------------------------------------------------
// Two-phase all-pairs with explicit synchronisation (HB or Port).
// ---------------------------------------------------------------------------

template <typename GetScratchChan, typename GetDirectChan>
sim::Time
CollKernels::allPairs2PSync(CollectiveComm& cc, std::size_t bytes, gpu::DataType dt,
               gpu::ReduceOp op, std::uint64_t parity, GetScratchChan getS,
               GetDirectChan getD)
{
    const int n = cc.n_;
    const std::size_t shard = bytes / n;
    auto fn = [&, bytes, shard, parity, dt, op](gpu::BlockCtx& ctx,
                                                int rank) -> sim::Task<> {
        (void)bytes;
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        // Phase 1 (ReduceScatter): my contribution to the peer's shard
        // lands in its scratch slot indexed by my rank.
        auto& chS = getS(rank, peer);
        co_await chS.putWithSignal(ctx, (parity * n + rank) * shard,
                                   peer * shard, shard);
        co_await chS.wait(ctx);
        // Each block folds its own peer's contribution in as soon as
        // it lands — MSCCL++ reads data from multiple GPUs at once
        // instead of reducing one-by-one (Section 4.4). Blocks share
        // the element range, so HBM time is charged per contribution.
        gpu::accumulate(cc.data_[rank].view(rank * shard, shard),
                        cc.scratchSlot(rank, peer, shard, parity), shard,
                        dt, op);
        co_await ctx.busy(cc.machine_->gpu(rank).reduceTime(shard, 1) /
                          (n - 1));
        co_await ctx.gridBarrier();
        // Phase 2 (AllGather): broadcast my reduced shard directly
        // into every peer's data buffer.
        auto& chD = getD(rank, peer);
        co_await chD.putWithSignal(ctx, rank * shard, rank * shard, shard);
        co_await chD.wait(ctx);
        if (!cc.options_.rotatingScratch) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

// ---------------------------------------------------------------------------
// Two-phase all-pairs, LL protocol.
// ---------------------------------------------------------------------------

sim::Time
CollKernels::allPairs2PLL(CollectiveComm& cc, std::size_t bytes, gpu::DataType dt,
             gpu::ReduceOp op, std::uint64_t parity)
{
    const int n = cc.n_;
    const std::size_t shard = bytes / n;
    auto fn = [&, shard, parity, dt, op](gpu::BlockCtx& ctx,
                                         int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n;
        MemoryChannel& ch = cc.memLL_->mem(rank, peer);
        gpu::Gpu& g = cc.machine_->gpu(rank);
        // Phase 1: packets into scratch region (parity, phase 0).
        co_await ch.putPackets(ctx, ((parity * 2) * n + rank) * shard,
                               peer * shard, shard);
        co_await ch.readPackets(ctx);
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            gpu::DeviceBuffer dst =
                cc.data_[rank].view(rank * shard, shard);
            for (int p = 0; p < n; ++p) {
                if (p != rank) {
                    gpu::accumulate(
                        dst, cc.scratchSlot(rank, p, shard, parity * 2),
                        shard, dt, op);
                }
            }
            co_await ctx.busy(g.reduceTime(shard, n - 1));
        }
        co_await ctx.gridBarrier();
        // Phase 2: packets into scratch region (parity, phase 1), then
        // unpack into the final buffer.
        co_await ch.putPackets(ctx, ((parity * 2 + 1) * n + rank) * shard,
                               rank * shard, shard);
        co_await ch.readPackets(ctx);
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            for (int p = 0; p < n; ++p) {
                if (p != rank) {
                    gpu::copyBytes(
                        cc.data_[rank].view(p * shard, shard),
                        cc.scratchSlot(rank, p, shard, parity * 2 + 1),
                        shard);
                }
            }
            co_await ctx.busy(g.copyTime(shard * (n - 1)));
        }
        co_await ctx.gridBarrier();
        if (!cc.options_.rotatingScratch) {
            co_await cc.syncer_->barrier(ctx, rank);
        }
    };
    return cc.runOnAllRanks(n - 1, fn);
}

// ---------------------------------------------------------------------------
// Two-phase via SwitchChannel multimem (NVLS).
// ---------------------------------------------------------------------------

sim::Time
CollKernels::switch2P(CollectiveComm& cc, std::size_t bytes, gpu::DataType dt,
         gpu::ReduceOp op)
{
    const int n = cc.n_;
    const std::size_t shard = bytes / n;
    auto fn = [&, shard, dt, op](gpu::BlockCtx& ctx,
                                 int rank) -> sim::Task<> {
        SwitchChannel& sw = *cc.switch_[rank];
        gpu::DeviceBuffer mine = cc.data_[rank].view(rank * shard, shard);
        // multimem.ld_reduce my shard across all replicas, then
        // multimem.st the result back to every replica.
        co_await sw.reduce(ctx, mine, rank * shard, shard, dt, op);
        co_await sw.broadcast(ctx, rank * shard, mine, shard);
        co_await cc.syncer_->barrier(ctx, rank);
    };
    return cc.runOnAllRanks(1, fn);
}

// ---------------------------------------------------------------------------
// Hierarchical two-phase (multi-node), pipelined over sub-chunks.
// ---------------------------------------------------------------------------

namespace {

int
pipelineDepth(const CollectiveComm::Options& opt, std::size_t chunk)
{
    int k = opt.pipelineChunks;
    while (k > 1 && (chunk % static_cast<std::size_t>(k) != 0 ||
                     chunk / static_cast<std::size_t>(k) < 2048)) {
        k >>= 1;
    }
    return std::max(k, 1);
}

} // namespace

/**
 * HB variant: N chunks (one per rank), four pipelined stages —
 * local RS, cross-node RS, cross-node AG, local AG (Section 4.4 #3,
 * second version).
 */
sim::Time
CollKernels::hier2PHB(CollectiveComm& cc, std::size_t bytes, gpu::DataType dt,
         gpu::ReduceOp op)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    const int m = cc.nodes_;
    const std::size_t chunk = bytes / n;
    const int kDepth = pipelineDepth(cc.options_, chunk);
    const std::size_t sub = chunk / kDepth;

    // Per-rank stage-completion counters (intra-GPU handoff).
    std::vector<std::unique_ptr<sim::SimSemaphore>> aDone;
    std::vector<std::unique_ptr<sim::SimSemaphore>> bDone;
    std::vector<std::unique_ptr<sim::SimSemaphore>> cDone;
    for (int r = 0; r < n; ++r) {
        aDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
        bDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
        cDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
    }

    // Scratch layout: region A (local partials) at [0, bytes);
    // region B (cross partials) at [bytes, bytes + m*chunk).
    auto slotA = [&](int rank, int senderLocal, int nodeIdx, int k) {
        std::size_t off =
            ((static_cast<std::size_t>(senderLocal) * m + nodeIdx) *
                 kDepth +
             k) *
            sub;
        return cc.scratch_[rank].view(off, sub);
    };
    auto slotB = [&](int rank, int senderNode, int k) {
        std::size_t off =
            bytes +
            (static_cast<std::size_t>(senderNode) * kDepth + k) * sub;
        return cc.scratch_[rank].view(off, sub);
    };

    auto fn = [&, bytes, chunk, sub, kDepth, dt,
               op](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        (void)bytes;
        const int node = rank / g;
        const int local = rank % g;
        gpu::Gpu& dev = cc.machine_->gpu(rank);

        if (ctx.blockIdx() == 0) {
            // Stage A: local ReduceScatter. For every local peer,
            // send the sub-chunks of the M chunks that peer's column
            // owns; then reduce my own column's contributions.
            for (int k = 0; k < kDepth; ++k) {
                for (int dl = 1; dl < g; ++dl) {
                    int pl = (local + dl) % g;
                    int q = node * g + pl;
                    MemoryChannel& ch = cc.memHB_->mem(rank, q);
                    for (int nn = 0; nn < m; ++nn) {
                        std::size_t c = static_cast<std::size_t>(nn) * g +
                                        pl;
                        std::size_t srcOff = c * chunk +
                                             static_cast<std::size_t>(k) *
                                                 sub;
                        std::size_t dstOff =
                            ((static_cast<std::size_t>(local) * m + nn) *
                                 kDepth +
                             k) *
                            sub;
                        if (nn + 1 == m) {
                            // Batch synchronisation: one signal after
                            // the peer's full batch of puts.
                            co_await ch.putWithSignal(ctx, dstOff, srcOff,
                                                      sub);
                        } else {
                            co_await ch.put(ctx, dstOff, srcOff, sub);
                        }
                    }
                }
                for (int dl = 1; dl < g; ++dl) {
                    co_await cc.memHB_->mem(rank, node * g + (local + dl) % g)
                        .wait(ctx);
                }
                for (int sl = 0; sl < g; ++sl) {
                    if (sl == local) {
                        continue;
                    }
                    for (int nn = 0; nn < m; ++nn) {
                        std::size_t c = static_cast<std::size_t>(nn) * g +
                                        local;
                        gpu::accumulate(
                            cc.data_[rank].view(
                                c * chunk +
                                    static_cast<std::size_t>(k) * sub,
                                sub),
                            slotA(rank, sl, nn, k), sub, dt, op);
                    }
                }
                co_await ctx.busy(dev.reduceTime(sub * m, g - 1));
                aDone[rank]->add(1);
            }
        } else if (ctx.blockIdx() == 1) {
            // Stage B: cross-node ReduceScatter of my own chunk.
            const std::size_t myChunk =
                static_cast<std::size_t>(node) * g + local;
            for (int k = 0; k < kDepth; ++k) {
                co_await aDone[rank]->waitUntil(k + 1);
                for (int dn = 1; dn < m; ++dn) {
                    int pn = (node + dn) % m;
                    int q = pn * g + local;
                    std::size_t c = static_cast<std::size_t>(pn) * g +
                                    local;
                    PortChannel& ch = cc.portScratch_->port(rank, q);
                    co_await ch.putWithSignal(
                        ctx,
                        bytes + (static_cast<std::size_t>(node) * kDepth +
                                 k) *
                                    sub,
                        c * chunk + static_cast<std::size_t>(k) * sub,
                        sub);
                }
                for (int dn = 1; dn < m; ++dn) {
                    co_await cc.portScratch_
                        ->port(rank, ((node + dn) % m) * g + local)
                        .wait(ctx);
                }
                for (int sn = 0; sn < m; ++sn) {
                    if (sn == node) {
                        continue;
                    }
                    gpu::accumulate(
                        cc.data_[rank].view(
                            myChunk * chunk +
                                static_cast<std::size_t>(k) * sub,
                            sub),
                        slotB(rank, sn, k), sub, dt, op);
                }
                co_await ctx.busy(dev.reduceTime(sub, m - 1));
                bDone[rank]->add(1);
            }
        } else if (ctx.blockIdx() == 2) {
            // Stage C: cross-node AllGather of my finished chunk.
            const std::size_t myChunk =
                static_cast<std::size_t>(node) * g + local;
            for (int k = 0; k < kDepth; ++k) {
                co_await bDone[rank]->waitUntil(k + 1);
                std::size_t off =
                    myChunk * chunk + static_cast<std::size_t>(k) * sub;
                for (int dn = 1; dn < m; ++dn) {
                    int q = ((node + dn) % m) * g + local;
                    co_await cc.port_->port(rank, q).putWithSignal(
                        ctx, off, off, sub);
                }
                for (int dn = 1; dn < m; ++dn) {
                    co_await cc.port_
                        ->port(rank, ((node + dn) % m) * g + local)
                        .wait(ctx);
                }
                cDone[rank]->add(1);
            }
        } else {
            // Stage D: local AllGather of my column (M chunks).
            for (int k = 0; k < kDepth; ++k) {
                co_await cDone[rank]->waitUntil(k + 1);
                for (int dl = 1; dl < g; ++dl) {
                    int q = node * g + (local + dl) % g;
                    MemoryChannel& ch = cc.memHBDirect_->mem(rank, q);
                    for (int nn = 0; nn < m; ++nn) {
                        std::size_t c = static_cast<std::size_t>(nn) * g +
                                        local;
                        std::size_t off =
                            c * chunk + static_cast<std::size_t>(k) * sub;
                        if (nn + 1 == m) {
                            co_await ch.putWithSignal(ctx, off, off, sub);
                        } else {
                            co_await ch.put(ctx, off, off, sub);
                        }
                    }
                }
                for (int dl = 1; dl < g; ++dl) {
                    co_await cc.memHBDirect_
                        ->mem(rank, node * g + (local + dl) % g)
                        .wait(ctx);
                }
            }
        }
    };
    return cc.runOnAllRanks(4, fn);
}

/**
 * LL variant for small multi-node messages: G chunks only, redundant
 * cross-node reduction, three pipelined stages (Section 4.4 #3, first
 * version).
 */
sim::Time
CollKernels::hier2PLL(CollectiveComm& cc, std::size_t bytes, gpu::DataType dt,
         gpu::ReduceOp op)
{
    const int n = cc.n_;
    const int g = cc.gpn_;
    const int m = cc.nodes_;
    const std::size_t chunk = bytes / g;
    const int kDepth = std::min(pipelineDepth(cc.options_, chunk), 2);
    const std::size_t sub = chunk / kDepth;

    std::vector<std::unique_ptr<sim::SimSemaphore>> aDone;
    std::vector<std::unique_ptr<sim::SimSemaphore>> bDone;
    for (int r = 0; r < n; ++r) {
        aDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
        bDone.push_back(
            std::make_unique<sim::SimSemaphore>(cc.machine_->scheduler()));
    }

    auto slotA = [&](int rank, int senderLocal, int k) {
        std::size_t off =
            (static_cast<std::size_t>(senderLocal) * kDepth + k) * sub;
        return cc.scratch_[rank].view(off, sub);
    };
    auto slotB = [&](int rank, int senderNode, int k) {
        std::size_t off =
            bytes +
            (static_cast<std::size_t>(senderNode) * kDepth + k) * sub;
        return cc.scratch_[rank].view(off, sub);
    };

    auto fn = [&, chunk, sub, kDepth, dt, op](gpu::BlockCtx& ctx,
                                              int rank) -> sim::Task<> {
        const int node = rank / g;
        const int local = rank % g;
        gpu::Gpu& dev = cc.machine_->gpu(rank);

        if (ctx.blockIdx() == 0) {
            // Stage A: local ReduceScatter over G chunks using LL
            // packets (self-synchronising).
            for (int k = 0; k < kDepth; ++k) {
                for (int dl = 1; dl < g; ++dl) {
                    int pl = (local + dl) % g;
                    int q = node * g + pl;
                    co_await cc.memLL_->mem(rank, q).putPackets(
                        ctx,
                        (static_cast<std::size_t>(local) * kDepth + k) *
                            sub,
                        static_cast<std::size_t>(pl) * chunk +
                            static_cast<std::size_t>(k) * sub,
                        sub);
                }
                for (int dl = 1; dl < g; ++dl) {
                    co_await cc.memLL_
                        ->mem(rank, node * g + (local + dl) % g)
                        .readPackets(ctx);
                }
                for (int sl = 0; sl < g; ++sl) {
                    if (sl != local) {
                        gpu::accumulate(
                            cc.data_[rank].view(
                                static_cast<std::size_t>(local) * chunk +
                                    static_cast<std::size_t>(k) * sub,
                                sub),
                            slotA(rank, sl, k), sub, dt, op);
                    }
                }
                co_await ctx.busy(dev.reduceTime(sub, g - 1));
                aDone[rank]->add(1);
            }
        } else if (ctx.blockIdx() == 1) {
            // Stage B: redundant cross-node all-pairs reduction of my
            // node-partial chunk (every node computes the full sum).
            for (int k = 0; k < kDepth; ++k) {
                co_await aDone[rank]->waitUntil(k + 1);
                std::size_t off = static_cast<std::size_t>(local) * chunk +
                                  static_cast<std::size_t>(k) * sub;
                for (int dn = 1; dn < m; ++dn) {
                    int q = ((node + dn) % m) * g + local;
                    co_await cc.portScratch_->port(rank, q).putWithSignal(
                        ctx,
                        bytes + (static_cast<std::size_t>(node) * kDepth +
                                 k) *
                                    sub,
                        off, sub);
                }
                for (int dn = 1; dn < m; ++dn) {
                    co_await cc.portScratch_
                        ->port(rank, ((node + dn) % m) * g + local)
                        .wait(ctx);
                }
                for (int sn = 0; sn < m; ++sn) {
                    if (sn != node) {
                        gpu::accumulate(cc.data_[rank].view(off, sub),
                                        slotB(rank, sn, k), sub, dt, op);
                    }
                }
                co_await ctx.busy(dev.reduceTime(sub, m - 1));
                bDone[rank]->add(1);
            }
        } else {
            // Stage D: local AllGather of the G finished chunks.
            for (int k = 0; k < kDepth; ++k) {
                co_await bDone[rank]->waitUntil(k + 1);
                std::size_t off = static_cast<std::size_t>(local) * chunk +
                                  static_cast<std::size_t>(k) * sub;
                for (int dl = 1; dl < g; ++dl) {
                    int q = node * g + (local + dl) % g;
                    co_await cc.memHBDirect_->mem(rank, q).putWithSignal(
                        ctx, off, off, sub);
                }
                for (int dl = 1; dl < g; ++dl) {
                    co_await cc.memHBDirect_
                        ->mem(rank, node * g + (local + dl) % g)
                        .wait(ctx);
                }
            }
        }
    };
    return cc.runOnAllRanks(3, fn);
}

sim::Time
CollKernels::allReduce(CollectiveComm& cc, std::size_t bytes,
                       gpu::DataType type, gpu::ReduceOp op,
                       AllReduceAlgo algo)
{
    const int n = cc.n_;
    std::uint64_t parity =
        cc.options_.rotatingScratch ? (cc.round_++ & 1) : 0;

    switch (algo) {
      case AllReduceAlgo::AllPairs1P:
        if (cc.nodes_ > 1) {
            throw Error(ErrorCode::InvalidUsage,
                        "1PA is a single-node algorithm");
        }
        if (2 * static_cast<std::size_t>(n) * bytes >
            cc.scratch_[0].size()) {
            throw Error(ErrorCode::InvalidUsage,
                        "message too large for 1PA scratch");
        }
        return allPairs1P(cc, bytes, type, op, parity);

      case AllReduceAlgo::AllPairs2PLL:
        if (cc.nodes_ > 1) {
            throw Error(ErrorCode::InvalidUsage,
                        "2PA is a single-node algorithm");
        }
        requireShardable(bytes, n, "2PA-LL");
        return allPairs2PLL(cc, bytes, type, op, parity);

      case AllReduceAlgo::AllPairs2PHB:
        if (cc.nodes_ > 1) {
            throw Error(ErrorCode::InvalidUsage,
                        "2PA is a single-node algorithm");
        }
        requireShardable(bytes, n, "2PA-HB");
        return allPairs2PSync(
            cc, bytes, type, op, parity,
            [&cc](int r, int p) -> MemoryChannel& {
                return cc.memHB_->mem(r, p);
            },
            [&cc](int r, int p) -> MemoryChannel& {
                return cc.memHBDirect_->mem(r, p);
            });

      case AllReduceAlgo::AllPairs2PPort:
        if (!cc.port_) {
            throw Error(ErrorCode::InvalidUsage, "port mesh not built");
        }
        requireShardable(bytes, n, "2PA-Port");
        return allPairs2PSync(
            cc, bytes, type, op, parity,
            [&cc](int r, int p) -> PortChannel& {
                return cc.portScratch_->port(r, p);
            },
            [&cc](int r, int p) -> PortChannel& {
                return cc.port_->port(r, p);
            });

      case AllReduceAlgo::Switch2P:
        if (cc.switch_.empty()) {
            throw Error(ErrorCode::InvalidUsage,
                        "switch channels unavailable on this machine");
        }
        requireShardable(bytes, n, "2PA-Switch");
        return switch2P(cc, bytes, type, op);

      case AllReduceAlgo::Hier2PLL:
        if (cc.nodes_ < 2 || !cc.portScratch_) {
            throw Error(ErrorCode::InvalidUsage,
                        "2PH requires a multi-node machine with ports");
        }
        requireShardable(bytes, cc.gpn_, "2PH-LL");
        return hier2PLL(cc, bytes, type, op);

      case AllReduceAlgo::Hier2PHB:
        if (cc.nodes_ < 2 || !cc.portScratch_) {
            throw Error(ErrorCode::InvalidUsage,
                        "2PH requires a multi-node machine with ports");
        }
        requireShardable(bytes, n, "2PH-HB");
        return hier2PHB(cc, bytes, type, op);

      case AllReduceAlgo::Auto:
        break;
    }
    throw Error(ErrorCode::InternalError, "unresolved AllReduce algorithm");
}

} // namespace mscclpp
