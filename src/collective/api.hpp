#ifndef MSCCLPP_COLLECTIVE_API_HPP
#define MSCCLPP_COLLECTIVE_API_HPP

#include "channel/channel_mesh.hpp"
#include "channel/device_syncer.hpp"
#include "channel/switch_channel.hpp"
#include "core/communicator.hpp"
#include "gpu/kernel.hpp"
#include "gpu/types.hpp"
#include "tuner/plan_cache.hpp"
#include "tuner/tuner.hpp"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mscclpp {

namespace obs {
struct CriticalPathReport;
}

/** AllReduce algorithms implemented in the collective library
 *  (Section 4.4). Auto picks by message size and topology. */
enum class AllReduceAlgo
{
    Auto,
    AllPairs1P,   ///< one-phase all-pairs, LL (small single-node)
    AllPairs2PLL, ///< two-phase all-pairs, LL packets
    AllPairs2PHB, ///< two-phase all-pairs, HB MemoryChannel
    AllPairs2PPort, ///< two-phase all-pairs over PortChannel (DMA)
    Switch2P,     ///< two-phase via SwitchChannel multimem (NVLS)
    Hier2PLL,     ///< hierarchical two-phase, LL local (multi-node small)
    Hier2PHB,     ///< hierarchical two-phase, HB local (multi-node large)
};

/** AllGather algorithms. */
enum class AllGatherAlgo
{
    Auto,
    AllPairsLL,   ///< every rank LL-puts its shard to all peers
    AllPairsHB,   ///< HB puts directly into peers' buffers
    AllPairsPort, ///< DMA/RDMA puts via PortChannel
    Hier,         ///< cross-node exchange then local broadcast
};

const char* toString(AllReduceAlgo a);
const char* toString(AllGatherAlgo a);

/**
 * The MSCCL++ Collective API: an NCCL-style library built entirely on
 * the Primitive API (channels). One instance drives all ranks of a
 * simulated machine; collectives operate in place on per-rank data
 * buffers registered at construction (the ncclMemAlloc model).
 */
class CollectiveComm
{
  public:
    struct Options
    {
        /// Capacity of each rank's registered data buffer.
        std::size_t maxBytes = 1 << 20;
        /// Build PortChannel meshes (DMA/RDMA paths).
        bool buildPort = true;
        /// Build SwitchChannel groups when the hardware has multimem.
        bool buildSwitch = true;
        /// Sub-chunks for hierarchical pipeline overlap.
        int pipelineChunks = 8;
        /// Rotate scratch halves to drop trailing barriers (Section
        /// 4.4, 2PA optimisation). Disable to measure the ablation.
        bool rotatingScratch = true;
        /// Thread blocks per collective kernel (0 = one per peer).
        int blocks = 0;
        int threadsPerBlock = 1024;
        /// Tuner mode override ("static"/"profile"/"file"); unset
        /// falls back to the machine's MSCCLPP_TUNER setting.
        std::optional<std::string> tunerMode;
        /// Profile-cache path override; unset falls back to the
        /// machine's MSCCLPP_TUNER_CACHE setting.
        std::optional<std::string> tunerCacheFile;
        /// Capacity of the per-communicator launch-plan cache.
        std::size_t planCacheCapacity = 256;
    };

    CollectiveComm(gpu::Machine& machine, Options options);
    ~CollectiveComm();

    CollectiveComm(const CollectiveComm&) = delete;
    CollectiveComm& operator=(const CollectiveComm&) = delete;

    gpu::Machine& machine() const { return *machine_; }
    int size() const { return n_; }
    const Options& options() const { return options_; }

    /** Rank @p r's registered in/out buffer. */
    gpu::DeviceBuffer dataBuffer(int rank) const;

    // ---- collectives (all in place on dataBuffer) --------------------------

    /** AllReduce over the first @p bytes. @return elapsed time. */
    sim::Time allReduce(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op,
                        AllReduceAlgo algo = AllReduceAlgo::Auto);

    /**
     * AllGather: rank r's shard lives at offset r*bytesPerRank; after
     * the call every rank holds all shards.
     */
    sim::Time allGather(std::size_t bytesPerRank,
                        AllGatherAlgo algo = AllGatherAlgo::Auto);

    /**
     * ReduceScatter over @p bytes: afterwards rank r's shard (at
     * offset r*shard) holds the reduction of all ranks' data. Uses the
     * all-pairs algorithm of Figure 5.
     */
    sim::Time reduceScatter(std::size_t bytes, gpu::DataType type,
                            gpu::ReduceOp op);

    /** Broadcast @p bytes from @p root to all ranks. */
    sim::Time broadcast(std::size_t bytes, int root);

    /**
     * AllToAll: the block of @p bytesPerPair at offset p*bytesPerPair
     * of rank r is delivered to offset r*bytesPerPair of rank p.
     */
    sim::Time allToAll(std::size_t bytesPerPair);

    /**
     * Variable AllToAll for MoE-style dispatch: @p sendBytes[r][p] is
     * how much rank r sends to rank p, read from offset
     * offsets(sendBytes[r])[p] of r's buffer and delivered
     * contiguously, grouped by source, into p's buffer. All row sums
     * must fit in maxBytes.
     */
    sim::Time allToAllV(
        const std::vector<std::vector<std::size_t>>& sendBytes);

    /** Reduce @p bytes from all ranks into @p root's buffer. */
    sim::Time reduce(std::size_t bytes, gpu::DataType type,
                     gpu::ReduceOp op, int root);

    /**
     * Gather: rank r's shard (offset r*bytesPerRank) is collected on
     * @p root, which ends up holding every shard.
     */
    sim::Time gather(std::size_t bytesPerRank, int root);

    /**
     * Scatter: @p root's shard at offset r*bytesPerRank is delivered
     * to rank r (at the same offset).
     */
    sim::Time scatter(std::size_t bytesPerRank, int root);

    // ---- tuning ------------------------------------------------------------

    /**
     * Algorithm Auto resolves to for an AllReduce of @p bytes: the
     * tuner's profiled choice when a tuning table is active
     * (MSCCLPP_TUNER=profile|file), otherwise the static heuristic.
     */
    AllReduceAlgo chooseAllReduce(std::size_t bytes) const;

    /** Algorithm Auto resolves to for an AllGather of @p bytes/rank. */
    AllGatherAlgo chooseAllGather(std::size_t bytesPerRank) const;

    /** The built-in static size thresholds (MSCCLPP_TUNER=static). */
    AllReduceAlgo chooseAllReduceStatic(std::size_t bytes) const;

    /** Static AllGather heuristic, @p bytesPerRank per rank. */
    AllGatherAlgo chooseAllGatherStatic(std::size_t bytesPerRank) const;

    /** This communicator's tuner (never null after construction). */
    const tuner::Tuner& algoTuner() const { return *tuner_; }

    /** The launch-plan cache exercised by Auto collectives. */
    const tuner::PlanCache& planCache() const { return *planCache_; }

    /**
     * Critical-path report for the most recent collective, or nullptr
     * when MSCCLPP_CRITPATH is off (or no collective has run yet). The
     * report's categories sum exactly to the collective's measured
     * latency; see DESIGN.md Section 9 for the attribution model.
     */
    const obs::CriticalPathReport* lastCriticalPath() const;

    /** Stop port proxies; implied by destruction. */
    void shutdown();

  private:
    friend struct CollKernels;

    using RankFn = std::function<sim::Task<>(gpu::BlockCtx&, int)>;

    /** Launch fn on every rank and run the machine to completion. */
    sim::Time runOnAllRanks(int blocks, const RankFn& fn);

    /**
     * Run one collective body and record its metrics, host-side span
     * and — with MSCCLPP_CRITPATH=1 — its critical-path attribution.
     */
    template <typename Fn>
    sim::Time record(const std::string& name, std::size_t bytes,
                     Fn&& body);

    /** Rebuild lastCritPath_ from the tracer's span + edge rings. */
    void analyzeLastCollective(sim::Time hostTail);

    /** Resolve Auto through the per-communicator plan cache. */
    AllReduceAlgo resolveAllReduce(std::size_t bytes, gpu::DataType type,
                                   gpu::ReduceOp op);
    AllGatherAlgo resolveAllGather(std::size_t bytesPerRank);

    /** Scratch slot for (sender, parity) with per-slot size @p slot. */
    gpu::DeviceBuffer scratchSlot(int rank, int sender, std::size_t slot,
                                  std::uint64_t parity) const;

    gpu::Machine* machine_;
    Options options_;
    int n_;
    int gpn_;
    int nodes_;
    std::vector<std::unique_ptr<Communicator>> comms_;
    std::vector<gpu::DeviceBuffer> data_;
    std::vector<gpu::DeviceBuffer> scratch_;

    std::optional<ChannelMesh> memLL_;      // data -> scratch, LL
    std::optional<ChannelMesh> memHB_;      // data -> scratch, HB
    std::optional<ChannelMesh> memHBDirect_; // data -> data, HB
    std::optional<ChannelMesh> port_;       // data -> data, Port
    std::optional<ChannelMesh> portScratch_; // data -> scratch, Port
    std::vector<std::unique_ptr<SwitchChannel>> switch_;
    std::unique_ptr<DeviceSyncer> syncer_;
    std::unique_ptr<tuner::Tuner> tuner_;
    std::unique_ptr<tuner::PlanCache> planCache_;
    std::unique_ptr<obs::CriticalPathReport> lastCritPath_;

    std::uint64_t round_ = 0; ///< rotating-scratch parity counter
};

} // namespace mscclpp

#endif // MSCCLPP_COLLECTIVE_API_HPP
