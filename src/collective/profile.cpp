#include "collective/profile.hpp"

#include <exception>

namespace mscclpp {

std::optional<AllReduceAlgo>
allReduceAlgoFromString(const std::string& name)
{
    for (AllReduceAlgo a :
         {AllReduceAlgo::AllPairs1P, AllReduceAlgo::AllPairs2PLL,
          AllReduceAlgo::AllPairs2PHB, AllReduceAlgo::AllPairs2PPort,
          AllReduceAlgo::Switch2P, AllReduceAlgo::Hier2PLL,
          AllReduceAlgo::Hier2PHB}) {
        if (name == toString(a)) {
            return a;
        }
    }
    return std::nullopt;
}

std::optional<AllGatherAlgo>
allGatherAlgoFromString(const std::string& name)
{
    for (AllGatherAlgo a :
         {AllGatherAlgo::AllPairsLL, AllGatherAlgo::AllPairsHB,
          AllGatherAlgo::AllPairsPort, AllGatherAlgo::Hier}) {
        if (name == toString(a)) {
            return a;
        }
    }
    return std::nullopt;
}

std::vector<tuner::Candidate>
tunerCandidates(const fabric::EnvConfig& cfg, int nNodes, bool withPort,
                bool withSwitch)
{
    using tuner::Collective;
    std::vector<tuner::Candidate> out;
    auto add = [&out](Collective c, const char* algo) {
        out.push_back(tuner::Candidate{c, algo});
    };
    if (nNodes <= 1) {
        add(Collective::AllReduce, toString(AllReduceAlgo::AllPairs1P));
        add(Collective::AllReduce, toString(AllReduceAlgo::AllPairs2PLL));
        add(Collective::AllReduce, toString(AllReduceAlgo::AllPairs2PHB));
        if (withPort) {
            add(Collective::AllReduce,
                toString(AllReduceAlgo::AllPairs2PPort));
        }
        if (withSwitch && cfg.hasMultimem) {
            add(Collective::AllReduce, toString(AllReduceAlgo::Switch2P));
        }
        add(Collective::AllGather, toString(AllGatherAlgo::AllPairsLL));
        add(Collective::AllGather, toString(AllGatherAlgo::AllPairsHB));
        if (withPort) {
            add(Collective::AllGather,
                toString(AllGatherAlgo::AllPairsPort));
        }
    } else {
        add(Collective::AllReduce, toString(AllReduceAlgo::Hier2PLL));
        add(Collective::AllReduce, toString(AllReduceAlgo::Hier2PHB));
        if (withPort) {
            add(Collective::AllReduce,
                toString(AllReduceAlgo::AllPairs2PPort));
        }
        add(Collective::AllGather, toString(AllGatherAlgo::Hier));
        if (withPort) {
            add(Collective::AllGather,
                toString(AllGatherAlgo::AllPairsPort));
        }
    }
    return out;
}

tuner::TuningTable
profileEnvironment(const fabric::EnvConfig& cfg, int nNodes,
                   const tuner::ProfileOptions& opt,
                   obs::MetricsRegistry* metrics, bool withPort,
                   bool withSwitch)
{
    // A private machine: Timed mode keeps huge sizes cheap, and the
    // silenced tracer/metrics keep the caller's artifacts clean.
    fabric::EnvConfig quiet = cfg;
    quiet.traceEnabled = false;
    quiet.metricsEnabled = false;
    gpu::Machine machine(quiet, nNodes < 1 ? 1 : nNodes,
                         gpu::DataMode::Timed);
    machine.obs().tracer().setEnabled(false);
    machine.obs().metrics().setEnabled(false);
    machine.obs().setDumpOnDestroy(false);

    CollectiveComm::Options copt;
    copt.maxBytes = opt.maxBytes;
    copt.buildPort = withPort;
    copt.buildSwitch = withSwitch;
    copt.tunerMode = "static"; // the probe itself must never recurse
    copt.tunerCacheFile = "";
    CollectiveComm comm(machine, copt);
    const std::size_t n = static_cast<std::size_t>(comm.size());

    auto run = [&comm, n](const tuner::Candidate& c,
                          std::uint64_t bytes) -> std::optional<double> {
        try {
            if (c.collective == tuner::Collective::AllReduce) {
                std::optional<AllReduceAlgo> algo =
                    allReduceAlgoFromString(c.algo);
                if (!algo || bytes > comm.options().maxBytes) {
                    return std::nullopt;
                }
                return sim::toNs(comm.allReduce(bytes, gpu::DataType::F16,
                                                gpu::ReduceOp::Sum,
                                                *algo));
            }
            std::optional<AllGatherAlgo> algo =
                allGatherAlgoFromString(c.algo);
            if (!algo || bytes * n > comm.options().maxBytes) {
                return std::nullopt;
            }
            return sim::toNs(comm.allGather(bytes, *algo));
        } catch (const std::exception&) {
            // Size not runnable for this algorithm (alignment, scratch
            // capacity, missing hardware): simply no sample.
            return std::nullopt;
        }
    };

    return tuner::profile(tunerCandidates(cfg, nNodes, withPort,
                                          withSwitch),
                          run, opt, metrics);
}

} // namespace mscclpp
