#ifndef MSCCLPP_COLLECTIVE_KERNELS_HPP
#define MSCCLPP_COLLECTIVE_KERNELS_HPP

#include "collective/api.hpp"

namespace mscclpp {

/**
 * Implementation of the collective kernels (Section 4.4), split out of
 * the API class. Every kernel is written against the Primitive API
 * (channels), exactly like the real library's collective kernels.
 */
struct CollKernels
{
    static sim::Time allReduce(CollectiveComm& cc, std::size_t bytes,
                               gpu::DataType type, gpu::ReduceOp op,
                               AllReduceAlgo algo);

    static sim::Time allGather(CollectiveComm& cc, std::size_t bytesPerRank,
                               AllGatherAlgo algo);

    static sim::Time reduceScatter(CollectiveComm& cc, std::size_t bytes,
                                   gpu::DataType type, gpu::ReduceOp op);

    static sim::Time broadcast(CollectiveComm& cc, std::size_t bytes,
                               int root);

    static sim::Time allToAll(CollectiveComm& cc, std::size_t bytesPerPair);

    static sim::Time
    allToAllV(CollectiveComm& cc,
              const std::vector<std::vector<std::size_t>>& sendBytes);

    static sim::Time reduce(CollectiveComm& cc, std::size_t bytes,
                            gpu::DataType type, gpu::ReduceOp op, int root);

    static sim::Time gather(CollectiveComm& cc, std::size_t bytesPerRank,
                            int root);

    static sim::Time scatter(CollectiveComm& cc, std::size_t bytesPerRank,
                             int root);

  private:
    // AllReduce kernels (defined in allreduce.cpp).
    static sim::Time allPairs1P(CollectiveComm& cc, std::size_t bytes,
                                gpu::DataType dt, gpu::ReduceOp op,
                                std::uint64_t parity);
    template <typename GetScratchChan, typename GetDirectChan>
    static sim::Time allPairs2PSync(CollectiveComm& cc, std::size_t bytes,
                                    gpu::DataType dt, gpu::ReduceOp op,
                                    std::uint64_t parity, GetScratchChan getS,
                                    GetDirectChan getD);
    static sim::Time allPairs2PLL(CollectiveComm& cc, std::size_t bytes,
                                  gpu::DataType dt, gpu::ReduceOp op,
                                  std::uint64_t parity);
    static sim::Time switch2P(CollectiveComm& cc, std::size_t bytes,
                              gpu::DataType dt, gpu::ReduceOp op);
    static sim::Time hier2PHB(CollectiveComm& cc, std::size_t bytes,
                              gpu::DataType dt, gpu::ReduceOp op);
    static sim::Time hier2PLL(CollectiveComm& cc, std::size_t bytes,
                              gpu::DataType dt, gpu::ReduceOp op);

    // ReduceScatter (defined in others.cpp).
    static sim::Time hierReduceScatter(CollectiveComm& cc,
                                       std::size_t bytes,
                                       gpu::DataType type,
                                       gpu::ReduceOp op);

    // AllGather kernels (defined in others.cpp).
    template <typename GetChan>
    static sim::Time allGatherDirect(CollectiveComm& cc, std::size_t shard,
                                     GetChan getChan);
    static sim::Time allGatherLL(CollectiveComm& cc, std::size_t shard,
                                 std::uint64_t parity);
    static sim::Time allGatherHier(CollectiveComm& cc, std::size_t shard);
};

} // namespace mscclpp

#endif // MSCCLPP_COLLECTIVE_KERNELS_HPP
