#ifndef MSCCLPP_FABRIC_ENV_HPP
#define MSCCLPP_FABRIC_ENV_HPP

#include "sim/time.hpp"

#include <string>

namespace mscclpp::fabric {

/** How GPUs inside a node are wired together. */
enum class IntraTopology
{
    Switch, ///< all GPUs attach to a central switch (NVSwitch)
    Mesh,   ///< every GPU pair has a dedicated link (Infinity Fabric)
};

/**
 * Full description of one evaluation environment (one row of the
 * paper's Table 1) plus the calibration constants of the timing model.
 *
 * Bandwidths are GB/s per direction. All calibration anchors are
 * listed in DESIGN.md Section 3; EXPERIMENTS.md records how close the
 * reproduced numbers land.
 */
struct EnvConfig
{
    std::string name;
    std::string gpuName;
    std::string intraName;
    std::string netName;

    // ---- machine shape -------------------------------------------------
    int gpusPerNode = 8;
    IntraTopology intra = IntraTopology::Switch;

    // ---- intra-node fabric ----------------------------------------------
    /// Per-GPU port rate for Switch topologies; per-peer-link rate for
    /// Mesh topologies.
    double intraBwGBps = 0.0;
    sim::Time intraLatency = 0;     ///< p2p store visibility latency
    sim::Time intraPerMessage = 0;  ///< per-transfer wire overhead
    bool hasMultimem = false;       ///< NVSwitch in-network compute (NVLS)
    double multimemBwGBps = 0.0;    ///< effective switch-reduce rate
    sim::Time multimemLatency = 0;  ///< extra switch-compute latency

    // ---- inter-node network ----------------------------------------------
    double nicBwGBps = 0.0;         ///< per-GPU NIC rate
    sim::Time nicLatency = 0;       ///< NIC-to-NIC one-way latency
    sim::Time nicPerMessage = 0;    ///< per-RDMA-message wire overhead
    sim::Time ibPostOverhead = 0;   ///< CPU cost of ibv_post_send
    sim::Time ibAtomicLatency = 0;  ///< remote semaphore add (ibv atomic)
    sim::Time ibPollOverhead = 0;   ///< CPU cost of ibv_poll_cq round

    // ---- GPU device ------------------------------------------------------
    double hbmBwGBps = 0.0;         ///< device memory bandwidth
    double hbmCapacityGB = 0.0;     ///< device memory size (KV budget)
    double fp16Tflops = 0.0;        ///< dense fp16 peak
    sim::Time kernelLaunch = 0;     ///< stream kernel launch latency
    sim::Time graphLaunch = 0;      ///< CUDA-graph replay launch latency
    sim::Time blockDispatch = 0;    ///< per-thread-block scheduling cost
    double perThreadCopyGBps = 0.0; ///< thread-copy rate per GPU thread
    double threadCopyPeakEff = 0.0; ///< thread-copy ceiling / line rate
    double dmaCopyEff = 0.0;        ///< copy-engine ceiling / line rate
    sim::Time dmaInitLatency = 0;   ///< DMA engine start-up per transfer

    /// Host-side completion detection after a collective kernel (event
    /// query / stream sync), part of every measured latency.
    sim::Time hostSyncOverhead = 0;

    /// Granularity at which bulk transfers occupy links. Ports
    /// multiplex concurrent flows at packet granularity; reserving in
    /// chunks of this size keeps the FIFO occupancy model fair when
    /// flows from different sources interleave.
    std::uint64_t bulkChunkBytes = 256 << 10;

    // ---- synchronisation primitives ---------------------------------------
    sim::Time semaphorePoll = 0;    ///< busy-wait detection granularity
    sim::Time atomicAddLatency = 0; ///< p2p atomic increment latency
    sim::Time threadFence = 0;      ///< __threadfence_system cost
    sim::Time blockBarrier = 0;     ///< __syncthreads-equivalent cost

    // ---- proxy (PortChannel, Figure 7) -------------------------------------
    sim::Time fifoPushCost = 0;     ///< GPU write of a FIFO request
    sim::Time fifoPollLatency = 0;  ///< GPU push -> CPU pickup delay
    sim::Time proxyDispatch = 0;    ///< CPU request decode + dispatch
    int fifoDepth = 128;            ///< request slots per channel FIFO

    // ---- NCCL-baseline stack model -----------------------------------------
    /// Extra per-primitive-call cost of the NCCL send/recv abstraction
    /// (static thread-group sync, register pressure, buffer slot
    /// accounting). This is the stack overhead MSCCL++ removes.
    sim::Time ncclPrimOverhead = 0;
    sim::Time ncclProxyStep = 0;    ///< per-network-step proxy cost
    double ncclSimpleEff = 0.0;     ///< Simple-protocol bandwidth efficiency
    double ncclLl128Eff = 0.0;      ///< LL128 efficiency (NVLink only)
    double ncclLlBwFactor = 0.25;   ///< LL protocol share of line rate
    double ncclLl128BwFactor = 0.55;///< LL128 share of line rate
    double ncclNvlsEff = 0.80;      ///< NCCL NVLS share of multimem rate
    std::uint64_t ncclSlotBytes = 0;///< staged pipeline slot size
    /// MSCCL interpreter: per-instruction decode cost on the NCCL stack.
    sim::Time mscclInstrOverhead = 0;

    // ---- MSCCL++ executor -----------------------------------------------
    /// DSL executor per-instruction decode cost (the ~3% gap between
    /// DSL and Primitive kernels in Section 5.1).
    sim::Time dslInstrOverhead = 0;

    bool ll128Supported = false;    ///< LL128 needs NVLink write ordering

    // ---- observability (src/obs) ------------------------------------------
    /// Record event spans into the Machine's Tracer and dump a Chrome
    /// trace on teardown (MSCCLPP_TRACE=1). Off by default: the
    /// disabled path is a single branch per instrumentation site.
    bool traceEnabled = false;
    /// Record counters/summaries (MSCCLPP_METRICS=0 to disable).
    bool metricsEnabled = true;
    std::string traceFile = "trace.json";     ///< MSCCLPP_TRACE_FILE
    std::string metricsFile = "metrics.json"; ///< MSCCLPP_METRICS_FILE
    /// Run the happens-before critical-path analyzer after every
    /// collective and record per-category attribution summaries
    /// (MSCCLPP_CRITPATH=1). Implies tracing: the analyzer consumes
    /// the tracer's span + edge rings.
    bool critpathEnabled = false;
    /// Continuous flight recorder over serving-step windows
    /// (MSCCLPP_FLIGHT=1): ring of per-step attribution digests plus
    /// an EWMA anomaly detector that dumps the offending window's
    /// trace online (DESIGN.md Section 10). Implies tracing.
    bool flightEnabled = false;
    std::string flightFile = "flight.json"; ///< MSCCLPP_FLIGHT_FILE
    /// Anomaly threshold in σ units (MSCCLPP_FLIGHT_SIGMA, > 0).
    double flightSigma = 3.0;
    /// Continuous telemetry rollups (MSCCLPP_TIMESERIES=1): bucket
    /// counters, gauges and link utilization into fixed virtual-time
    /// intervals, dumped as mscclpp.timeseries v1 plus Chrome "C"
    /// counter tracks in the trace (DESIGN.md Section 14).
    bool timeseriesEnabled = false;
    /// Initial rollup interval in virtual time; 0 keeps the built-in
    /// default (MSCCLPP_TIMESERIES_INTERVAL_NS). The ring coarsens
    /// 2x whenever the bounded interval span would overflow.
    sim::Time timeseriesInterval = 0;
    std::string timeseriesFile =
        "timeseries.json"; ///< MSCCLPP_TIMESERIES_FILE
    /// Host-time self-profiler for the discrete-event core
    /// (MSCCLPP_SIMPROF=1): sample steady_clock around event dispatch
    /// and attribute wall time to per-subsystem origin labels, dumped
    /// as mscclpp.simprof v1 on teardown (DESIGN.md Section 15).
    /// Never perturbs virtual time.
    bool simprofEnabled = false;
    std::string simprofFile = "simprof.json"; ///< MSCCLPP_SIMPROF_FILE
    /// Keep only the K hottest origins in the dump, the rest folded
    /// into "(other)" (MSCCLPP_SIMPROF_TOPK, >= 0; 0 keeps all).
    int simprofTopk = 0;
    /// Stall watchdog (MSCCLPP_WATCHDOG): "off", "report" (emit hang
    /// reports and keep going) or "abort" (fail fast with
    /// Error(Timeout)). Implies tracing (DESIGN.md Section 11).
    std::string watchdogMode = "off";
    /// Virtual-time stall threshold before a wait is reported
    /// (MSCCLPP_WATCHDOG_NS, > 0).
    sim::Time watchdogNs = sim::msec(100);
    std::string watchdogFile = "hang.json"; ///< MSCCLPP_WATCHDOG_FILE

    // ---- fault injection ---------------------------------------------------
    /// Comma-separated "linkName:factor" pairs scaling the named
    /// links' bandwidth at Fabric construction (factor < 1 slows the
    /// link), e.g. "gpu3.tx:0.25". Drives straggler experiments and
    /// the critical-path acceptance test (MSCCLPP_DEGRADED_LINKS).
    std::string degradedLinks;

    // ---- algorithm tuner (src/tuner) ---------------------------------------
    /// Algorithm selection policy (MSCCLPP_TUNER): "static" keeps the
    /// built-in size thresholds, "profile" measures per-environment
    /// crossover tables in virtual time, "file" only loads a table
    /// from tunerCacheFile and otherwise stays static.
    std::string tunerMode = "static";
    /// Versioned JSON profile cache (MSCCLPP_TUNER_CACHE); empty
    /// disables persistence.
    std::string tunerCacheFile;
};

/** A100-40G row of Table 1: NVLink 3.0 + HDR InfiniBand. */
EnvConfig makeA100_40G();

/** A100-80G row of Table 1 (faster HBM; used for LLM inference). */
EnvConfig makeA100_80G();

/** H100 row of Table 1: NVLink 4.0 with NVLS multimem + NDR IB. */
EnvConfig makeH100();

/** MI300x row of Table 1: Infinity Fabric mesh + NDR IB. */
EnvConfig makeMI300x();

/** Look up an environment by Table 1 name; throws on unknown name. */
EnvConfig makeEnv(const std::string& name);

/**
 * Apply MSCCLPP_* environment-variable overrides to @p cfg — the
 * analogue of tuning NCCL via NCCL_* variables (Section 5,
 * "fine-tuned for each environment ... by adjusting their environment
 * variables"). Unset variables leave fields untouched; see
 * env_overrides.cpp for the variable list.
 */
void applyEnvOverrides(EnvConfig& cfg);

/**
 * Apply only the observability variables — MSCCLPP_TRACE,
 * MSCCLPP_METRICS, MSCCLPP_TRACE_FILE, MSCCLPP_METRICS_FILE,
 * MSCCLPP_CRITPATH, MSCCLPP_FLIGHT, MSCCLPP_FLIGHT_FILE,
 * MSCCLPP_FLIGHT_SIGMA, MSCCLPP_TIMESERIES,
 * MSCCLPP_TIMESERIES_INTERVAL_NS, MSCCLPP_TIMESERIES_FILE,
 * MSCCLPP_SIMPROF, MSCCLPP_SIMPROF_FILE, MSCCLPP_SIMPROF_TOPK,
 * MSCCLPP_DEGRADED_LINKS — to @p cfg. Called by every Machine at construction (the runtime gate
 * of the tracer), and by applyEnvOverrides. Defaults: tracing off,
 * metrics on, files "trace.json" / "metrics.json". Throws
 * Error(InvalidUsage) on malformed values (non-boolean flags, empty
 * paths).
 */
void applyObsEnvOverrides(EnvConfig& cfg);

/**
 * Apply only the tuner variables — MSCCLPP_TUNER and
 * MSCCLPP_TUNER_CACHE — to @p cfg. Called by every Machine at
 * construction (like the obs gate) and by applyEnvOverrides. Throws
 * Error(InvalidUsage) when MSCCLPP_TUNER names an unknown mode.
 */
void applyTunerEnvOverrides(EnvConfig& cfg);

} // namespace mscclpp::fabric

#endif // MSCCLPP_FABRIC_ENV_HPP
