#include "fabric/env.hpp"

#include "core/errors.hpp"

#include <cstdlib>
#include <string>

namespace mscclpp::fabric {

namespace {

bool
readDouble(const char* name, double& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return false;
    }
    out = std::atof(v);
    return true;
}

bool
readTimeNs(const char* name, sim::Time& out)
{
    double ns = 0;
    if (!readDouble(name, ns)) {
        return false;
    }
    out = sim::ns(ns);
    return true;
}

/** Strict boolean: "0"/"1"/"true"/"false" only — a typo in a gate
 *  variable should fail loudly, not silently disable tracing. */
bool
readBool(const char* name, bool& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return false;
    }
    std::string s(v);
    if (s == "1" || s == "true" || s == "TRUE") {
        out = true;
    } else if (s == "0" || s == "false" || s == "FALSE") {
        out = false;
    } else {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(name) + "='" + s +
                        "' is not a boolean (use 0/1/true/false)");
    }
    return true;
}

/** Non-empty path override; an explicitly empty value is an error
 *  (use the gate variable to disable output instead). */
bool
readPath(const char* name, std::string& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr) {
        return false;
    }
    if (*v == '\0') {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(name) +
                        " must name a file (unset it for the default)");
    }
    out = v;
    return true;
}

} // namespace

void
applyObsEnvOverrides(EnvConfig& cfg)
{
    readBool("MSCCLPP_TRACE", cfg.traceEnabled);
    readBool("MSCCLPP_METRICS", cfg.metricsEnabled);
    readPath("MSCCLPP_TRACE_FILE", cfg.traceFile);
    readPath("MSCCLPP_METRICS_FILE", cfg.metricsFile);
    readBool("MSCCLPP_CRITPATH", cfg.critpathEnabled);
    readBool("MSCCLPP_FLIGHT", cfg.flightEnabled);
    readPath("MSCCLPP_FLIGHT_FILE", cfg.flightFile);
    double sigma = 0;
    if (readDouble("MSCCLPP_FLIGHT_SIGMA", sigma)) {
        if (sigma <= 0.0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_FLIGHT_SIGMA must be a positive σ "
                        "multiplier");
        }
        cfg.flightSigma = sigma;
    }
    readBool("MSCCLPP_TIMESERIES", cfg.timeseriesEnabled);
    sim::Time tsNs = 0;
    if (readTimeNs("MSCCLPP_TIMESERIES_INTERVAL_NS", tsNs)) {
        if (tsNs <= 0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_TIMESERIES_INTERVAL_NS must be a "
                        "positive virtual-time interval in ns");
        }
        cfg.timeseriesInterval = tsNs;
    }
    readPath("MSCCLPP_TIMESERIES_FILE", cfg.timeseriesFile);
    readBool("MSCCLPP_SIMPROF", cfg.simprofEnabled);
    readPath("MSCCLPP_SIMPROF_FILE", cfg.simprofFile);
    double topk = 0;
    if (readDouble("MSCCLPP_SIMPROF_TOPK", topk)) {
        if (topk < 0 || topk != static_cast<double>(
                                    static_cast<int>(topk))) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_SIMPROF_TOPK must be a non-negative "
                        "integer (0 keeps all origins)");
        }
        cfg.simprofTopk = static_cast<int>(topk);
    }
    const char* wd = std::getenv("MSCCLPP_WATCHDOG");
    if (wd != nullptr && *wd != '\0') {
        std::string s(wd);
        if (s != "off" && s != "report" && s != "abort") {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_WATCHDOG='" + s +
                            "' is not a mode (use off/report/abort)");
        }
        cfg.watchdogMode = s;
    }
    sim::Time wdNs = 0;
    if (readTimeNs("MSCCLPP_WATCHDOG_NS", wdNs)) {
        if (wdNs <= 0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_WATCHDOG_NS must be a positive "
                        "virtual-time threshold in ns");
        }
        cfg.watchdogNs = wdNs;
    }
    readPath("MSCCLPP_WATCHDOG_FILE", cfg.watchdogFile);
    // Fault injection rides the obs overrides so every Machine picks
    // it up: the spec is validated by the Fabric constructor
    // (std::invalid_argument on malformed entries).
    const char* degraded = std::getenv("MSCCLPP_DEGRADED_LINKS");
    if (degraded != nullptr && *degraded != '\0') {
        cfg.degradedLinks = degraded;
    }
}

void
applyTunerEnvOverrides(EnvConfig& cfg)
{
    const char* mode = std::getenv("MSCCLPP_TUNER");
    if (mode != nullptr && *mode != '\0') {
        std::string s(mode);
        if (s != "static" && s != "profile" && s != "file") {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_TUNER='" + s +
                            "' is not a mode (use static/profile/file)");
        }
        cfg.tunerMode = s;
    }
    readPath("MSCCLPP_TUNER_CACHE", cfg.tunerCacheFile);
}

void
applyEnvOverrides(EnvConfig& cfg)
{
    applyObsEnvOverrides(cfg);
    applyTunerEnvOverrides(cfg);
    // Fabric rates and latencies.
    readDouble("MSCCLPP_INTRA_BW_GBPS", cfg.intraBwGBps);
    readDouble("MSCCLPP_NIC_BW_GBPS", cfg.nicBwGBps);
    readDouble("MSCCLPP_MULTIMEM_BW_GBPS", cfg.multimemBwGBps);
    readTimeNs("MSCCLPP_INTRA_LATENCY_NS", cfg.intraLatency);
    readTimeNs("MSCCLPP_NIC_LATENCY_NS", cfg.nicLatency);

    // Copy engines and protocols.
    readDouble("MSCCLPP_THREAD_COPY_EFF", cfg.threadCopyPeakEff);
    readDouble("MSCCLPP_DMA_COPY_EFF", cfg.dmaCopyEff);
    double chunkKb = 0;
    if (readDouble("MSCCLPP_BULK_CHUNK_KB", chunkKb) && chunkKb > 0) {
        cfg.bulkChunkBytes =
            static_cast<std::uint64_t>(chunkKb * 1024.0);
    }

    // Launch / sync costs.
    readTimeNs("MSCCLPP_GRAPH_LAUNCH_NS", cfg.graphLaunch);
    readTimeNs("MSCCLPP_HOST_SYNC_NS", cfg.hostSyncOverhead);
    readTimeNs("MSCCLPP_SEM_POLL_NS", cfg.semaphorePoll);

    // Baseline tuning, mirroring how the paper tunes NCCL/RCCL/MSCCL
    // per environment with NCCL_* variables.
    readTimeNs("MSCCLPP_NCCL_PRIM_OVERHEAD_NS", cfg.ncclPrimOverhead);
    readDouble("MSCCLPP_NCCL_SIMPLE_EFF", cfg.ncclSimpleEff);
    readDouble("MSCCLPP_NCCL_LL_BW_FACTOR", cfg.ncclLlBwFactor);
    readDouble("MSCCLPP_NCCL_LL128_BW_FACTOR", cfg.ncclLl128BwFactor);
    double slotKb = 0;
    if (readDouble("MSCCLPP_NCCL_SLOT_KB", slotKb) && slotKb > 0) {
        cfg.ncclSlotBytes = static_cast<std::uint64_t>(slotKb * 1024.0);
    }
    readTimeNs("MSCCLPP_MSCCL_INSTR_NS", cfg.mscclInstrOverhead);
    readTimeNs("MSCCLPP_DSL_INSTR_NS", cfg.dslInstrOverhead);
}

} // namespace mscclpp::fabric
