#ifndef MSCCLPP_FABRIC_TOPOLOGY_HPP
#define MSCCLPP_FABRIC_TOPOLOGY_HPP

#include "fabric/env.hpp"
#include "fabric/link.hpp"
#include "sim/scheduler.hpp"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mscclpp::fabric {

/// Pacer/culprit name of the NVSwitch multimem engine: what queued
/// victims blame when an NVLS reservation holds their port.
inline constexpr const char* kSwitchMultimem = "nvswitch.multimem";

/**
 * The interconnect of a cluster: per-node intra-GPU fabric (NVSwitch
 * ports or an xGMI mesh) plus one RDMA NIC per GPU attached to a
 * non-blocking IB switch.
 *
 * GPUs are identified by global rank; rank = node * gpusPerNode +
 * localRank, matching the paper's MnNg notation.
 */
class Fabric
{
  public:
    /** @param obs optional observability context (the owning
     *  Machine's); links record serialisation spans and byte counters
     *  into it. */
    Fabric(sim::Scheduler& sched, const EnvConfig& cfg, int numNodes,
           obs::ObsContext* obs = nullptr);

    Fabric(const Fabric&) = delete;
    Fabric& operator=(const Fabric&) = delete;

    const EnvConfig& config() const { return cfg_; }
    int numNodes() const { return numNodes_; }
    int numGpus() const { return numNodes_ * cfg_.gpusPerNode; }
    int nodeOf(int rank) const { return rank / cfg_.gpusPerNode; }
    int localRankOf(int rank) const { return rank % cfg_.gpusPerNode; }
    bool sameNode(int a, int b) const { return nodeOf(a) == nodeOf(b); }

    /**
     * Route for peer-to-peer traffic from @p src to @p dst. Intra-node
     * pairs route over the GPU fabric; inter-node pairs route through
     * the source GPU's NIC and the IB switch to the destination's NIC.
     */
    Path p2pPath(int src, int dst);

    /** Intra-node route only; src and dst must share a node. */
    Path intraPath(int src, int dst);

    /** Inter-node RDMA route (always via NICs, even on one node). */
    Path netPath(int src, int dst);

    /** Egress port of @p rank on the intra-node switch fabric. */
    Link& gpuTx(int rank);

    /** Ingress port of @p rank on the intra-node switch fabric. */
    Link& gpuRx(int rank);

    /** Dedicated mesh link from @p src to @p dst (Mesh topology only). */
    Link& meshLink(int src, int dst);

    /**
     * Scale the named link's bandwidth by @p factor *now* —
     * mid-run fault injection for straggler/flight-recorder
     * experiments (MSCCLPP_DEGRADED_LINKS only applies at
     * construction). Throws std::invalid_argument when no link has
     * that name or factor <= 0.
     */
    void degradeLink(const std::string& name, double factor);

    /**
     * The resource the most recent multimem reservation waited on:
     * the pacer of the busiest blocking port when the switch window
     * queued, else the switch's own multimem engine
     * ("nvswitch.multimem"). SwitchChannel spans carry it as their
     * culprit detail, mirroring Path::lastCulprit for p2p hops.
     */
    const std::string& lastSwitchCulprit() const
    {
        return lastSwitchCulprit_;
    }

    /**
     * Reserve the fabric for an in-switch multimem reduction: @p bytes
     * are pulled from every participant, reduced on the switch, and
     * delivered to @p reader. @return (start, arrival).
     */
    std::pair<sim::Time, sim::Time>
    multimemReduce(int reader, const std::vector<int>& participants,
                   std::uint64_t bytes, double bwFactor = 1.0);

    /**
     * Reserve the fabric for an in-switch multicast: @p bytes flow
     * from @p writer through the switch to every participant.
     */
    std::pair<sim::Time, sim::Time>
    multimemBroadcast(int writer, const std::vector<int>& participants,
                      std::uint64_t bytes, double bwFactor = 1.0);

    sim::Scheduler& scheduler() const { return *sched_; }

    /** Aggregate bytes carried by all intra-node links (stats). */
    std::uint64_t intraBytesCarried() const;

    /** Aggregate bytes carried by all NIC links (stats). */
    std::uint64_t netBytesCarried() const;

    /** Per-link utilisation snapshot for one GPU's ports. */
    struct PortStats
    {
        std::uint64_t txBytes = 0;
        std::uint64_t rxBytes = 0;
        sim::Time txBusy = 0;
        sim::Time rxBusy = 0;
        std::uint64_t nicTxBytes = 0;
        std::uint64_t nicRxBytes = 0;
    };

    /** Stats for @p rank's fabric ports (tx/rx aggregated over mesh
     *  links on Mesh topologies). */
    PortStats portStats(int rank) const;

    /**
     * Human-readable utilisation report over all GPUs — the
     * observability hook collective developers use to see whether an
     * algorithm drives every link (NCCL_DEBUG-style).
     */
    std::string utilizationReport() const;

  private:
    int meshIndex(int src, int dst) const;

    /** Link parameters after applying cfg_.degradedLinks ("name:factor"
     *  pairs); unmatched names return @p base unchanged. */
    LinkParams paramsFor(const std::string& name,
                         const LinkParams& base) const;

    sim::Scheduler* sched_;
    EnvConfig cfg_;
    int numNodes_;
    obs::ObsContext* obs_ = nullptr;

    // Switch topology: one tx/rx port pair per GPU.
    std::vector<std::unique_ptr<Link>> gpuTx_;
    std::vector<std::unique_ptr<Link>> gpuRx_;
    // Mesh topology: one directed link per ordered GPU pair per node.
    std::vector<std::unique_ptr<Link>> mesh_;
    // One NIC per GPU, tx and rx sides.
    std::vector<std::unique_ptr<Link>> nicTx_;
    std::vector<std::unique_ptr<Link>> nicRx_;

    // Parsed cfg_.degradedLinks: link name -> bandwidth factor.
    std::vector<std::pair<std::string, double>> degraded_;
    std::string lastSwitchCulprit_;
    obs::Histogram* switchOccupancy_ = nullptr;
    obs::Summary* switchWaitNs_ = nullptr;
};

} // namespace mscclpp::fabric

#endif // MSCCLPP_FABRIC_TOPOLOGY_HPP
