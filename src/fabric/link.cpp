#include "fabric/link.hpp"

#include "obs/obs.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mscclpp::fabric {

const char*
toString(LinkType t)
{
    switch (t) {
      case LinkType::NvLink:
        return "NVLink";
      case LinkType::XGmi:
        return "xGMI";
      case LinkType::Pcie:
        return "PCIe";
      case LinkType::InfiniBand:
        return "InfiniBand";
    }
    return "?";
}

Link::Link(sim::Scheduler& sched, LinkType type, LinkParams params,
           std::string name, obs::ObsContext* obs)
    : sched_(&sched), type_(type), params_(params), name_(std::move(name)),
      obs_(obs)
{
    if (obs_ != nullptr) {
        // Resolve metric handles once; the hot path only dereferences.
        bytesTxCounter_ = &obs_->metrics().counter("link.bytes_tx");
        serializationNs_ =
            &obs_->metrics().summary("link.serialization_ns");
        occupancyHist_ =
            &obs_->metrics().histogram("link.occupancy." + name_);
        queueWaitNs_ = &obs_->metrics().summary("link.queue_wait_ns");
    }
}

void
Link::record(sim::Time start, sim::Time end, std::uint64_t bytes,
             sim::Time busy)
{
    if (obs_ == nullptr) {
        return;
    }
    if (obs_->metrics().enabled()) {
        bytesTxCounter_->add(bytes);
        serializationNs_->add(sim::toNs(busy));
        occupancyHist_->addRange(end - busy, end);
    }
    if (obs_->timeseries().enabled()) {
        // Per-link rollups: busy fraction per interval (utilization %)
        // and byte deltas, the continuous view of the occupancy
        // histogram above.
        obs_->timeseries().chargeRange("link.util." + name_, end - busy,
                                       end);
        obs_->timeseries().accumulate("link.bytes." + name_, end,
                                      static_cast<double>(bytes));
    }
    if (obs_->tracer().enabled()) {
        obs_->tracer().span(obs::Category::Link, "xfer", obs::kFabricPid,
                            name_, start, end, bytes);
        // Delivery edge: the last byte leaves the wire at end and is
        // visible at the far side one hop latency later.
        obs_->tracer().edge(obs::EdgeKind::LinkDelivery, obs::kFabricPid,
                            name_, end - busy, obs::kFabricPid, name_,
                            end + params_.latency, bytes);
    }
}

std::pair<sim::Time, sim::Time>
Link::reserve(std::uint64_t bytes, double bwCapGBps, sim::Time earliest)
{
    double bw = params_.bandwidthGBps;
    if (bwCapGBps > 0.0) {
        bw = std::min(bw, bwCapGBps);
    }
    sim::Time start = std::max({sched_->now(), nextFree_, earliest});
    if (obs_ != nullptr && obs_->metrics().enabled()) {
        // Head-of-line delay: how long this transfer sat behind the
        // link's queue before its first byte could serialise.
        queueWaitNs_->add(sim::toNs(
            start - std::max(sched_->now(), earliest)));
    }
    sim::Time occupancy = params_.perMessage + sim::transferTime(bytes, bw);
    nextFree_ = start + occupancy;
    bytesCarried_ += bytes;
    busyTime_ += occupancy;
    pacer_ = name_;
    pacerRateGBps_ = bw;
    record(start, start + occupancy, bytes, occupancy);
    return {start, start + occupancy + params_.latency};
}

void
Link::scaleBandwidth(double factor)
{
    if (factor <= 0.0) {
        throw std::invalid_argument(
            "link bandwidth factor must be > 0 (got " +
            std::to_string(factor) + ")");
    }
    params_.bandwidthGBps *= factor;
    if (obs_ != nullptr && obs_->tracer().enabled()) {
        // Mark the fault in the trace so a flight-recorder dump shows
        // when the link changed speed, not only that steps got slow.
        obs_->tracer().instant(obs::Category::Link, "link.degraded",
                               obs::kFabricPid, name_,
                               sched_->now());
    }
}

void
Link::occupy(sim::Time end, std::uint64_t bytes, sim::Time busy,
             const std::string& pacer, double pacerRateGBps)
{
    nextFree_ = std::max(nextFree_, end);
    bytesCarried_ += bytes;
    busyTime_ += busy;
    pacer_ = pacer.empty() ? name_ : pacer;
    pacerRateGBps_ = pacer.empty() ? params_.bandwidthGBps : pacerRateGBps;
    record(end - busy, end, bytes, busy);
}

sim::Task<>
Link::transfer(std::uint64_t bytes, double bwCapGBps)
{
    auto [start, arrival] = reserve(bytes, bwCapGBps);
    co_await sim::Delay(*sched_, arrival - sched_->now(),
                        "fabric.link");
}

sim::Time
Path::latency() const
{
    sim::Time total = 0;
    for (const Link* l : links_) {
        total += l->params().latency;
    }
    return total;
}

double
Path::bottleneckGBps() const
{
    double bw = 0.0;
    for (const Link* l : links_) {
        double b = l->params().bandwidthGBps;
        if (bw == 0.0 || (b > 0.0 && b < bw)) {
            bw = b;
        }
    }
    return bw;
}

std::pair<sim::Time, sim::Time>
Path::reserve(std::uint64_t bytes, double bwCapGBps) const
{
    assert(!links_.empty());
    // Cut-through: every hop carries the serialisation window of the
    // bottleneck rate; the window starts when all hops are free.
    double bw = bottleneckGBps();
    if (bwCapGBps > 0.0) {
        bw = std::min(bw, bwCapGBps);
    }
    // Cascading cut-through: each hop starts no earlier than the
    // previous hop and no earlier than its own queue, but an upstream
    // hop is never blocked by downstream congestion (no head-of-line
    // holes on shared ports).
    sim::Time perMessage = 0;
    for (const Link* l : links_) {
        perMessage = std::max(perMessage, l->params().perMessage);
    }
    // The hop with the lowest line rate paces this flow; every hop it
    // occupies remembers that name so queued victims can blame it.
    const Link* pacerLink = links_.front();
    for (const Link* l : links_) {
        if (l->params().bandwidthGBps > 0.0 &&
            l->params().bandwidthGBps < pacerLink->params().bandwidthGBps) {
            pacerLink = l;
        }
    }
    // Whichever hop is backlogged the furthest is the one this
    // reservation queues behind; its current occupant's pacer is the
    // true cause of the wait (head-of-line blocking attribution).
    sim::Time now = scheduler().now();
    const Link* blockedOn = nullptr;
    for (const Link* l : links_) {
        if (l->nextFree() > now &&
            (blockedOn == nullptr || l->nextFree() > blockedOn->nextFree())) {
            blockedOn = l;
        }
    }
    if (blockedOn != nullptr && !blockedOn->pacer().empty()) {
        // Blame the occupant's pacer only when that pacer is actually
        // slower than this hop's line rate (degraded link upstream) or
        // is a shared engine (rate 0 sentinel). An occupant moving at
        // full line rate means the queue is genuine contention on this
        // hop — e.g. NIC incast — so the contended hop itself is the
        // culprit.
        double pr = blockedOn->pacerRateGBps();
        lastCulprit_ = (pr <= 0.0 ||
                        pr < blockedOn->params().bandwidthGBps)
                           ? blockedOn->pacer()
                           : blockedOn->name();
    } else {
        lastCulprit_ = pacerLink->name();
    }
    sim::Time window = perMessage + sim::transferTime(bytes, bw);
    sim::Time start = now;
    sim::Time firstStart = 0;
    for (std::size_t i = 0; i < links_.size(); ++i) {
        start = std::max(start, links_[i]->nextFree());
        if (i == 0) {
            firstStart = start;
        }
        links_[i]->occupy(start + window, bytes, window, pacerLink->name(),
                          bw);
    }
    return {firstStart, start + window + latency()};
}

sim::Task<>
Path::transfer(std::uint64_t bytes, double bwCapGBps) const
{
    auto [start, arrival] = reserve(bytes, bwCapGBps);
    sim::Scheduler& sched = scheduler();
    co_await sim::Delay(sched, arrival - sched.now(),
                        "fabric.link");
}

sim::Scheduler&
Path::scheduler() const
{
    assert(!links_.empty());
    return links_.front()->scheduler();
}

} // namespace mscclpp::fabric
