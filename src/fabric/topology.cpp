#include "fabric/topology.hpp"

#include "obs/obs.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mscclpp::fabric {

Fabric::Fabric(sim::Scheduler& sched, const EnvConfig& cfg, int numNodes,
               obs::ObsContext* obs)
    : sched_(&sched), cfg_(cfg), numNodes_(numNodes), obs_(obs)
{
    if (numNodes < 1) {
        throw std::invalid_argument("Fabric requires at least one node");
    }
    // Parse fault-injection spec once; every link construction below
    // consults it via paramsFor().
    std::string spec = cfg_.degradedLinks;
    while (!spec.empty()) {
        std::size_t comma = spec.find(',');
        std::string entry = spec.substr(0, comma);
        spec = comma == std::string::npos ? std::string()
                                          : spec.substr(comma + 1);
        if (entry.empty()) {
            continue;
        }
        std::size_t colon = entry.find(':');
        double factor =
            colon == std::string::npos
                ? 0.0
                : std::atof(entry.c_str() + colon + 1);
        if (colon == std::string::npos || colon == 0 || factor <= 0.0) {
            throw std::invalid_argument(
                "degraded link entry '" + entry +
                "' is not name:factor with factor > 0");
        }
        degraded_.emplace_back(entry.substr(0, colon), factor);
        if (obs_ != nullptr) {
            obs_->watchdog().noteDegradedLink(degraded_.back().first,
                                              factor);
        }
    }
    if (obs_ != nullptr && cfg_.hasMultimem) {
        switchOccupancy_ =
            &obs_->metrics().histogram("switch.occupancy.nvswitch");
        switchWaitNs_ =
            &obs_->metrics().summary("switch.contention_wait_ns");
    }
    const int n = numGpus();
    const int g = cfg_.gpusPerNode;

    LinkParams intra{cfg_.intraBwGBps, cfg_.intraLatency,
                     cfg_.intraPerMessage};
    LinkType intraType = cfg_.intra == IntraTopology::Mesh
                             ? LinkType::XGmi
                             : LinkType::NvLink;

    if (cfg_.intra == IntraTopology::Switch) {
        gpuTx_.reserve(n);
        gpuRx_.reserve(n);
        for (int r = 0; r < n; ++r) {
            std::string tx = "gpu" + std::to_string(r) + ".tx";
            std::string rx = "gpu" + std::to_string(r) + ".rx";
            gpuTx_.push_back(std::make_unique<Link>(
                sched, intraType, paramsFor(tx, intra), tx, obs));
            gpuRx_.push_back(std::make_unique<Link>(
                sched, intraType, paramsFor(rx, intra), rx, obs));
        }
    } else {
        mesh_.resize(static_cast<std::size_t>(numNodes_) * g * g);
        for (int node = 0; node < numNodes_; ++node) {
            for (int a = 0; a < g; ++a) {
                for (int b = 0; b < g; ++b) {
                    if (a == b) {
                        continue;
                    }
                    int src = node * g + a;
                    int dst = node * g + b;
                    std::string name = "xgmi" + std::to_string(src) +
                                       "-" + std::to_string(dst);
                    mesh_[meshIndex(src, dst)] = std::make_unique<Link>(
                        sched, intraType, paramsFor(name, intra), name,
                        obs);
                }
            }
        }
    }

    LinkParams net{cfg_.nicBwGBps, cfg_.nicLatency, cfg_.nicPerMessage};
    nicTx_.reserve(n);
    nicRx_.reserve(n);
    for (int r = 0; r < n; ++r) {
        std::string tx = "nic" + std::to_string(r) + ".tx";
        std::string rx = "nic" + std::to_string(r) + ".rx";
        nicTx_.push_back(std::make_unique<Link>(
            sched, LinkType::InfiniBand, paramsFor(tx, net), tx, obs));
        nicRx_.push_back(std::make_unique<Link>(
            sched, LinkType::InfiniBand, paramsFor(rx, net), rx, obs));
    }
}

LinkParams
Fabric::paramsFor(const std::string& name, const LinkParams& base) const
{
    for (const auto& [linkName, factor] : degraded_) {
        if (linkName == name) {
            LinkParams scaled = base;
            scaled.bandwidthGBps = base.bandwidthGBps * factor;
            return scaled;
        }
    }
    return base;
}

void
Fabric::degradeLink(const std::string& name, double factor)
{
    for (auto* group : {&gpuTx_, &gpuRx_, &mesh_, &nicTx_, &nicRx_}) {
        for (std::unique_ptr<Link>& l : *group) {
            if (l != nullptr && l->name() == name) {
                l->scaleBandwidth(factor);
                if (obs_ != nullptr) {
                    // Hang reports cross-reference known-degraded
                    // links when classifying straggler chains.
                    obs_->watchdog().noteDegradedLink(name, factor);
                }
                return;
            }
        }
    }
    throw std::invalid_argument("degradeLink: no link named '" + name +
                                "'");
}

int
Fabric::meshIndex(int src, int dst) const
{
    const int g = cfg_.gpusPerNode;
    int node = nodeOf(src);
    return (node * g + localRankOf(src)) * g + localRankOf(dst);
}

Link&
Fabric::gpuTx(int rank)
{
    assert(cfg_.intra == IntraTopology::Switch);
    return *gpuTx_.at(rank);
}

Link&
Fabric::gpuRx(int rank)
{
    assert(cfg_.intra == IntraTopology::Switch);
    return *gpuRx_.at(rank);
}

Link&
Fabric::meshLink(int src, int dst)
{
    assert(cfg_.intra == IntraTopology::Mesh);
    assert(sameNode(src, dst) && src != dst);
    return *mesh_.at(meshIndex(src, dst));
}

Path
Fabric::intraPath(int src, int dst)
{
    if (!sameNode(src, dst)) {
        throw std::invalid_argument("intraPath requires same-node ranks");
    }
    if (src == dst) {
        throw std::invalid_argument("intraPath requires distinct ranks");
    }
    if (cfg_.intra == IntraTopology::Switch) {
        return Path({&gpuTx(src), &gpuRx(dst)});
    }
    return Path({&meshLink(src, dst)});
}

Path
Fabric::netPath(int src, int dst)
{
    if (src == dst) {
        throw std::invalid_argument("netPath requires distinct ranks");
    }
    return Path({nicTx_.at(src).get(), nicRx_.at(dst).get()});
}

Path
Fabric::p2pPath(int src, int dst)
{
    if (sameNode(src, dst)) {
        return intraPath(src, dst);
    }
    return netPath(src, dst);
}

std::pair<sim::Time, sim::Time>
Fabric::multimemReduce(int reader, const std::vector<int>& participants,
                       std::uint64_t bytes, double bwFactor)
{
    if (!cfg_.hasMultimem) {
        throw std::logic_error("multimem not supported on " + cfg_.name);
    }
    // The switch pulls `bytes` from every participant's memory and
    // pushes the reduced result to the reader: every participant's tx
    // port and the reader's rx port carry `bytes`. The occupying flow
    // is paced by the switch's multimem engine, so queued victims on
    // any of these ports blame the shared switch resource — and this
    // reservation itself blames whatever the busiest blocking port
    // was running (Path::lastCulprit semantics for the switch).
    sim::Time start = sched_->now();
    const Link* blockedOn = nullptr;
    auto consider = [&](Link& l) {
        start = std::max(start, l.nextFree());
        if (l.nextFree() > sched_->now() &&
            (blockedOn == nullptr ||
             l.nextFree() > blockedOn->nextFree())) {
            blockedOn = &l;
        }
    };
    for (int r : participants) {
        consider(gpuTx(r));
    }
    consider(gpuRx(reader));
    if (blockedOn != nullptr && !blockedOn->pacer().empty()) {
        // Same rate-aware rule as Path::reserve: a full-line-rate
        // occupant means the port itself is contended, so blame it;
        // a slower (or shared-engine, rate 0) pacer is the real cause.
        double pr = blockedOn->pacerRateGBps();
        lastSwitchCulprit_ = (pr <= 0.0 ||
                              pr < blockedOn->params().bandwidthGBps)
                                 ? blockedOn->pacer()
                                 : blockedOn->name();
    } else {
        lastSwitchCulprit_ = kSwitchMultimem;
    }
    sim::Time window =
        cfg_.intraPerMessage +
        sim::transferTime(bytes, cfg_.multimemBwGBps * bwFactor);
    if (obs_ != nullptr && obs_->metrics().enabled()) {
        switchWaitNs_->add(sim::toNs(start - sched_->now()));
        switchOccupancy_->addRange(start, start + window);
    }
    for (int r : participants) {
        gpuTx(r).occupy(start + window, bytes, window, kSwitchMultimem);
    }
    gpuRx(reader).occupy(start + window, bytes, window, kSwitchMultimem);
    sim::Time arrival =
        start + window + cfg_.intraLatency + cfg_.multimemLatency;
    if (obs_ != nullptr && obs_->tracer().enabled()) {
        obs_->tracer().span(obs::Category::Link, "multimem.reduce",
                            obs::kFabricPid, "nvswitch", start, arrival,
                            bytes);
    }
    return {start, arrival};
}

std::pair<sim::Time, sim::Time>
Fabric::multimemBroadcast(int writer, const std::vector<int>& participants,
                          std::uint64_t bytes, double bwFactor)
{
    if (!cfg_.hasMultimem) {
        throw std::logic_error("multimem not supported on " + cfg_.name);
    }
    sim::Time start = sched_->now();
    const Link* blockedOn = nullptr;
    auto consider = [&](Link& l) {
        start = std::max(start, l.nextFree());
        if (l.nextFree() > sched_->now() &&
            (blockedOn == nullptr ||
             l.nextFree() > blockedOn->nextFree())) {
            blockedOn = &l;
        }
    };
    consider(gpuTx(writer));
    for (int r : participants) {
        consider(gpuRx(r));
    }
    if (blockedOn != nullptr && !blockedOn->pacer().empty()) {
        // Same rate-aware rule as Path::reserve: a full-line-rate
        // occupant means the port itself is contended, so blame it;
        // a slower (or shared-engine, rate 0) pacer is the real cause.
        double pr = blockedOn->pacerRateGBps();
        lastSwitchCulprit_ = (pr <= 0.0 ||
                              pr < blockedOn->params().bandwidthGBps)
                                 ? blockedOn->pacer()
                                 : blockedOn->name();
    } else {
        lastSwitchCulprit_ = kSwitchMultimem;
    }
    sim::Time window =
        cfg_.intraPerMessage +
        sim::transferTime(bytes, cfg_.multimemBwGBps * bwFactor);
    if (obs_ != nullptr && obs_->metrics().enabled()) {
        switchWaitNs_->add(sim::toNs(start - sched_->now()));
        switchOccupancy_->addRange(start, start + window);
    }
    gpuTx(writer).occupy(start + window, bytes, window, kSwitchMultimem);
    for (int r : participants) {
        gpuRx(r).occupy(start + window, bytes, window, kSwitchMultimem);
    }
    sim::Time arrival =
        start + window + cfg_.intraLatency + cfg_.multimemLatency;
    if (obs_ != nullptr && obs_->tracer().enabled()) {
        obs_->tracer().span(obs::Category::Link, "multimem.broadcast",
                            obs::kFabricPid, "nvswitch", start, arrival,
                            bytes);
    }
    return {start, arrival};
}

std::uint64_t
Fabric::intraBytesCarried() const
{
    std::uint64_t total = 0;
    for (const auto& l : gpuTx_) {
        total += l->bytesCarried();
    }
    for (const auto& l : mesh_) {
        if (l) {
            total += l->bytesCarried();
        }
    }
    return total;
}

std::uint64_t
Fabric::netBytesCarried() const
{
    std::uint64_t total = 0;
    for (const auto& l : nicTx_) {
        total += l->bytesCarried();
    }
    return total;
}

Fabric::PortStats
Fabric::portStats(int rank) const
{
    PortStats st;
    if (cfg_.intra == IntraTopology::Switch) {
        st.txBytes = gpuTx_.at(rank)->bytesCarried();
        st.rxBytes = gpuRx_.at(rank)->bytesCarried();
        st.txBusy = gpuTx_.at(rank)->busyTime();
        st.rxBusy = gpuRx_.at(rank)->busyTime();
    } else {
        const int g = cfg_.gpusPerNode;
        const int node = nodeOf(rank);
        for (int b = 0; b < g; ++b) {
            int other = node * g + b;
            if (other == rank) {
                continue;
            }
            const auto& tx = mesh_.at(meshIndex(rank, other));
            const auto& rx = mesh_.at(meshIndex(other, rank));
            st.txBytes += tx->bytesCarried();
            st.rxBytes += rx->bytesCarried();
            st.txBusy = std::max(st.txBusy, tx->busyTime());
            st.rxBusy = std::max(st.rxBusy, rx->busyTime());
        }
    }
    st.nicTxBytes = nicTx_.at(rank)->bytesCarried();
    st.nicRxBytes = nicRx_.at(rank)->bytesCarried();
    return st;
}

std::string
Fabric::utilizationReport() const
{
    std::string out =
        "rank  intra tx(MB)  intra rx(MB)  tx busy  rx busy  "
        "nic tx(MB)  nic rx(MB)\n";
    char line[160];
    for (int r = 0; r < numGpus(); ++r) {
        PortStats st = portStats(r);
        std::snprintf(line, sizeof(line),
                      "%-4d  %12.1f  %12.1f  %7s  %7s  %10.1f  %10.1f\n",
                      r, st.txBytes / 1e6, st.rxBytes / 1e6,
                      sim::formatTime(st.txBusy).c_str(),
                      sim::formatTime(st.rxBusy).c_str(),
                      st.nicTxBytes / 1e6, st.nicRxBytes / 1e6);
        out += line;
    }
    return out;
}

} // namespace mscclpp::fabric
