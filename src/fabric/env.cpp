#include "fabric/env.hpp"

#include <stdexcept>

namespace mscclpp::fabric {

using sim::ns;
using sim::us;

namespace {

/** Constants shared by all NVIDIA + IB environments. */
void
fillCommonNvidia(EnvConfig& c)
{
    c.gpusPerNode = 8;
    c.intra = IntraTopology::Switch;
    c.kernelLaunch = us(3.0);
    c.graphLaunch = us(1.4);
    c.hostSyncOverhead = us(2.0);
    c.blockDispatch = ns(20);
    c.semaphorePoll = ns(250);
    c.atomicAddLatency = ns(550);
    c.threadFence = ns(120);
    c.blockBarrier = ns(30);
    c.fifoPushCost = ns(100);
    c.fifoPollLatency = ns(900);
    c.proxyDispatch = ns(150);
    c.fifoDepth = 128;
    c.ibPostOverhead = ns(350);
    c.ibPollOverhead = ns(200);
    c.ncclPrimOverhead = ns(180);
    c.ncclProxyStep = us(2.2);
    c.ncclSimpleEff = 0.92;
    c.ncclLl128Eff = 0.94;
    c.ncclSlotBytes = 512ull << 10;
    c.mscclInstrOverhead = ns(1400);
    c.dslInstrOverhead = ns(70);
    c.ll128Supported = true;
}

} // namespace

EnvConfig
makeA100_40G()
{
    EnvConfig c;
    c.name = "A100-40G";
    c.gpuName = "NVIDIA A100 (40G)";
    c.intraName = "NVLink 3.0";
    c.netName = "Mellanox HDR InfiniBand (200 Gb/s)";
    fillCommonNvidia(c);

    c.intraBwGBps = 300.0;          // NVLink 3.0 per-direction port rate
    c.intraLatency = ns(300);       // per hop; p2p store = 2 hops
    c.intraPerMessage = ns(50);
    c.hasMultimem = false;

    c.nicBwGBps = 25.0;             // HDR 200 Gb/s
    c.nicLatency = us(1.0);
    c.nicPerMessage = ns(120);
    c.ibAtomicLatency = us(1.7);

    c.hbmBwGBps = 1555.0;
    c.hbmCapacityGB = 40.0;
    c.fp16Tflops = 312.0;
    c.perThreadCopyGBps = 0.45;
    c.threadCopyPeakEff = 227.0 / 300.0;  // Section 2.2.2 anchor
    c.dmaCopyEff = 263.0 / 300.0;         // Section 2.2.2 anchor
    c.dmaInitLatency = us(1.3);
    return c;
}

EnvConfig
makeA100_80G()
{
    EnvConfig c = makeA100_40G();
    c.name = "A100-80G";
    c.gpuName = "NVIDIA A100 (80G)";
    c.hbmBwGBps = 2039.0;
    c.hbmCapacityGB = 80.0;
    return c;
}

EnvConfig
makeH100()
{
    EnvConfig c;
    c.name = "H100";
    c.gpuName = "NVIDIA H100";
    c.intraName = "NVLink 4.0";
    c.netName = "Quantum-2 CX7 InfiniBand (400 Gb/s)";
    fillCommonNvidia(c);

    c.intraBwGBps = 450.0;          // NVLink 4.0 per-direction port rate
    c.intraLatency = ns(250);       // per hop; p2p store = 2 hops
    c.intraPerMessage = ns(40);
    c.hasMultimem = true;           // NVLS via NVSwitch
    c.multimemBwGBps = 500.0;       // effective in-switch reduce rate
    c.multimemLatency = ns(250);

    c.nicBwGBps = 50.0;             // NDR 400 Gb/s
    c.nicLatency = ns(900);
    c.nicPerMessage = ns(100);
    c.ibAtomicLatency = us(1.5);

    c.hbmBwGBps = 3350.0;
    c.hbmCapacityGB = 80.0;
    c.fp16Tflops = 990.0;
    c.perThreadCopyGBps = 0.6;
    c.threadCopyPeakEff = 0.65;     // thread copy scales worse on NVLink4
    c.dmaCopyEff = 0.88;
    c.dmaInitLatency = us(1.2);
    c.kernelLaunch = us(2.6);
    c.graphLaunch = us(1.3);
    return c;
}

EnvConfig
makeMI300x()
{
    EnvConfig c;
    c.name = "MI300x";
    c.gpuName = "AMD MI300x";
    c.intraName = "Infinity Fabric Gen 4";
    c.netName = "Quantum-2 CX7 InfiniBand (400 Gb/s)";
    fillCommonNvidia(c);

    c.intra = IntraTopology::Mesh;  // full mesh, one xGMI link per pair
    c.intraBwGBps = 54.0;           // per peer link per direction
    c.intraLatency = ns(800);
    c.intraPerMessage = ns(60);
    c.hasMultimem = false;

    c.nicBwGBps = 50.0;
    c.nicLatency = ns(950);
    c.nicPerMessage = ns(110);
    c.ibAtomicLatency = us(1.6);

    c.hbmBwGBps = 5300.0;
    c.hbmCapacityGB = 192.0;
    c.fp16Tflops = 1307.0;
    c.perThreadCopyGBps = 0.35;
    c.threadCopyPeakEff = 0.88;     // single xGMI link is easy to saturate
    c.dmaCopyEff = 0.92;
    c.dmaInitLatency = us(1.5);
    c.kernelLaunch = us(3.4);       // HIP launch overhead is higher
    c.graphLaunch = us(1.7);
    c.semaphorePoll = ns(250);
    c.atomicAddLatency = ns(700);
    // RCCL is a hard fork of NCCL; its stack constants are NCCL's with
    // slightly higher per-step costs observed on ROCm.
    c.ncclPrimOverhead = ns(230);
    c.ncclProxyStep = us(2.6);
    c.ncclSimpleEff = 0.90;
    c.ll128Supported = false;       // LL128 needs NVLink write ordering
    return c;
}

EnvConfig
makeEnv(const std::string& name)
{
    if (name == "A100-40G") {
        return makeA100_40G();
    }
    if (name == "A100-80G") {
        return makeA100_80G();
    }
    if (name == "H100") {
        return makeH100();
    }
    if (name == "MI300x") {
        return makeMI300x();
    }
    throw std::invalid_argument("unknown environment: " + name);
}

} // namespace mscclpp::fabric
