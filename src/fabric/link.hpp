#ifndef MSCCLPP_FABRIC_LINK_HPP
#define MSCCLPP_FABRIC_LINK_HPP

#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mscclpp::obs {
class ObsContext;
class Counter;
class Summary;
class Histogram;
} // namespace mscclpp::obs

namespace mscclpp::fabric {

/** Physical interconnect technology carried by a Link. */
enum class LinkType
{
    NvLink,     ///< NVLink lane to an NVSwitch port (per direction)
    XGmi,       ///< Infinity Fabric peer-to-peer lane
    Pcie,       ///< PCIe host bridge lane
    InfiniBand, ///< NIC port to the IB switch
};

const char* toString(LinkType t);

/** Static parameters of one direction of a physical link. */
struct LinkParams
{
    double bandwidthGBps = 0.0;  ///< serialisation rate, GB/s (1e9 B/s)
    sim::Time latency = 0;       ///< propagation + hop latency
    sim::Time perMessage = 0;    ///< fixed wire cost per transfer
};

/**
 * One direction of a physical link, modelled as a serially-occupied
 * resource.
 *
 * A transfer reserves the link starting no earlier than the previous
 * transfer's last byte (cut-through, FIFO); the receiver sees the last
 * byte one latency after serialisation completes. Bandwidth can be
 * capped below the line rate per transfer to model sender-side limits
 * such as a thread-copy loop that cannot saturate the link.
 */
class Link
{
  public:
    /** @param obs optional per-machine observability context; when
     *  given, every reservation records a serialisation span on this
     *  link's fabric track plus byte/occupancy metrics. */
    Link(sim::Scheduler& sched, LinkType type, LinkParams params,
         std::string name, obs::ObsContext* obs = nullptr);

    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;
    Link(Link&&) = default;

    LinkType type() const { return type_; }
    const LinkParams& params() const { return params_; }
    const std::string& name() const { return name_; }

    /**
     * Scale this link's bandwidth by @p factor from now on (mid-run
     * fault injection; MSCCLPP_DEGRADED_LINKS covers construction
     * time). Transfers already reserved keep their windows — only new
     * reservations see the degraded rate. Throws
     * std::invalid_argument unless factor > 0.
     */
    void scaleBandwidth(double factor);

    /**
     * Compute the occupancy window for @p bytes and advance the
     * reservation cursor. @return the pair (start, arrival) where
     * arrival is when the last byte is visible at the far end.
     *
     * @param bwCapGBps optional sender-side bandwidth cap; 0 means
     *        line rate.
     * @param earliest the transfer cannot start before this time
     *        (used for multi-hop paths).
     */
    std::pair<sim::Time, sim::Time>
    reserve(std::uint64_t bytes, double bwCapGBps = 0.0,
            sim::Time earliest = 0);

    /** Suspend the calling task until a reserved transfer completes. */
    sim::Task<> transfer(std::uint64_t bytes, double bwCapGBps = 0.0);

    /** Time at which the link next becomes free. */
    sim::Time nextFree() const { return nextFree_; }

    /**
     * Occupy the link for an externally-computed window (multi-hop
     * paths reserve all hops for one shared window). Advances the
     * cursor to @p end and charges stats. @p pacer names the hop that
     * set the occupying flow's rate (empty: this link paced itself);
     * it is what a transfer queued behind this window should blame.
     * @p pacerRateGBps is the rate the occupying flow actually moves
     * at; 0 with a non-empty pacer marks a shared-engine pacer (e.g.
     * the switch multimem engine) that is always the culprit.
     */
    void occupy(sim::Time end, std::uint64_t bytes, sim::Time busy,
                const std::string& pacer = {},
                double pacerRateGBps = 0.0);

    /**
     * Name of the link that paced the flow currently holding the
     * reservation cursor. A degraded hop elsewhere on that flow's
     * path shows up here, so head-of-line victims on this port can
     * attribute their queue delay to the real culprit.
     */
    const std::string& pacer() const { return pacer_; }

    /**
     * Rate (GB/s) of the flow currently holding the cursor. When this
     * matches the link's own line rate, the occupant is not slow —
     * victims queued here are seeing genuine contention on this hop
     * and should blame it, not the occupant's pacer. 0 means the
     * occupant is paced by a shared engine (always blame the pacer).
     */
    double pacerRateGBps() const { return pacerRateGBps_; }

    /** Total bytes carried (stats). */
    std::uint64_t bytesCarried() const { return bytesCarried_; }

    /** Total occupancy accumulated (stats). */
    sim::Time busyTime() const { return busyTime_; }

    sim::Scheduler& scheduler() const { return *sched_; }

  private:
    void record(sim::Time start, sim::Time end, std::uint64_t bytes,
                sim::Time busy);

    sim::Scheduler* sched_;
    LinkType type_;
    LinkParams params_;
    std::string name_;
    obs::ObsContext* obs_ = nullptr;
    obs::Counter* bytesTxCounter_ = nullptr;
    obs::Summary* serializationNs_ = nullptr;
    obs::Histogram* occupancyHist_ = nullptr;
    obs::Summary* queueWaitNs_ = nullptr;
    sim::Time nextFree_ = 0;
    std::uint64_t bytesCarried_ = 0;
    sim::Time busyTime_ = 0;
    std::string pacer_;
    double pacerRateGBps_ = 0.0;
};

/**
 * An ordered sequence of links forming a route between two devices
 * (e.g. GPU port -> NVSwitch -> GPU port, or NIC -> IB switch -> NIC).
 *
 * A path transfer reserves every hop for the serialisation window and
 * completes after the bottleneck occupancy plus the sum of hop
 * latencies (cut-through switching).
 */
class Path
{
  public:
    Path() = default;
    explicit Path(std::vector<Link*> links) : links_(std::move(links)) {}

    bool empty() const { return links_.empty(); }
    const std::vector<Link*>& links() const { return links_; }

    /** Sum of hop latencies. */
    sim::Time latency() const;

    /** Minimum line rate over all hops. */
    double bottleneckGBps() const;

    /**
     * Reserve all hops for @p bytes. @return (start, arrival) with
     * arrival the time the last byte reaches the destination.
     */
    std::pair<sim::Time, sim::Time>
    reserve(std::uint64_t bytes, double bwCapGBps = 0.0) const;

    /** Suspend until @p bytes have fully arrived at the destination. */
    sim::Task<> transfer(std::uint64_t bytes, double bwCapGBps = 0.0) const;

    /**
     * The link the most recent reserve() actually waited on: the
     * pacer of the flow occupying the most-backlogged hop when the
     * reservation queued, or this path's own bottleneck hop when it
     * started immediately. Lets channel tracing blame a degraded
     * link even when the delay surfaces as queueing on a shared
     * victim port (head-of-line blocking).
     */
    const std::string& lastCulprit() const { return lastCulprit_; }

    sim::Scheduler& scheduler() const;

  private:
    std::vector<Link*> links_;
    mutable std::string lastCulprit_;
};

} // namespace mscclpp::fabric

#endif // MSCCLPP_FABRIC_LINK_HPP
