#include "channel/proxy_service.hpp"

#include "channel/port_channel.hpp"
#include "core/errors.hpp"

namespace mscclpp {

ProxyService::ProxyService(gpu::Machine& machine)
    : machine_(&machine),
      fifo_(machine.scheduler(), machine.config(), false, &machine.obs(),
            obs::kHostPid, "proxy.fifo")
{
}

int
ProxyService::registerChannel(PortChannel* channel)
{
    if (channels_.empty()) {
        int rank = channel->connection().localRank();
        wdParty_ = "proxy:service@r" + std::to_string(rank);
        fifo_.setWatchdogParties("rank" + std::to_string(rank), wdParty_);
        if (!running_) {
            machine_->obs().watchdog().setLiveness(wdParty_, false);
        }
    }
    channels_.push_back(channel);
    return static_cast<int>(channels_.size()) - 1;
}

void
ProxyService::start()
{
    if (running_) {
        return;
    }
    running_ = true;
    machine_->obs().watchdog().setLiveness(wdParty_, true);
    sim::detach(machine_->scheduler(), loop());
}

void
ProxyService::shutdown()
{
    if (!running_ || stopRequested_) {
        return;
    }
    stopRequested_ = true;
    ProxyRequest req;
    req.kind = ProxyRequest::Kind::Stop;
    fifo_.pushFromHost(req);
}

sim::Task<>
ProxyService::loop()
{
    const fabric::EnvConfig& cfg = machine_->config();
    for (;;) {
        ProxyRequest req = co_await fifo_.pop();
        if (req.kind == ProxyRequest::Kind::Stop) {
            break;
        }
        co_await sim::Delay(machine_->scheduler(), cfg.proxyDispatch,
                            "proxy");
        if (req.channelId < 0 ||
            req.channelId >= static_cast<int>(channels_.size())) {
            throw Error(ErrorCode::InternalError,
                        "proxy request for unknown channel");
        }
        // One CPU thread: requests are processed strictly in order,
        // including the wire pacing of large puts.
        co_await channels_[req.channelId]->processRequest(req);
        ++requestsServed_;
    }
    running_ = false;
    machine_->obs().watchdog().setLiveness(wdParty_, false);
}

} // namespace mscclpp
