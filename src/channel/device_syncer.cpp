#include "channel/device_syncer.hpp"

#include "core/errors.hpp"

#include <algorithm>

namespace mscclpp {

DeviceSyncer::DeviceSyncer(gpu::Machine& machine, std::vector<int> ranks)
    : machine_(&machine), ranks_(std::move(ranks))
{
    if (ranks_.size() < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "DeviceSyncer needs at least two ranks");
    }
    sems_.reserve(ranks_.size());
    rounds_.assign(ranks_.size(), 0);
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        sems_.push_back(
            std::make_unique<sim::SimSemaphore>(machine.scheduler()));
    }
}

int
DeviceSyncer::indexOf(int rank) const
{
    auto it = std::find(ranks_.begin(), ranks_.end(), rank);
    if (it == ranks_.end()) {
        throw Error(ErrorCode::InvalidUsage,
                    "rank is not part of this syncer group");
    }
    return static_cast<int>(it - ranks_.begin());
}

sim::Task<>
DeviceSyncer::barrier(gpu::BlockCtx& ctx, int rank)
{
    const int me = indexOf(rank);
    const fabric::EnvConfig& cfg = machine_->config();
    fabric::Fabric& fab = machine_->fabric();

    co_await sim::Delay(ctx.scheduler(), cfg.threadFence,
                        "channel.sync");
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        if (static_cast<int>(i) == me) {
            continue;
        }
        // Barrier flags are tiny control messages: latency-bound, not
        // queued behind bulk transfers.
        sim::Time arrival = machine_->scheduler().now() +
                            fab.p2pPath(rank, ranks_[i]).latency();
        sim::SimSemaphore* peer = sems_[i].get();
        machine_->scheduler().scheduleAt(
            arrival + cfg.atomicAddLatency, [peer] { peer->add(1); },
            "channel.sync");
    }
    std::uint64_t round = ++rounds_[me];
    co_await sems_[me]->waitUntil(round * (ranks_.size() - 1),
                                  cfg.semaphorePoll);
}

} // namespace mscclpp
