#ifndef MSCCLPP_CHANNEL_CHANNEL_MESH_HPP
#define MSCCLPP_CHANNEL_CHANNEL_MESH_HPP

#include "channel/memory_channel.hpp"
#include "channel/port_channel.hpp"
#include "channel/proxy_service.hpp"
#include "core/communicator.hpp"

#include <memory>
#include <vector>

namespace mscclpp {

/** Options for building an all-pairs channel mesh. */
struct MeshOptions
{
    Transport transport = Transport::Memory;
    Protocol protocol = Protocol::HB;
    /// Port meshes only: model GPU-initiated DMA (Section 3.2.1).
    bool deviceInitiatedPort = false;
    /// Port meshes only: one shared proxy thread per rank instead of
    /// a thread per channel (the production deployment model).
    bool sharedProxyService = false;
};

/**
 * All-pairs channel mesh over a group of communicators: one channel
 * per ordered rank pair (src -> dst), with handle exchange done
 * through each rank's bootstrap exactly like application code would.
 *
 * srcBufs[r] is what rank r's puts read from; dstBufs[p] is where
 * puts into rank p land (often a scratch buffer). The two may alias.
 */
class ChannelMesh
{
  public:
    static ChannelMesh build(const std::vector<Communicator*>& comms,
                             const std::vector<gpu::DeviceBuffer>& srcBufs,
                             const std::vector<gpu::DeviceBuffer>& dstBufs,
                             const MeshOptions& options = {});

    /**
     * Like build(), but only creates channels between ranks in the
     * same node (rank / gpusPerNode). Cross-node accesses throw.
     * Required for Memory transport on multi-node machines.
     */
    static ChannelMesh
    buildIntraNode(const std::vector<Communicator*>& comms,
                   const std::vector<gpu::DeviceBuffer>& srcBufs,
                   const std::vector<gpu::DeviceBuffer>& dstBufs,
                   const MeshOptions& options, int gpusPerNode);

    ~ChannelMesh();

    ChannelMesh(ChannelMesh&&) = default;
    ChannelMesh& operator=(ChannelMesh&&) = default;

    int size() const { return size_; }
    Transport transport() const { return options_.transport; }

    /** Channel rank -> peer (Memory transport meshes). */
    MemoryChannel& mem(int rank, int peer);

    /** Channel rank -> peer (Port transport meshes). */
    PortChannel& port(int rank, int peer);

    /** Stop all port proxies (no-op for memory meshes). */
    void shutdown();

  private:
    ChannelMesh() = default;

    static ChannelMesh
    buildFiltered(const std::vector<Communicator*>& comms,
                  const std::vector<gpu::DeviceBuffer>& srcBufs,
                  const std::vector<gpu::DeviceBuffer>& dstBufs,
                  const MeshOptions& options, bool (*filter)(int, int, int),
                  int filterArg);

    int index(int rank, int peer) const;

    int size_ = 0;
    MeshOptions options_;
    std::vector<std::unique_ptr<MemoryChannel>> memChannels_;
    std::vector<std::unique_ptr<PortChannel>> portChannels_;
    std::vector<std::unique_ptr<ProxyService>> services_; // per rank
};

} // namespace mscclpp

#endif // MSCCLPP_CHANNEL_CHANNEL_MESH_HPP
