#ifndef MSCCLPP_CHANNEL_DEVICE_SYNCER_HPP
#define MSCCLPP_CHANNEL_DEVICE_SYNCER_HPP

#include "gpu/kernel.hpp"
#include "gpu/machine.hpp"
#include "sim/sync.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace mscclpp {

/**
 * Cross-GPU barrier (the multiDeviceBarrier of Figure 5): every rank
 * atomically increments a flag on each peer, then spins until it has
 * observed one increment per peer for the current round.
 *
 * One DeviceSyncer is shared by the whole group; barrier() is called
 * once per rank per round from device code.
 */
class DeviceSyncer
{
  public:
    DeviceSyncer(gpu::Machine& machine, std::vector<int> ranks);

    const std::vector<int>& ranks() const { return ranks_; }

    /** Arrive from @p rank and wait for all peers (device side). */
    sim::Task<> barrier(gpu::BlockCtx& ctx, int rank);

  private:
    int indexOf(int rank) const;

    gpu::Machine* machine_;
    std::vector<int> ranks_;
    std::vector<std::unique_ptr<sim::SimSemaphore>> sems_;
    std::vector<std::uint64_t> rounds_;
};

} // namespace mscclpp

#endif // MSCCLPP_CHANNEL_DEVICE_SYNCER_HPP
