#include "channel/memory_channel.hpp"

#include "core/errors.hpp"

#include <cstring>

#include <deque>
#include <utility>
#include <vector>

namespace mscclpp {

namespace {

/**
 * Accumulates per-chunk blame from Path::lastCulprit() weighted by the
 * wall time each chunk cost the sending block, so the put span's
 * detail names the link that actually paced the transfer — which,
 * under head-of-line blocking, may be a degraded hop on someone
 * else's path rather than this channel's own bottleneck.
 */
class CulpritTally
{
  public:
    void charge(const std::string& culprit, sim::Time cost)
    {
        if (culprit.empty() || cost == 0) {
            return;
        }
        for (auto& [name, total] : tally_) {
            if (name == culprit) {
                total += cost;
                return;
            }
        }
        tally_.emplace_back(culprit, cost);
    }

    /** The culprit with the largest accumulated cost, or @p fallback
     *  when nothing was charged (e.g. an instant put). */
    std::string dominant(const std::string& fallback) const
    {
        const std::pair<std::string, sim::Time>* best = nullptr;
        for (const auto& entry : tally_) {
            if (best == nullptr || entry.second > best->second) {
                best = &entry;
            }
        }
        return best != nullptr ? best->first : fallback;
    }

  private:
    std::vector<std::pair<std::string, sim::Time>> tally_;
};

} // namespace

const char*
toString(Protocol p)
{
    return p == Protocol::LL ? "LL" : "HB";
}

MemoryChannel::MemoryChannel(std::shared_ptr<Connection> conn,
                             RegisteredMemory localMem,
                             RegisteredMemory remoteMem,
                             DeviceSemaphore* outbound,
                             DeviceSemaphore* inbound, Protocol protocol,
                             RegisteredMemory localRecvMem)
    : conn_(std::move(conn)),
      localMem_(localMem),
      remoteMem_(remoteMem),
      outbound_(outbound),
      inbound_(inbound),
      protocol_(protocol),
      localRecvMem_(localRecvMem.valid() ? localRecvMem : localMem)
{
    if (conn_ == nullptr || conn_->transport() != Transport::Memory) {
        throw Error(ErrorCode::InvalidUsage,
                    "MemoryChannel requires a Memory-transport connection");
    }
    obs_ = &conn_->machine().obs();
    putBytes_ = &obs_->metrics().counter("channel.put_bytes");
    signalCount_ = &obs_->metrics().counter("channel.signal_count");
    double minBw = 0.0;
    for (const fabric::Link* link : conn_->path().links()) {
        double bw = link->params().bandwidthGBps;
        if (bottleneckLink_.empty() || bw < minBw) {
            bottleneckLink_ = link->name();
            minBw = bw;
        }
    }
    // Memory-channel signals are device-to-device: a stalled wait() is
    // owed directly by the remote rank (no proxy in between).
    inbound_->setExpectedSignaler(
        "rank" + std::to_string(conn_->remoteRank()),
        "signal from rank" + std::to_string(conn_->remoteRank()) +
            " (memory channel, " + std::string(toString(protocol_)) +
            ")");
}

double
MemoryChannel::copyCap(const gpu::BlockCtx& ctx) const
{
    return ctx.threadCopyGBps();
}

std::string
MemoryChannel::blockTrack(const gpu::BlockCtx& ctx) const
{
    return "tb" + std::to_string(ctx.blockIdx());
}

void
MemoryChannel::traceDeviceOp(gpu::BlockCtx& ctx, const char* name,
                             sim::Time t0, std::uint64_t bytes,
                             std::string detail)
{
    if (!obs_->tracer().enabled()) {
        return;
    }
    obs_->tracer().span(obs::Category::Channel, name, conn_->localRank(),
                        blockTrack(ctx), t0, ctx.scheduler().now(), bytes,
                        -1, std::move(detail));
}

sim::Task<>
MemoryChannel::put(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                   std::uint64_t srcOff, std::uint64_t bytes)
{
    sim::Time t0 = ctx.scheduler().now();
    // Data becomes visible remotely as chunks arrive; the simulator
    // moves the bytes eagerly (correct algorithms never read before
    // wait).
    gpu::copyBytes(remoteMem_.buffer().view(dstOff, bytes),
                   localMem_.buffer().view(srcOff, bytes), bytes);
    // The store loop paces itself: each chunk is reserved when the
    // previous one has left the GPU, so concurrent flows interleave
    // on shared ports at chunk granularity like real packetised
    // links.
    sim::Scheduler& sched = ctx.scheduler();
    const std::uint64_t chunk = conn_->config().bulkChunkBytes;
    std::uint64_t off = 0;
    CulpritTally tally;
    do {
        std::uint64_t len = std::min(chunk, bytes - off);
        sim::Time issued = sched.now();
        auto [start, arrival] = conn_->reserveWrite(len, copyCap(ctx));
        // The block is busy until its stores for this chunk are
        // issued (serialisation end), not until remote visibility.
        sim::Time senderDone = arrival - conn_->path().latency();
        tally.charge(conn_->path().lastCulprit(),
                     senderDone > issued ? senderDone - issued : 0);
        if (senderDone > sched.now()) {
            co_await sim::Delay(sched, senderDone - sched.now(),
                                "channel.memory");
        }
        (void)start;
        off += len;
    } while (off < bytes);
    if (obs_->metrics().enabled()) {
        putBytes_->add(bytes);
    }
    traceDeviceOp(ctx, "mem.put", t0, bytes, tally.dominant(bottleneckLink_));
}

sim::Task<>
MemoryChannel::signal(gpu::BlockCtx& ctx)
{
    sim::Time t0 = ctx.scheduler().now();
    co_await sim::Delay(ctx.scheduler(), conn_->config().threadFence,
                        "channel.memory");
    sim::Time arrival = conn_->reserveAtomic();
    outbound_->arriveAt(arrival, conn_->localRank(), blockTrack(ctx));
    if (obs_->metrics().enabled()) {
        signalCount_->add(1);
    }
    traceDeviceOp(ctx, "mem.signal", t0);
}

sim::Task<>
MemoryChannel::putWithSignal(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                             std::uint64_t srcOff, std::uint64_t bytes)
{
    co_await put(ctx, dstOff, srcOff, bytes);
    co_await signal(ctx);
}

sim::Task<>
MemoryChannel::wait(gpu::BlockCtx& ctx)
{
    sim::Time t0 = ctx.scheduler().now();
    co_await inbound_->wait(conn_->localRank(), blockTrack(ctx));
    traceDeviceOp(ctx, "mem.wait", t0);
}

sim::Task<>
MemoryChannel::flush(gpu::BlockCtx& ctx)
{
    // Thread-copy stores are complete once put returns; nothing to
    // flush (Section 4.2.2).
    (void)ctx;
    co_return;
}

sim::Task<>
MemoryChannel::putPackets(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                          std::uint64_t srcOff, std::uint64_t bytes)
{
    if (protocol_ != Protocol::LL) {
        throw Error(ErrorCode::InvalidUsage,
                    "putPackets requires the LL protocol");
    }
    sim::Time t0 = ctx.scheduler().now();
    // Flags interleave with data: 2x wire traffic, but the write is
    // self-synchronising (no separate fence + atomic round).
    gpu::copyBytes(remoteMem_.buffer().view(dstOff, bytes),
                   localMem_.buffer().view(srcOff, bytes), bytes);
    sim::Scheduler& sched = ctx.scheduler();
    const std::uint64_t chunk = conn_->config().bulkChunkBytes;
    std::uint64_t off = 0;
    sim::Time lastArrival = 0;
    CulpritTally tally;
    do {
        std::uint64_t len = std::min(chunk, bytes - off);
        sim::Time issued = sched.now();
        auto [start, arrival] = conn_->reserveWrite(len * 2, copyCap(ctx));
        lastArrival = arrival;
        sim::Time senderDone = arrival - conn_->path().latency();
        tally.charge(conn_->path().lastCulprit(),
                     senderDone > issued ? senderDone - issued : 0);
        if (senderDone > sched.now()) {
            co_await sim::Delay(sched, senderDone - sched.now(),
                                "channel.memory");
        }
        (void)start;
        off += len;
    } while (off < bytes);
    outbound_->arriveAt(lastArrival, conn_->localRank(),
                        blockTrack(ctx));
    if (obs_->metrics().enabled()) {
        putBytes_->add(bytes);
    }
    traceDeviceOp(ctx, "mem.putPackets", t0, bytes,
                  tally.dominant(bottleneckLink_));
}

sim::Task<>
MemoryChannel::readPackets(gpu::BlockCtx& ctx)
{
    if (protocol_ != Protocol::LL) {
        throw Error(ErrorCode::InvalidUsage,
                    "readPackets requires the LL protocol");
    }
    sim::Time t0 = ctx.scheduler().now();
    co_await inbound_->wait(conn_->localRank(), blockTrack(ctx));
    traceDeviceOp(ctx, "mem.readPackets", t0);
}

sim::Task<>
MemoryChannel::writeElementBytes(gpu::BlockCtx& ctx, std::uint64_t off,
                                 const void* bytes, std::size_t size)
{
    if (protocol_ != Protocol::LL) {
        throw Error(ErrorCode::InvalidUsage,
                    "element write requires the LL protocol");
    }
    // One vector store carrying data + flag: 2x wire bytes, no fence.
    gpu::DeviceBuffer dst = remoteMem_.buffer().view(off, size);
    if (dst.data() != nullptr) {
        std::memcpy(dst.data(), bytes, size);
    }
    auto [start, arrival] = conn_->reserveWrite(size * 2);
    outbound_->arriveAt(arrival, conn_->localRank(), blockTrack(ctx));
    sim::Time senderDone = arrival - conn_->path().latency();
    sim::Scheduler& sched = ctx.scheduler();
    if (senderDone > sched.now()) {
        co_await sim::Delay(sched, senderDone - sched.now(),
                                "channel.memory");
    }
    (void)start;
}

sim::Task<>
MemoryChannel::readElementBytes(gpu::BlockCtx& ctx, std::uint64_t off,
                                void* bytes, std::size_t size)
{
    if (protocol_ != Protocol::LL) {
        throw Error(ErrorCode::InvalidUsage,
                    "element read requires the LL protocol");
    }
    // Spin on the element's flag, then return the data word. The
    // element lives in the *local* buffer the peer's channel writes
    // into, i.e. the mirror channel's destination.
    co_await inbound_->wait(conn_->localRank(), blockTrack(ctx));
    gpu::DeviceBuffer src = localRecvMem_.buffer().view(off, size);
    if (src.data() != nullptr) {
        std::memcpy(bytes, src.data(), size);
    }
}

} // namespace mscclpp
