#ifndef MSCCLPP_CHANNEL_PORT_CHANNEL_HPP
#define MSCCLPP_CHANNEL_PORT_CHANNEL_HPP

#include "core/connection.hpp"
#include "core/fifo.hpp"
#include "core/registered_memory.hpp"
#include "core/semaphore.hpp"
#include "gpu/kernel.hpp"

#include <memory>

namespace mscclpp {

class ProxyService;

/**
 * Channel over port-mapped I/O: the GPU enqueues requests into a
 * managed-memory FIFO and a dedicated CPU proxy thread initiates the
 * transfers (DMA copy intra-node, RDMA via ibv_post_send inter-node)
 * — the full Figure 7 workflow.
 *
 * The proxy is a simulated CPU task started by startProxy(); call
 * shutdown() (host side) before destroying the channel so its
 * coroutine exits cleanly.
 */
class PortChannel
{
  public:
    /**
     * @param deviceInitiated models the future hardware of Section
     *        3.2.1: the GPU posts transfer descriptors straight to
     *        the DMA engine/NIC, skipping the CPU proxy's managed-
     *        memory polling and dispatch costs. The API — and this
     *        class's interface — is unchanged, which is exactly the
     *        paper's portability argument for PortChannel.
     */
    PortChannel(std::shared_ptr<Connection> conn, RegisteredMemory localMem,
                RegisteredMemory remoteMem, DeviceSemaphore* outbound,
                DeviceSemaphore* inbound, bool deviceInitiated = false,
                ProxyService* service = nullptr);

    bool deviceInitiated() const { return deviceInitiated_; }

    /** True when a shared ProxyService processes this channel's
     *  requests instead of a dedicated per-channel CPU thread. */
    bool serviceManaged() const { return service_ != nullptr; }

    /**
     * Process one request (the proxy-side work of Figure 7). Called
     * by this channel's own proxy loop or by a shared ProxyService.
     */
    sim::Task<> processRequest(const ProxyRequest& req);

    ~PortChannel();

    Connection& connection() const { return *conn_; }
    const RegisteredMemory& localMem() const { return localMem_; }
    const RegisteredMemory& remoteMem() const { return remoteMem_; }
    Fifo& fifo() { return fifo_; }

    /** The semaphore our wait() blocks on (fault injection hooks). */
    DeviceSemaphore* inboundSemaphore() { return inbound_; }

    /** Launch the proxy task (idempotent). Host side. */
    void startProxy();

    /** Ask the proxy to exit; completes after the scheduler drains. */
    void shutdown();

    // ---- device-side primitives (Figure 6) -------------------------------

    /**
     * Enqueue an asynchronous transfer of @p bytes from
     * localMem[srcOff] to remoteMem[dstOff]. Returns once the request
     * is in the FIFO (back-pressure applies when it is full); the
     * source buffer may not be reused until flush().
     */
    sim::Task<> put(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                    std::uint64_t srcOff, std::uint64_t bytes);

    /** put + signal in one FIFO round (fused primitive). */
    sim::Task<> putWithSignal(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                              std::uint64_t srcOff, std::uint64_t bytes);

    /** put + signal + flush fused: returns when the transfer has
     *  fully drained and the source is reusable. */
    sim::Task<> putWithSignalAndFlush(gpu::BlockCtx& ctx,
                                      std::uint64_t dstOff,
                                      std::uint64_t srcOff,
                                      std::uint64_t bytes);

    /** Enqueue a remote semaphore increment, ordered after prior puts. */
    sim::Task<> signal(gpu::BlockCtx& ctx);

    /** Wait for the next inbound signal (no proxy involvement). */
    sim::Task<> wait(gpu::BlockCtx& ctx);

    /**
     * Block until every previously enqueued transfer has completed on
     * the wire; afterwards the source buffer is reusable.
     */
    sim::Task<> flush(gpu::BlockCtx& ctx);

    // ---- stats ------------------------------------------------------------

    std::uint64_t putsIssued() const { return putsIssued_; }
    std::uint64_t bytesPut() const { return bytesPut_; }

  private:
    sim::Task<> proxyLoop();
    sim::Task<> handlePut(const ProxyRequest& req);
    void handleSignal();
    sim::Task<> submit(ProxyRequest req, gpu::BlockCtx& ctx);

    /** Device-side Channel span on the calling block's track. */
    void traceDeviceOp(gpu::BlockCtx& ctx, const char* name, sim::Time t0,
                       std::uint64_t bytes = 0);

    /** The calling block's trace track ("tb<N>"). */
    std::string blockTrack(const gpu::BlockCtx& ctx) const;

    std::shared_ptr<Connection> conn_;
    RegisteredMemory localMem_;
    RegisteredMemory remoteMem_;
    DeviceSemaphore* outbound_;
    DeviceSemaphore* inbound_;
    obs::ObsContext* obs_ = nullptr;
    obs::Counter* putBytes_ = nullptr;
    obs::Counter* signalCount_ = nullptr;
    obs::Counter* proxyRequests_ = nullptr;
    obs::Summary* pollToPostNs_ = nullptr;
    Fifo fifo_;
    sim::SimSemaphore flushDone_;
    std::uint64_t flushTickets_ = 0;
    sim::Time lastCompletion_ = 0;
    bool proxyRunning_ = false;
    bool stopRequested_ = false;
    std::uint64_t putsIssued_ = 0;
    std::uint64_t bytesPut_ = 0;
    bool deviceInitiated_ = false;
    ProxyService* service_ = nullptr;
    int serviceChannelId_ = -1;
    /// Channel id stamped on traced requests/spans so the analyzer can
    /// pair a proxy-side span with the device push that caused it.
    /// Equals serviceChannelId_ when a shared service routes by it;
    /// dedicated channels draw from a disjoint id space.
    int traceChannelId_ = -1;
    std::string proxyTrack_;     ///< per-remote proxy timeline name
    std::string bottleneckLink_; ///< slowest hop of the path (tracing)
    std::string proxyParty_;     ///< watchdog party for our proxy side
    std::string localParty_;     ///< watchdog party for the local rank
};

} // namespace mscclpp

#endif // MSCCLPP_CHANNEL_PORT_CHANNEL_HPP
