#ifndef MSCCLPP_CHANNEL_SWITCH_CHANNEL_HPP
#define MSCCLPP_CHANNEL_SWITCH_CHANNEL_HPP

#include "core/registered_memory.hpp"
#include "gpu/kernel.hpp"
#include "gpu/types.hpp"

#include <vector>

namespace mscclpp {

/**
 * Channel over switch-mapped I/O (Section 4.2.3): a multimem address
 * spans one buffer per participating GPU; reduce pulls all replicas
 * through the switch and reduces in-network (multimem.ld_reduce),
 * broadcast pushes one value to all replicas (multimem.st).
 *
 * Requires NVLS-capable hardware (EnvConfig::hasMultimem).
 */
class SwitchChannel
{
  public:
    /**
     * @param ranks the GPU group sharing the multimem address.
     * @param buffers one registered buffer per rank (same size),
     *        ordered like @p ranks — together they form the multimem
     *        address space.
     * @param myRank the local GPU this handle executes on.
     */
    SwitchChannel(gpu::Machine& machine, std::vector<int> ranks,
                  std::vector<RegisteredMemory> buffers, int myRank);

    int myRank() const { return myRank_; }
    const std::vector<int>& ranks() const { return ranks_; }

    /**
     * In-switch reduction: dst[i] = op over all replicas of
     * multimem[srcOff + i], written to the local buffer @p dst.
     */
    sim::Task<> reduce(gpu::BlockCtx& ctx, gpu::DeviceBuffer dst,
                       std::uint64_t srcOff, std::uint64_t bytes,
                       gpu::DataType type, gpu::ReduceOp op);

    /**
     * In-switch multicast: every replica of multimem[dstOff..] is
     * overwritten with @p src from the local GPU.
     */
    sim::Task<> broadcast(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                          gpu::DeviceBuffer src, std::uint64_t bytes);

  private:
    gpu::Machine* machine_;
    std::vector<int> ranks_;
    std::vector<RegisteredMemory> buffers_;
    int myRank_;
};

} // namespace mscclpp

#endif // MSCCLPP_CHANNEL_SWITCH_CHANNEL_HPP
