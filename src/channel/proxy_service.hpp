#ifndef MSCCLPP_CHANNEL_PROXY_SERVICE_HPP
#define MSCCLPP_CHANNEL_PROXY_SERVICE_HPP

#include "core/fifo.hpp"
#include "gpu/machine.hpp"

#include <vector>

namespace mscclpp {

class PortChannel;

/**
 * A single CPU proxy thread serving many PortChannels through one
 * request FIFO — the production deployment model (one proxy thread
 * per process) as opposed to the paper's one-thread-per-channel
 * description. Requests carry their channel id; the service
 * dispatches them in FIFO order, so heavy fan-out serialises on the
 * one CPU thread (measured by bench/abl_proxy_service).
 */
class ProxyService
{
  public:
    explicit ProxyService(gpu::Machine& machine);

    gpu::Machine& machine() const { return *machine_; }
    Fifo& fifo() { return fifo_; }

    /** Register @p channel; returns the id its requests must carry. */
    int registerChannel(PortChannel* channel);

    /**
     * Watchdog party name of this service's proxy thread
     * ("proxy:service@r<rank>", fixed by the first registered
     * channel's local rank — meshes build one service per rank).
     */
    const std::string& watchdogParty() const { return wdParty_; }

    /** Launch the service loop (idempotent). */
    void start();

    /** Ask the loop to exit; completes once the scheduler drains. */
    void shutdown();

    std::uint64_t requestsServed() const { return requestsServed_; }

  private:
    sim::Task<> loop();

    gpu::Machine* machine_;
    Fifo fifo_;
    std::vector<PortChannel*> channels_;
    bool running_ = false;
    bool stopRequested_ = false;
    std::uint64_t requestsServed_ = 0;
    std::string wdParty_ = "proxy:service";
};

} // namespace mscclpp

#endif // MSCCLPP_CHANNEL_PROXY_SERVICE_HPP
