#include "channel/port_channel.hpp"

#include "channel/proxy_service.hpp"
#include "core/errors.hpp"
#include "gpu/compute.hpp"

#include <deque>

namespace mscclpp {

PortChannel::PortChannel(std::shared_ptr<Connection> conn,
                         RegisteredMemory localMem,
                         RegisteredMemory remoteMem,
                         DeviceSemaphore* outbound,
                         DeviceSemaphore* inbound, bool deviceInitiated,
                         ProxyService* service)
    : conn_(std::move(conn)),
      localMem_(localMem),
      remoteMem_(remoteMem),
      outbound_(outbound),
      inbound_(inbound),
      obs_(&conn_->machine().obs()),
      fifo_(conn_->machine().scheduler(), conn_->config(),
            deviceInitiated, obs_, conn_->localRank(),
            "fifo->r" + std::to_string(conn_->remoteRank())),
      flushDone_(conn_->machine().scheduler()),
      deviceInitiated_(deviceInitiated),
      service_(service)
{
    if (conn_ == nullptr || conn_->transport() != Transport::Port) {
        throw Error(ErrorCode::InvalidUsage,
                    "PortChannel requires a Port-transport connection");
    }
    putBytes_ = &obs_->metrics().counter("channel.put_bytes");
    signalCount_ = &obs_->metrics().counter("channel.signal_count");
    proxyRequests_ = &obs_->metrics().counter("proxy.requests");
    pollToPostNs_ = &obs_->metrics().summary("proxy.poll_to_post_ns");
    if (service_ != nullptr) {
        serviceChannelId_ = service_->registerChannel(this);
        service_->start();
        traceChannelId_ = serviceChannelId_;
    } else {
        // Dedicated channels route by FIFO, not id, so the id only
        // exists for trace matching; draw from a range no service
        // registration index will reach.
        static int nextDedicatedTraceId = 1 << 20;
        traceChannelId_ = nextDedicatedTraceId++;
    }
    proxyTrack_ = "proxy->r" + std::to_string(conn_->remoteRank());
    double minBw = 0.0;
    for (const fabric::Link* link : conn_->path().links()) {
        double bw = link->params().bandwidthGBps;
        if (bottleneckLink_.empty() || bw < minBw) {
            bottleneckLink_ = link->name();
            minBw = bw;
        }
    }

    // Watchdog wiring: party names for the wait-for graph. Our wait()
    // is owed by the *remote* side's proxy (its handleSignal posts the
    // increment); channel meshes build both directions with the same
    // options, so the remote proxy's name is computable here.
    const int local = conn_->localRank();
    const int remote = conn_->remoteRank();
    localParty_ = "rank" + std::to_string(local);
    proxyParty_ =
        service_ != nullptr
            ? service_->watchdogParty()
            : "proxy:r" + std::to_string(local) + "->r" +
                  std::to_string(remote);
    std::string remoteProxyParty =
        service_ != nullptr
            ? "proxy:service@r" + std::to_string(remote)
            : "proxy:r" + std::to_string(remote) + "->r" +
                  std::to_string(local);
    inbound_->setExpectedSignaler(
        remoteProxyParty, "signal from rank" + std::to_string(remote) +
                              " via port channel (proxy)");
    fifo_.setWatchdogParties(localParty_, proxyParty_);
    if (service_ == nullptr) {
        // Not started yet: a hang chain reaching this proxy before
        // startProxy() correctly reads as a dead proxy.
        obs_->watchdog().setLiveness(proxyParty_, false);
    }
}

PortChannel::~PortChannel() = default;

void
PortChannel::traceDeviceOp(gpu::BlockCtx& ctx, const char* name,
                           sim::Time t0, std::uint64_t bytes)
{
    if (!obs_->tracer().enabled()) {
        return;
    }
    obs_->tracer().span(obs::Category::Channel, name, conn_->localRank(),
                        blockTrack(ctx), t0,
                        conn_->machine().scheduler().now(), bytes,
                        traceChannelId_);
}

std::string
PortChannel::blockTrack(const gpu::BlockCtx& ctx) const
{
    return "tb" + std::to_string(ctx.blockIdx());
}

void
PortChannel::startProxy()
{
    if (service_ != nullptr || proxyRunning_) {
        return; // a shared service drives this channel
    }
    proxyRunning_ = true;
    obs_->watchdog().setLiveness(proxyParty_, true);
    sim::detach(conn_->machine().scheduler(), proxyLoop());
}

void
PortChannel::shutdown()
{
    if (service_ != nullptr) {
        service_->shutdown();
        return;
    }
    if (!proxyRunning_ || stopRequested_) {
        return;
    }
    stopRequested_ = true;
    ProxyRequest req;
    req.kind = ProxyRequest::Kind::Stop;
    fifo_.pushFromHost(req);
}

sim::Task<>
PortChannel::submit(ProxyRequest req, gpu::BlockCtx& ctx)
{
    if (obs_->tracer().enabled()) {
        req.srcPid = conn_->localRank();
        req.srcTrack = blockTrack(ctx);
    }
    if (service_ != nullptr) {
        req.channelId = serviceChannelId_;
        co_await service_->fifo().push(req);
    } else {
        req.channelId = traceChannelId_;
        co_await fifo_.push(req);
    }
}

sim::Task<>
PortChannel::put(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                 std::uint64_t srcOff, std::uint64_t bytes)
{
    sim::Time t0 = conn_->machine().scheduler().now();
    ProxyRequest req;
    req.kind = ProxyRequest::Kind::Put;
    req.dstOff = dstOff;
    req.srcOff = srcOff;
    req.bytes = bytes;
    co_await submit(req, ctx);
    if (obs_->metrics().enabled()) {
        putBytes_->add(bytes);
    }
    traceDeviceOp(ctx, "port.put", t0, bytes);
}

sim::Task<>
PortChannel::putWithSignal(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                           std::uint64_t srcOff, std::uint64_t bytes)
{
    // One FIFO round for both requests: the proxy treats a put with
    // the signal flag as put-then-signal.
    co_await put(ctx, dstOff, srcOff, bytes);
    co_await signal(ctx);
}

sim::Task<>
PortChannel::putWithSignalAndFlush(gpu::BlockCtx& ctx,
                                   std::uint64_t dstOff,
                                   std::uint64_t srcOff,
                                   std::uint64_t bytes)
{
    co_await putWithSignal(ctx, dstOff, srcOff, bytes);
    co_await flush(ctx);
}

sim::Task<>
PortChannel::signal(gpu::BlockCtx& ctx)
{
    sim::Time t0 = conn_->machine().scheduler().now();
    ProxyRequest req;
    req.kind = ProxyRequest::Kind::Signal;
    co_await submit(req, ctx);
    if (obs_->metrics().enabled()) {
        signalCount_->add(1);
    }
    traceDeviceOp(ctx, "port.signal", t0);
}

sim::Task<>
PortChannel::wait(gpu::BlockCtx& ctx)
{
    sim::Time t0 = conn_->machine().scheduler().now();
    co_await inbound_->wait(conn_->localRank(), blockTrack(ctx));
    traceDeviceOp(ctx, "port.wait", t0);
}

sim::Task<>
PortChannel::flush(gpu::BlockCtx& ctx)
{
    sim::Time t0 = conn_->machine().scheduler().now();
    ProxyRequest req;
    req.kind = ProxyRequest::Kind::Flush;
    req.flushSeq = ++flushTickets_;
    std::uint64_t ticket = req.flushSeq;
    co_await submit(req, ctx);
    obs::Watchdog& wd = obs_->watchdog();
    std::uint64_t wdToken = 0;
    if (wd.enabled()) {
        wdToken = wd.registerWait(
            obs::WaitKind::Flush, localParty_,
            localParty_ + "/" + blockTrack(ctx) + " port.flush",
            proxyParty_,
            "flush ticket " + std::to_string(ticket) + " ack");
    }
    co_await flushDone_.waitUntil(ticket, conn_->config().semaphorePoll);
    wd.completeWait(wdToken);
    traceDeviceOp(ctx, "port.flush", t0);
}

sim::Task<>
PortChannel::handlePut(const ProxyRequest& req)
{
    gpu::copyBytes(remoteMem_.buffer().view(req.dstOff, req.bytes),
                   localMem_.buffer().view(req.srcOff, req.bytes),
                   req.bytes);
    // The DMA engine / QP streams the transfer chunk by chunk; the
    // proxy serialises transfers on this channel (engine FIFO order),
    // which also keeps a following signal behind the data.
    sim::Scheduler& sched = conn_->machine().scheduler();
    const std::uint64_t chunk = conn_->config().bulkChunkBytes;
    std::uint64_t off = 0;
    do {
        std::uint64_t len = std::min(chunk, req.bytes - off);
        auto [start, arrival] = conn_->reserveWrite(len);
        lastCompletion_ = std::max(lastCompletion_, arrival);
        sim::Time engineFree = arrival - conn_->path().latency();
        if (engineFree > sched.now()) {
            obs::Watchdog& wd = obs_->watchdog();
            std::uint64_t wdToken = 0;
            if (wd.enabled()) {
                const std::string& culprit =
                    conn_->path().lastCulprit().empty()
                        ? bottleneckLink_
                        : conn_->path().lastCulprit();
                wdToken = wd.registerWait(
                    obs::WaitKind::Reservation, proxyParty_,
                    proxyParty_ + " DMA chunk pacing",
                    "link:" + culprit,
                    std::to_string(len) + "B reservation behind " +
                        culprit);
            }
            co_await sim::Delay(sched, engineFree - sched.now(),
                                "channel.port");
            wd.completeWait(wdToken);
        }
        (void)start;
        off += len;
    } while (off < req.bytes);
    ++putsIssued_;
    bytesPut_ += req.bytes;
}

void
PortChannel::handleSignal()
{
    // Same queue-pair / copy-engine ordering as the preceding puts:
    // the route's FIFO reservation puts the atomic after them.
    sim::Time arrival = conn_->reserveAtomic();
    if (!conn_->sameNode()) {
        arrival += conn_->config().ibAtomicLatency -
                   conn_->config().atomicAddLatency;
    }
    // The signalling timeline is this channel's proxy: the matching
    // wait() draws its causal edge back to the proxy-side post.
    outbound_->arriveAt(arrival, conn_->localRank(), proxyTrack_);
}

sim::Task<>
PortChannel::processRequest(const ProxyRequest& req)
{
    sim::Scheduler& sched = conn_->machine().scheduler();
    const fabric::EnvConfig& cfg = conn_->config();
    const sim::Time putStart =
        deviceInitiated_ ? sim::ns(200)
                         : (conn_->sameNode() ? cfg.dmaInitLatency
                                              : cfg.ibPostOverhead);
    const sim::Time signalStart =
        deviceInitiated_ ? sim::ns(100) : cfg.ibPostOverhead;
    sim::Time t0 = sched.now();
    if (req.kind != ProxyRequest::Kind::Stop &&
        obs_->metrics().enabled()) {
        proxyRequests_->add(1);
        pollToPostNs_->add(sim::toNs(t0 - req.pushedAt));
    }
    const char* opName = nullptr;
    switch (req.kind) {
      case ProxyRequest::Kind::Put:
        co_await sim::Delay(sched, putStart, "channel.port");
        co_await handlePut(req);
        opName = "proxy.put";
        break;
      case ProxyRequest::Kind::Signal:
        co_await sim::Delay(sched, signalStart, "channel.port");
        handleSignal();
        opName = "proxy.signal";
        break;
      case ProxyRequest::Kind::Flush: {
        // Poll the completion queue until all prior transfers are
        // done (ibv_poll_cq).
        sim::Time done = lastCompletion_ + cfg.ibPollOverhead;
        if (done > sched.now()) {
            co_await sim::Delay(sched, done - sched.now(),
                                "channel.port");
        }
        flushDone_.add(1);
        opName = "proxy.flush";
        break;
      }
      case ProxyRequest::Kind::Stop:
        break;
    }
    if (opName != nullptr && obs_->tracer().enabled()) {
        // For puts, blame the hop the last DMA chunk actually queued
        // behind (head-of-line attribution); fall back to this
        // channel's own static bottleneck for an uncontended path.
        std::string detail;
        if (req.kind == ProxyRequest::Kind::Put) {
            detail = conn_->path().lastCulprit().empty()
                         ? bottleneckLink_
                         : conn_->path().lastCulprit();
        }
        obs_->tracer().span(
            obs::Category::Proxy, opName, conn_->localRank(),
            proxyTrack_, t0, sched.now(), req.bytes, traceChannelId_,
            std::move(detail));
    }
}

sim::Task<>
PortChannel::proxyLoop()
{
    sim::Scheduler& sched = conn_->machine().scheduler();
    const fabric::EnvConfig& cfg = conn_->config();
    // A device-initiated engine snoops descriptors directly: no
    // managed-memory poll and a much cheaper dispatch.
    const sim::Time dispatch =
        deviceInitiated_ ? sim::ns(50) : cfg.proxyDispatch;
    for (;;) {
        ProxyRequest req = co_await fifo_.pop();
        if (req.kind == ProxyRequest::Kind::Stop) {
            break;
        }
        co_await sim::Delay(sched, dispatch, "channel.port");
        co_await processRequest(req);
    }
    proxyRunning_ = false;
    obs_->watchdog().setLiveness(proxyParty_, false);
}

} // namespace mscclpp
