#include "channel/switch_channel.hpp"

#include "core/errors.hpp"
#include "gpu/compute.hpp"

#include <algorithm>

namespace mscclpp {

SwitchChannel::SwitchChannel(gpu::Machine& machine, std::vector<int> ranks,
                             std::vector<RegisteredMemory> buffers,
                             int myRank)
    : machine_(&machine),
      ranks_(std::move(ranks)),
      buffers_(std::move(buffers)),
      myRank_(myRank)
{
    if (!machine.config().hasMultimem) {
        throw Error(ErrorCode::InvalidUsage,
                    "SwitchChannel requires multimem-capable hardware");
    }
    if (ranks_.size() != buffers_.size() || ranks_.size() < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "SwitchChannel needs >= 2 ranks with one buffer each");
    }
    if (std::find(ranks_.begin(), ranks_.end(), myRank_) == ranks_.end()) {
        throw Error(ErrorCode::InvalidUsage,
                    "myRank is not part of the switch group");
    }
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        if (buffers_[i].rank() != ranks_[i]) {
            throw Error(ErrorCode::InvalidUsage,
                        "multimem buffer order must match rank order");
        }
    }
}

sim::Task<>
SwitchChannel::reduce(gpu::BlockCtx& ctx, gpu::DeviceBuffer dst,
                      std::uint64_t srcOff, std::uint64_t bytes,
                      gpu::DataType type, gpu::ReduceOp op)
{
    auto [start, arrival] =
        machine_->fabric().multimemReduce(myRank_, ranks_, bytes);
    // Snapshot before suspending: another rank's reservation would
    // overwrite the fabric's last-culprit slot during the delay.
    std::string culprit = machine_->fabric().lastSwitchCulprit();
    // Functional result: element-wise reduce of every rank's replica.
    // Stage into a temporary first — dst may alias one of the
    // replicas (in-place AllReduce), and the switch reads all inputs
    // before any output is written.
    if (dst.data() != nullptr) {
        gpu::Buffer staging(myRank_, 0, bytes, /*materialized=*/true);
        gpu::DeviceBuffer tmp(&staging, 0, bytes);
        gpu::copyBytes(tmp, buffers_[0].buffer().view(srcOff, bytes),
                       bytes);
        for (std::size_t i = 1; i < buffers_.size(); ++i) {
            gpu::accumulate(tmp, buffers_[i].buffer().view(srcOff, bytes),
                            bytes, type, op);
        }
        gpu::copyBytes(dst, tmp, bytes);
    }
    sim::Scheduler& sched = ctx.scheduler();
    sim::Time t0 = sched.now();
    obs::ObsContext& obs = machine_->obs();
    if (arrival > sched.now()) {
        std::uint64_t wdToken = 0;
        if (obs.watchdog().enabled()) {
            wdToken = obs.watchdog().registerWait(
                obs::WaitKind::Reservation,
                "rank" + std::to_string(myRank_),
                "rank" + std::to_string(myRank_) + " switch.reduce",
                "link:" + culprit,
                std::to_string(bytes) + "B multimem reservation behind " +
                    culprit);
        }
        co_await sim::Delay(sched, arrival - sched.now(),
                            "channel.switch");
        obs.watchdog().completeWait(wdToken);
    }
    (void)start;
    if (obs.tracer().enabled()) {
        obs.tracer().span(obs::Category::Channel, "switch.reduce", myRank_,
                          "tb" + std::to_string(ctx.blockIdx()), t0,
                          sched.now(), bytes, -1, culprit);
    }
}

sim::Task<>
SwitchChannel::broadcast(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                         gpu::DeviceBuffer src, std::uint64_t bytes)
{
    auto [start, arrival] =
        machine_->fabric().multimemBroadcast(myRank_, ranks_, bytes);
    std::string culprit = machine_->fabric().lastSwitchCulprit();
    for (auto& mem : buffers_) {
        gpu::copyBytes(mem.buffer().view(dstOff, bytes), src, bytes);
    }
    sim::Scheduler& sched = ctx.scheduler();
    sim::Time t0 = sched.now();
    obs::ObsContext& obs = machine_->obs();
    if (arrival > sched.now()) {
        std::uint64_t wdToken = 0;
        if (obs.watchdog().enabled()) {
            wdToken = obs.watchdog().registerWait(
                obs::WaitKind::Reservation,
                "rank" + std::to_string(myRank_),
                "rank" + std::to_string(myRank_) + " switch.broadcast",
                "link:" + culprit,
                std::to_string(bytes) + "B multimem reservation behind " +
                    culprit);
        }
        co_await sim::Delay(sched, arrival - sched.now(),
                            "channel.switch");
        obs.watchdog().completeWait(wdToken);
    }
    (void)start;
    if (obs.tracer().enabled()) {
        obs.tracer().span(obs::Category::Channel, "switch.broadcast",
                          myRank_, "tb" + std::to_string(ctx.blockIdx()),
                          t0, sched.now(), bytes, -1, culprit);
    }
    if (obs.metrics().enabled()) {
        obs.metrics().counter("channel.put_bytes").add(bytes);
    }
}

} // namespace mscclpp
