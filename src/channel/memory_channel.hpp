#ifndef MSCCLPP_CHANNEL_MEMORY_CHANNEL_HPP
#define MSCCLPP_CHANNEL_MEMORY_CHANNEL_HPP

#include "core/connection.hpp"
#include "core/registered_memory.hpp"
#include "core/semaphore.hpp"
#include "gpu/compute.hpp"
#include "gpu/kernel.hpp"
#include "obs/obs.hpp"

#include <memory>

namespace mscclpp {

/**
 * MemoryChannel data-transfer protocols (Section 4.2.2).
 *
 * HB synchronises once per chunk (high bandwidth, higher latency); LL
 * interleaves a flag with every vector store so the receiver can
 * consume data at packet granularity (low latency, roughly half the
 * effective bandwidth because flags double the wire traffic).
 */
enum class Protocol
{
    LL,
    HB,
};

const char* toString(Protocol p);

/**
 * Peer-to-peer channel using thread-copy over p2p memory access
 * (NVLink / xGMI / PCIe). All primitives are device-side: they take
 * the calling thread block's context, whose thread count shapes the
 * achievable copy bandwidth.
 *
 * Semantics follow Figure 4: put is zero-copy, one-sided and
 * asynchronous (the task completes when the calling block's stores
 * are issued, not when the peer observes them); signal/wait order the
 * data; flush is a no-op for this channel.
 */
class MemoryChannel
{
  public:
    /**
     * @param conn Memory-transport connection local -> remote.
     * @param localMem source buffer (put reads from it).
     * @param remoteMem destination buffer on the peer.
     * @param outbound semaphore on the *peer* GPU that our signal()
     *        increments.
     * @param inbound semaphore on *our* GPU that our wait() polls.
     */
    MemoryChannel(std::shared_ptr<Connection> conn,
                  RegisteredMemory localMem, RegisteredMemory remoteMem,
                  DeviceSemaphore* outbound, DeviceSemaphore* inbound,
                  Protocol protocol,
                  RegisteredMemory localRecvMem = RegisteredMemory());

    Protocol protocol() const { return protocol_; }
    Connection& connection() const { return *conn_; }
    const RegisteredMemory& localMem() const { return localMem_; }
    const RegisteredMemory& remoteMem() const { return remoteMem_; }

    /** The semaphore our wait() blocks on (fault injection hooks). */
    DeviceSemaphore* inboundSemaphore() { return inbound_; }

    /**
     * Copy @p bytes from localMem[srcOff] into remoteMem[dstOff]
     * using the calling block's threads. HB protocol; for LL use
     * putPackets.
     */
    sim::Task<> put(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                    std::uint64_t srcOff, std::uint64_t bytes);

    /** put immediately followed by a fused signal (putWithSignal). */
    sim::Task<> putWithSignal(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                              std::uint64_t srcOff, std::uint64_t bytes);

    /**
     * Increment the peer's semaphore, ordered after all previous puts
     * on this channel (threadfence_system + remote atomic).
     */
    sim::Task<> signal(gpu::BlockCtx& ctx);

    /** Wait for the next inbound signal. */
    sim::Task<> wait(gpu::BlockCtx& ctx);

    /** No-op for memory channels (Section 4.2.2). */
    sim::Task<> flush(gpu::BlockCtx& ctx);

    /**
     * LL protocol: write @p bytes as flag-carrying packets. Doubles
     * wire traffic but makes the transfer self-synchronising — the
     * receiver's readPackets needs no separate signal.
     */
    sim::Task<> putPackets(gpu::BlockCtx& ctx, std::uint64_t dstOff,
                           std::uint64_t srcOff, std::uint64_t bytes);

    /**
     * LL protocol: wait until the next packet-put's flags are all
     * observed (data is then readable at the destination offset).
     */
    sim::Task<> readPackets(gpu::BlockCtx& ctx);

    /**
     * LL protocol, Figure 6: write one element (with its flag) into
     * the peer's buffer at element index @p index. Self-synchronising
     * with read<T>() on the peer.
     */
    template <typename T>
    sim::Task<> write(gpu::BlockCtx& ctx, std::uint64_t index, T value);

    /**
     * LL protocol, Figure 6: spin until the flag for element
     * @p index of the local receive buffer is set, then return the
     * element. Pairs with the peer's write<T>().
     */
    template <typename T>
    sim::Task<T> read(gpu::BlockCtx& ctx, std::uint64_t index);

  private:
    double copyCap(const gpu::BlockCtx& ctx) const;

    sim::Task<> writeElementBytes(gpu::BlockCtx& ctx, std::uint64_t off,
                                  const void* bytes, std::size_t size);
    sim::Task<> readElementBytes(gpu::BlockCtx& ctx, std::uint64_t off,
                                 void* bytes, std::size_t size);

    /** Channel span on the calling block's track; @p detail names the
     *  path's bottleneck link for put-style ops. */
    void traceDeviceOp(gpu::BlockCtx& ctx, const char* name, sim::Time t0,
                       std::uint64_t bytes = 0, std::string detail = {});

    /** The calling block's trace track ("tb<N>"). */
    std::string blockTrack(const gpu::BlockCtx& ctx) const;

    std::shared_ptr<Connection> conn_;
    RegisteredMemory localMem_;
    RegisteredMemory remoteMem_;
    DeviceSemaphore* outbound_;
    DeviceSemaphore* inbound_;
    Protocol protocol_;
    RegisteredMemory localRecvMem_; ///< where inbound packets land
    obs::ObsContext* obs_ = nullptr;
    obs::Counter* putBytes_ = nullptr;
    obs::Counter* signalCount_ = nullptr;
    std::string bottleneckLink_; ///< slowest hop of the path (tracing)
};

template <typename T>
sim::Task<>
MemoryChannel::write(gpu::BlockCtx& ctx, std::uint64_t index, T value)
{
    static_assert(sizeof(T) <= 8,
                  "LL elements are at most one 8-byte store");
    co_await writeElementBytes(ctx, index * sizeof(T), &value, sizeof(T));
}

template <typename T>
sim::Task<T>
MemoryChannel::read(gpu::BlockCtx& ctx, std::uint64_t index)
{
    static_assert(sizeof(T) <= 8,
                  "LL elements are at most one 8-byte load");
    T value{};
    co_await readElementBytes(ctx, index * sizeof(T), &value, sizeof(T));
    co_return value;
}

} // namespace mscclpp

#endif // MSCCLPP_CHANNEL_MEMORY_CHANNEL_HPP
