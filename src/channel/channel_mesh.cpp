#include "channel/channel_mesh.hpp"

#include "core/errors.hpp"

namespace mscclpp {

namespace {

constexpr int kMemTagBase = 10000;
constexpr int kSemTagBase = 20000;

} // namespace

namespace {

/** Predicate selecting which ordered pairs get a channel. */
using PairFilter = bool (*)(int, int, int);

bool
allPairs(int, int, int)
{
    return true;
}

bool
sameNodePairs(int r, int p, int gpusPerNode)
{
    return r / gpusPerNode == p / gpusPerNode;
}

} // namespace

ChannelMesh
ChannelMesh::buildFiltered(const std::vector<Communicator*>& comms,
                           const std::vector<gpu::DeviceBuffer>& srcBufs,
                           const std::vector<gpu::DeviceBuffer>& dstBufs,
                           const MeshOptions& options,
                           bool (*filter)(int, int, int), int filterArg)
{
    const int n = static_cast<int>(comms.size());
    if (n < 2 || srcBufs.size() != static_cast<std::size_t>(n) ||
        dstBufs.size() != static_cast<std::size_t>(n)) {
        throw Error(ErrorCode::InvalidUsage,
                    "mesh needs >=2 ranks and one src/dst buffer per rank");
    }
    if (options.transport == Transport::Switch) {
        throw Error(ErrorCode::InvalidUsage,
                    "switch groups are built via SwitchChannel directly");
    }

    ChannelMesh mesh;
    mesh.size_ = n;
    mesh.options_ = options;
    if (options.transport == Transport::Port &&
        options.sharedProxyService) {
        for (int r = 0; r < n; ++r) {
            mesh.services_.push_back(std::make_unique<ProxyService>(
                comms[r]->machine()));
        }
    }

    // Phase 1: every rank registers its buffers and publishes, for
    // every ordered pair, the handle of its receive side: the dst
    // buffer and an inbound semaphore for the peer to signal.
    std::vector<std::vector<DeviceSemaphore*>> inbound(
        n, std::vector<DeviceSemaphore*>(n, nullptr));
    for (int r = 0; r < n; ++r) {
        RegisteredMemory dstMem = comms[r]->registerMemory(dstBufs[r]);
        for (int p = 0; p < n; ++p) {
            if (p == r || !filter(r, p, filterArg)) {
                continue;
            }
            comms[r]->sendMemory(dstMem, p, kMemTagBase + r);
            DeviceSemaphore* sem = comms[r]->createSemaphore();
            inbound[r][p] = sem; // rank r waits on this for peer p
            comms[r]->sendSemaphore(sem, p, kSemTagBase + r);
        }
    }

    // Phase 2: every rank receives peer handles and builds its
    // outgoing channels.
    mesh.memChannels_.resize(static_cast<std::size_t>(n) * n);
    mesh.portChannels_.resize(static_cast<std::size_t>(n) * n);
    for (int r = 0; r < n; ++r) {
        RegisteredMemory srcMem = comms[r]->registerMemory(srcBufs[r]);
        RegisteredMemory recvMem = comms[r]->registerMemory(dstBufs[r]);
        for (int p = 0; p < n; ++p) {
            if (p == r || !filter(r, p, filterArg)) {
                continue;
            }
            RegisteredMemory remoteMem =
                comms[r]->recvMemory(p, kMemTagBase + p);
            DeviceSemaphore* outbound =
                comms[r]->recvSemaphore(p, kSemTagBase + p);
            auto conn = comms[r]->connect(p, options.transport);
            int idx = mesh.index(r, p);
            if (options.transport == Transport::Memory) {
                mesh.memChannels_[idx] = std::make_unique<MemoryChannel>(
                    conn, srcMem, remoteMem, outbound, inbound[r][p],
                    options.protocol, recvMem);
            } else {
                ProxyService* service =
                    mesh.services_.empty() ? nullptr
                                           : mesh.services_[r].get();
                mesh.portChannels_[idx] = std::make_unique<PortChannel>(
                    conn, srcMem, remoteMem, outbound, inbound[r][p],
                    options.deviceInitiatedPort, service);
                mesh.portChannels_[idx]->startProxy();
            }
        }
    }
    return mesh;
}

ChannelMesh
ChannelMesh::build(const std::vector<Communicator*>& comms,
                   const std::vector<gpu::DeviceBuffer>& srcBufs,
                   const std::vector<gpu::DeviceBuffer>& dstBufs,
                   const MeshOptions& options)
{
    return buildFiltered(comms, srcBufs, dstBufs, options, allPairs, 0);
}

ChannelMesh
ChannelMesh::buildIntraNode(const std::vector<Communicator*>& comms,
                            const std::vector<gpu::DeviceBuffer>& srcBufs,
                            const std::vector<gpu::DeviceBuffer>& dstBufs,
                            const MeshOptions& options, int gpusPerNode)
{
    return buildFiltered(comms, srcBufs, dstBufs, options, sameNodePairs,
                         gpusPerNode);
}

ChannelMesh::~ChannelMesh()
{
    shutdown();
}

int
ChannelMesh::index(int rank, int peer) const
{
    if (rank < 0 || rank >= size_ || peer < 0 || peer >= size_ ||
        rank == peer) {
        throw Error(ErrorCode::InvalidUsage, "bad mesh rank/peer");
    }
    return rank * size_ + peer;
}

MemoryChannel&
ChannelMesh::mem(int rank, int peer)
{
    auto& ch = memChannels_.at(index(rank, peer));
    if (ch == nullptr) {
        throw Error(ErrorCode::InvalidUsage, "not a memory mesh");
    }
    return *ch;
}

PortChannel&
ChannelMesh::port(int rank, int peer)
{
    auto& ch = portChannels_.at(index(rank, peer));
    if (ch == nullptr) {
        throw Error(ErrorCode::InvalidUsage, "not a port mesh");
    }
    return *ch;
}

void
ChannelMesh::shutdown()
{
    for (auto& ch : portChannels_) {
        if (ch != nullptr) {
            ch->shutdown();
        }
    }
    for (auto& svc : services_) {
        svc->shutdown();
    }
}

} // namespace mscclpp
