#include "serving/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mscclpp::serving {

sim::Time
percentile(std::vector<sim::Time> samples, double q)
{
    if (samples.empty()) {
        return 0;
    }
    std::sort(samples.begin(), samples.end());
    const std::size_t n = samples.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1) {
        rank = 1;
    }
    if (rank > n) {
        rank = n;
    }
    return samples[rank - 1];
}

ServingReport
summarize(const std::vector<RequestStats>& done, sim::Time sloTtft,
          sim::Time sloTpot)
{
    ServingReport rep;
    rep.sloTtft = sloTtft;
    rep.sloTpot = sloTpot;

    std::vector<sim::Time> ttft, tpot, e2e;
    std::uint64_t tokens = 0;
    for (const RequestStats& r : done) {
        if (r.dropped) {
            rep.dropped++;
            continue;
        }
        rep.requests++;
        ttft.push_back(r.ttft());
        tpot.push_back(r.tpot());
        e2e.push_back(r.e2e());
        tokens += static_cast<std::uint64_t>(r.outputLen);
        rep.preemptions += static_cast<std::uint64_t>(r.preemptions);
        if (r.ttft() > sloTtft) {
            rep.sloTtftViolations++;
        }
        if (r.outputLen > 1 && r.tpot() > sloTpot) {
            rep.sloTpotViolations++;
        }
        if (r.completed > rep.makespan) {
            rep.makespan = r.completed;
        }
    }
    rep.ttftP50 = percentile(ttft, 0.50);
    rep.ttftP90 = percentile(ttft, 0.90);
    rep.ttftP99 = percentile(ttft, 0.99);
    rep.tpotP50 = percentile(tpot, 0.50);
    rep.tpotP90 = percentile(tpot, 0.90);
    rep.tpotP99 = percentile(tpot, 0.99);
    rep.e2eP50 = percentile(e2e, 0.50);
    rep.e2eP99 = percentile(e2e, 0.99);
    if (rep.makespan > 0) {
        rep.throughputTps =
            static_cast<double>(tokens) / sim::toSec(rep.makespan);
    }
    return rep;
}

std::string
ServingReport::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "requests %llu (dropped %llu)  steps %llu prefill / %llu "
        "decode  preemptions %llu  migrations %llu\n"
        "TTFT p50/p90/p99  %8.1f / %8.1f / %8.1f us   (SLO %.0f ms: "
        "%llu violations)\n"
        "TPOT p50/p90/p99  %8.1f / %8.1f / %8.1f us   (SLO %.0f ms: "
        "%llu violations)\n"
        "e2e  p50/p99      %8.1f / %8.1f us   throughput %.1f tok/s"
        "%s",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(prefillSteps),
        static_cast<unsigned long long>(decodeSteps),
        static_cast<unsigned long long>(preemptions),
        static_cast<unsigned long long>(migrations), sim::toUs(ttftP50),
        sim::toUs(ttftP90), sim::toUs(ttftP99), sim::toMs(sloTtft),
        static_cast<unsigned long long>(sloTtftViolations),
        sim::toUs(tpotP50), sim::toUs(tpotP90), sim::toUs(tpotP99),
        sim::toMs(sloTpot),
        static_cast<unsigned long long>(sloTpotViolations),
        sim::toUs(e2eP50), sim::toUs(e2eP99), throughputTps,
        alertsFired > 0
            ? ("\nSLO alerts fired " + std::to_string(alertsFired) +
               " (active " + std::to_string(alertsActive) + ")")
                  .c_str()
            : "");
    return buf;
}

} // namespace mscclpp::serving
