#ifndef MSCCLPP_SERVING_CLUSTER_HPP
#define MSCCLPP_SERVING_CLUSTER_HPP

#include "obs/reqtrace.hpp"
#include "obs/slomon.hpp"
#include "serving/config.hpp"
#include "serving/replica.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"

#include <memory>
#include <vector>

namespace mscclpp::serving {

/**
 * The cluster-scale serving simulator (DESIGN.md Section 12): N
 * replicas, each a full simulated node, driven by one open-loop
 * request stream. Arrivals are independent of completions (requests
 * keep landing while the cluster is saturated — queueing shows up in
 * TTFT, exactly the regime SLO percentiles are about); dispatch is
 * least-loaded; per-replica continuous batching recomposes the batch
 * every step. With cfg.prefillReplicas > 0 the first N replicas run
 * prompts only and migrate KV over the NIC to decode replicas.
 *
 * All randomness derives from cfg.seed, and replicas advance their
 * own virtual timelines deterministically — two runs of the same
 * config produce bit-identical reports.
 */
class ServingCluster
{
  public:
    explicit ServingCluster(ServingConfig cfg);

    const ServingConfig& config() const { return cfg_; }
    int numReplicas() const { return static_cast<int>(replicas_.size()); }
    Replica& replica(int i) { return *replicas_.at(i); }

    /** The generated (or trace-parsed) request stream, arrival order. */
    const std::vector<Request>& workload() const { return workload_; }

    /** Per-request lifecycle records (valid after run()). */
    const std::vector<RequestStats>& requests() const { return stats_; }

    /**
     * The cluster-level request tracer (cfg.reqtrace /
     * MSCCLPP_REQTRACE). Request trees span replicas — prefill here,
     * decode there, the KV migration in between — so it lives on the
     * cluster, not inside any one Machine's ObsContext. Disabled (and
     * every hook a dead branch) unless configured and compiled in.
     */
    obs::RequestTracer& reqtrace() { return reqtrace_; }
    const obs::RequestTracer& reqtrace() const { return reqtrace_; }

    /**
     * The cluster-level SLO burn-rate monitor (cfg.slomon /
     * MSCCLPP_SLOMON). Lives beside the request tracer for the same
     * reason: violation fractions aggregate completions across every
     * replica. Its link blame is correlated from the blamed replica's
     * flight-recorder digests over the alert window.
     */
    obs::SloMonitor& slomon() { return slomon_; }
    const obs::SloMonitor& slomon() const { return slomon_; }

    /**
     * Serve the whole workload to completion and aggregate the
     * report. Faults in cfg.faults fire when their replica reaches
     * the given step count (Fabric::degradeLink mid-run).
     */
    ServingReport run();

  private:
    void dispatchArrival(const Request& r);
    void routeOutcome(int from, Replica::StepOutcome out);
    void injectFaultsBefore(int replicaIdx);
    int pickLeastLoaded(bool prefillCapable) const;
    std::string blameLink(int replica, sim::Time begin,
                          sim::Time end) const;

    ServingConfig cfg_;
    obs::RequestTracer reqtrace_;
    obs::SloMonitor slomon_;
    std::vector<Request> workload_;
    std::vector<std::unique_ptr<Replica>> replicas_;
    std::vector<RequestStats> stats_;
    std::vector<bool> faultFired_;
    std::vector<bool> faultRecovered_;
    std::uint64_t migrations_ = 0;
};

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_CLUSTER_HPP
