#include "serving/replica.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <string>

namespace mscclpp::serving {

const char*
toString(ReplicaRole r)
{
    switch (r) {
      case ReplicaRole::Unified:
        return "unified";
      case ReplicaRole::Prefill:
        return "prefill";
      case ReplicaRole::Decode:
        return "decode";
    }
    return "?";
}

Replica::Replica(const ServingConfig& cfg, int id, ReplicaRole role)
    : cfg_(&cfg), id_(id), role_(role), kv_(cfg.effectiveKvTokens())
{
    machine_ = std::make_unique<gpu::Machine>(cfg.env, /*numNodes=*/1,
                                              gpu::DataMode::Timed);
    // N replicas must not clobber one artifact file when tracing is
    // on: prefix every dump path with the replica id.
    obs::ObsContext& obs = machine_->obs();
    std::string tag = "r";
    tag += std::to_string(id);
    tag += '.';
    obs.setTraceFile(tag + obs.traceFile());
    obs.setMetricsFile(tag + obs.metricsFile());
    obs.setFlightFile(tag + obs.flightFile());
    obs.setWatchdogFile(tag + obs.watchdogFile());
    obs.setTimeseriesFile(tag + obs.timeseriesFile());
    obs.setSimprofFile(tag + obs.simprofFile());
    sim_ = std::make_unique<inference::InferenceSim>(*machine_,
                                                     cfg.inference);
}

int
Replica::load() const
{
    return static_cast<int>(pendingPrefill_.size() +
                            pendingDecode_.size() + running_.size());
}

void
Replica::enqueuePrefill(SeqState seq)
{
    seq.reserved = 0;
    pendingPrefill_.push_back(seq);
}

void
Replica::enqueueDecode(SeqState seq)
{
    seq.reserved = 0;
    pendingDecode_.push_back(seq);
}

sim::Time
Replica::nextActionTime() const
{
    if (!running_.empty()) {
        return clock_;
    }
    sim::Time t = sim::kTimeMax;
    for (const SeqState& s : pendingPrefill_) {
        t = std::min(t, s.readyAt);
    }
    for (const SeqState& s : pendingDecode_) {
        t = std::min(t, s.readyAt);
    }
    // Work that queued while the replica was busy starts at the clock.
    return t == sim::kTimeMax ? t : std::max(t, clock_);
}

void
Replica::retire(const SeqState& seq, sim::Time when,
                std::vector<RequestStats>& stats)
{
    kv_.release(seq.reserved);
    RequestStats& r = stats.at(seq.reqId);
    r.completed = when;
    r.replica = id_;
    if (slomon_ != nullptr && slomon_->enabled()) {
        slomon_->onRequestDone(id_, r.firstToken, when, r.ttft(),
                               r.outputLen > 1 ? r.tpot() : 0);
    }
    if (tracingRequests()) {
        reqtrace_->onDone(seq.reqId, r.firstToken, when, id_);
        machine_->obs().tracer().instant(
            obs::Category::Request, "done", obs::kRequestPid,
            "req" + std::to_string(seq.reqId), when);
    }
}

void
Replica::drop(const SeqState& seq, sim::Time when,
              std::vector<RequestStats>& stats)
{
    stats.at(seq.reqId).dropped = true;
    stats.at(seq.reqId).replica = id_;
    if (tracingRequests()) {
        reqtrace_->onDropped(seq.reqId, when, id_);
    }
}

void
Replica::parkRequestContext(const std::vector<SeqState>& seqs)
{
    obs::Tracer& tr = machine_->obs().tracer();
    if (!tr.enabled() || !tracingRequests()) {
        return;
    }
    std::string ctx = "req=";
    bool first = true;
    for (const SeqState& s : seqs) {
        ctx += first ? "" : ",";
        first = false;
        ctx += std::to_string(s.reqId);
    }
    tr.setRequestContext(std::move(ctx));
}

void
Replica::mirrorRequestSpan(int reqId, const char* phase, sim::Time begin,
                           sim::Time end, const std::string& label)
{
    obs::Tracer& tr = machine_->obs().tracer();
    if (!tr.enabled()) {
        return;
    }
    const std::string track = "req" + std::to_string(reqId);
    tr.span(obs::Category::Request, phase, obs::kRequestPid, track,
            begin, end, 0, -1, label);
    // Causal hop into the step span that ran this slice of the
    // request (same begin on the host "steps" track).
    tr.edge(obs::EdgeKind::Dispatch, obs::kRequestPid, track, begin,
            obs::kHostPid, "steps", begin);
}

void
Replica::sampleStepTimeseries(sim::Time at, int batch)
{
    // Gauge samples at step boundaries; the rollup keeps the last
    // value per interval, so a busy replica still costs O(intervals).
    obs::TimeSeries& ts = machine_->obs().timeseries();
    if (!ts.enabled()) {
        return;
    }
    ts.record("replica.kv_used_tokens", at,
              static_cast<double>(kv_.used()));
    ts.record("replica.batch", at, static_cast<double>(batch));
    ts.record("replica.queue_depth", at,
              static_cast<double>(pendingPrefill_.size() +
                                  pendingDecode_.size()));
}

namespace {

/** A request that can never complete even on an otherwise-empty
 *  replica: its final context would exceed the KV capacity. */
bool
canNeverFit(const SeqState& s, const KvCache& kv)
{
    const std::uint64_t finalCtx =
        static_cast<std::uint64_t>(s.contextLen) +
        static_cast<std::uint64_t>(std::max(0, s.outputLen - s.generated));
    return finalCtx > kv.capacity();
}

} // namespace

bool
Replica::tryPrefill(sim::Time start, std::vector<RequestStats>& stats,
                    StepOutcome& out)
{
    // Admission: visible pending prompts, prefill-first (the vLLM
    // default policy), bounded by the per-step prefill cap, the batch
    // cap and KV capacity. Admission reserves the current context
    // only; decode growth claims one token per step and preempts on
    // pressure (recompute-style eviction, vLLM semantics).
    std::vector<SeqState> batch;
    std::deque<SeqState> keep;
    while (!pendingPrefill_.empty()) {
        SeqState s = pendingPrefill_.front();
        pendingPrefill_.pop_front();
        const bool visible = s.readyAt <= start;
        const bool haveRoom =
            static_cast<int>(batch.size()) < cfg_->maxPrefillSeqs &&
            static_cast<int>(batch.size() + running_.size()) <
                cfg_->maxBatch;
        if (!visible || !haveRoom) {
            keep.push_back(s);
            continue;
        }
        if (canNeverFit(s, kv_)) {
            drop(s, start, stats);
            continue;
        }
        if (!kv_.reserve(static_cast<std::uint64_t>(s.contextLen))) {
            keep.push_back(s); // retry once running work retires
            continue;
        }
        s.reserved = static_cast<std::uint64_t>(s.contextLen);
        batch.push_back(s);
    }
    pendingPrefill_ = std::move(keep);
    if (batch.empty()) {
        return false;
    }

    int maxLen = 0;
    for (const SeqState& s : batch) {
        maxLen = std::max(maxLen, s.contextLen);
    }
    const int k = static_cast<int>(batch.size());
    const std::string label = "serve.prefill.b" + std::to_string(k);

    machine_->scheduler().advanceTo(start);
    obs::StepWindow& win = machine_->obs().window();
    const bool opened = win.beginStepIfIdle(label, start);
    parkRequestContext(batch);
    // Padded prefill: short prompts ride along to the longest one.
    inference::InferenceSim::Breakdown b =
        sim_->prefill(k, maxLen, cfg_->backend);
    machine_->obs().tracer().setRequestContext({});
    const sim::Time end = start + b.total();
    const obs::StepAttribution* att = nullptr;
    if (opened) {
        win.endStep(machine_->scheduler().now(), b.total(), b.compute);
        att = win.lastStep();
    }

    obs::MetricsRegistry& m = machine_->obs().metrics();
    m.counter("serving.prefill_steps").add();
    m.summary("serving.prefill_batch").add(k);
    m.gauge("serving.kv_used_tokens")
        .set(static_cast<double>(kv_.used()));
    sampleStepTimeseries(end, k);

    if (tracingRequests()) {
        for (const SeqState& s : batch) {
            // A sequence with generated tokens is re-prefilling
            // context it lost to an eviction.
            const bool recompute = s.generated > 0;
            reqtrace_->onPhase(s.reqId,
                               recompute ? obs::ReqPhase::Recompute
                                         : obs::ReqPhase::Prefill,
                               start, end, id_, label, att);
            mirrorRequestSpan(s.reqId,
                              recompute ? "recompute" : "prefill",
                              start, end, label);
        }
    }

    for (SeqState& s : batch) {
        RequestStats& r = stats.at(s.reqId);
        if (r.firstToken == 0) {
            r.firstToken = end; // preserved across re-prefills
        }
        if (s.generated == 0) {
            s.generated = 1; // prefill emits the first token
        }
        if (s.generated >= s.outputLen) {
            retire(s, end, stats);
            continue;
        }
        s.readyAt = end;
        if (role_ == ReplicaRole::Prefill) {
            kv_.release(s.reserved);
            s.reserved = 0;
            out.handoffPrefills.push_back(s);
        } else {
            running_.push_back(s);
        }
    }
    prefillSteps_++;
    clock_ = end;
    return true;
}

void
Replica::admitDecodes(sim::Time start, std::vector<RequestStats>& stats)
{
    std::deque<SeqState> keep;
    while (!pendingDecode_.empty()) {
        SeqState s = pendingDecode_.front();
        pendingDecode_.pop_front();
        const bool visible = s.readyAt <= start;
        const bool haveRoom =
            static_cast<int>(running_.size()) < cfg_->maxBatch;
        if (!visible || !haveRoom) {
            keep.push_back(s);
            continue;
        }
        if (canNeverFit(s, kv_)) {
            drop(s, start, stats);
            continue;
        }
        if (!kv_.reserve(static_cast<std::uint64_t>(s.contextLen))) {
            keep.push_back(s);
            continue;
        }
        s.reserved = static_cast<std::uint64_t>(s.contextLen);
        running_.push_back(s);
    }
    pendingDecode_ = std::move(keep);
}

void
Replica::preempt(SeqState victim, sim::Time when, StepOutcome& out,
                 std::vector<RequestStats>& stats)
{
    kv_.release(victim.reserved);
    victim.reserved = 0;
    // Recompute-style: the whole context (prompt + tokens generated so
    // far) re-prefills; progress and firstToken are preserved.
    victim.contextLen = victim.promptLen + victim.generated;
    victim.readyAt = when;
    preemptions_++;
    stats.at(victim.reqId).preemptions++;
    machine_->obs().metrics().counter("serving.preemptions").add();
    if (tracingRequests()) {
        reqtrace_->onPreempted(victim.reqId, when, id_);
        machine_->obs().tracer().instant(
            obs::Category::Request, "preempted", obs::kRequestPid,
            "req" + std::to_string(victim.reqId), when);
    }
    if (role_ == ReplicaRole::Decode) {
        out.handoffPreempted.push_back(victim);
    } else {
        pendingPrefill_.push_back(victim);
    }
}

void
Replica::runDecode(sim::Time start, std::vector<RequestStats>& stats,
                   StepOutcome& out)
{
    // Grow every running sequence's reservation by the token it is
    // about to produce; on pressure evict the most-recently-admitted
    // sequence (lowest priority under FCFS) and retry.
    std::size_t i = 0;
    while (i < running_.size()) {
        if (kv_.reserve(1)) {
            running_[i].reserved++;
            ++i;
            continue;
        }
        if (running_.size() > 1) {
            SeqState victim = running_.back();
            running_.pop_back();
            preempt(std::move(victim), start, out, stats);
            // i may now point past the end (the grower was evicted).
        } else {
            // A lone sequence that cannot grow will never finish.
            SeqState s = running_.back();
            running_.pop_back();
            kv_.release(s.reserved);
            drop(s, start, stats);
        }
    }
    if (running_.empty()) {
        return;
    }

    std::vector<int> ctx;
    ctx.reserve(running_.size());
    for (const SeqState& s : running_) {
        ctx.push_back(s.contextLen);
    }
    const int k = static_cast<int>(ctx.size());
    const std::string label = "serve.decode.b" + std::to_string(k);

    machine_->scheduler().advanceTo(start);
    obs::StepWindow& win = machine_->obs().window();
    const bool opened = win.beginStepIfIdle(label, start);
    parkRequestContext(running_);
    inference::InferenceSim::Breakdown b =
        sim_->decodeStepMixed(ctx, cfg_->backend);
    machine_->obs().tracer().setRequestContext({});
    const sim::Time end = start + b.total();
    const obs::StepAttribution* att = nullptr;
    if (opened) {
        win.endStep(machine_->scheduler().now(), b.total(), b.compute);
        att = win.lastStep();
    }

    obs::MetricsRegistry& m = machine_->obs().metrics();
    m.counter("serving.decode_steps").add();
    m.counter("serving.tokens_generated").add(k);
    m.summary("serving.decode_batch").add(k);
    m.gauge("serving.kv_used_tokens")
        .set(static_cast<double>(kv_.used()));
    sampleStepTimeseries(end, k);

    if (tracingRequests()) {
        for (const SeqState& s : running_) {
            reqtrace_->onPhase(s.reqId, obs::ReqPhase::Decode, start,
                               end, id_, label, att);
            mirrorRequestSpan(s.reqId, "decode", start, end, label);
        }
    }

    std::vector<SeqState> still;
    still.reserve(running_.size());
    for (SeqState& s : running_) {
        s.generated++;
        s.contextLen++;
        s.readyAt = end;
        if (s.generated >= s.outputLen) {
            retire(s, end, stats);
        } else {
            still.push_back(s);
        }
    }
    running_ = std::move(still);
    decodeSteps_++;
    clock_ = end;
}

Replica::StepOutcome
Replica::step(std::vector<RequestStats>& stats)
{
    // Host-side serving work (batch recomposition, admission, KV
    // bookkeeping) between scheduler runs, charged minus whatever the
    // dispatch buckets capture inside the prefill/decode run() calls.
    obs::SimProf::Section sec(machine_->obs().simprof(),
                              "serving.replica_step");
    StepOutcome out;
    const sim::Time start = nextActionTime();
    if (start == sim::kTimeMax) {
        throw Error(ErrorCode::InvalidUsage,
                    "step() on an idle replica");
    }
    clock_ = start;
    if (role_ != ReplicaRole::Prefill) {
        admitDecodes(start, stats);
    }
    if (role_ != ReplicaRole::Decode) {
        if (tryPrefill(start, stats, out)) {
            return out;
        }
    }
    if (!running_.empty()) {
        runDecode(start, stats, out);
        return out;
    }
    // Nothing ran and nothing is running: every visible sequence is
    // blocked on KV capacity with no retirement to wait for. Route the
    // deepest queued decode back to prefill (it will be re-admitted or
    // dropped there) so the cluster loop always makes progress.
    if (!pendingDecode_.empty()) {
        SeqState s = pendingDecode_.back();
        pendingDecode_.pop_back();
        preemptions_++;
        stats.at(s.reqId).preemptions++;
        if (tracingRequests()) {
            reqtrace_->onPreempted(s.reqId, start, id_);
        }
        s.contextLen = s.promptLen + s.generated;
        s.readyAt = start;
        out.handoffPreempted.push_back(s);
        return out;
    }
    if (!pendingPrefill_.empty()) {
        SeqState s = pendingPrefill_.front();
        pendingPrefill_.pop_front();
        drop(s, start, stats);
    }
    return out;
}

} // namespace mscclpp::serving
