#include "serving/cluster.hpp"

#include "core/errors.hpp"

#include <algorithm>

namespace mscclpp::serving {

ServingCluster::ServingCluster(ServingConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.validate();
    if (cfg_.reqtrace && obs::Tracer::kCompiledIn) {
        reqtrace_.setEnabled(true);
        reqtrace_.setTopK(cfg_.reqtraceTopK);
        reqtrace_.setFile(cfg_.reqtraceFile);
        // Per-request attribution reuses each replica's step-window
        // digests, so request tracing implies the per-machine tracer
        // (an explicit MSCCLPP_TRACE=0 still wins in the Machine's
        // env-override pass).
        cfg_.env.traceEnabled = true;
    }
    if (cfg_.slomon && obs::SloMonitor::kCompiledIn) {
        slomon_.setEnabled(true);
        slomon_.setFile(cfg_.slomonFile);
        slomon_.setIntervalWidth(cfg_.slomonInterval);
        slomon_.setSlo(cfg_.sloTtft, cfg_.sloTpot);
        slomon_.setWindows(cfg_.slomonFast, cfg_.slomonSlow);
        slomon_.setBudget(cfg_.slomonBudget);
        slomon_.setBurnThreshold(cfg_.slomonBurn);
        // Link blame correlates against each replica's step digests,
        // so alerting implies the per-replica flight recorder (which
        // itself implies the tracer — digests come from step windows).
        cfg_.env.flightEnabled = true;
        cfg_.env.traceEnabled = true;
        slomon_.setLinkBlamer(
            [this](int replica, sim::Time begin, sim::Time end) {
                return blameLink(replica, begin, end);
            });
    }
    workload_ = generateWorkload(cfg_.workload, cfg_.seed);
    stats_.resize(workload_.size());
    for (const Request& r : workload_) {
        RequestStats& s = stats_.at(r.id);
        s.id = r.id;
        s.arrival = r.arrival;
        s.promptLen = r.promptLen;
        s.outputLen = r.outputLen;
    }
    for (int i = 0; i < cfg_.replicas; ++i) {
        ReplicaRole role = ReplicaRole::Unified;
        if (cfg_.prefillReplicas > 0) {
            role = i < cfg_.prefillReplicas ? ReplicaRole::Prefill
                                            : ReplicaRole::Decode;
        }
        replicas_.push_back(
            std::make_unique<Replica>(cfg_, i, role));
        replicas_.back()->bindRequestTracer(&reqtrace_);
        replicas_.back()->bindSloMonitor(&slomon_);
    }
    faultFired_.assign(cfg_.faults.size(), false);
    faultRecovered_.assign(cfg_.faults.size(), false);
}

int
ServingCluster::pickLeastLoaded(bool prefillCapable) const
{
    int best = -1;
    int bestLoad = 0;
    for (int i = 0; i < numReplicas(); ++i) {
        const Replica& r = *replicas_[i];
        if (prefillCapable && r.role() == ReplicaRole::Decode) {
            continue;
        }
        if (!prefillCapable && r.role() == ReplicaRole::Prefill) {
            continue;
        }
        if (best < 0 || r.load() < bestLoad) {
            best = i;
            bestLoad = r.load();
        }
    }
    return best;
}

void
ServingCluster::dispatchArrival(const Request& r)
{
    SeqState s;
    s.reqId = r.id;
    s.promptLen = r.promptLen;
    s.outputLen = r.outputLen;
    s.contextLen = r.promptLen;
    s.readyAt = r.arrival;
    reqtrace_.onArrival(r.id, r.arrival);
    replicas_.at(pickLeastLoaded(true))->enqueuePrefill(s);
}

void
ServingCluster::routeOutcome(int from, Replica::StepOutcome out)
{
    const int tp = cfg_.inference.tensorParallel;
    for (SeqState& s : out.handoffPrefills) {
        // Each GPU streams its KV shard over its own NIC in parallel,
        // so the transfer is paced by the per-GPU shard.
        const std::uint64_t shard =
            cfg_.inference.model.kvBytesPerToken(tp) *
            static_cast<std::uint64_t>(s.contextLen);
        const sim::Time xfer =
            sim::transferTime(shard, cfg_.env.nicBwGBps) +
            cfg_.env.nicLatency;
        const int dest = pickLeastLoaded(false);
        reqtrace_.onMigration(s.reqId, s.readyAt, s.readyAt + xfer,
                              from, dest, shard);
        s.readyAt += xfer;
        replicas_.at(dest)->enqueueDecode(s);
        migrations_++;
        replicas_[from]
            ->machine()
            .obs()
            .metrics()
            .counter("serving.kv_migrations")
            .add();
    }
    for (SeqState& s : out.handoffPreempted) {
        // Recompute-style preemption discards KV: nothing to migrate.
        replicas_.at(pickLeastLoaded(true))->enqueuePrefill(s);
    }
}

/**
 * Blame a link for an SLO burn window: scan the replica's flight ring
 * for step digests whose measured span overlaps [begin, end] and vote
 * for each step's critical-path culprit link, weighted by the step's
 * exposed-communication time. Digests the online anomaly detector
 * flagged vote alone when any exist in the window — a healthy step's
 * culprit is routine exposure, an anomalous one is a verdict about
 * the regression the alert is firing on. A window with no culprit at
 * all returns "" and the alert stays replica-scoped.
 */
std::string
ServingCluster::blameLink(int replica, sim::Time begin,
                          sim::Time end) const
{
    if (replica < 0 || replica >= numReplicas()) {
        return "";
    }
    const obs::FlightRecorder& fr =
        replicas_[replica]->machine().obs().flight();
    if (!fr.enabled()) {
        return "";
    }
    std::map<std::string, double> votes;
    std::map<std::string, double> anomalyVotes;
    for (const obs::StepDigest& d : fr.ring()) {
        // d.end closes the *traced window* (a step's instrumented
        // slice); the step itself spans begin..begin+measured.
        const sim::Time stepEnd = d.begin + d.measured;
        if (d.culpritLink.empty() || stepEnd < begin ||
            d.begin > end) {
            continue;
        }
        double w = 0.0;
        auto it = d.buckets.find(obs::StepCategory::ExposedComms);
        if (it != d.buckets.end()) {
            w = static_cast<double>(it->second);
        }
        if (w <= 0.0) {
            w = 1.0; // a verdict with no exposure still gets a voice
        }
        votes[d.culpritLink] += w;
        if (d.anomalous) {
            anomalyVotes[d.culpritLink] +=
                w + static_cast<double>(d.measured);
        }
    }
    const auto& pool = anomalyVotes.empty() ? votes : anomalyVotes;
    std::string best;
    double bestW = 0.0;
    for (const auto& [link, w] : pool) {
        if (w > bestW) {
            best = link;
            bestW = w;
        }
    }
    return best;
}

void
ServingCluster::injectFaultsBefore(int replicaIdx)
{
    for (std::size_t j = 0; j < cfg_.faults.size(); ++j) {
        const FaultSpec& f = cfg_.faults[j];
        if (f.replica != replicaIdx) {
            continue;
        }
        Replica& r = *replicas_[replicaIdx];
        if (!faultFired_[j] && r.stepsDone() >= f.atStep) {
            r.machine().fabric().degradeLink(f.link, f.factor);
            reqtrace_.noteFault(f.replica, f.link, r.clock());
            slomon_.noteFault(f.replica, f.link, f.factor, r.clock());
            faultFired_[j] = true;
        }
        if (faultFired_[j] && !faultRecovered_[j] &&
            f.recoverAtStep != 0 && r.stepsDone() >= f.recoverAtStep) {
            // degradeLink multiplies the line rate by the factor, so
            // the reciprocal restores the link exactly.
            r.machine().fabric().degradeLink(f.link, 1.0 / f.factor);
            slomon_.noteFault(f.replica, f.link, 1.0 / f.factor,
                              r.clock());
            faultRecovered_[j] = true;
        }
    }
}

ServingReport
ServingCluster::run()
{
    std::size_t nextArrival = 0;
    for (;;) {
        sim::Time tAct = sim::kTimeMax;
        int idx = -1;
        for (int i = 0; i < numReplicas(); ++i) {
            const sim::Time t = replicas_[i]->nextActionTime();
            if (t < tAct) {
                tAct = t;
                idx = i;
            }
        }
        // Open loop: the next arrival lands regardless of cluster
        // state; it only goes first when it precedes all step work.
        if (nextArrival < workload_.size() &&
            workload_[nextArrival].arrival <= tAct) {
            dispatchArrival(workload_[nextArrival++]);
            continue;
        }
        if (idx < 0) {
            break; // no arrivals left, every replica drained
        }
        injectFaultsBefore(idx);
        routeOutcome(idx, replicas_[idx]->step(stats_));
    }

    ServingReport rep =
        summarize(stats_, cfg_.sloTtft, cfg_.sloTpot);
    rep.preemptions = 0; // authoritative: includes dropped requests
    for (const auto& r : replicas_) {
        rep.prefillSteps += r->prefillSteps();
        rep.decodeSteps += r->decodeSteps();
        rep.preemptions += r->preemptions();
    }
    rep.migrations = migrations_;
    if (reqtrace_.enabled() && !reqtrace_.file().empty()) {
        reqtrace_.writeJson(reqtrace_.file());
    }
    if (slomon_.enabled()) {
        rep.alertsFired = slomon_.alerts().size();
        rep.alertsActive = slomon_.activeAlerts();
        if (!slomon_.file().empty()) {
            slomon_.writeJson(slomon_.file());
        }
    }
    return rep;
}

} // namespace mscclpp::serving
