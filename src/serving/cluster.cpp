#include "serving/cluster.hpp"

#include "core/errors.hpp"

#include <algorithm>

namespace mscclpp::serving {

ServingCluster::ServingCluster(ServingConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.validate();
    if (cfg_.reqtrace && obs::Tracer::kCompiledIn) {
        reqtrace_.setEnabled(true);
        reqtrace_.setTopK(cfg_.reqtraceTopK);
        reqtrace_.setFile(cfg_.reqtraceFile);
        // Per-request attribution reuses each replica's step-window
        // digests, so request tracing implies the per-machine tracer
        // (an explicit MSCCLPP_TRACE=0 still wins in the Machine's
        // env-override pass).
        cfg_.env.traceEnabled = true;
    }
    workload_ = generateWorkload(cfg_.workload, cfg_.seed);
    stats_.resize(workload_.size());
    for (const Request& r : workload_) {
        RequestStats& s = stats_.at(r.id);
        s.id = r.id;
        s.arrival = r.arrival;
        s.promptLen = r.promptLen;
        s.outputLen = r.outputLen;
    }
    for (int i = 0; i < cfg_.replicas; ++i) {
        ReplicaRole role = ReplicaRole::Unified;
        if (cfg_.prefillReplicas > 0) {
            role = i < cfg_.prefillReplicas ? ReplicaRole::Prefill
                                            : ReplicaRole::Decode;
        }
        replicas_.push_back(
            std::make_unique<Replica>(cfg_, i, role));
        replicas_.back()->bindRequestTracer(&reqtrace_);
    }
    faultFired_.assign(cfg_.faults.size(), false);
}

int
ServingCluster::pickLeastLoaded(bool prefillCapable) const
{
    int best = -1;
    int bestLoad = 0;
    for (int i = 0; i < numReplicas(); ++i) {
        const Replica& r = *replicas_[i];
        if (prefillCapable && r.role() == ReplicaRole::Decode) {
            continue;
        }
        if (!prefillCapable && r.role() == ReplicaRole::Prefill) {
            continue;
        }
        if (best < 0 || r.load() < bestLoad) {
            best = i;
            bestLoad = r.load();
        }
    }
    return best;
}

void
ServingCluster::dispatchArrival(const Request& r)
{
    SeqState s;
    s.reqId = r.id;
    s.promptLen = r.promptLen;
    s.outputLen = r.outputLen;
    s.contextLen = r.promptLen;
    s.readyAt = r.arrival;
    reqtrace_.onArrival(r.id, r.arrival);
    replicas_.at(pickLeastLoaded(true))->enqueuePrefill(s);
}

void
ServingCluster::routeOutcome(int from, Replica::StepOutcome out)
{
    const int tp = cfg_.inference.tensorParallel;
    for (SeqState& s : out.handoffPrefills) {
        // Each GPU streams its KV shard over its own NIC in parallel,
        // so the transfer is paced by the per-GPU shard.
        const std::uint64_t shard =
            cfg_.inference.model.kvBytesPerToken(tp) *
            static_cast<std::uint64_t>(s.contextLen);
        const sim::Time xfer =
            sim::transferTime(shard, cfg_.env.nicBwGBps) +
            cfg_.env.nicLatency;
        const int dest = pickLeastLoaded(false);
        reqtrace_.onMigration(s.reqId, s.readyAt, s.readyAt + xfer,
                              from, dest, shard);
        s.readyAt += xfer;
        replicas_.at(dest)->enqueueDecode(s);
        migrations_++;
        replicas_[from]
            ->machine()
            .obs()
            .metrics()
            .counter("serving.kv_migrations")
            .add();
    }
    for (SeqState& s : out.handoffPreempted) {
        // Recompute-style preemption discards KV: nothing to migrate.
        replicas_.at(pickLeastLoaded(true))->enqueuePrefill(s);
    }
}

void
ServingCluster::injectFaultsBefore(int replicaIdx)
{
    for (std::size_t j = 0; j < cfg_.faults.size(); ++j) {
        const FaultSpec& f = cfg_.faults[j];
        if (faultFired_[j] || f.replica != replicaIdx ||
            replicas_[replicaIdx]->stepsDone() < f.atStep) {
            continue;
        }
        replicas_[replicaIdx]->machine().fabric().degradeLink(f.link,
                                                              f.factor);
        reqtrace_.noteFault(f.replica, f.link,
                            replicas_[replicaIdx]->clock());
        faultFired_[j] = true;
    }
}

ServingReport
ServingCluster::run()
{
    std::size_t nextArrival = 0;
    for (;;) {
        sim::Time tAct = sim::kTimeMax;
        int idx = -1;
        for (int i = 0; i < numReplicas(); ++i) {
            const sim::Time t = replicas_[i]->nextActionTime();
            if (t < tAct) {
                tAct = t;
                idx = i;
            }
        }
        // Open loop: the next arrival lands regardless of cluster
        // state; it only goes first when it precedes all step work.
        if (nextArrival < workload_.size() &&
            workload_[nextArrival].arrival <= tAct) {
            dispatchArrival(workload_[nextArrival++]);
            continue;
        }
        if (idx < 0) {
            break; // no arrivals left, every replica drained
        }
        injectFaultsBefore(idx);
        routeOutcome(idx, replicas_[idx]->step(stats_));
    }

    ServingReport rep =
        summarize(stats_, cfg_.sloTtft, cfg_.sloTpot);
    rep.preemptions = 0; // authoritative: includes dropped requests
    for (const auto& r : replicas_) {
        rep.prefillSteps += r->prefillSteps();
        rep.decodeSteps += r->decodeSteps();
        rep.preemptions += r->preemptions();
    }
    rep.migrations = migrations_;
    if (reqtrace_.enabled() && !reqtrace_.file().empty()) {
        reqtrace_.writeJson(reqtrace_.file());
    }
    return rep;
}

} // namespace mscclpp::serving
