#ifndef MSCCLPP_SERVING_RNG_HPP
#define MSCCLPP_SERVING_RNG_HPP

#include <cmath>
#include <cstdint>

namespace mscclpp::serving {

/**
 * Deterministic random stream for all serving randomness (arrivals,
 * prompt/output lengths). SplitMix64 plus hand-rolled samplers: unlike
 * std::mt19937 + <random> distributions, every draw is specified down
 * to the bit, so two runs with the same MSCCLPP_SEED are identical on
 * any platform / standard library — the property the determinism
 * ctest asserts.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t nextU64()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double uniform01()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi)
    {
        if (hi <= lo) {
            return lo;
        }
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<int>(nextU64() % span);
    }

    /** Exponential variate with the given mean (inter-arrival gaps). */
    double exponential(double mean)
    {
        // 1 - uniform01() is in (0, 1]: log() never sees zero.
        return -mean * std::log(1.0 - uniform01());
    }

    /**
     * Independent substream: requests draw lengths from a fork keyed
     * by their id, so reordering arrival draws never perturbs length
     * draws (and vice versa).
     */
    Rng fork(std::uint64_t key) const
    {
        Rng r(state_ ^ (0x6a09e667f3bcc909ull + key * 0x9e3779b97f4a7c15ull));
        r.nextU64(); // decorrelate the first draw from the key
        return r;
    }

  private:
    std::uint64_t state_;
};

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_RNG_HPP
