#include "serving/workload.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace mscclpp::serving {

const char*
toString(ArrivalMode m)
{
    switch (m) {
      case ArrivalMode::Poisson:
        return "poisson";
      case ArrivalMode::Bursty:
        return "bursty";
      case ArrivalMode::Trace:
        return "trace";
    }
    return "?";
}

namespace {

/** Instantaneous arrival rate of the bursty process at time @p t. */
double
burstyRateAt(const WorkloadConfig& cfg, double tSec)
{
    const double phase =
        tSec - cfg.burstPeriodSec *
                   std::floor(tSec / cfg.burstPeriodSec);
    const bool on = phase < cfg.burstDuty * cfg.burstPeriodSec;
    // Scale so the long-run mean stays ratePerSec: the on-phase
    // carries burstFactor x its share, the off-phase the remainder.
    const double onRate = cfg.ratePerSec * cfg.burstFactor;
    const double offShare =
        1.0 - cfg.burstFactor * cfg.burstDuty; // may be <= 0
    const double offRate =
        offShare > 0.0
            ? cfg.ratePerSec * offShare / (1.0 - cfg.burstDuty)
            : 0.0;
    return on ? onRate : offRate;
}

/** Sample lengths for request @p id from the mixture. */
void
sampleLengths(const WorkloadConfig& cfg, std::uint64_t seed, Request& r)
{
    Rng rng = Rng(seed).fork(0x4c454e ^ static_cast<std::uint64_t>(r.id));
    double totalWeight = 0.0;
    for (const LengthClass& c : cfg.mix) {
        totalWeight += c.weight;
    }
    double pick = rng.uniform01() * totalWeight;
    const LengthClass* cls = &cfg.mix.back();
    for (const LengthClass& c : cfg.mix) {
        if (pick < c.weight) {
            cls = &c;
            break;
        }
        pick -= c.weight;
    }
    r.promptLen = rng.uniformInt(cls->promptLo, cls->promptHi);
    r.outputLen = rng.uniformInt(cls->outputLo, cls->outputHi);
}

} // namespace

std::vector<Request>
parseTrace(const std::string& spec)
{
    std::vector<Request> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) {
            continue;
        }
        std::size_t c1 = entry.find(':');
        std::size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : entry.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) {
            throw Error(ErrorCode::InvalidUsage,
                        "trace entry '" + entry +
                            "' is not at_us:prompt:output");
        }
        Request r;
        r.id = static_cast<int>(out.size());
        r.arrival = sim::us(std::atof(entry.substr(0, c1).c_str()));
        r.promptLen =
            std::atoi(entry.substr(c1 + 1, c2 - c1 - 1).c_str());
        r.outputLen = std::atoi(entry.substr(c2 + 1).c_str());
        if (r.promptLen < 1 || r.outputLen < 1) {
            throw Error(ErrorCode::InvalidUsage,
                        "trace entry '" + entry +
                            "' needs positive prompt/output lengths");
        }
        out.push_back(r);
    }
    if (out.empty()) {
        throw Error(ErrorCode::InvalidUsage, "empty trace spec");
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival < b.arrival;
                     });
    return out;
}

std::vector<Request>
generateWorkload(const WorkloadConfig& cfg, std::uint64_t seed)
{
    if (cfg.mode == ArrivalMode::Trace) {
        return parseTrace(cfg.trace);
    }
    if (cfg.requests < 1) {
        throw Error(ErrorCode::InvalidUsage,
                    "workload needs at least one request");
    }
    if (cfg.ratePerSec <= 0.0) {
        throw Error(ErrorCode::InvalidUsage,
                    "arrival rate must be positive");
    }
    if (cfg.mix.empty()) {
        throw Error(ErrorCode::InvalidUsage,
                    "length mixture must be non-empty");
    }
    if (cfg.mode == ArrivalMode::Bursty &&
        (cfg.burstFactor < 1.0 || cfg.burstPeriodSec <= 0.0 ||
         cfg.burstDuty <= 0.0 || cfg.burstDuty >= 1.0)) {
        throw Error(ErrorCode::InvalidUsage,
                    "bursty arrivals need burstFactor >= 1, a positive "
                    "period and duty in (0, 1)");
    }

    Rng arrivals = Rng(seed).fork(0x415252); // "ARR"
    std::vector<Request> out;
    out.reserve(cfg.requests);
    double tSec = 0.0;
    for (int i = 0; i < cfg.requests; ++i) {
        if (cfg.mode == ArrivalMode::Poisson) {
            tSec += arrivals.exponential(1.0 / cfg.ratePerSec);
        } else {
            // Non-homogeneous Poisson via thinning against the peak
            // rate: exact for the piecewise-constant on/off profile.
            const double peak = cfg.ratePerSec * cfg.burstFactor;
            for (;;) {
                tSec += arrivals.exponential(1.0 / peak);
                if (arrivals.uniform01() * peak <=
                    burstyRateAt(cfg, tSec)) {
                    break;
                }
            }
        }
        Request r;
        r.id = i;
        r.arrival = sim::us(tSec * 1e6);
        sampleLengths(cfg, seed, r);
        out.push_back(r);
    }
    return out;
}

} // namespace mscclpp::serving
