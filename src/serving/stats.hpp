#ifndef MSCCLPP_SERVING_STATS_HPP
#define MSCCLPP_SERVING_STATS_HPP

#include "serving/workload.hpp"
#include "sim/time.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mscclpp::serving {

/** Lifecycle record of one served request. */
struct RequestStats
{
    int id = -1;
    sim::Time arrival = 0;
    int promptLen = 0;
    int outputLen = 0;
    sim::Time firstToken = 0; ///< completion time of the prefill step
    sim::Time completed = 0;  ///< completion time of the last token
    int replica = -1;         ///< replica that decoded it
    int preemptions = 0;      ///< KV evictions suffered (recompute)
    bool dropped = false;     ///< could never fit in KV capacity

    /** Time-to-first-token. */
    sim::Time ttft() const { return firstToken - arrival; }

    /** Mean time-per-output-token over the decode phase. */
    sim::Time tpot() const
    {
        return outputLen > 1 ? (completed - firstToken) / (outputLen - 1)
                             : 0;
    }

    /** End-to-end latency. */
    sim::Time e2e() const { return completed - arrival; }
};

/**
 * Aggregate serving metrics of one cluster run: request-latency
 * percentiles (TTFT / TPOT / e2e), SLO-violation counts against the
 * configured thresholds, and scheduler-level counters. Percentiles
 * use the bench_report convention (ceil-rank on the sorted sample),
 * so a ServingReport computed from the same requests twice is
 * bit-identical — the property the determinism test asserts.
 */
struct ServingReport
{
    std::uint64_t requests = 0; ///< completed (excludes dropped)
    std::uint64_t dropped = 0;
    std::uint64_t prefillSteps = 0;
    std::uint64_t decodeSteps = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0; ///< prefill->decode KV transfers
    sim::Time makespan = 0;       ///< last completion time

    sim::Time sloTtft = 0; ///< thresholds the violation counts used
    sim::Time sloTpot = 0;

    sim::Time ttftP50 = 0, ttftP90 = 0, ttftP99 = 0;
    sim::Time tpotP50 = 0, tpotP90 = 0, tpotP99 = 0;
    sim::Time e2eP50 = 0, e2eP99 = 0;
    std::uint64_t sloTtftViolations = 0;
    std::uint64_t sloTpotViolations = 0;

    /// SLO burn-rate alerts (obs/slomon.hpp) fired during the run and
    /// still active at its end; 0/0 unless cfg.slomon was on.
    std::uint64_t alertsFired = 0;
    std::uint64_t alertsActive = 0;

    /** Completed output tokens per simulated second. */
    double throughputTps = 0.0;

    /** Multi-line human summary for examples and bench logs. */
    std::string summary() const;
};

/** Percentile @p q (0..1) of @p samples, ceil-rank convention
 *  (matches tools/bench_report.cpp). @return 0 on empty input. */
sim::Time percentile(std::vector<sim::Time> samples, double q);

/** Aggregate @p done into a report under the given SLO thresholds. */
ServingReport summarize(const std::vector<RequestStats>& done,
                        sim::Time sloTtft, sim::Time sloTpot);

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_STATS_HPP
