#ifndef MSCCLPP_SERVING_WORKLOAD_HPP
#define MSCCLPP_SERVING_WORKLOAD_HPP

#include "serving/rng.hpp"
#include "sim/time.hpp"

#include <string>
#include <vector>

namespace mscclpp::serving {

/** How requests arrive at the cluster (all open-loop: arrivals do
 *  not wait for completions, so queueing delay is observable). */
enum class ArrivalMode
{
    Poisson, ///< memoryless stream at ratePerSec
    Bursty,  ///< on/off modulated Poisson (rate x burstFactor when on)
    Trace,   ///< explicit "at_us:prompt:output" triples
};

const char* toString(ArrivalMode m);

/** One class of the prompt/output length mixture. */
struct LengthClass
{
    double weight = 1.0;
    int promptLo = 64;
    int promptHi = 256;
    int outputLo = 32;
    int outputHi = 128;
};

/** One inference request of the open-loop stream. */
struct Request
{
    int id = -1;
    sim::Time arrival = 0;
    int promptLen = 0;
    int outputLen = 0;
};

/**
 * The request stream: arrival process plus length mixture. All
 * randomness flows from the single seed the cluster passes in.
 */
struct WorkloadConfig
{
    ArrivalMode mode = ArrivalMode::Poisson;
    int requests = 128;
    double ratePerSec = 40.0; ///< mean arrival rate (both modes)

    // Bursty mode: the on-phase multiplies the base rate by
    // burstFactor for burstDuty of every burstPeriodSec cycle; the
    // off-phase idles. The long-run mean rate stays ratePerSec.
    double burstFactor = 4.0;
    double burstPeriodSec = 0.5;
    double burstDuty = 0.25;

    /// Mixed prompt/output lengths; defaults model chat (short),
    /// document QA (medium) and long-context summarisation (heavy).
    std::vector<LengthClass> mix = {
        {0.70, 64, 256, 32, 96},
        {0.25, 512, 1536, 64, 192},
        {0.05, 2048, 3584, 128, 384},
    };

    /// Trace mode: semicolon-separated "at_us:prompt:output" triples,
    /// e.g. "0:512:64;1500:128:32". Overrides requests/rate/mix.
    std::string trace;
};

/**
 * Generate the full request stream. Deterministic: the same
 * (config, seed) always yields the same stream. Throws
 * Error(InvalidUsage) on an empty/malformed config (bad trace spec,
 * non-positive rate, empty mixture).
 */
std::vector<Request> generateWorkload(const WorkloadConfig& cfg,
                                      std::uint64_t seed);

/** Parse a trace spec (see WorkloadConfig::trace); throws
 *  Error(InvalidUsage) on malformed input. */
std::vector<Request> parseTrace(const std::string& spec);

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_WORKLOAD_HPP
