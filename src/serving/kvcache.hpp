#ifndef MSCCLPP_SERVING_KVCACHE_HPP
#define MSCCLPP_SERVING_KVCACHE_HPP

#include <cstdint>

namespace mscclpp::serving {

/**
 * Per-replica KV-cache capacity model at token granularity (a
 * simplified vLLM block allocator: blocks of one token). Admission
 * reserves a sequence's current context; every decoded token grows
 * the reservation by one. When a grow fails the replica preempts a
 * victim sequence (recompute-style eviction, tracked here as a
 * release) — so tail latency degrades under memory pressure instead
 * of the simulator wedging.
 */
class KvCache
{
  public:
    explicit KvCache(std::uint64_t capacityTokens)
        : capacity_(capacityTokens)
    {
    }

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t used() const { return used_; }
    std::uint64_t free() const { return capacity_ - used_; }
    std::uint64_t peakUsed() const { return peak_; }

    bool canReserve(std::uint64_t tokens) const
    {
        return tokens <= free();
    }

    /** Reserve @p tokens; @return false (state unchanged) on
     *  insufficient capacity. */
    bool reserve(std::uint64_t tokens)
    {
        if (!canReserve(tokens)) {
            return false;
        }
        used_ += tokens;
        if (used_ > peak_) {
            peak_ = used_;
        }
        return true;
    }

    /** Release @p tokens (sequence retired or preempted). */
    void release(std::uint64_t tokens)
    {
        used_ = tokens > used_ ? 0 : used_ - tokens;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::uint64_t peak_ = 0;
};

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_KVCACHE_HPP
