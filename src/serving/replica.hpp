#ifndef MSCCLPP_SERVING_REPLICA_HPP
#define MSCCLPP_SERVING_REPLICA_HPP

#include "gpu/machine.hpp"
#include "inference/llm.hpp"
#include "obs/reqtrace.hpp"
#include "obs/slomon.hpp"
#include "serving/config.hpp"
#include "serving/kvcache.hpp"
#include "serving/stats.hpp"

#include <deque>
#include <memory>
#include <vector>

namespace mscclpp::serving {

/** Role a replica plays in the cluster (prefill/decode split is only
 *  meaningful under disaggregation). */
enum class ReplicaRole
{
    Unified, ///< continuous batching: prefill and decode interleave
    Prefill, ///< runs prompts only, hands KV to a decode replica
    Decode,  ///< runs decode only on migrated sequences
};

const char* toString(ReplicaRole r);

/** Scheduling state of one in-flight sequence on a replica. */
struct SeqState
{
    int reqId = -1;
    int promptLen = 0;
    int outputLen = 0;
    /// Tokens of context behind the next step (prompt + generated so
    /// far; a preempted sequence re-prefills this many tokens).
    int contextLen = 0;
    int generated = 0; ///< output tokens produced so far
    sim::Time readyAt = 0; ///< earliest time this seq can be scheduled
    std::uint64_t reserved = 0; ///< KV tokens currently held
};

/**
 * One serving replica: a single simulated node (its own Machine and
 * virtual timeline), a tensor-parallel InferenceSim on it, a KV-cache
 * capacity model and the continuous-batching step engine. Every step
 * re-anchors the machine's scheduler to the replica clock, opens a
 * step-profiler window named `serve.<kind>.b<batch>` and issues the
 * real simulated AllReduce — so mid-run fabric faults on this replica
 * surface as request-latency regressions *and* flight-recorder
 * anomalies naming the culprit link.
 */
class Replica
{
  public:
    /** Result of one step that the cluster must route. */
    struct StepOutcome
    {
        /// Prefill-role output: sequences whose KV must migrate to a
        /// decode replica (already released from this replica's KV).
        std::vector<SeqState> handoffPrefills;
        /// Decode-role output: preempted sequences that must go back
        /// to a prefill replica.
        std::vector<SeqState> handoffPreempted;
    };

    Replica(const ServingConfig& cfg, int id, ReplicaRole role);

    /**
     * Attach the cluster's request tracer. Every subsequent step
     * reports per-request phase spans (with the step window's
     * attribution), preemptions, completions and drops to it, mirrors
     * the spans onto the machine trace's "requests" pseudo-process and
     * parks the batched request ids in the tracer so collective root
     * spans carry them.
     */
    void bindRequestTracer(obs::RequestTracer* rt) { reqtrace_ = rt; }

    /**
     * Attach the cluster's SLO burn-rate monitor. Each retirement
     * reports its TTFT/TPOT at the completion timestamp so the monitor
     * can bucket violation fractions by virtual-time interval.
     */
    void bindSloMonitor(obs::SloMonitor* sm) { slomon_ = sm; }

    int id() const { return id_; }
    ReplicaRole role() const { return role_; }
    gpu::Machine& machine() { return *machine_; }
    const KvCache& kv() const { return kv_; }
    sim::Time clock() const { return clock_; }

    std::uint64_t stepsDone() const
    {
        return prefillSteps_ + decodeSteps_;
    }
    std::uint64_t prefillSteps() const { return prefillSteps_; }
    std::uint64_t decodeSteps() const { return decodeSteps_; }
    std::uint64_t preemptions() const { return preemptions_; }

    /** Queued + running sequences (the cluster's load-balance key). */
    int load() const;

    /** Add a request awaiting prefill (arrival or preemption). */
    void enqueuePrefill(SeqState seq);

    /** Add a prefilled sequence migrated in for decoding; @p seq
     *  .readyAt must already include the KV transfer time. */
    void enqueueDecode(SeqState seq);

    /**
     * Earliest virtual time this replica can do work, or
     * sim::kTimeMax when it has none. Work pending behind the
     * replica's own clock is clamped to the clock.
     */
    sim::Time nextActionTime() const;

    /**
     * Run one serving step at nextActionTime(): batch recomposition
     * (admit prefills first, else decode the running batch), the
     * simulated compute + collectives, retirement and KV accounting.
     * Completions/preemptions/drops are written into @p stats (indexed
     * by request id). Requires nextActionTime() != kTimeMax.
     */
    StepOutcome step(std::vector<RequestStats>& stats);

  private:
    bool tryPrefill(sim::Time start, std::vector<RequestStats>& stats,
                    StepOutcome& out);
    void runDecode(sim::Time start, std::vector<RequestStats>& stats,
                   StepOutcome& out);
    void admitDecodes(sim::Time start,
                      std::vector<RequestStats>& stats);
    void preempt(SeqState victim, sim::Time when, StepOutcome& out,
                 std::vector<RequestStats>& stats);
    void retire(const SeqState& seq, sim::Time when,
                std::vector<RequestStats>& stats);
    void drop(const SeqState& seq, sim::Time when,
              std::vector<RequestStats>& stats);
    bool tracingRequests() const
    {
        return reqtrace_ != nullptr && reqtrace_->enabled();
    }
    void parkRequestContext(const std::vector<SeqState>& seqs);
    void mirrorRequestSpan(int reqId, const char* phase, sim::Time begin,
                           sim::Time end, const std::string& label);
    void sampleStepTimeseries(sim::Time at, int batch);

    const ServingConfig* cfg_;
    int id_;
    ReplicaRole role_;
    obs::RequestTracer* reqtrace_ = nullptr;
    obs::SloMonitor* slomon_ = nullptr;
    std::unique_ptr<gpu::Machine> machine_;
    std::unique_ptr<inference::InferenceSim> sim_;
    KvCache kv_;
    sim::Time clock_ = 0;

    std::deque<SeqState> pendingPrefill_;
    std::deque<SeqState> pendingDecode_;
    std::vector<SeqState> running_;

    std::uint64_t prefillSteps_ = 0;
    std::uint64_t decodeSteps_ = 0;
    std::uint64_t preemptions_ = 0;
};

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_REPLICA_HPP
