#include "serving/config.hpp"

#include "core/errors.hpp"

#include <cstdlib>

namespace mscclpp::serving {

namespace {

bool
readU64(const char* name, std::uint64_t& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return false;
    }
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(name) + "='" + v +
                        "' is not an unsigned integer");
    }
    out = parsed;
    return true;
}

bool
readInt(const char* name, int& out, int lo)
{
    std::uint64_t v = 0;
    if (!readU64(name, v)) {
        return false;
    }
    if (v < static_cast<std::uint64_t>(lo) || v > 1'000'000'000ull) {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(name) + " out of range");
    }
    out = static_cast<int>(v);
    return true;
}

bool
readDouble(const char* name, double& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return false;
    }
    out = std::atof(v);
    return true;
}

/** Strict boolean gate, matching the obs env overrides: 0/1/true/false
 *  only, so a typo fails loudly instead of silently disabling. */
bool
readBool(const char* name, bool& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return false;
    }
    std::string s(v);
    if (s == "1" || s == "true") {
        out = true;
    } else if (s == "0" || s == "false") {
        out = false;
    } else {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(name) + "='" + s +
                        "' is not a boolean (use 0/1/true/false)");
    }
    return true;
}

/** Non-empty path override (an empty value is a mistake, not "off"). */
bool
readPath(const char* name, std::string& out)
{
    const char* v = std::getenv(name);
    if (v == nullptr) {
        return false;
    }
    if (*v == '\0') {
        throw Error(ErrorCode::InvalidUsage,
                    std::string(name) + " is set but empty");
    }
    out = v;
    return true;
}

} // namespace

std::uint64_t
ServingConfig::effectiveKvTokens() const
{
    if (kvTokens > 0) {
        return kvTokens;
    }
    const inference::TransformerConfig& m = inference.model;
    const int tp = inference.tensorParallel;
    const double weightShard =
        static_cast<double>(m.totalParams()) * m.bytesPerParam / tp;
    const double hbm = env.hbmCapacityGB * 1e9;
    const double forKv = (hbm - weightShard) * kvMemFraction;
    const double perToken =
        static_cast<double>(m.kvBytesPerToken(tp));
    if (hbm <= 0.0 || forKv <= perToken) {
        // Environments without a declared HBM size get a generous
        // default so capacity never silently becomes the bottleneck.
        return 1u << 20;
    }
    return static_cast<std::uint64_t>(forKv / perToken);
}

ServingConfig
ServingConfig::fromEnv()
{
    ServingConfig cfg;
    readU64("MSCCLPP_SEED", cfg.seed);
    readInt("MSCCLPP_SERVING_REPLICAS", cfg.replicas, 1);
    readInt("MSCCLPP_SERVING_DISAGG", cfg.prefillReplicas, 0);
    readInt("MSCCLPP_SERVING_MAX_BATCH", cfg.maxBatch, 1);
    readInt("MSCCLPP_SERVING_REQUESTS", cfg.workload.requests, 1);
    readU64("MSCCLPP_SERVING_KV_TOKENS", cfg.kvTokens);
    double rate = 0.0;
    if (readDouble("MSCCLPP_SERVING_RATE", rate)) {
        if (rate <= 0.0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_SERVING_RATE must be positive req/s");
        }
        cfg.workload.ratePerSec = rate;
    }
    const char* mode = std::getenv("MSCCLPP_SERVING_ARRIVALS");
    if (mode != nullptr && *mode != '\0') {
        std::string s(mode);
        if (s == "poisson") {
            cfg.workload.mode = ArrivalMode::Poisson;
        } else if (s == "bursty") {
            cfg.workload.mode = ArrivalMode::Bursty;
        } else if (s == "trace") {
            cfg.workload.mode = ArrivalMode::Trace;
        } else {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_SERVING_ARRIVALS='" + s +
                            "' is not a mode "
                            "(use poisson/bursty/trace)");
        }
    }
    const char* trace = std::getenv("MSCCLPP_SERVING_TRACE");
    if (trace != nullptr && *trace != '\0') {
        cfg.workload.trace = trace;
    }
    double ms = 0.0;
    if (readDouble("MSCCLPP_SERVING_SLO_TTFT_MS", ms)) {
        if (ms <= 0.0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_SERVING_SLO_TTFT_MS must be positive");
        }
        cfg.sloTtft = sim::msec(ms);
    }
    if (readDouble("MSCCLPP_SERVING_SLO_TPOT_MS", ms)) {
        if (ms <= 0.0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_SERVING_SLO_TPOT_MS must be positive");
        }
        cfg.sloTpot = sim::msec(ms);
    }
    readBool("MSCCLPP_REQTRACE", cfg.reqtrace);
    readPath("MSCCLPP_REQTRACE_FILE", cfg.reqtraceFile);
    readInt("MSCCLPP_REQTRACE_TOPK", cfg.reqtraceTopK, 1);
    readBool("MSCCLPP_SLOMON", cfg.slomon);
    readPath("MSCCLPP_SLOMON_FILE", cfg.slomonFile);
    double ns = 0.0;
    if (readDouble("MSCCLPP_SLOMON_INTERVAL_NS", ns)) {
        if (ns <= 0.0) {
            throw Error(ErrorCode::InvalidUsage,
                        "MSCCLPP_SLOMON_INTERVAL_NS must be a positive "
                        "virtual-time interval in ns");
        }
        cfg.slomonInterval = sim::ns(ns);
    }
    readInt("MSCCLPP_SLOMON_FAST", cfg.slomonFast, 1);
    readInt("MSCCLPP_SLOMON_SLOW", cfg.slomonSlow, 1);
    if (readDouble("MSCCLPP_SLOMON_BUDGET", cfg.slomonBudget) &&
        (cfg.slomonBudget <= 0.0 || cfg.slomonBudget > 1.0)) {
        throw Error(ErrorCode::InvalidUsage,
                    "MSCCLPP_SLOMON_BUDGET must be a fraction in "
                    "(0, 1]");
    }
    if (readDouble("MSCCLPP_SLOMON_BURN", cfg.slomonBurn) &&
        cfg.slomonBurn <= 0.0) {
        throw Error(ErrorCode::InvalidUsage,
                    "MSCCLPP_SLOMON_BURN must be positive");
    }
    cfg.validate();
    return cfg;
}

void
ServingConfig::validate() const
{
    if (replicas < 1) {
        throw Error(ErrorCode::InvalidUsage,
                    "serving needs at least one replica");
    }
    if (prefillReplicas < 0 || prefillReplicas >= replicas) {
        throw Error(ErrorCode::InvalidUsage,
                    "prefill replicas must leave at least one decode "
                    "replica (0 disables disaggregation)");
    }
    if (maxBatch < 1 || maxPrefillSeqs < 1) {
        throw Error(ErrorCode::InvalidUsage,
                    "batch limits must be at least 1");
    }
    if (kvMemFraction <= 0.0 || kvMemFraction > 1.0) {
        throw Error(ErrorCode::InvalidUsage,
                    "kvMemFraction must be in (0, 1]");
    }
    if (sloTtft == 0 || sloTpot == 0) {
        throw Error(ErrorCode::InvalidUsage,
                    "SLO thresholds must be positive");
    }
    if (reqtraceTopK < 1) {
        throw Error(ErrorCode::InvalidUsage,
                    "reqtrace top-k must be at least 1");
    }
    if (slomonFast < 1 || slomonSlow < slomonFast) {
        throw Error(ErrorCode::InvalidUsage,
                    "SLO monitor windows need 1 <= fast <= slow");
    }
    if (slomonInterval <= 0 || slomonBudget <= 0.0 ||
        slomonBudget > 1.0 || slomonBurn <= 0.0) {
        throw Error(ErrorCode::InvalidUsage,
                    "SLO monitor interval/budget/burn must be positive "
                    "(budget at most 1)");
    }
    for (const FaultSpec& f : faults) {
        if (f.replica < 0 || f.replica >= replicas || f.link.empty() ||
            f.factor <= 0.0) {
            throw Error(ErrorCode::InvalidUsage,
                        "bad fault spec (replica/link/factor)");
        }
        if (f.recoverAtStep != 0 && f.recoverAtStep <= f.atStep) {
            throw Error(ErrorCode::InvalidUsage,
                        "fault recovery step must come after the "
                        "fault step");
        }
    }
}

} // namespace mscclpp::serving
