#ifndef MSCCLPP_SERVING_CONFIG_HPP
#define MSCCLPP_SERVING_CONFIG_HPP

#include "fabric/env.hpp"
#include "inference/llm.hpp"
#include "serving/workload.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mscclpp::serving {

/** A scheduled mid-run bandwidth fault on one replica's fabric
 *  (Fabric::degradeLink at that replica's Nth serving step),
 *  optionally healed later by scaling the link back up. */
struct FaultSpec
{
    int replica = 0;
    std::string link;
    double factor = 1.0;
    std::uint64_t atStep = 0;
    /// Step at which the degradation is undone (degradeLink by
    /// 1/factor); 0 means the fault lasts for the whole run.
    std::uint64_t recoverAtStep = 0;
};

/**
 * Cluster-scale serving configuration: N single-node tensor-parallel
 * replicas (one simulated Machine each), an open-loop request stream,
 * continuous batching, a KV capacity model and SLO thresholds.
 * Defaults model Llama2-70b TP=8 replicas on A100-80G nodes.
 *
 * Every knob has an MSCCLPP_SERVING_* environment override (see
 * fromEnv and the README table); all randomness flows from `seed`
 * (MSCCLPP_SEED), so runs are bit-identical given equal configs.
 */
struct ServingConfig
{
    fabric::EnvConfig env = fabric::makeA100_80G();
    inference::InferenceConfig inference;
    inference::CommBackend backend = inference::CommBackend::Mscclpp;
    WorkloadConfig workload;

    std::uint64_t seed = 42; ///< MSCCLPP_SEED

    int replicas = 1;         ///< MSCCLPP_SERVING_REPLICAS
    /// First N replicas only prefill; the rest only decode, with KV
    /// migrated over the NIC. 0 = unified continuous batching.
    int prefillReplicas = 0;  ///< MSCCLPP_SERVING_DISAGG
    int maxBatch = 16;        ///< MSCCLPP_SERVING_MAX_BATCH
    int maxPrefillSeqs = 4;   ///< prefills admitted per prefill step

    /// Per-replica KV capacity in tokens; 0 derives it from the
    /// environment's HBM size minus the weight shard
    /// (MSCCLPP_SERVING_KV_TOKENS).
    std::uint64_t kvTokens = 0;
    /// Fraction of post-weights HBM given to KV when deriving.
    double kvMemFraction = 0.9;

    sim::Time sloTtft = sim::msec(2000); ///< MSCCLPP_SERVING_SLO_TTFT_MS
    sim::Time sloTpot = sim::msec(200);  ///< MSCCLPP_SERVING_SLO_TPOT_MS

    /// Request-scoped tracing (obs/reqtrace.hpp): per-request span
    /// trees with exact latency attribution, top-k tail exemplars per
    /// SLO class. Enabling it turns on the per-replica step profiler
    /// (the attribution source). Ignored under -DMSCCLPP_NO_OBS.
    bool reqtrace = false;                      ///< MSCCLPP_REQTRACE
    std::string reqtraceFile = "reqtrace.json"; ///< MSCCLPP_REQTRACE_FILE
    int reqtraceTopK = 4;                       ///< MSCCLPP_REQTRACE_TOPK

    /// SLO burn-rate monitor (obs/slomon.hpp): multi-window alerting
    /// over per-interval TTFT/TPOT violation fractions, with the
    /// blamed replica/link correlated from flight-recorder digests.
    /// Enabling it turns on the per-replica flight recorder (the
    /// blame source). Ignored under -DMSCCLPP_NO_OBS.
    bool slomon = false;                     ///< MSCCLPP_SLOMON
    std::string slomonFile = "alerts.json";  ///< MSCCLPP_SLOMON_FILE
    /// Rollup interval of the violation-fraction series.
    sim::Time slomonInterval = sim::msec(100); ///< MSCCLPP_SLOMON_INTERVAL_NS
    int slomonFast = 4;       ///< fast window, intervals (MSCCLPP_SLOMON_FAST)
    int slomonSlow = 16;      ///< slow window, intervals (MSCCLPP_SLOMON_SLOW)
    double slomonBudget = 0.1; ///< error budget (MSCCLPP_SLOMON_BUDGET)
    double slomonBurn = 1.0;   ///< burn threshold (MSCCLPP_SLOMON_BURN)

    std::vector<FaultSpec> faults; ///< mid-run degradations to inject

    /** Effective per-replica KV capacity in tokens. */
    std::uint64_t effectiveKvTokens() const;

    /**
     * Defaults with MSCCLPP_SEED and MSCCLPP_SERVING_* overrides
     * applied. Throws Error(InvalidUsage) on malformed values, like
     * the obs/tuner env gates.
     */
    static ServingConfig fromEnv();

    /** Validate invariants (counts, roles, SLOs); throws
     *  Error(InvalidUsage) naming the bad knob. */
    void validate() const;
};

} // namespace mscclpp::serving

#endif // MSCCLPP_SERVING_CONFIG_HPP
