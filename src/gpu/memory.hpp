#ifndef MSCCLPP_GPU_MEMORY_HPP
#define MSCCLPP_GPU_MEMORY_HPP

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mscclpp::gpu {

/**
 * Backing storage for one simulated device allocation.
 *
 * In Functional data mode the store is materialised in host memory and
 * collectives really move and reduce bytes; in Timed mode the store is
 * empty and only timing is simulated (large-message benchmarks).
 */
class Buffer
{
  public:
    Buffer(int gpuRank, std::uint64_t id, std::size_t size,
           bool materialized)
        : gpuRank_(gpuRank), id_(id), size_(size)
    {
        if (materialized) {
            store_.resize(size);
        }
    }

    int gpuRank() const { return gpuRank_; }
    std::uint64_t id() const { return id_; }
    std::size_t size() const { return size_; }
    bool materialized() const { return !store_.empty() || size_ == 0; }

    std::byte* data() { return store_.empty() ? nullptr : store_.data(); }
    const std::byte* data() const
    {
        return store_.empty() ? nullptr : store_.data();
    }

  private:
    int gpuRank_;
    std::uint64_t id_;
    std::size_t size_;
    std::vector<std::byte> store_;
};

/**
 * A view into a device allocation: the handle passed to channels,
 * kernels and collectives. Cheap to copy; does not own storage.
 */
class DeviceBuffer
{
  public:
    DeviceBuffer() = default;

    DeviceBuffer(Buffer* buffer, std::size_t offset, std::size_t size)
        : buffer_(buffer), offset_(offset), size_(size)
    {
        if (buffer != nullptr && offset + size > buffer->size()) {
            throw std::out_of_range("DeviceBuffer view exceeds allocation");
        }
    }

    bool valid() const { return buffer_ != nullptr; }
    Buffer* buffer() const { return buffer_; }
    std::size_t offset() const { return offset_; }
    std::size_t size() const { return size_; }
    int gpuRank() const { return buffer_ ? buffer_->gpuRank() : -1; }

    /** Sub-view; bounds-checked against this view. */
    DeviceBuffer view(std::size_t off, std::size_t len) const
    {
        if (off + len > size_) {
            throw std::out_of_range("DeviceBuffer sub-view out of range");
        }
        return DeviceBuffer(buffer_, offset_ + off, len);
    }

    /** Raw bytes, or nullptr when the allocation is timing-only. */
    std::byte* data() const
    {
        if (buffer_ == nullptr || buffer_->data() == nullptr) {
            return nullptr;
        }
        return buffer_->data() + offset_;
    }

    template <typename T>
    T* as() const
    {
        return reinterpret_cast<T*>(data());
    }

  private:
    Buffer* buffer_ = nullptr;
    std::size_t offset_ = 0;
    std::size_t size_ = 0;
};

} // namespace mscclpp::gpu

#endif // MSCCLPP_GPU_MEMORY_HPP
