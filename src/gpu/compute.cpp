#include "gpu/compute.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace mscclpp::gpu {

namespace {

bool
bothMaterialized(const DeviceBuffer& a, const DeviceBuffer& b)
{
    return a.data() != nullptr && b.data() != nullptr;
}

} // namespace

void
copyBytes(const DeviceBuffer& dst, const DeviceBuffer& src,
          std::size_t bytes)
{
    if (bytes > dst.size() || bytes > src.size()) {
        throw std::out_of_range("copyBytes range exceeds buffer view");
    }
    if (!bothMaterialized(dst, src)) {
        return;
    }
    // Views may alias the same allocation (in-place repacking).
    std::memmove(dst.data(), src.data(), bytes);
}

void
accumulate(const DeviceBuffer& dst, const DeviceBuffer& src,
           std::size_t bytes, DataType type, ReduceOp op)
{
    if (bytes > dst.size() || bytes > src.size()) {
        throw std::out_of_range("accumulate range exceeds buffer view");
    }
    if (bytes % sizeOf(type) != 0) {
        throw std::invalid_argument("accumulate size not element-aligned");
    }
    if (!bothMaterialized(dst, src)) {
        return;
    }
    std::size_t n = bytes / sizeOf(type);
    if (type == DataType::F32) {
        float* d = dst.as<float>();
        const float* s = src.as<const float>();
        if (op == ReduceOp::Sum) {
            for (std::size_t i = 0; i < n; ++i) {
                d[i] += s[i];
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                d[i] = std::max(d[i], s[i]);
            }
        }
    } else {
        Half* d = dst.as<Half>();
        const Half* s = src.as<const Half>();
        if (op == ReduceOp::Sum) {
            for (std::size_t i = 0; i < n; ++i) {
                d[i] = Half(d[i].toFloat() + s[i].toFloat());
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                d[i] = Half(std::max(d[i].toFloat(), s[i].toFloat()));
            }
        }
    }
}

float
patternValue(DataType type, int rank, std::size_t index, std::size_t seed)
{
    // Small exact values so fp16 sums across <=64 ranks stay exact:
    // integers in [0, 8) scaled by 0.25.
    std::size_t h = index * 2654435761u + static_cast<std::size_t>(rank) *
                        40503u + seed * 9176u;
    float v = static_cast<float>((h >> 8) % 8u) * 0.25f;
    (void)type;
    return v;
}

void
fillPattern(const DeviceBuffer& buf, DataType type, int rank,
            std::size_t seed)
{
    if (buf.data() == nullptr) {
        return;
    }
    std::size_t n = buf.size() / sizeOf(type);
    for (std::size_t i = 0; i < n; ++i) {
        writeElement(buf, type, i, patternValue(type, rank, i, seed));
    }
}

float
readElement(const DeviceBuffer& buf, DataType type, std::size_t index)
{
    if (buf.data() == nullptr) {
        throw std::logic_error("readElement on timing-only buffer");
    }
    if ((index + 1) * sizeOf(type) > buf.size()) {
        throw std::out_of_range("readElement index out of range");
    }
    if (type == DataType::F32) {
        return buf.as<const float>()[index];
    }
    return buf.as<const Half>()[index].toFloat();
}

void
writeElement(const DeviceBuffer& buf, DataType type, std::size_t index,
             float value)
{
    if (buf.data() == nullptr) {
        throw std::logic_error("writeElement on timing-only buffer");
    }
    if ((index + 1) * sizeOf(type) > buf.size()) {
        throw std::out_of_range("writeElement index out of range");
    }
    if (type == DataType::F32) {
        buf.as<float>()[index] = value;
    } else {
        buf.as<Half>()[index] = Half(value);
    }
}

} // namespace mscclpp::gpu
