#ifndef MSCCLPP_GPU_COMPUTE_HPP
#define MSCCLPP_GPU_COMPUTE_HPP

#include "gpu/memory.hpp"
#include "gpu/types.hpp"

#include <cstddef>

namespace mscclpp::gpu {

/**
 * Functional data operations backing the timing model.
 *
 * Each function is a no-op when either buffer is timing-only (Timed
 * data mode); the caller charges device time separately via
 * Gpu::copyTime / Gpu::reduceTime.
 */

/** Copy @p bytes from @p src to @p dst (ranges may overlap). */
void copyBytes(const DeviceBuffer& dst, const DeviceBuffer& src,
               std::size_t bytes);

/** dst[i] = dst[i] op src[i] over @p bytes of @p type elements. */
void accumulate(const DeviceBuffer& dst, const DeviceBuffer& src,
                std::size_t bytes, DataType type, ReduceOp op);

/** Fill a buffer with a deterministic per-rank test pattern. */
void fillPattern(const DeviceBuffer& buf, DataType type, int rank,
                 std::size_t seed = 0);

/**
 * Value the test pattern produces at element @p index for @p rank:
 * used by tests to compute expected collective results without
 * building reference buffers.
 */
float patternValue(DataType type, int rank, std::size_t index,
                   std::size_t seed = 0);

/** Read element @p index of @p buf as float. */
float readElement(const DeviceBuffer& buf, DataType type,
                  std::size_t index);

/** Write @p value to element @p index of @p buf. */
void writeElement(const DeviceBuffer& buf, DataType type, std::size_t index,
                  float value);

} // namespace mscclpp::gpu

#endif // MSCCLPP_GPU_COMPUTE_HPP
