#ifndef MSCCLPP_GPU_KERNEL_HPP
#define MSCCLPP_GPU_KERNEL_HPP

#include "gpu/machine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

#include <functional>
#include <memory>
#include <vector>

namespace mscclpp::gpu {

/**
 * Kernel launch geometry. The simulator models execution at
 * thread-block granularity: one cooperative task per block, with the
 * thread count shaping copy bandwidth and primitive costs.
 */
struct LaunchConfig
{
    int blocks = 1;
    int threadsPerBlock = 1024;
    /// CUDA/HIP-graph replay launches skip most of the driver cost;
    /// the paper's benchmarks enable graphs, so this defaults to true.
    bool graph = true;
};

class BlockCtx;

/** Device code for one thread block. */
using BlockFn = std::function<sim::Task<>(BlockCtx&)>;

namespace detail {

/** Shared per-launch state: grid barrier and completion tracking. */
struct KernelState
{
    KernelState(sim::Scheduler& sched, int blocks)
        : gridBarrier(sched, blocks), wg(sched)
    {
    }

    sim::SimBarrier gridBarrier;
    sim::WaitGroup wg;
    std::vector<std::unique_ptr<BlockCtx>> blocks;
};

} // namespace detail

/**
 * Execution context handed to a thread block's device code: identity,
 * geometry, and intra-kernel synchronisation.
 */
class BlockCtx
{
  public:
    BlockCtx(Gpu& gpu, int blockIdx, const LaunchConfig& cfg,
             detail::KernelState& state)
        : gpu_(&gpu), blockIdx_(blockIdx), cfg_(cfg), state_(&state)
    {
    }

    Gpu& gpu() const { return *gpu_; }
    int blockIdx() const { return blockIdx_; }
    int numBlocks() const { return cfg_.blocks; }
    int numThreads() const { return cfg_.threadsPerBlock; }
    sim::Scheduler& scheduler() const { return gpu_->scheduler(); }
    const fabric::EnvConfig& config() const { return gpu_->config(); }

    /** Barrier across all blocks of this kernel (cooperative-groups
     *  grid sync). Registers with the stall watchdog so a block stuck
     *  here routes hang chains to the blocks that never arrived. */
    sim::Task<> gridBarrier();

    /** Intra-block __syncthreads-equivalent cost. */
    sim::Delay blockBarrier() const
    {
        return sim::Delay(scheduler(), config().blockBarrier,
                          "gpu.kernel");
    }

    /** Charge @p t of device time to this block. */
    sim::Delay busy(sim::Time t) const
    {
        return sim::Delay(scheduler(), t, "gpu.kernel");
    }

    /**
     * Peak thread-copy rate this block can sustain: threads times the
     * per-thread load/store rate. Channels additionally cap this at
     * the link's thread-copy ceiling.
     */
    double threadCopyGBps() const
    {
        return numThreads() * config().perThreadCopyGBps;
    }

  private:
    Gpu* gpu_;
    int blockIdx_;
    LaunchConfig cfg_;
    detail::KernelState* state_;
};

/**
 * Launch device code on @p gpu and return a task that completes when
 * every thread block has finished. Charges launch latency (stream or
 * graph replay) and per-block dispatch cost.
 */
sim::Task<> launchKernel(Gpu& gpu, LaunchConfig cfg, BlockFn fn);

/**
 * Launch @p fn(ctx, rank) as one kernel per GPU, run the machine to
 * completion, and return the elapsed virtual time including the
 * host-side completion sync. The workhorse of collective drivers.
 */
sim::Time runOnAllRanks(Machine& machine, LaunchConfig cfg,
                        const std::function<sim::Task<>(BlockCtx&, int)>& fn);

} // namespace mscclpp::gpu

#endif // MSCCLPP_GPU_KERNEL_HPP
