#ifndef MSCCLPP_GPU_TYPES_HPP
#define MSCCLPP_GPU_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace mscclpp::gpu {

/** Element types supported by collectives (paper evaluates FP16). */
enum class DataType
{
    F16,
    F32,
};

/** Element-wise reduction operators. */
enum class ReduceOp
{
    Sum,
    Max,
};

constexpr std::size_t
sizeOf(DataType t)
{
    return t == DataType::F16 ? 2 : 4;
}

const char* toString(DataType t);
const char* toString(ReduceOp op);

/**
 * IEEE 754 binary16 stored as raw bits, with float conversions.
 *
 * The simulated GPUs compute reductions in fp32 and store fp16,
 * mirroring what real collective kernels do for half precision.
 */
struct Half
{
    std::uint16_t bits = 0;

    Half() = default;
    explicit Half(float f) : bits(fromFloat(f)) {}

    float toFloat() const { return toFloat(bits); }

    static std::uint16_t fromFloat(float f);
    static float toFloat(std::uint16_t h);
};

} // namespace mscclpp::gpu

#endif // MSCCLPP_GPU_TYPES_HPP
