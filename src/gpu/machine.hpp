#ifndef MSCCLPP_GPU_MACHINE_HPP
#define MSCCLPP_GPU_MACHINE_HPP

#include "fabric/env.hpp"
#include "fabric/topology.hpp"
#include "gpu/memory.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

#include <memory>
#include <vector>

namespace mscclpp::gpu {

class Machine;

/**
 * One simulated GPU: a memory allocator plus the device-side cost
 * model (HBM-bound copies and reductions, launch overheads).
 */
class Gpu
{
  public:
    Gpu(Machine& machine, int rank);

    int rank() const { return rank_; }
    int node() const;
    int localRank() const;
    Machine& machine() const { return *machine_; }
    const fabric::EnvConfig& config() const;
    sim::Scheduler& scheduler() const;

    /** Allocate @p bytes of device memory (materialisation follows the
     *  machine's data mode). */
    DeviceBuffer alloc(std::size_t bytes);

    /** Time for a kernel to stream @p bytesTouched through HBM. */
    sim::Time memTime(std::uint64_t bytesTouched) const;

    /**
     * Time for an element-wise reduction that reads @p nInputs buffers
     * of @p bytes each and writes one output buffer (HBM-bound on
     * every GPU we model).
     */
    sim::Time reduceTime(std::uint64_t bytes, int nInputs) const;

    /** Time for a local device-to-device copy of @p bytes. */
    sim::Time copyTime(std::uint64_t bytes) const;

    std::uint64_t bytesAllocated() const { return bytesAllocated_; }

  private:
    Machine* machine_;
    int rank_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::uint64_t nextBufferId_ = 0;
    std::uint64_t bytesAllocated_ = 0;
};

/** Whether device buffers hold real data or are timing-only. */
enum class DataMode
{
    Functional, ///< bytes really move; collectives are verifiable
    Timed,      ///< timing only; used for very large benchmark sizes
};

/**
 * A simulated cluster: scheduler + fabric + GPUs. This is the
 * top-level object every test, example and benchmark builds first.
 */
class Machine
{
  public:
    Machine(fabric::EnvConfig cfg, int numNodes,
            DataMode mode = DataMode::Functional);

    /** Dumps the trace/metrics files when MSCCLPP_TRACE enabled them. */
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    sim::Scheduler& scheduler() { return sched_; }
    fabric::Fabric& fabric() { return *fabric_; }
    const fabric::EnvConfig& config() const { return cfg_; }
    DataMode dataMode() const { return mode_; }

    /** Event tracer + metrics registry for this machine. */
    obs::ObsContext& obs() { return obs_; }
    const obs::ObsContext& obs() const { return obs_; }

    int numNodes() const { return numNodes_; }
    int numGpus() const { return static_cast<int>(gpus_.size()); }
    Gpu& gpu(int rank) { return *gpus_.at(rank); }

    /** Drain all pending events. @return the virtual time reached. */
    sim::Time run();

  private:
    fabric::EnvConfig cfg_;
    int numNodes_;
    DataMode mode_;
    sim::Scheduler sched_;
    obs::ObsContext obs_; ///< before fabric_: links record into it
    std::unique_ptr<fabric::Fabric> fabric_;
    std::vector<std::unique_ptr<Gpu>> gpus_;
};

} // namespace mscclpp::gpu

#endif // MSCCLPP_GPU_MACHINE_HPP
