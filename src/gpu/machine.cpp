#include "gpu/machine.hpp"

#include <cstdio>

namespace mscclpp::gpu {

Gpu::Gpu(Machine& machine, int rank) : machine_(&machine), rank_(rank) {}

int
Gpu::node() const
{
    return machine_->fabric().nodeOf(rank_);
}

int
Gpu::localRank() const
{
    return machine_->fabric().localRankOf(rank_);
}

const fabric::EnvConfig&
Gpu::config() const
{
    return machine_->config();
}

sim::Scheduler&
Gpu::scheduler() const
{
    return machine_->scheduler();
}

DeviceBuffer
Gpu::alloc(std::size_t bytes)
{
    bool materialize = machine_->dataMode() == DataMode::Functional;
    buffers_.push_back(std::make_unique<Buffer>(rank_, nextBufferId_++,
                                                bytes, materialize));
    bytesAllocated_ += bytes;
    return DeviceBuffer(buffers_.back().get(), 0, bytes);
}

sim::Time
Gpu::memTime(std::uint64_t bytesTouched) const
{
    return sim::transferTime(bytesTouched, config().hbmBwGBps);
}

sim::Time
Gpu::reduceTime(std::uint64_t bytes, int nInputs) const
{
    // Read nInputs buffers, write one; HBM traffic dominates the ALU
    // work for element-wise ops on every GPU in Table 1.
    return memTime(bytes * static_cast<std::uint64_t>(nInputs + 1));
}

sim::Time
Gpu::copyTime(std::uint64_t bytes) const
{
    return memTime(bytes * 2);
}

Machine::Machine(fabric::EnvConfig cfg, int numNodes, DataMode mode)
    : cfg_(std::move(cfg)), numNodes_(numNodes), mode_(mode)
{
    // Runtime observability gate: MSCCLPP_TRACE=1 turns the tracer on
    // for every machine in the process, no code changes needed. The
    // tuner gate (MSCCLPP_TUNER) rides the same mechanism so any
    // communicator built on this machine sees the selected mode.
    fabric::applyObsEnvOverrides(cfg_);
    fabric::applyTunerEnvOverrides(cfg_);
    const bool watchdogOn =
        cfg_.watchdogMode != "off" && obs::Tracer::kCompiledIn;
    if (cfg_.critpathEnabled || cfg_.flightEnabled || watchdogOn) {
        // The analyzer, the step profiler and the watchdog's hang
        // reports consume the tracer's span + edge rings, so
        // MSCCLPP_CRITPATH=1 / MSCCLPP_FLIGHT=1 / MSCCLPP_WATCHDOG
        // imply tracing even without MSCCLPP_TRACE.
        cfg_.traceEnabled = true;
    }
    obs_.tracer().setEnabled(cfg_.traceEnabled);
    obs_.metrics().setEnabled(cfg_.metricsEnabled);
    obs_.setTraceFile(cfg_.traceFile);
    obs_.setMetricsFile(cfg_.metricsFile);
    obs_.flight().setEnabled(cfg_.flightEnabled);
    obs_.flight().setSigmaK(cfg_.flightSigma);
    obs_.setFlightFile(cfg_.flightFile);
    obs_.timeseries().setEnabled(cfg_.timeseriesEnabled);
    if (cfg_.timeseriesInterval > 0) {
        obs_.timeseries().setIntervalWidth(cfg_.timeseriesInterval);
    }
    obs_.setTimeseriesFile(cfg_.timeseriesFile);
    // The simulator self-profiler hooks the scheduler's dispatch
    // loop; it reads the host clock only, so attaching it can never
    // change a simulated result (the zero-perturbation test holds it
    // to that).
    obs_.simprof().setEnabled(cfg_.simprofEnabled);
    if (obs_.simprof().enabled()) {
        obs_.simprof().setTopK(cfg_.simprofTopk);
        obs_.simprof().attach(sched_);
    }
    obs_.setSimprofFile(cfg_.simprofFile);
    // Timeseries-only runs still dump (the trace file then carries
    // just the counter tracks).
    obs_.setDumpOnDestroy(cfg_.traceEnabled || cfg_.timeseriesEnabled ||
                          obs_.simprof().enabled());

    // The watchdog binds unconditionally (tests may flip the mode on a
    // built machine), but only an enabled mode installs the scheduler
    // idle hook — a clean run never executes a watchdog event.
    obs_.watchdog().bind(&sched_, &obs_.tracer(), &obs_.flight(),
                         &obs_.window());
    obs_.watchdog().setThreshold(cfg_.watchdogNs);
    obs_.setWatchdogFile(cfg_.watchdogFile);
    if (watchdogOn) {
        obs_.watchdog().setMode(cfg_.watchdogMode == "abort"
                                    ? obs::WatchdogMode::Abort
                                    : obs::WatchdogMode::Report);
    }
    sched_.setIdleHook([this] { obs_.watchdog().onIdle(); });

    fabric_ =
        std::make_unique<fabric::Fabric>(sched_, cfg_, numNodes_, &obs_);
    const int n = fabric_->numGpus();
    gpus_.reserve(n);
    for (int r = 0; r < n; ++r) {
        gpus_.push_back(std::make_unique<Gpu>(*this, r));
    }
}

Machine::~Machine()
{
    if (!obs_.dumpOnDestroy()) {
        return;
    }
    try {
        std::string what = obs_.dump();
        std::fprintf(stderr, "[mscclpp obs] wrote %s\n", what.c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[mscclpp obs] dump failed: %s\n", e.what());
    }
}

sim::Time
Machine::run()
{
    sched_.run();
    return sched_.now();
}

} // namespace mscclpp::gpu
