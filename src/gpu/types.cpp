#include "gpu/types.hpp"

#include <cmath>
#include <cstring>

namespace mscclpp::gpu {

const char*
toString(DataType t)
{
    switch (t) {
      case DataType::F16:
        return "f16";
      case DataType::F32:
        return "f32";
    }
    return "?";
}

const char*
toString(ReduceOp op)
{
    switch (op) {
      case ReduceOp::Sum:
        return "sum";
      case ReduceOp::Max:
        return "max";
    }
    return "?";
}

std::uint16_t
Half::fromFloat(float f)
{
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof(x));
    std::uint32_t sign = (x >> 16) & 0x8000u;
    std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xffu) - 127;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp == 128) { // inf / nan
        return static_cast<std::uint16_t>(sign | 0x7c00u |
                                          (mant != 0 ? 0x200u : 0u));
    }
    if (exp > 15) { // overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (exp >= -14) { // normal
        // Round to nearest even on the 13 dropped mantissa bits.
        std::uint32_t m = mant + 0xfffu + ((mant >> 13) & 1u);
        if (m & 0x800000u) {
            m = 0;
            ++exp;
            if (exp > 15) {
                return static_cast<std::uint16_t>(sign | 0x7c00u);
            }
        }
        return static_cast<std::uint16_t>(
            sign | (static_cast<std::uint32_t>(exp + 15) << 10) | (m >> 13));
    }
    if (exp >= -24) { // subnormal
        mant |= 0x800000u;
        int shift = -exp - 14 + 13;
        std::uint32_t m = mant >> shift;
        std::uint32_t rem = mant & ((1u << shift) - 1);
        std::uint32_t half = 1u << (shift - 1);
        if (rem > half || (rem == half && (m & 1u))) {
            ++m;
        }
        return static_cast<std::uint16_t>(sign | m);
    }
    return static_cast<std::uint16_t>(sign); // underflow -> zero
}

float
Half::toFloat(std::uint16_t h)
{
    std::uint32_t sign = (h & 0x8000u) << 16;
    std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t mant = h & 0x3ffu;
    std::uint32_t x;

    if (exp == 0) {
        if (mant == 0) {
            x = sign;
        } else { // subnormal
            int e = -1;
            do {
                ++e;
                mant <<= 1;
            } while ((mant & 0x400u) == 0);
            x = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                ((mant & 0x3ffu) << 13);
        }
    } else if (exp == 31) {
        x = sign | 0x7f800000u | (mant << 13);
    } else {
        x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &x, sizeof(f));
    return f;
}

} // namespace mscclpp::gpu
