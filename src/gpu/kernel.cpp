#include "gpu/kernel.hpp"

#include <stdexcept>

namespace mscclpp::gpu {

namespace {

sim::Task<>
blockWrapper(std::shared_ptr<detail::KernelState> state, BlockCtx* ctx,
             std::shared_ptr<BlockFn> fn, sim::Time startDelay)
{
    if (startDelay > 0) {
        co_await sim::Delay(ctx->scheduler(), startDelay,
                            "gpu.kernel");
    }
    sim::Time t0 = ctx->scheduler().now();
    co_await (*fn)(*ctx);
    state->wg.done();
    obs::ObsContext& obs = ctx->gpu().machine().obs();
    if (obs.tracer().enabled()) {
        obs.tracer().span(obs::Category::Kernel, "block",
                          ctx->gpu().rank(),
                          "tb" + std::to_string(ctx->blockIdx()), t0,
                          ctx->scheduler().now());
    }
}

} // namespace

sim::Task<>
BlockCtx::gridBarrier()
{
    obs::Watchdog& wd = gpu_->machine().obs().watchdog();
    std::uint64_t wdToken = 0;
    if (wd.enabled()) {
        std::string party = "rank" + std::to_string(gpu_->rank());
        // Owed by our own rank: the chain-walker continues through the
        // rank's other outstanding waits to whatever is holding the
        // missing blocks (self edges are not cycles).
        wdToken = wd.registerWait(
            obs::WaitKind::Barrier, party,
            party + "/tb" + std::to_string(blockIdx_) + " grid barrier",
            party, "remaining thread blocks of this kernel");
    }
    co_await state_->gridBarrier.arriveAndWait();
    wd.completeWait(wdToken);
}

sim::Task<>
launchKernel(Gpu& gpu, LaunchConfig cfg, BlockFn fn)
{
    if (cfg.blocks < 1 || cfg.threadsPerBlock < 1) {
        throw std::invalid_argument("invalid kernel launch configuration");
    }
    sim::Scheduler& sched = gpu.scheduler();
    const fabric::EnvConfig& env = gpu.config();

    sim::Time launchStart = sched.now();
    co_await sim::Delay(sched,
                        cfg.graph ? env.graphLaunch : env.kernelLaunch,
                        "gpu.kernel");
    obs::ObsContext& obs = gpu.machine().obs();
    if (obs.metrics().enabled()) {
        obs.metrics().counter("kernel.launches").add(1);
        obs.metrics()
            .summary("kernel.launch_overhead_ns")
            .add(sim::toNs(sched.now() - launchStart));
    }
    if (obs.tracer().enabled()) {
        obs.tracer().span(obs::Category::Kernel,
                          cfg.graph ? "graph.launch" : "kernel.launch",
                          gpu.rank(), "launch", launchStart, sched.now());
    }

    auto state = std::make_shared<detail::KernelState>(sched, cfg.blocks);
    auto fnHolder = std::make_shared<BlockFn>(std::move(fn));
    state->blocks.reserve(cfg.blocks);
    state->wg.add(cfg.blocks);
    for (int b = 0; b < cfg.blocks; ++b) {
        state->blocks.push_back(
            std::make_unique<BlockCtx>(gpu, b, cfg, *state));
        sim::Time stagger = env.blockDispatch * static_cast<sim::Time>(b);
        if (obs.tracer().enabled()) {
            // Launch edge: block b starts executing one dispatch
            // stagger after the host-side launch completed.
            obs.tracer().edge(obs::EdgeKind::Launch, gpu.rank(),
                              "launch", sched.now(), gpu.rank(),
                              "tb" + std::to_string(b),
                              sched.now() + stagger);
        }
        sim::detach(sched,
                    blockWrapper(state, state->blocks.back().get(),
                                 fnHolder, stagger));
    }
    obs::Watchdog& wd = gpu.machine().obs().watchdog();
    std::uint64_t wdToken = 0;
    if (wd.enabled()) {
        std::string party = "rank" + std::to_string(gpu.rank());
        wdToken = wd.registerWait(
            obs::WaitKind::Barrier, party, party + " kernel completion",
            party,
            std::to_string(cfg.blocks) + " thread blocks to finish");
    }
    co_await state->wg.wait();
    wd.completeWait(wdToken);
}

sim::Time
runOnAllRanks(Machine& machine, LaunchConfig cfg,
              const std::function<sim::Task<>(BlockCtx&, int)>& fn)
{
    sim::Scheduler& sched = machine.scheduler();
    sim::Time t0 = sched.now();
    for (int r = 0; r < machine.numGpus(); ++r) {
        sim::detach(sched,
                    launchKernel(machine.gpu(r), cfg,
                                 [&fn, r](BlockCtx& ctx) {
                                     return fn(ctx, r);
                                 }));
    }
    machine.run();
    return sched.now() - t0 + machine.config().hostSyncOverhead;
}

} // namespace mscclpp::gpu
