#include "gpu/kernel.hpp"

#include <stdexcept>

namespace mscclpp::gpu {

namespace {

sim::Task<>
blockWrapper(std::shared_ptr<detail::KernelState> state, BlockCtx* ctx,
             std::shared_ptr<BlockFn> fn, sim::Time startDelay)
{
    if (startDelay > 0) {
        co_await sim::Delay(ctx->scheduler(), startDelay);
    }
    co_await (*fn)(*ctx);
    state->wg.done();
}

} // namespace

sim::Task<>
launchKernel(Gpu& gpu, LaunchConfig cfg, BlockFn fn)
{
    if (cfg.blocks < 1 || cfg.threadsPerBlock < 1) {
        throw std::invalid_argument("invalid kernel launch configuration");
    }
    sim::Scheduler& sched = gpu.scheduler();
    const fabric::EnvConfig& env = gpu.config();

    co_await sim::Delay(sched,
                        cfg.graph ? env.graphLaunch : env.kernelLaunch);

    auto state = std::make_shared<detail::KernelState>(sched, cfg.blocks);
    auto fnHolder = std::make_shared<BlockFn>(std::move(fn));
    state->blocks.reserve(cfg.blocks);
    state->wg.add(cfg.blocks);
    for (int b = 0; b < cfg.blocks; ++b) {
        state->blocks.push_back(
            std::make_unique<BlockCtx>(gpu, b, cfg, *state));
        sim::Time stagger = env.blockDispatch * static_cast<sim::Time>(b);
        sim::detach(sched,
                    blockWrapper(state, state->blocks.back().get(),
                                 fnHolder, stagger));
    }
    co_await state->wg.wait();
}

sim::Time
runOnAllRanks(Machine& machine, LaunchConfig cfg,
              const std::function<sim::Task<>(BlockCtx&, int)>& fn)
{
    sim::Scheduler& sched = machine.scheduler();
    sim::Time t0 = sched.now();
    for (int r = 0; r < machine.numGpus(); ++r) {
        sim::detach(sched,
                    launchKernel(machine.gpu(r), cfg,
                                 [&fn, r](BlockCtx& ctx) {
                                     return fn(ctx, r);
                                 }));
    }
    machine.run();
    return sched.now() - t0 + machine.config().hostSyncOverhead;
}

} // namespace mscclpp::gpu
