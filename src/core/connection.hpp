#ifndef MSCCLPP_CORE_CONNECTION_HPP
#define MSCCLPP_CORE_CONNECTION_HPP

#include "fabric/link.hpp"
#include "gpu/machine.hpp"
#include "sim/time.hpp"

#include <cstdint>

namespace mscclpp {

/**
 * Data-transfer modes a connection can use, one per channel type
 * (Section 3.2.1). Memory = thread-copy over p2p load/store; Port =
 * copy-engine / RDMA initiated through a port; Switch = in-network
 * multimem.
 */
enum class Transport
{
    Memory,
    Port,
    Switch,
};

const char* toString(Transport t);

/**
 * A directional connection from the local rank to one remote rank,
 * resolved against the fabric at construction: route, latencies and
 * effective bandwidth caps for the chosen transport.
 */
class Connection
{
  public:
    Connection(gpu::Machine& machine, int localRank, int remoteRank,
               Transport transport);

    int localRank() const { return localRank_; }
    int remoteRank() const { return remoteRank_; }
    Transport transport() const { return transport_; }
    bool sameNode() const { return sameNode_; }
    gpu::Machine& machine() const { return *machine_; }
    const fabric::EnvConfig& config() const { return machine_->config(); }

    /** Route used by writes on this connection. */
    fabric::Path& path() { return path_; }

    /**
     * Effective bandwidth ceiling of this connection's copy mechanism
     * (line rate times the thread-copy or DMA efficiency factor).
     */
    double effectiveBwGBps() const { return effectiveBw_; }

    /**
     * Reserve the route for a @p bytes write. @p senderCapGBps
     * additionally caps the rate (e.g. the calling block's thread-copy
     * rate); 0 means no sender-side cap.
     * @return (start, arrival at remote memory).
     */
    std::pair<sim::Time, sim::Time>
    reserveWrite(std::uint64_t bytes, double senderCapGBps = 0.0);

    /**
     * Reserve an 8-byte remote atomic (semaphore signal). Ordered
     * after previous writes *on this connection* (NVLink/IB same-QP
     * write ordering) but not behind other channels' bulk traffic —
     * small control messages interleave at fine granularity on real
     * ports.
     * @return arrival time of the atomic at the remote GPU.
     */
    sim::Time reserveAtomic();

    /** Arrival time of the last write reserved on this connection. */
    sim::Time lastWriteArrival() const { return lastWriteArrival_; }

  private:
    gpu::Machine* machine_;
    int localRank_;
    int remoteRank_;
    Transport transport_;
    bool sameNode_;
    fabric::Path path_;
    double effectiveBw_;
    sim::Time lastWriteArrival_ = 0;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_CONNECTION_HPP
