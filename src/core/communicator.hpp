#ifndef MSCCLPP_CORE_COMMUNICATOR_HPP
#define MSCCLPP_CORE_COMMUNICATOR_HPP

#include "core/bootstrap.hpp"
#include "core/connection.hpp"
#include "core/registered_memory.hpp"
#include "core/semaphore.hpp"
#include "gpu/machine.hpp"

#include <memory>
#include <vector>

namespace mscclpp {

/**
 * Per-rank entry point of the MSCCL++ host runtime (Section 4.1):
 * owns the bootstrap, registers communication buffers, creates
 * connections and semaphores, and exchanges their handles with peers.
 */
class Communicator
{
  public:
    /**
     * @param bootstrap metadata-exchange group this rank belongs to;
     *        the bootstrap rank selects this rank's GPU in @p machine.
     */
    Communicator(std::shared_ptr<Bootstrap> bootstrap,
                 gpu::Machine& machine);

    /** Detaches the log clock so it cannot outlive the scheduler. */
    ~Communicator();

    int rank() const { return bootstrap_->rank(); }
    int size() const { return bootstrap_->size(); }
    gpu::Machine& machine() const { return *machine_; }
    gpu::Gpu& gpu() const { return machine_->gpu(rank()); }
    Bootstrap& bootstrap() const { return *bootstrap_; }

    /** Register a local buffer for remote access. */
    RegisteredMemory registerMemory(const gpu::DeviceBuffer& buffer);

    /** Send a registered-memory handle to @p peer under @p tag. */
    void sendMemory(const RegisteredMemory& mem, int peer, int tag);

    /** Receive a peer's registered-memory handle. */
    RegisteredMemory recvMemory(int peer, int tag);

    /** Create a connection to @p peer over @p transport. */
    std::shared_ptr<Connection> connect(int peer, Transport transport);

    /**
     * Allocate a semaphore on this rank's GPU. The returned object is
     * owned by the communicator (kept alive until destruction).
     */
    DeviceSemaphore* createSemaphore();

    /** Exchange a semaphore handle with a peer. */
    void sendSemaphore(const DeviceSemaphore* sem, int peer, int tag);
    DeviceSemaphore* recvSemaphore(int peer, int tag);

  private:
    std::shared_ptr<Bootstrap> bootstrap_;
    gpu::Machine* machine_;
    std::vector<std::unique_ptr<DeviceSemaphore>> semaphores_;
    std::vector<std::shared_ptr<Connection>> connections_;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_COMMUNICATOR_HPP
