#ifndef MSCCLPP_CORE_ERRORS_HPP
#define MSCCLPP_CORE_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace mscclpp {

/** Error categories mirroring the real library's mscclppResult_t. */
enum class ErrorCode
{
    InvalidUsage,  ///< caller violated an API precondition
    SystemError,   ///< OS-level failure (sockets, etc.)
    RemoteError,   ///< a peer misbehaved or disconnected
    Timeout,       ///< an operation exceeded its deadline
    InternalError, ///< a bug in this library
};

/** Inline so Error is usable from every layer, including the ones
 *  below mscclpp_core in the link order (fabric, obs). */
inline const char*
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidUsage:
        return "invalid usage";
      case ErrorCode::SystemError:
        return "system error";
      case ErrorCode::RemoteError:
        return "remote error";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::InternalError:
        return "internal error";
    }
    return "unknown error";
}

/** Exception carrying a library error code. */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string& what)
        : std::runtime_error(std::string(toString(code)) + ": " + what),
          code_(code)
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_ERRORS_HPP
