#ifndef MSCCLPP_CORE_ERRORS_HPP
#define MSCCLPP_CORE_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace mscclpp {

/** Error categories mirroring the real library's mscclppResult_t. */
enum class ErrorCode
{
    InvalidUsage,  ///< caller violated an API precondition
    SystemError,   ///< OS-level failure (sockets, etc.)
    RemoteError,   ///< a peer misbehaved or disconnected
    Timeout,       ///< an operation exceeded its deadline
    InternalError, ///< a bug in this library
};

const char* toString(ErrorCode code);

/** Exception carrying a library error code. */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string& what)
        : std::runtime_error(std::string(toString(code)) + ": " + what),
          code_(code)
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_ERRORS_HPP
