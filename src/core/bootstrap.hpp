#ifndef MSCCLPP_CORE_BOOTSTRAP_HPP
#define MSCCLPP_CORE_BOOTSTRAP_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mscclpp {

/**
 * Host-side metadata exchange used during initialisation (Section
 * 4.1): point-to-point send/recv, allGather and barrier across all
 * participating processes.
 *
 * This runs for real (threads + sockets), not in simulated time —
 * bootstrap happens once before any collective and is never part of
 * the paper's measurements.
 */
class Bootstrap
{
  public:
    virtual ~Bootstrap() = default;

    virtual int rank() const = 0;
    virtual int size() const = 0;

    /** Send @p bytes of @p data to @p peer under @p tag. */
    virtual void send(int peer, int tag, const void* data,
                      std::size_t bytes) = 0;

    /** Receive exactly @p bytes from @p peer under @p tag (blocking). */
    virtual void recv(int peer, int tag, void* data, std::size_t bytes) = 0;

    /**
     * Gather @p bytesPerRank from every rank into @p allData (laid out
     * rank-major). Every rank must call with identical bytesPerRank.
     */
    virtual void allGather(void* allData, std::size_t bytesPerRank) = 0;

    /** Block until all ranks have entered the barrier. */
    virtual void barrier() = 0;

    // ---- convenience wrappers -------------------------------------------

    void sendVec(int peer, int tag, const std::vector<std::uint8_t>& v);
    std::vector<std::uint8_t> recvVec(int peer, int tag, std::size_t bytes);
};

/**
 * In-process bootstrap: all ranks are threads (or sequential callers)
 * in one process sharing a mailbox. create() returns one Bootstrap
 * per rank.
 */
std::vector<std::shared_ptr<Bootstrap>> createInProcessBootstrap(int size);

/**
 * POSIX-socket bootstrap, the library's default in the paper. Rank 0
 * listens on @p port (localhost); all ranks build a full connection
 * mesh during construction. Each rank constructs its own
 * TcpBootstrap, typically from its own thread or process.
 *
 * @param port rendezvous port of rank 0; pass 0 to pick an ephemeral
 *        port (then only usable when all ranks share the process and
 *        discover it via tcpBootstrapPort()).
 */
std::shared_ptr<Bootstrap> createTcpBootstrap(int rank, int size, int port);

} // namespace mscclpp

#endif // MSCCLPP_CORE_BOOTSTRAP_HPP
