#include "core/logging.hpp"
#include "core/errors.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mscclpp {

const char*
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidUsage:
        return "invalid usage";
      case ErrorCode::SystemError:
        return "system error";
      case ErrorCode::RemoteError:
        return "remote error";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::InternalError:
        return "internal error";
    }
    return "unknown error";
}

LogLevel
logLevel()
{
    static LogLevel level = [] {
        const char* env = std::getenv("MSCCLPP_LOG_LEVEL");
        if (env == nullptr) {
            return LogLevel::None;
        }
        if (std::strcmp(env, "ERROR") == 0) {
            return LogLevel::Error;
        }
        if (std::strcmp(env, "WARN") == 0) {
            return LogLevel::Warn;
        }
        if (std::strcmp(env, "INFO") == 0) {
            return LogLevel::Info;
        }
        if (std::strcmp(env, "DEBUG") == 0) {
            return LogLevel::Debug;
        }
        return LogLevel::None;
    }();
    return level;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    static std::mutex mu;
    static const char* names[] = {"", "E", "W", "I", "D"};
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "[mscclpp %s] %s\n",
                 names[static_cast<int>(level)], msg.c_str());
}

} // namespace mscclpp
