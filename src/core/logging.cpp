#include "core/logging.hpp"
#include "core/errors.hpp"
#include "sim/scheduler.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mscclpp {

LogLevel
logLevel()
{
    static LogLevel level = [] {
        const char* env = std::getenv("MSCCLPP_LOG_LEVEL");
        if (env == nullptr) {
            return LogLevel::None;
        }
        if (std::strcmp(env, "ERROR") == 0) {
            return LogLevel::Error;
        }
        if (std::strcmp(env, "WARN") == 0) {
            return LogLevel::Warn;
        }
        if (std::strcmp(env, "INFO") == 0) {
            return LogLevel::Info;
        }
        if (std::strcmp(env, "DEBUG") == 0) {
            return LogLevel::Debug;
        }
        return LogLevel::None;
    }();
    return level;
}

namespace {

const sim::Scheduler* logClock = nullptr;
int logRank = -1;

} // namespace

void
setLogClock(const sim::Scheduler* sched)
{
    logClock = sched;
}

void
setLogRank(int rank)
{
    logRank = rank;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    static std::mutex mu;
    static const char* names[] = {"", "E", "W", "I", "D"};
    std::lock_guard<std::mutex> lock(mu);
    std::string prefix;
    if (logClock != nullptr) {
        char t[48];
        std::snprintf(t, sizeof(t), " %.3fus", sim::toUs(logClock->now()));
        prefix += t;
    }
    if (logRank >= 0) {
        prefix += " r" + std::to_string(logRank);
    }
    std::fprintf(stderr, "[mscclpp %s%s] %s\n",
                 names[static_cast<int>(level)], prefix.c_str(),
                 msg.c_str());
}

} // namespace mscclpp
