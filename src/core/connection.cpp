#include "core/connection.hpp"

#include "core/errors.hpp"

namespace mscclpp {

const char*
toString(Transport t)
{
    switch (t) {
      case Transport::Memory:
        return "Memory";
      case Transport::Port:
        return "Port";
      case Transport::Switch:
        return "Switch";
    }
    return "?";
}

Connection::Connection(gpu::Machine& machine, int localRank, int remoteRank,
                       Transport transport)
    : machine_(&machine),
      localRank_(localRank),
      remoteRank_(remoteRank),
      transport_(transport)
{
    fabric::Fabric& fab = machine.fabric();
    if (localRank == remoteRank) {
        throw Error(ErrorCode::InvalidUsage,
                    "connection endpoints must differ");
    }
    sameNode_ = fab.sameNode(localRank, remoteRank);
    const fabric::EnvConfig& cfg = machine.config();

    switch (transport) {
      case Transport::Memory:
        if (!sameNode_) {
            throw Error(ErrorCode::InvalidUsage,
                        "MemoryChannel requires peer-to-peer access "
                        "(same node)");
        }
        path_ = fab.intraPath(localRank, remoteRank);
        effectiveBw_ = path_.bottleneckGBps() * cfg.threadCopyPeakEff;
        break;
      case Transport::Port:
        // DMA-copy inside a node, RDMA across nodes; both go through
        // a port controlled by dedicated hardware.
        path_ = sameNode_ ? fab.intraPath(localRank, remoteRank)
                          : fab.netPath(localRank, remoteRank);
        effectiveBw_ = path_.bottleneckGBps() *
                       (sameNode_ ? cfg.dmaCopyEff : 1.0);
        break;
      case Transport::Switch:
        throw Error(ErrorCode::InvalidUsage,
                    "SwitchChannel connections are created per group, "
                    "not per peer");
    }
}

std::pair<sim::Time, sim::Time>
Connection::reserveWrite(std::uint64_t bytes, double senderCapGBps)
{
    double cap = effectiveBw_;
    if (senderCapGBps > 0.0 && senderCapGBps < cap) {
        cap = senderCapGBps;
    }
    auto res = path_.reserve(bytes, cap);
    lastWriteArrival_ = std::max(lastWriteArrival_, res.second);
    return res;
}

sim::Time
Connection::reserveAtomic()
{
    // The atomic rides the wire immediately (8 bytes interleave with
    // bulk traffic) but cannot overtake this connection's own writes.
    sim::Time wireArrival =
        machine_->scheduler().now() + path_.latency();
    return std::max(wireArrival, lastWriteArrival_) +
           config().atomicAddLatency;
}

} // namespace mscclpp
