#include "core/semaphore.hpp"

#include "core/errors.hpp"

#include <cstring>

namespace mscclpp {

std::vector<std::uint8_t>
DeviceSemaphore::serialize() const
{
    std::uint64_t ptr = reinterpret_cast<std::uint64_t>(this);
    std::vector<std::uint8_t> out(sizeof(ptr));
    std::memcpy(out.data(), &ptr, sizeof(ptr));
    return out;
}

DeviceSemaphore*
DeviceSemaphore::deserialize(const std::vector<std::uint8_t>& d)
{
    if (d.size() != sizeof(std::uint64_t)) {
        throw Error(ErrorCode::InvalidUsage, "bad semaphore wire size");
    }
    std::uint64_t ptr;
    std::memcpy(&ptr, d.data(), sizeof(ptr));
    return reinterpret_cast<DeviceSemaphore*>(ptr);
}

std::size_t
DeviceSemaphore::serializedSize()
{
    return sizeof(std::uint64_t);
}

} // namespace mscclpp
