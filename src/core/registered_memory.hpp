#ifndef MSCCLPP_CORE_REGISTERED_MEMORY_HPP
#define MSCCLPP_CORE_REGISTERED_MEMORY_HPP

#include "gpu/memory.hpp"

#include <cstdint>
#include <vector>

namespace mscclpp {

/**
 * A device allocation registered for remote access, exchangeable
 * between ranks via the bootstrap (the analogue of NCCL/MSCCL++ memory
 * registration handles).
 *
 * Simulation note: all ranks share one address space, so the
 * serialised handle carries an in-process buffer reference. The
 * exchange flow (serialize -> bootstrap -> deserialize) is identical
 * to the real library's.
 */
class RegisteredMemory
{
  public:
    RegisteredMemory() = default;

    RegisteredMemory(int rank, gpu::DeviceBuffer buffer)
        : rank_(rank), buffer_(buffer)
    {
    }

    bool valid() const { return buffer_.valid(); }
    int rank() const { return rank_; }
    const gpu::DeviceBuffer& buffer() const { return buffer_; }
    std::size_t size() const { return buffer_.size(); }

    /** Wire format for bootstrap exchange. */
    std::vector<std::uint8_t> serialize() const;

    /** Rebuild a handle received from a peer. */
    static RegisteredMemory deserialize(const std::vector<std::uint8_t>& d);

    /** Size of the wire format in bytes. */
    static std::size_t serializedSize();

  private:
    int rank_ = -1;
    gpu::DeviceBuffer buffer_;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_REGISTERED_MEMORY_HPP
