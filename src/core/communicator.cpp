#include "core/communicator.hpp"

#include "core/errors.hpp"
#include "core/logging.hpp"

namespace mscclpp {

Communicator::Communicator(std::shared_ptr<Bootstrap> bootstrap,
                           gpu::Machine& machine)
    : bootstrap_(std::move(bootstrap)), machine_(&machine)
{
    if (bootstrap_ == nullptr) {
        throw Error(ErrorCode::InvalidUsage, "null bootstrap");
    }
    if (bootstrap_->size() != machine.numGpus()) {
        throw Error(ErrorCode::InvalidUsage,
                    "bootstrap size does not match machine GPU count");
    }
    // Stamp log lines with this machine's virtual clock so messages
    // from interleaved coroutines can be ordered at a glance.
    setLogClock(&machine.scheduler());
    MSCCLPP_DEBUG("communicator rank %d/%d on %s", rank(), size(),
                  machine.config().name.c_str());
}

Communicator::~Communicator()
{
    // The scheduler can be destroyed right after us; stop stamping
    // log lines with a clock that may no longer exist.
    setLogClock(nullptr);
}

RegisteredMemory
Communicator::registerMemory(const gpu::DeviceBuffer& buffer)
{
    if (!buffer.valid()) {
        throw Error(ErrorCode::InvalidUsage,
                    "cannot register an invalid buffer");
    }
    if (buffer.gpuRank() != rank()) {
        throw Error(ErrorCode::InvalidUsage,
                    "buffer does not belong to this rank's GPU");
    }
    return RegisteredMemory(rank(), buffer);
}

void
Communicator::sendMemory(const RegisteredMemory& mem, int peer, int tag)
{
    bootstrap_->sendVec(peer, tag, mem.serialize());
}

RegisteredMemory
Communicator::recvMemory(int peer, int tag)
{
    auto wire =
        bootstrap_->recvVec(peer, tag, RegisteredMemory::serializedSize());
    return RegisteredMemory::deserialize(wire);
}

std::shared_ptr<Connection>
Communicator::connect(int peer, Transport transport)
{
    auto conn =
        std::make_shared<Connection>(*machine_, rank(), peer, transport);
    connections_.push_back(conn);
    return conn;
}

DeviceSemaphore*
Communicator::createSemaphore()
{
    semaphores_.push_back(
        std::make_unique<DeviceSemaphore>(*machine_, rank()));
    return semaphores_.back().get();
}

void
Communicator::sendSemaphore(const DeviceSemaphore* sem, int peer, int tag)
{
    bootstrap_->sendVec(peer, tag, sem->serialize());
}

DeviceSemaphore*
Communicator::recvSemaphore(int peer, int tag)
{
    auto wire =
        bootstrap_->recvVec(peer, tag, DeviceSemaphore::serializedSize());
    return DeviceSemaphore::deserialize(wire);
}

} // namespace mscclpp
