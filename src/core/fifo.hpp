#ifndef MSCCLPP_CORE_FIFO_HPP
#define MSCCLPP_CORE_FIFO_HPP

#include "fabric/env.hpp"
#include "obs/obs.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

namespace mscclpp {

/**
 * A request the GPU pushes to its channel's CPU proxy thread
 * (Figure 7). Offsets are relative to the channel's registered source
 * and destination buffers.
 */
struct ProxyRequest
{
    enum class Kind
    {
        Put,    ///< start an asynchronous data transfer
        Signal, ///< increment the remote semaphore (ordered after puts)
        Flush,  ///< ack the GPU once all prior requests completed
        Stop,   ///< shut the proxy down (host-side teardown)
    };

    Kind kind = Kind::Put;
    int channelId = 0;   ///< which channel owns this request (shared
                         ///< proxy services serve many channels)
    std::uint64_t srcOff = 0;
    std::uint64_t dstOff = 0;
    std::uint64_t bytes = 0;
    std::uint64_t flushSeq = 0; ///< Flush: ticket the GPU waits on
    sim::Time pushedAt = 0;     ///< set by Fifo::push

    /// Traced pusher timeline (set by channel device ops when the
    /// tracer is on); Fifo::pop emits the FifoHop causal edge from it.
    int srcPid = -1;
    std::string srcTrack;
};

/**
 * The GPU->CPU request queue of a PortChannel: a fixed-depth FIFO in
 * managed memory. The GPU blocks when the queue is full (head/tail
 * back-pressure, step 1 of Figure 7); the CPU observes a request one
 * managed-memory polling latency after the push.
 */
class Fifo
{
  public:
    /** @param pollFree descriptors are snooped by hardware: skip the
     *  GPU->CPU managed-memory polling latency (device-initiated
     *  ports, Section 3.2.1).
     *  @param obs optional observability context; push/pop record
     *  Fifo-category spans on (@p pid, @p track) plus the
     *  `fifo.push_wait_ns` / `fifo.depth` metrics. */
    Fifo(sim::Scheduler& sched, const fabric::EnvConfig& cfg,
         bool pollFree = false, obs::ObsContext* obs = nullptr,
         int pid = obs::kHostPid, std::string track = "fifo")
        : sched_(&sched), cfg_(&cfg), pollFree_(pollFree),
          notFull_(sched), notEmpty_(sched), obs_(obs), pid_(pid),
          track_(std::move(track))
    {
        if (obs_ != nullptr) {
            // Resolve metric handles once; push/pop only dereference.
            pushWaitNs_ = &obs_->metrics().summary("fifo.push_wait_ns");
            depthOnPush_ = &obs_->metrics().summary("fifo.depth");
            depthGauge_ =
                &obs_->metrics().gauge("fifo.depth." + track_);
        }
    }

    /**
     * Name the two ends of this queue for the watchdog's wait-for
     * graph: @p gpuParty pushes ("rank0"), @p proxyParty pops
     * ("proxy:r0->r1"). A stuck push is owed by the proxy (it must
     * drain the queue); a blocking pop is owed by the GPU — but pop
     * waits are never hang *subjects*, since an idle proxy
     * legitimately parks on an empty queue between requests.
     */
    void setWatchdogParties(std::string gpuParty, std::string proxyParty)
    {
        wdGpuParty_ = std::move(gpuParty);
        wdProxyParty_ = std::move(proxyParty);
    }

    /** GPU side: append a request, waiting while the queue is full. */
    sim::Task<> push(ProxyRequest req)
    {
        sim::Time t0 = sched_->now();
        std::uint64_t wdToken = 0;
        if (queue_.size() >= static_cast<std::size_t>(cfg_->fifoDepth) &&
            obs_ != nullptr && obs_->watchdog().enabled()) {
            wdToken = obs_->watchdog().registerWait(
                obs::WaitKind::FifoPush, wdGpuParty_,
                wdGpuParty_ + " push to " + track_, wdProxyParty_,
                "free slot in " + track_ + " (proxy must drain it)");
        }
        while (queue_.size() >= static_cast<std::size_t>(cfg_->fifoDepth)) {
            co_await notFull_.wait();
        }
        if (obs_ != nullptr) {
            obs_->watchdog().completeWait(wdToken);
        }
        co_await sim::Delay(*sched_, cfg_->fifoPushCost,
                            "proxy.fifo");
        req.pushedAt = sched_->now();
        ++head_;
        queue_.push_back(req);
        notEmpty_.notifyAll();
        if (obs_ != nullptr) {
            if (obs_->metrics().enabled()) {
                pushWaitNs_->add(sim::toNs(sched_->now() - t0));
                depthOnPush_->add(static_cast<double>(queue_.size()));
                depthGauge_->set(static_cast<double>(queue_.size()));
            }
            if (obs_->timeseries().enabled()) {
                obs_->timeseries().record(
                    "fifo.depth." + track_, sched_->now(),
                    static_cast<double>(queue_.size()));
            }
            if (obs_->tracer().enabled()) {
                obs_->tracer().span(obs::Category::Fifo, "fifo.push", pid_,
                                    track_, t0, sched_->now(), req.bytes,
                                    req.channelId);
            }
        }
    }

    /**
     * CPU side: take the oldest request, no earlier than its push time
     * plus the managed-memory polling latency.
     */
    sim::Task<ProxyRequest> pop()
    {
        sim::Time t0 = sched_->now();
        std::uint64_t wdToken = 0;
        if (queue_.empty() && obs_ != nullptr &&
            obs_->watchdog().enabled()) {
            // reportable=false: an empty queue is the proxy's idle
            // state, not a stall — but the wait stays in the graph so
            // chains can route through a parked proxy to its GPU.
            wdToken = obs_->watchdog().registerWait(
                obs::WaitKind::FifoPop, wdProxyParty_,
                wdProxyParty_ + " pop from " + track_, wdGpuParty_,
                "next request in " + track_, /*reportable=*/false);
        }
        while (queue_.empty()) {
            co_await notEmpty_.wait();
        }
        if (obs_ != nullptr) {
            obs_->watchdog().completeWait(wdToken);
        }
        ProxyRequest req = queue_.front();
        sim::Time visible =
            req.pushedAt + (pollFree_ ? 0 : cfg_->fifoPollLatency);
        if (visible > sched_->now()) {
            co_await sim::Delay(*sched_, visible - sched_->now(),
                                "proxy.fifo");
        }
        queue_.pop_front();
        ++tail_;
        notFull_.notifyAll();
        if (obs_ != nullptr) {
            if (obs_->metrics().enabled()) {
                depthGauge_->set(static_cast<double>(queue_.size()));
            }
            if (obs_->timeseries().enabled()) {
                obs_->timeseries().record(
                    "fifo.depth." + track_, sched_->now(),
                    static_cast<double>(queue_.size()));
            }
            if (obs_->tracer().enabled()) {
                obs_->tracer().span(obs::Category::Fifo, "fifo.pop",
                                    pid_, track_, t0, sched_->now(),
                                    req.bytes, req.channelId);
                if (req.srcPid != -1) {
                    // Causal hand-off: the device push at pushedAt is
                    // what made this pop (and the request it carries)
                    // possible.
                    obs_->tracer().edge(obs::EdgeKind::FifoHop,
                                        req.srcPid, req.srcTrack,
                                        req.pushedAt, pid_, track_,
                                        sched_->now(), req.bytes,
                                        req.channelId);
                }
            }
        }
        co_return req;
    }

    /**
     * Host-side enqueue used for teardown (Stop requests): bypasses
     * depth back-pressure since the host is not a simulated task.
     */
    void pushFromHost(ProxyRequest req)
    {
        req.pushedAt = sched_->now();
        ++head_;
        queue_.push_back(req);
        notEmpty_.notifyAll();
    }

    std::uint64_t head() const { return head_; }
    std::uint64_t tail() const { return tail_; }
    std::size_t depth() const { return queue_.size(); }

  private:
    sim::Scheduler* sched_;
    const fabric::EnvConfig* cfg_;
    bool pollFree_ = false;
    std::deque<ProxyRequest> queue_;
    sim::SimSignal notFull_;
    sim::SimSignal notEmpty_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    obs::ObsContext* obs_ = nullptr;
    int pid_ = obs::kHostPid;
    std::string track_ = "fifo";
    obs::Summary* pushWaitNs_ = nullptr;
    obs::Summary* depthOnPush_ = nullptr;
    obs::Gauge* depthGauge_ = nullptr;
    std::string wdGpuParty_ = "host";
    std::string wdProxyParty_ = "proxy";
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_FIFO_HPP
