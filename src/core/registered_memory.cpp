#include "core/registered_memory.hpp"

#include "core/errors.hpp"

#include <cstring>

namespace mscclpp {

namespace {

struct Wire
{
    std::int32_t rank;
    std::uint64_t bufferPtr;
    std::uint64_t offset;
    std::uint64_t size;
};

} // namespace

std::vector<std::uint8_t>
RegisteredMemory::serialize() const
{
    Wire w{rank_, reinterpret_cast<std::uint64_t>(buffer_.buffer()),
           buffer_.offset(), buffer_.size()};
    std::vector<std::uint8_t> out(sizeof(Wire));
    std::memcpy(out.data(), &w, sizeof(Wire));
    return out;
}

RegisteredMemory
RegisteredMemory::deserialize(const std::vector<std::uint8_t>& d)
{
    if (d.size() != sizeof(Wire)) {
        throw Error(ErrorCode::InvalidUsage,
                    "bad RegisteredMemory wire size");
    }
    Wire w;
    std::memcpy(&w, d.data(), sizeof(Wire));
    auto* buf = reinterpret_cast<gpu::Buffer*>(w.bufferPtr);
    return RegisteredMemory(w.rank,
                            gpu::DeviceBuffer(buf, w.offset, w.size));
}

std::size_t
RegisteredMemory::serializedSize()
{
    return sizeof(Wire);
}

} // namespace mscclpp
