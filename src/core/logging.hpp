#ifndef MSCCLPP_CORE_LOGGING_HPP
#define MSCCLPP_CORE_LOGGING_HPP

#include <cstdio>
#include <string>

namespace mscclpp {

/** Log severities; the threshold comes from MSCCLPP_LOG_LEVEL. */
enum class LogLevel
{
    None = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
};

/** Current threshold (parsed once from the environment). */
LogLevel logLevel();

/** Emit one log line at @p level if it passes the threshold. */
void logMessage(LogLevel level, const std::string& msg);

namespace detail {

template <typename... Args>
std::string
formatLog(const char* fmt, Args... args)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return buf;
}

} // namespace detail

#define MSCCLPP_LOG(level, ...)                                              \
    do {                                                                     \
        if (static_cast<int>(::mscclpp::logLevel()) >=                       \
            static_cast<int>(level)) {                                       \
            ::mscclpp::logMessage(                                           \
                level, ::mscclpp::detail::formatLog(__VA_ARGS__));           \
        }                                                                    \
    } while (0)

#define MSCCLPP_INFO(...) MSCCLPP_LOG(::mscclpp::LogLevel::Info, __VA_ARGS__)
#define MSCCLPP_WARN(...) MSCCLPP_LOG(::mscclpp::LogLevel::Warn, __VA_ARGS__)
#define MSCCLPP_DEBUG(...)                                                   \
    MSCCLPP_LOG(::mscclpp::LogLevel::Debug, __VA_ARGS__)

} // namespace mscclpp

#endif // MSCCLPP_CORE_LOGGING_HPP
