#ifndef MSCCLPP_CORE_LOGGING_HPP
#define MSCCLPP_CORE_LOGGING_HPP

#include <cstdio>
#include <string>

namespace mscclpp {

namespace sim {
class Scheduler;
} // namespace sim

/** Log severities; the threshold comes from MSCCLPP_LOG_LEVEL. */
enum class LogLevel
{
    None = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
};

/** Current threshold (parsed once from the environment). */
LogLevel logLevel();

/** Emit one log line at @p level if it passes the threshold. */
void logMessage(LogLevel level, const std::string& msg);

/**
 * Attach the simulation clock to log output: every subsequent line is
 * prefixed with the current virtual time. Pass nullptr to detach.
 * The Machine registers its scheduler automatically.
 */
void setLogClock(const sim::Scheduler* sched);

/** Prefix subsequent log lines with `r<rank>`; -1 clears the prefix. */
void setLogRank(int rank);

namespace detail {

template <typename... Args>
std::string
formatLog(const char* fmt, Args... args)
{
    char buf[512];
    int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    if (n < 0) {
        return fmt; // encoding error: fall back to the raw format
    }
    if (static_cast<std::size_t>(n) < sizeof(buf)) {
        return std::string(buf, static_cast<std::size_t>(n));
    }
    // Message longer than the stack buffer: re-format into a heap
    // buffer of the exact length snprintf reported.
    std::string out(static_cast<std::size_t>(n), '\0');
    std::snprintf(out.data(), out.size() + 1, fmt, args...);
    return out;
}

} // namespace detail

#define MSCCLPP_LOG(level, ...)                                              \
    do {                                                                     \
        if (static_cast<int>(::mscclpp::logLevel()) >=                       \
            static_cast<int>(level)) {                                       \
            ::mscclpp::logMessage(                                           \
                level, ::mscclpp::detail::formatLog(__VA_ARGS__));           \
        }                                                                    \
    } while (0)

#define MSCCLPP_INFO(...) MSCCLPP_LOG(::mscclpp::LogLevel::Info, __VA_ARGS__)
#define MSCCLPP_WARN(...) MSCCLPP_LOG(::mscclpp::LogLevel::Warn, __VA_ARGS__)
#define MSCCLPP_DEBUG(...)                                                   \
    MSCCLPP_LOG(::mscclpp::LogLevel::Debug, __VA_ARGS__)

} // namespace mscclpp

#endif // MSCCLPP_CORE_LOGGING_HPP
