#ifndef MSCCLPP_CORE_SEMAPHORE_HPP
#define MSCCLPP_CORE_SEMAPHORE_HPP

#include "gpu/machine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace mscclpp {

/**
 * The integer semaphore a channel allocates on the receiving GPU
 * (Figure 6): remote peers increment it (signal), the owner busy-waits
 * for an expected value (wait).
 *
 * Each waiting side tracks its own expected value, exactly like the
 * channel's expectedValue member in the paper.
 */
class DeviceSemaphore
{
  public:
    DeviceSemaphore(gpu::Machine& machine, int gpuRank)
        : machine_(&machine), gpuRank_(gpuRank),
          sem_(machine.scheduler())
    {
    }

    int gpuRank() const { return gpuRank_; }
    std::uint64_t value() const { return sem_.value(); }

    /** Schedule a remote increment landing at absolute time @p when. */
    void arriveAt(sim::Time when)
    {
        machine_->scheduler().scheduleAt(when, [this] { sem_.add(1); });
    }

    /** Immediate local increment (host-side or test use). */
    void arrive() { sem_.add(1); }

    /**
     * Device-side wait for the next signal: bumps the expected value
     * and spins (simulated) until the semaphore reaches it.
     */
    sim::Task<> wait()
    {
        std::uint64_t expected = ++expected_;
        return sem_.waitUntil(expected,
                              machine_->config().semaphorePoll);
    }

    std::uint64_t expected() const { return expected_; }

    /** Wire handle for bootstrap exchange (in-process pointer). */
    std::vector<std::uint8_t> serialize() const;
    static DeviceSemaphore* deserialize(const std::vector<std::uint8_t>& d);
    static std::size_t serializedSize();

  private:
    gpu::Machine* machine_;
    int gpuRank_;
    sim::SimSemaphore sem_;
    std::uint64_t expected_ = 0;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_SEMAPHORE_HPP
