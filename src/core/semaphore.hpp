#ifndef MSCCLPP_CORE_SEMAPHORE_HPP
#define MSCCLPP_CORE_SEMAPHORE_HPP

#include "gpu/machine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mscclpp {

/**
 * The integer semaphore a channel allocates on the receiving GPU
 * (Figure 6): remote peers increment it (signal), the owner busy-waits
 * for an expected value (wait).
 *
 * Each waiting side tracks its own expected value, exactly like the
 * channel's expectedValue member in the paper.
 */
class DeviceSemaphore
{
  public:
    DeviceSemaphore(gpu::Machine& machine, int gpuRank)
        : machine_(&machine), gpuRank_(gpuRank),
          sem_(machine.scheduler())
    {
    }

    int gpuRank() const { return gpuRank_; }
    std::uint64_t value() const { return sem_.value(); }

    /**
     * Name the counterpart the watchdog blames when a wait() on this
     * semaphore stalls: the coarse party that owes the increment
     * ("rank3", "proxy:r3->r0") plus a human detail line. Channels set
     * this at construction; unset, a stalled wait blames "unknown".
     */
    void setExpectedSignaler(std::string owedParty, std::string owedDetail)
    {
        wdOwedParty_ = std::move(owedParty);
        wdOwedDetail_ = std::move(owedDetail);
    }

    /**
     * Fault injection for hang tests (tools/hang_probe): silently
     * swallow the next @p n remote increments, exactly like a lost
     * signal on the wire.
     */
    void dropNextArrivals(int n) { dropRemaining_ += n; }
    std::uint64_t arrivalsDropped() const { return dropped_; }

    /**
     * Schedule a remote increment landing at absolute time @p when.
     * When tracing, @p srcPid / @p srcTrack name the signalling
     * timeline so the matching wait() can emit a happens-before edge
     * (obs::EdgeKind::Signal) from issue to resume.
     */
    void arriveAt(sim::Time when, int srcPid = -1,
                  std::string srcTrack = {})
    {
        if (dropRemaining_ > 0) {
            --dropRemaining_;
            ++dropped_;
            obs::Tracer& tracer = machine_->obs().tracer();
            if (tracer.enabled()) {
                tracer.instant(obs::Category::Channel, "signal.dropped",
                               obs::kHostPid, "faults",
                               machine_->scheduler().now());
            }
            return;
        }
        if (srcPid != -1 && machine_->obs().tracer().enabled() &&
            arrivals_.size() < kMaxArrivals) {
            arrivals_.push_back(Arrival{when,
                                        machine_->scheduler().now(),
                                        srcPid, std::move(srcTrack)});
        }
        machine_->scheduler().scheduleAt(when, [this] { sem_.add(1); },
                                         "core.semaphore");
    }

    /** Immediate local increment (host-side or test use). */
    void arrive() { sem_.add(1); }

    /**
     * Device-side wait for the next signal: bumps the expected value
     * and spins (simulated) until the semaphore reaches it. When
     * tracing, @p dstPid / @p dstTrack name the waiting timeline and
     * the wait binds itself to the latest recorded arrival that had
     * landed by resume time, emitting the Signal causal edge the
     * critical-path analyzer follows.
     */
    sim::Task<> wait(int dstPid = -1, std::string dstTrack = {})
    {
        std::uint64_t expected = ++expected_;
        obs::Watchdog& wd = machine_->obs().watchdog();
        std::uint64_t wdToken = 0;
        if (wd.enabled()) {
            std::string waiter = "rank" + std::to_string(gpuRank_);
            wdToken = wd.registerWait(
                obs::WaitKind::SemWait, waiter,
                dstTrack.empty() ? waiter : waiter + "/" + dstTrack,
                wdOwedParty_.empty() ? std::string("unknown")
                                     : wdOwedParty_,
                wdOwedDetail_);
        }
        co_await sem_.waitUntil(expected,
                                machine_->config().semaphorePoll);
        wd.completeWait(wdToken);
        obs::Tracer& tracer = machine_->obs().tracer();
        if (dstPid != -1 && tracer.enabled()) {
            sim::Time now = machine_->scheduler().now();
            std::size_t best = arrivals_.size();
            for (std::size_t i = 0; i < arrivals_.size(); ++i) {
                if (arrivals_[i].when > now) {
                    continue;
                }
                if (best == arrivals_.size() ||
                    arrivals_[i].when > arrivals_[best].when) {
                    best = i;
                }
            }
            if (best != arrivals_.size()) {
                const Arrival& a = arrivals_[best];
                tracer.edge(obs::EdgeKind::Signal, a.srcPid, a.srcTrack,
                            a.issueTime, dstPid, dstTrack, now);
                arrivals_.erase(arrivals_.begin() +
                                static_cast<std::ptrdiff_t>(best));
            }
        }
    }

    std::uint64_t expected() const { return expected_; }

    /** Wire handle for bootstrap exchange (in-process pointer). */
    std::vector<std::uint8_t> serialize() const;
    static DeviceSemaphore* deserialize(const std::vector<std::uint8_t>& d);
    static std::size_t serializedSize();

  private:
    /// One traced remote increment in flight: when it lands, when it
    /// was issued, and whose timeline issued it.
    struct Arrival
    {
        sim::Time when;
        sim::Time issueTime;
        int srcPid;
        std::string srcTrack;
    };

    /// Bookkeeping cap so an untraced-wait workload (e.g. a syncer
    /// that signals without waiting) cannot grow the vector unbounded.
    static constexpr std::size_t kMaxArrivals = 65536;

    gpu::Machine* machine_;
    int gpuRank_;
    sim::SimSemaphore sem_;
    std::uint64_t expected_ = 0;
    std::vector<Arrival> arrivals_;
    std::string wdOwedParty_;
    std::string wdOwedDetail_;
    int dropRemaining_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace mscclpp

#endif // MSCCLPP_CORE_SEMAPHORE_HPP
