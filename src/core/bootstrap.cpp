#include "core/bootstrap.hpp"

#include "core/errors.hpp"
#include "core/logging.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace mscclpp {

void
Bootstrap::sendVec(int peer, int tag, const std::vector<std::uint8_t>& v)
{
    send(peer, tag, v.data(), v.size());
}

std::vector<std::uint8_t>
Bootstrap::recvVec(int peer, int tag, std::size_t bytes)
{
    std::vector<std::uint8_t> v(bytes);
    recv(peer, tag, v.data(), bytes);
    return v;
}

// ---------------------------------------------------------------------------
// In-process bootstrap
// ---------------------------------------------------------------------------

namespace {

/** Mailbox shared by all ranks of an in-process bootstrap group. */
struct InProcState
{
    explicit InProcState(int size) : size(size) {}

    int size;
    std::mutex mu;
    std::condition_variable cv;
    // (src, dst, tag) -> FIFO of messages
    std::map<std::tuple<int, int, int>, std::deque<std::vector<std::uint8_t>>>
        mail;
    // allGather staging
    std::vector<std::uint8_t> gatherBuf;
    int gatherArrived = 0;
    int gatherDeparted = 0;
    std::size_t gatherBytesPerRank = 0;
    // barrier
    int barArrived = 0;
    std::uint64_t barGeneration = 0;
};

class InProcessBootstrap : public Bootstrap
{
  public:
    InProcessBootstrap(std::shared_ptr<InProcState> state, int rank)
        : state_(std::move(state)), rank_(rank)
    {
    }

    int rank() const override { return rank_; }
    int size() const override { return state_->size; }

    void send(int peer, int tag, const void* data,
              std::size_t bytes) override
    {
        checkPeer(peer);
        std::vector<std::uint8_t> msg(bytes);
        std::memcpy(msg.data(), data, bytes);
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->mail[{rank_, peer, tag}].push_back(std::move(msg));
        }
        state_->cv.notify_all();
    }

    void recv(int peer, int tag, void* data, std::size_t bytes) override
    {
        checkPeer(peer);
        std::unique_lock<std::mutex> lock(state_->mu);
        auto key = std::make_tuple(peer, rank_, tag);
        state_->cv.wait(lock, [&] {
            auto it = state_->mail.find(key);
            return it != state_->mail.end() && !it->second.empty();
        });
        auto& q = state_->mail[key];
        std::vector<std::uint8_t> msg = std::move(q.front());
        q.pop_front();
        if (msg.size() != bytes) {
            throw Error(ErrorCode::InvalidUsage,
                        "bootstrap recv size mismatch");
        }
        std::memcpy(data, msg.data(), bytes);
    }

    void allGather(void* allData, std::size_t bytesPerRank) override
    {
        std::unique_lock<std::mutex> lock(state_->mu);
        // Wait for the previous round to fully drain before joining a
        // new one.
        state_->cv.wait(
            lock, [&] { return state_->gatherArrived < state_->size; });
        if (state_->gatherArrived == 0) {
            state_->gatherBuf.assign(
                bytesPerRank * static_cast<std::size_t>(state_->size), 0);
            state_->gatherBytesPerRank = bytesPerRank;
        } else if (state_->gatherBytesPerRank != bytesPerRank) {
            throw Error(ErrorCode::InvalidUsage,
                        "allGather bytesPerRank mismatch across ranks");
        }
        std::memcpy(state_->gatherBuf.data() + bytesPerRank * rank_,
                    static_cast<const std::uint8_t*>(allData) +
                        bytesPerRank * rank_,
                    bytesPerRank);
        ++state_->gatherArrived;
        state_->cv.notify_all();
        state_->cv.wait(lock,
                        [&] { return state_->gatherArrived == state_->size; });
        std::memcpy(allData, state_->gatherBuf.data(),
                    state_->gatherBuf.size());
        ++state_->gatherDeparted;
        if (state_->gatherDeparted == state_->size) {
            state_->gatherArrived = 0;
            state_->gatherDeparted = 0;
        }
        state_->cv.notify_all();
    }

    void barrier() override
    {
        std::unique_lock<std::mutex> lock(state_->mu);
        std::uint64_t gen = state_->barGeneration;
        if (++state_->barArrived == state_->size) {
            state_->barArrived = 0;
            ++state_->barGeneration;
            state_->cv.notify_all();
            return;
        }
        state_->cv.wait(lock,
                        [&] { return state_->barGeneration != gen; });
    }

  private:
    void checkPeer(int peer) const
    {
        if (peer < 0 || peer >= state_->size || peer == rank_) {
            throw Error(ErrorCode::InvalidUsage, "invalid bootstrap peer");
        }
    }

    std::shared_ptr<InProcState> state_;
    int rank_;
};

} // namespace

std::vector<std::shared_ptr<Bootstrap>>
createInProcessBootstrap(int size)
{
    if (size < 1) {
        throw Error(ErrorCode::InvalidUsage, "bootstrap size must be >= 1");
    }
    auto state = std::make_shared<InProcState>(size);
    std::vector<std::shared_ptr<Bootstrap>> out;
    out.reserve(size);
    for (int r = 0; r < size; ++r) {
        out.push_back(std::make_shared<InProcessBootstrap>(state, r));
    }
    return out;
}

// ---------------------------------------------------------------------------
// TCP bootstrap
// ---------------------------------------------------------------------------

namespace {

/** RAII socket. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
    Socket& operator=(Socket&& o) noexcept
    {
        if (this != &o) {
            close();
            fd_ = std::exchange(o.fd_, -1);
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    void close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    void writeAll(const void* data, std::size_t bytes)
    {
        const char* p = static_cast<const char*>(data);
        while (bytes > 0) {
            ssize_t n = ::send(fd_, p, bytes, MSG_NOSIGNAL);
            if (n <= 0) {
                throw Error(ErrorCode::SystemError,
                            "socket send failed: " +
                                std::string(std::strerror(errno)));
            }
            p += n;
            bytes -= static_cast<std::size_t>(n);
        }
    }

    void readAll(void* data, std::size_t bytes)
    {
        char* p = static_cast<char*>(data);
        while (bytes > 0) {
            ssize_t n = ::recv(fd_, p, bytes, 0);
            if (n <= 0) {
                throw Error(ErrorCode::RemoteError,
                            "socket recv failed or peer closed");
            }
            p += n;
            bytes -= static_cast<std::size_t>(n);
        }
    }

  private:
    int fd_ = -1;
};

Socket
makeListener(uint16_t& port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw Error(ErrorCode::SystemError, "socket() failed");
    }
    Socket s(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        throw Error(ErrorCode::SystemError,
                    "bind failed: " + std::string(std::strerror(errno)));
    }
    if (::listen(fd, 64) != 0) {
        throw Error(ErrorCode::SystemError, "listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
    return s;
}

Socket
connectTo(uint16_t port)
{
    for (int attempt = 0; attempt < 200; ++attempt) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            throw Error(ErrorCode::SystemError, "socket() failed");
        }
        Socket s(fd);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return s;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    throw Error(ErrorCode::Timeout, "could not connect to bootstrap peer");
}

struct Frame
{
    std::int32_t tag;
    std::uint64_t size;
};

constexpr int kGatherTag = -1000;

/**
 * Full-mesh TCP bootstrap. Rendezvous: every rank connects to rank 0,
 * announces its own listener port, rank 0 broadcasts the port table,
 * then rank j connects to every rank i < j.
 */
class TcpBootstrap : public Bootstrap
{
  public:
    TcpBootstrap(int rank, int size, int port) : rank_(rank), size_(size)
    {
        if (rank < 0 || rank >= size) {
            throw Error(ErrorCode::InvalidUsage, "bad bootstrap rank");
        }
        peers_.resize(size);
        if (size == 1) {
            return;
        }
        std::vector<std::uint16_t> ports(size, 0);

        if (rank == 0) {
            // Rank 0 needs no mesh listener: every peer reaches it via
            // the rendezvous socket.
            std::uint16_t rootPort = static_cast<std::uint16_t>(port);
            Socket rootListener = makeListener(rootPort);
            ports[0] = rootPort;
            // Accept size-1 connections; each announces (rank, port).
            for (int i = 1; i < size; ++i) {
                int fd = ::accept(rootListener.fd(), nullptr, nullptr);
                if (fd < 0) {
                    throw Error(ErrorCode::SystemError, "accept failed");
                }
                Socket s(fd);
                std::int32_t peerRank;
                std::uint16_t peerPort;
                s.readAll(&peerRank, sizeof(peerRank));
                s.readAll(&peerPort, sizeof(peerPort));
                ports[peerRank] = peerPort;
                peers_[peerRank] = std::move(s);
            }
            // Broadcast the port table.
            for (int i = 1; i < size; ++i) {
                peers_[i].writeAll(ports.data(),
                                   ports.size() * sizeof(ports[0]));
            }
        } else {
            std::uint16_t myPort = 0;
            Socket listener = makeListener(myPort);
            Socket toRoot = connectTo(static_cast<std::uint16_t>(port));
            std::int32_t myRank = rank;
            toRoot.writeAll(&myRank, sizeof(myRank));
            toRoot.writeAll(&myPort, sizeof(myPort));
            toRoot.readAll(ports.data(), ports.size() * sizeof(ports[0]));
            peers_[0] = std::move(toRoot);
            // Connect to every lower-ranked peer (except root).
            for (int i = 1; i < rank; ++i) {
                Socket s = connectTo(ports[i]);
                std::int32_t r = rank;
                s.writeAll(&r, sizeof(r));
                peers_[i] = std::move(s);
            }
            // Accept connections from every higher-ranked peer.
            for (int i = rank + 1; i < size; ++i) {
                int fd = ::accept(listener.fd(), nullptr, nullptr);
                if (fd < 0) {
                    throw Error(ErrorCode::SystemError, "accept failed");
                }
                Socket s(fd);
                std::int32_t peerRank;
                s.readAll(&peerRank, sizeof(peerRank));
                peers_[peerRank] = std::move(s);
            }
        }
    }

    int rank() const override { return rank_; }
    int size() const override { return size_; }

    void send(int peer, int tag, const void* data,
              std::size_t bytes) override
    {
        checkPeer(peer);
        std::lock_guard<std::mutex> lock(sendMu_[peer % kLockStripes]);
        Frame f{tag, bytes};
        peers_[peer].writeAll(&f, sizeof(f));
        if (bytes > 0) {
            peers_[peer].writeAll(data, bytes);
        }
    }

    void recv(int peer, int tag, void* data, std::size_t bytes) override
    {
        checkPeer(peer);
        // Check messages buffered while scanning for other tags.
        {
            auto it = pending_.find({peer, tag});
            if (it != pending_.end() && !it->second.empty()) {
                takePending(it->second, data, bytes);
                return;
            }
        }
        for (;;) {
            Frame f;
            peers_[peer].readAll(&f, sizeof(f));
            std::vector<std::uint8_t> payload(f.size);
            if (f.size > 0) {
                peers_[peer].readAll(payload.data(), payload.size());
            }
            if (f.tag == tag) {
                if (payload.size() != bytes) {
                    throw Error(ErrorCode::InvalidUsage,
                                "bootstrap recv size mismatch");
                }
                std::memcpy(data, payload.data(), bytes);
                return;
            }
            pending_[{peer, f.tag}].push_back(std::move(payload));
        }
    }

    void allGather(void* allData, std::size_t bytesPerRank) override
    {
        auto* base = static_cast<std::uint8_t*>(allData);
        if (size_ == 1) {
            return;
        }
        if (rank_ == 0) {
            for (int i = 1; i < size_; ++i) {
                recv(i, kGatherTag, base + bytesPerRank * i, bytesPerRank);
            }
            for (int i = 1; i < size_; ++i) {
                send(i, kGatherTag, base, bytesPerRank * size_);
            }
        } else {
            send(0, kGatherTag, base + bytesPerRank * rank_, bytesPerRank);
            recv(0, kGatherTag, base, bytesPerRank * size_);
        }
    }

    void barrier() override
    {
        std::uint8_t token = 0;
        std::vector<std::uint8_t> all(size_);
        all[rank_] = token;
        allGather(all.data(), 1);
    }

  private:
    static constexpr int kLockStripes = 64;

    void checkPeer(int peer) const
    {
        if (peer < 0 || peer >= size_ || peer == rank_) {
            throw Error(ErrorCode::InvalidUsage, "invalid bootstrap peer");
        }
    }

    static void takePending(std::deque<std::vector<std::uint8_t>>& q,
                            void* data, std::size_t bytes)
    {
        std::vector<std::uint8_t> payload = std::move(q.front());
        q.pop_front();
        if (payload.size() != bytes) {
            throw Error(ErrorCode::InvalidUsage,
                        "bootstrap recv size mismatch");
        }
        std::memcpy(data, payload.data(), bytes);
    }

    int rank_;
    int size_;
    std::vector<Socket> peers_;
    std::map<std::pair<int, int>, std::deque<std::vector<std::uint8_t>>>
        pending_;
    std::mutex sendMu_[kLockStripes];
};

} // namespace

std::shared_ptr<Bootstrap>
createTcpBootstrap(int rank, int size, int port)
{
    if (port <= 0 || port > 65535) {
        throw Error(ErrorCode::InvalidUsage, "bootstrap port out of range");
    }
    return std::make_shared<TcpBootstrap>(rank, size, port);
}

} // namespace mscclpp
