#ifndef MSCCLPP_BASELINE_MSCCL_HPP
#define MSCCLPP_BASELINE_MSCCL_HPP

#include "baseline/two_sided.hpp"
#include "gpu/types.hpp"

#include <memory>
#include <vector>

namespace mscclpp::baseline {

/** Custom algorithms MSCCL schedules (fastest per size, per [17]). */
enum class MscclAlgo
{
    Auto,
    AllPairs1P, ///< one-phase all-pairs (small single-node)
    AllPairs2P, ///< two-phase all-pairs (single-node)
    Hier2PLL,   ///< hierarchical, LL, G chunks (multi-node small)
    Hier2PHB,   ///< hierarchical, pipelined (multi-node large)
    Ring,       ///< NCCL-equivalent ring (large AllGather)
};

const char* toString(MscclAlgo a);

/**
 * Model of MSCCL 2.23: custom collective algorithms (the same
 * high-level data flows MSCCL++ uses) interpreted over the NCCL
 * primitive stack. The gap to MSCCL++ is pure stack overhead — the
 * two-sided rendezvous semantics, receiver-side staging copies, the
 * per-instruction interpreter cost, and conservative barriers (no
 * rotating buffers are possible with self-synchronous primitives,
 * Section 2.2.2).
 */
class MscclComm
{
  public:
    MscclComm(gpu::Machine& machine, std::size_t maxBytes);

    gpu::Machine& machine() const { return *machine_; }
    int size() const { return n_; }

    gpu::DeviceBuffer dataBuffer(int rank) const { return data_.at(rank); }

    sim::Time allReduce(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op, MscclAlgo algo = MscclAlgo::Auto);

    sim::Time allGather(std::size_t shard,
                        MscclAlgo algo = MscclAlgo::Auto);

    MscclAlgo chooseAllReduce(std::size_t bytes) const;
    MscclAlgo chooseAllGather(std::size_t shard) const;

  private:
    /** Interpreter decode cost charged before every channel op. */
    sim::Delay instr(gpu::BlockCtx& ctx) const;

    /** Conservative cross-GPU barrier over the NCCL stack. */
    sim::Task<> slowBarrier(gpu::BlockCtx& ctx,
                            std::shared_ptr<sim::SimBarrier> bar) const;

    NcclProto protoFor(std::size_t bytes) const;

    sim::Time allPairs1P(std::size_t bytes, gpu::DataType type,
                         gpu::ReduceOp op);
    sim::Time allPairs2P(std::size_t bytes, gpu::DataType type,
                         gpu::ReduceOp op);
    sim::Time hier2P(std::size_t bytes, gpu::DataType type,
                     gpu::ReduceOp op, bool ll);
    sim::Time allPairsAG(std::size_t shard);
    sim::Time hierAG(std::size_t shard);

    gpu::Machine* machine_;
    int n_;
    int gpn_;
    int nodes_;
    std::size_t maxBytes_;
    std::vector<gpu::DeviceBuffer> data_;
    std::vector<gpu::DeviceBuffer> scratch_;
    std::unique_ptr<TwoSidedMesh> mesh_;
};

} // namespace mscclpp::baseline

#endif // MSCCLPP_BASELINE_MSCCL_HPP
