#include "baseline/nccl.hpp"

#include "core/errors.hpp"
#include "gpu/kernel.hpp"

#include <algorithm>

namespace mscclpp::baseline {

const char*
toString(NcclAlgo a)
{
    switch (a) {
      case NcclAlgo::Auto:
        return "auto";
      case NcclAlgo::Ring:
        return "ring";
      case NcclAlgo::Tree:
        return "tree";
      case NcclAlgo::Nvls:
        return "nvls";
    }
    return "?";
}

namespace {

/** Strides (coprime with 8) RCCL-style rings use to cover the mesh. */
constexpr int kMeshStrides[] = {1, 3, 5, 7};

constexpr std::size_t kElemAlign = 16;

} // namespace

NcclComm::NcclComm(gpu::Machine& machine, std::size_t maxBytes)
    : machine_(&machine), maxBytes_(maxBytes)
{
    n_ = machine.numGpus();
    gpn_ = machine.config().gpusPerNode;
    nodes_ = machine.numNodes();
    meshRings_ =
        machine.config().intra == fabric::IntraTopology::Mesh && nodes_ == 1;
    if (n_ < 2) {
        throw Error(ErrorCode::InvalidUsage, "need at least two GPUs");
    }
    for (int r = 0; r < n_; ++r) {
        data_.push_back(machine.gpu(r).alloc(maxBytes));
    }
    mesh_ = std::make_unique<TwoSidedMesh>(machine);
}

int
NcclComm::ringPos(int rank, int c) const
{
    if (meshRings_) {
        // Strides coprime to 8 are self-inverse mod 8.
        return (rank * kMeshStrides[c % 4]) % gpn_;
    }
    if (nodes_ == 1) {
        return rank;
    }
    // Multi-node rings rotate the intra-node order by the channel id
    // so each channel crosses nodes on a different GPU's NIC (NCCL
    // builds its rings the same way to use every NIC).
    int node = rank / gpn_;
    int idx = ((rank % gpn_) - (c % gpn_) + gpn_) % gpn_;
    return node * gpn_ + idx;
}

int
NcclComm::ringRank(int pos, int c) const
{
    if (meshRings_) {
        return (pos * kMeshStrides[c % 4]) % gpn_;
    }
    if (nodes_ == 1) {
        return pos;
    }
    int node = pos / gpn_;
    int idx = pos % gpn_;
    return node * gpn_ + (idx + (c % gpn_)) % gpn_;
}

int
NcclComm::ringNext(int rank, int channel) const
{
    return ringRank((ringPos(rank, channel) + 1) % n_, channel);
}

int
NcclComm::ringPrev(int rank, int channel) const
{
    return ringRank((ringPos(rank, channel) + n_ - 1) % n_, channel);
}

NcclProto
NcclComm::edgeProto(int src, int dst, NcclProto wanted) const
{
    if (wanted == NcclProto::LL128 &&
        (!machine_->config().ll128Supported ||
         !machine_->fabric().sameNode(src, dst))) {
        return NcclProto::Simple;
    }
    return wanted;
}

std::pair<NcclAlgo, NcclProto>
NcclComm::tuneAllReduce(std::size_t bytes) const
{
    const fabric::EnvConfig& cfg = machine_->config();
    if (nodes_ == 1) {
        if (cfg.hasMultimem && bytes > (4 << 20)) {
            return {NcclAlgo::Nvls, NcclProto::Simple};
        }
        if (bytes <= (64 << 10)) {
            return {NcclAlgo::Ring, NcclProto::LL};
        }
        if (bytes <= (4 << 20)) {
            return {NcclAlgo::Ring, cfg.ll128Supported ? NcclProto::LL128
                                                       : NcclProto::Simple};
        }
        return {NcclAlgo::Ring, NcclProto::Simple};
    }
    if (bytes <= (64 << 10)) {
        return {NcclAlgo::Tree, NcclProto::LL};
    }
    if (bytes <= (4 << 20)) {
        return {NcclAlgo::Tree, cfg.ll128Supported ? NcclProto::LL128
                                                   : NcclProto::Simple};
    }
    return {NcclAlgo::Ring, NcclProto::Simple};
}

NcclProto
NcclComm::tuneProto(std::size_t bytes) const
{
    if (bytes <= (64 << 10)) {
        return NcclProto::LL;
    }
    if (bytes <= (4 << 20) && machine_->config().ll128Supported &&
        nodes_ == 1) {
        return NcclProto::LL128;
    }
    return NcclProto::Simple;
}

int
NcclComm::tuneChannels(std::size_t bytes) const
{
    int channels = static_cast<int>(
        std::clamp<std::size_t>(bytes >> 18, 1, 8));
    if (meshRings_ && bytes >= (1 << 20)) {
        channels = std::max(channels, 4);
    }
    return channels;
}

sim::Time
NcclComm::allReduce(std::size_t bytes, gpu::DataType type, gpu::ReduceOp op,
                    NcclAlgo algo)
{
    if (bytes == 0 || bytes > maxBytes_) {
        throw Error(ErrorCode::InvalidUsage, "allReduce size out of range");
    }
    NcclProto proto = NcclProto::Simple;
    if (algo == NcclAlgo::Auto) {
        std::tie(algo, proto) = tuneAllReduce(bytes);
    } else {
        proto = tuneProto(bytes);
    }
    switch (algo) {
      case NcclAlgo::Ring:
        return ringAllReduce(bytes, type, op, proto);
      case NcclAlgo::Tree:
        return treeAllReduce(bytes, type, op, proto);
      case NcclAlgo::Nvls:
        return nvlsAllReduce(bytes, type, op);
      case NcclAlgo::Auto:
        break;
    }
    throw Error(ErrorCode::InternalError, "unresolved NCCL algorithm");
}

sim::Time
NcclComm::ringAllReduce(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op, NcclProto proto)
{
    const int n = n_;
    if (bytes % (static_cast<std::size_t>(n) * kElemAlign) != 0) {
        throw Error(ErrorCode::InvalidUsage,
                    "ring allreduce size must shard evenly");
    }
    int channels = tuneChannels(bytes);
    while (channels > 1 &&
           bytes % (static_cast<std::size_t>(channels) * n * kElemAlign) !=
               0) {
        channels >>= 1;
    }
    const std::size_t stripe = bytes / channels;
    const std::size_t seg = stripe / n;

    auto fn = [&, stripe, seg, proto](gpu::BlockCtx& ctx,
                                      int rank) -> sim::Task<> {
        const int c = ctx.blockIdx();
        const std::size_t base = c * stripe;
        const int next = ringNext(rank, c);
        const int prev = ringPrev(rank, c);
        // Distinct rings may share edges (intra-node hops are always
        // rank -> rank+1); tag by channel so their staged slots stay
        // separate.
        TwoSidedChannel& out =
            mesh_->channel(rank, next, edgeProto(rank, next, proto), c);
        TwoSidedChannel& in =
            mesh_->channel(prev, rank, edgeProto(prev, rank, proto), c);
        const std::size_t w = out.windowBytes();
        const int p = ringPos(rank, c);
        // Memory segment owned by ring position q is indexed by the
        // rank sitting there, keeping all channels' orders consistent
        // with rank-indexed shards.
        auto segAt = [&](int q) {
            return static_cast<std::size_t>(ringRank(q, c));
        };

        // ReduceScatter phase: after n-1 steps this rank owns the
        // fully-reduced segment at position (p+1) mod n.
        for (int j = 0; j < n - 1; ++j) {
            std::size_t sendSeg = segAt((p - j + n) % n);
            std::size_t recvSeg = segAt((p - j - 1 + n) % n);
            for (std::size_t off = 0; off < seg; off += w) {
                std::size_t len = std::min(w, seg - off);
                co_await out.send(
                    ctx, data_[rank].view(base + sendSeg * seg + off, len),
                    len);
                co_await in.recv(
                    ctx, data_[rank].view(base + recvSeg * seg + off, len),
                    len, /*reduceInto=*/true, type, op);
            }
        }
        // AllGather phase.
        for (int j = 0; j < n - 1; ++j) {
            std::size_t sendSeg = segAt((p + 1 - j + 2 * n) % n);
            std::size_t recvSeg = segAt((p - j + 2 * n) % n);
            for (std::size_t off = 0; off < seg; off += w) {
                std::size_t len = std::min(w, seg - off);
                co_await out.send(
                    ctx, data_[rank].view(base + sendSeg * seg + off, len),
                    len);
                co_await in.recv(
                    ctx, data_[rank].view(base + recvSeg * seg + off, len),
                    len, /*reduceInto=*/false, type, op);
            }
        }
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = channels;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
NcclComm::treeAllReduce(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op, NcclProto proto)
{
    auto fn = [&, bytes, proto](gpu::BlockCtx& ctx,
                                int rank) -> sim::Task<> {
        // Node-aware tree, like NCCL's: GPUs inside a node form a
        // chain rooted at local rank 0; node leaders form a binary
        // tree across nodes.
        const int g = gpn_;
        const int node = rank / g;
        const int local = rank % g;
        int parent;
        int left = -1;
        int right = -1;
        if (local != 0) {
            parent = rank - 1; // chain up within the node
            if (local + 1 < g) {
                left = rank + 1;
            }
        } else {
            if (g > 1) {
                left = rank + 1; // chain head feeds the local chain
            }
            int lNode = 2 * node + 1;
            int rNode = 2 * node + 2;
            parent = node == 0 ? -1 : ((node - 1) / 2) * g;
            if (lNode < nodes_) {
                right = lNode * g;
            }
            if (rNode < nodes_) {
                // Chain slot is taken; hang the second child off the
                // chain's first hop when it exists, else off us.
                right = right < 0 ? rNode * g : right;
            }
        }
        // Collect the actual child list (up to 3 for leaders).
        std::vector<int> children;
        if (left >= 0) {
            children.push_back(left);
        }
        if (right >= 0 && right != left) {
            children.push_back(right);
        }
        if (local == 0) {
            int rNode = 2 * node + 2;
            if (2 * node + 1 < nodes_ && rNode < nodes_) {
                children.push_back(rNode * g);
            }
        }
        std::size_t w = machine_->config().ncclSlotBytes;

        // Reduce up.
        for (std::size_t off = 0; off < bytes; off += w) {
            std::size_t len = std::min(w, bytes - off);
            for (int child : children) {
                co_await mesh_
                    ->channel(child, rank, edgeProto(child, rank, proto))
                    .recv(ctx, data_[rank].view(off, len), len,
                          /*reduceInto=*/true, type, op);
            }
            if (parent >= 0) {
                co_await mesh_
                    ->channel(rank, parent, edgeProto(rank, parent, proto))
                    .send(ctx, data_[rank].view(off, len), len);
            }
        }
        // Broadcast down.
        for (std::size_t off = 0; off < bytes; off += w) {
            std::size_t len = std::min(w, bytes - off);
            if (parent >= 0) {
                co_await mesh_
                    ->channel(parent, rank, edgeProto(parent, rank, proto))
                    .recv(ctx, data_[rank].view(off, len), len,
                          /*reduceInto=*/false, type, op);
            }
            for (int child : children) {
                co_await mesh_
                    ->channel(rank, child, edgeProto(rank, child, proto))
                    .send(ctx, data_[rank].view(off, len), len);
            }
        }
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
NcclComm::nvlsAllReduce(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op)
{
    const fabric::EnvConfig& env = machine_->config();
    if (!env.hasMultimem || nodes_ > 1) {
        throw Error(ErrorCode::InvalidUsage,
                    "NVLS requires single-node multimem hardware");
    }
    if (bytes % (static_cast<std::size_t>(n_) * kElemAlign) != 0) {
        throw Error(ErrorCode::InvalidUsage, "NVLS size must shard evenly");
    }
    const std::size_t shard = bytes / n_;
    std::vector<int> ranks(n_);
    for (int r = 0; r < n_; ++r) {
        ranks[r] = r;
    }
    auto barrier =
        std::make_shared<sim::SimBarrier>(machine_->scheduler(), n_);

    auto fn = [&, shard, type, op, barrier](gpu::BlockCtx& ctx,
                                            int rank) -> sim::Task<> {
        // NCCL's NVLS kernel spends several primitive rounds on
        // internal bookkeeping before touching the switch.
        co_await ctx.busy(4 * machine_->config().ncclPrimOverhead);
        co_await ctx.busy(machine_->config().atomicAddLatency);
        co_await barrier->arriveAndWait();
        auto [s1, reduceDone] = machine_->fabric().multimemReduce(
            rank, ranks, shard, env.ncclNvlsEff);
        // Functional result: reduce my shard into place (staged to
        // dodge the in-place aliasing).
        if (data_[rank].data() != nullptr) {
            gpu::Buffer staging(rank, 0, shard, true);
            gpu::DeviceBuffer tmp(&staging, 0, shard);
            gpu::copyBytes(tmp, data_[0].view(rank * shard, shard), shard);
            for (int p = 1; p < n_; ++p) {
                gpu::accumulate(tmp, data_[p].view(rank * shard, shard),
                                shard, type, op);
            }
            gpu::copyBytes(data_[rank].view(rank * shard, shard), tmp,
                           shard);
        }
        sim::Scheduler& sched = ctx.scheduler();
        if (reduceDone > sched.now()) {
            co_await sim::Delay(sched, reduceDone - sched.now(),
                                "baseline.nccl");
        }
        auto [s2, bcastDone] = machine_->fabric().multimemBroadcast(
            rank, ranks, shard, env.ncclNvlsEff);
        for (int p = 0; p < n_; ++p) {
            if (p != rank) {
                gpu::copyBytes(data_[p].view(rank * shard, shard),
                               data_[rank].view(rank * shard, shard),
                               shard);
            }
        }
        if (bcastDone > sched.now()) {
            co_await sim::Delay(sched, bcastDone - sched.now(),
                                "baseline.nccl");
        }
        co_await barrier->arriveAndWait();
        (void)s1;
        (void)s2;
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
NcclComm::allGather(std::size_t shard)
{
    const int n = n_;
    const std::size_t bytes = shard * n;
    if (bytes == 0 || bytes > maxBytes_) {
        throw Error(ErrorCode::InvalidUsage, "allGather size out of range");
    }
    NcclProto proto = tuneProto(bytes);
    int channels = tuneChannels(bytes);
    while (channels > 1 &&
           shard % (static_cast<std::size_t>(channels) * kElemAlign) != 0) {
        channels >>= 1;
    }
    const std::size_t seg = shard / channels;

    auto fn = [&, shard, seg, proto](gpu::BlockCtx& ctx,
                                     int rank) -> sim::Task<> {
        const int c = ctx.blockIdx();
        const int next = ringNext(rank, c);
        const int prev = ringPrev(rank, c);
        TwoSidedChannel& out =
            mesh_->channel(rank, next, edgeProto(rank, next, proto), c);
        TwoSidedChannel& in =
            mesh_->channel(prev, rank, edgeProto(prev, rank, proto), c);
        const std::size_t w = out.windowBytes();
        const int p = ringPos(rank, c);
        auto segAt = [&](int q) { return ringRank(q, c); };
        for (int j = 0; j < n_ - 1; ++j) {
            int sendSeg = segAt((p - j + n_) % n_);
            int recvSeg = segAt((p - j - 1 + n_) % n_);
            for (std::size_t off = 0; off < seg; off += w) {
                std::size_t len = std::min(w, seg - off);
                co_await out.send(ctx,
                                  data_[rank].view(sendSeg * shard +
                                                       c * seg + off,
                                                   len),
                                  len);
                co_await in.recv(ctx,
                                 data_[rank].view(recvSeg * shard +
                                                      c * seg + off,
                                                  len),
                                 len, false, gpu::DataType::F32,
                                 gpu::ReduceOp::Sum);
            }
        }
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = channels;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
NcclComm::reduceScatter(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op)
{
    const int n = n_;
    if (bytes == 0 || bytes > maxBytes_ ||
        bytes % (static_cast<std::size_t>(n) * kElemAlign) != 0) {
        throw Error(ErrorCode::InvalidUsage,
                    "reduceScatter size must shard evenly");
    }
    NcclProto proto = tuneProto(bytes);
    const std::size_t seg = bytes / n;

    auto fn = [&, seg, proto](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        const int next = ringNext(rank, 0);
        const int prev = ringPrev(rank, 0);
        TwoSidedChannel& out =
            mesh_->channel(rank, next, edgeProto(rank, next, proto));
        TwoSidedChannel& in =
            mesh_->channel(prev, rank, edgeProto(prev, rank, proto));
        const std::size_t w = out.windowBytes();
        // Shifted segment walk so the rank ends with its own segment.
        for (int j = 0; j < n_ - 1; ++j) {
            int sendSeg = (rank - j - 1 + 2 * n_) % n_;
            int recvSeg = (rank - j - 2 + 2 * n_) % n_;
            for (std::size_t off = 0; off < seg; off += w) {
                std::size_t len = std::min(w, seg - off);
                co_await out.send(
                    ctx, data_[rank].view(sendSeg * seg + off, len), len);
                co_await in.recv(
                    ctx, data_[rank].view(recvSeg * seg + off, len), len,
                    true, type, op);
            }
        }
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
NcclComm::broadcast(std::size_t bytes, int root)
{
    if (bytes == 0 || bytes > maxBytes_ || root < 0 || root >= n_) {
        throw Error(ErrorCode::InvalidUsage, "broadcast arguments invalid");
    }
    NcclProto proto = tuneProto(bytes);
    auto fn = [&, bytes, root, proto](gpu::BlockCtx& ctx,
                                      int rank) -> sim::Task<> {
        // Ring pipeline rooted at `root`.
        const int pos = (rank - root + n_) % n_;
        const int next = (rank + 1) % n_;
        const int prev = (rank + n_ - 1) % n_;
        const std::size_t w = machine_->config().ncclSlotBytes;
        for (std::size_t off = 0; off < bytes; off += w) {
            std::size_t len = std::min(w, bytes - off);
            if (pos > 0) {
                co_await mesh_
                    ->channel(prev, rank, edgeProto(prev, rank, proto))
                    .recv(ctx, data_[rank].view(off, len), len, false,
                          gpu::DataType::F32, gpu::ReduceOp::Sum);
            }
            if (pos < n_ - 1) {
                co_await mesh_
                    ->channel(rank, next, edgeProto(rank, next, proto))
                    .send(ctx, data_[rank].view(off, len), len);
            }
        }
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

} // namespace mscclpp::baseline
