#include "baseline/two_sided.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <cstring>

namespace mscclpp::baseline {

const char*
toString(NcclProto p)
{
    switch (p) {
      case NcclProto::Simple:
        return "Simple";
      case NcclProto::LL:
        return "LL";
      case NcclProto::LL128:
        return "LL128";
    }
    return "?";
}

TwoSidedChannel::TwoSidedChannel(gpu::Machine& machine, int srcRank,
                                 int dstRank, NcclProto proto)
    : machine_(&machine),
      srcRank_(srcRank),
      dstRank_(dstRank),
      proto_(proto),
      slotCredits_(machine.scheduler()),
      dataReady_(machine.scheduler())
{
    const fabric::EnvConfig& cfg = machine.config();
    fabric::Fabric& fab = machine.fabric();
    sameNode_ = fab.sameNode(srcRank, dstRank);
    path_ = fab.p2pPath(srcRank, dstRank);

    double line = path_.bottleneckGBps();
    switch (proto) {
      case NcclProto::Simple:
        protoBw_ = line *
                   (sameNode_ ? cfg.threadCopyPeakEff * cfg.ncclSimpleEff
                              : 1.0);
        break;
      case NcclProto::LL:
        protoBw_ = line * cfg.ncclLlBwFactor;
        break;
      case NcclProto::LL128:
        if (!cfg.ll128Supported || !sameNode_) {
            throw Error(ErrorCode::InvalidUsage,
                        "LL128 requires intra-node NVLink ordering");
        }
        protoBw_ = line * cfg.ncclLl128BwFactor;
        break;
    }
    windowBytes_ = cfg.ncclSlotBytes;
    numSlots_ = 8; // NCCL_STEPS
    slotCredits_.add(numSlots_);
}

sim::Task<>
TwoSidedChannel::send(gpu::BlockCtx& ctx, gpu::DeviceBuffer src,
                      std::size_t bytes)
{
    (void)ctx;
    const fabric::EnvConfig& cfg = machine_->config();
    sim::Scheduler& sched = machine_->scheduler();
    std::size_t off = 0;
    while (off < bytes) {
        std::size_t w = std::min(windowBytes_, bytes - off);
        // Static thread-group cost of the primitive call.
        co_await sim::Delay(sched, cfg.ncclPrimOverhead,
                            "baseline.nccl");
        // Self-synchronous: block until a staging slot is free.
        co_await slotCredits_.waitUntil(++creditsTaken_,
                                        cfg.semaphorePoll);
        if (!sameNode_) {
            // The network proxy forwards this window.
            co_await sim::Delay(sched, cfg.ncclProxyStep,
                                "baseline.nccl");
        }
        // Wire occupancy for the window (LL doubles traffic: every
        // 4B of data carries a 4B flag).
        std::uint64_t wire = proto_ == NcclProto::LL
                                 ? static_cast<std::uint64_t>(w) * 2
                                 : w;
        auto [start, arrival] = path_.reserve(wire, protoBw_);
        (void)start;

        Window win;
        win.bytes = w;
        if (src.data() != nullptr) {
            win.payload.resize(w);
            std::memcpy(win.payload.data(), src.data() + off, w);
        }
        inflight_.push_back(std::move(win));
        // Notify the receiver when the window lands.
        sched.scheduleAt(arrival, [this] { dataReady_.add(1); },
                         "baseline.nccl");
        off += w;
    }
}

sim::Task<>
TwoSidedChannel::recv(gpu::BlockCtx& ctx, gpu::DeviceBuffer dst,
                      std::size_t bytes, bool reduceInto,
                      gpu::DataType type, gpu::ReduceOp op)
{
    const fabric::EnvConfig& cfg = machine_->config();
    sim::Scheduler& sched = machine_->scheduler();
    gpu::Gpu& dev = machine_->gpu(dstRank_);
    std::size_t off = 0;
    while (off < bytes) {
        std::size_t w = std::min(windowBytes_, bytes - off);
        co_await sim::Delay(sched, cfg.ncclPrimOverhead,
                            "baseline.nccl");
        co_await dataReady_.waitUntil(++windowsSeen_, cfg.semaphorePoll);
        if (inflight_.empty()) {
            throw Error(ErrorCode::InternalError,
                        "two-sided window accounting is out of sync");
        }
        Window win = std::move(inflight_.front());
        inflight_.pop_front();
        if (win.bytes != w) {
            throw Error(ErrorCode::InvalidUsage,
                        "mismatched send/recv window sizes");
        }
        // Receiver-side copy/reduce out of staging (the extra data
        // movement NCCL's staged transport pays and MSCCL++ avoids).
        if (dst.data() != nullptr && !win.payload.empty()) {
            gpu::Buffer staging(dstRank_, 0, w, true);
            std::memcpy(staging.data(), win.payload.data(), w);
            gpu::DeviceBuffer view(&staging, 0, w);
            if (reduceInto) {
                gpu::accumulate(dst.view(off, w), view, w, type, op);
            } else {
                gpu::copyBytes(dst.view(off, w), view, w);
            }
        }
        co_await sim::Delay(sched,
                            reduceInto ? dev.reduceTime(w, 1)
                                       : dev.copyTime(w),
                            "baseline.nccl");
        // Recycle the slot: the credit is a tiny flag write, bounded
        // by wire latency rather than the bulk queue.
        sim::Time back = sched.now() +
                         machine_->fabric()
                             .p2pPath(dstRank_, srcRank_)
                             .latency();
        sched.scheduleAt(back + cfg.atomicAddLatency,
                         [this] { slotCredits_.add(1); },
                         "baseline.nccl");
        off += w;
    }
    (void)ctx;
}

TwoSidedChannel&
TwoSidedMesh::channel(int src, int dst, NcclProto proto, int tag)
{
    auto key = std::make_tuple(src, dst, static_cast<int>(proto), tag);
    auto it = channels_.find(key);
    if (it == channels_.end()) {
        it = channels_
                 .emplace(key, std::make_unique<TwoSidedChannel>(
                                   *machine_, src, dst, proto))
                 .first;
    }
    return *it->second;
}

} // namespace mscclpp::baseline
