#ifndef MSCCLPP_BASELINE_TWO_SIDED_HPP
#define MSCCLPP_BASELINE_TWO_SIDED_HPP

#include "fabric/link.hpp"
#include "gpu/compute.hpp"
#include "gpu/kernel.hpp"
#include "gpu/machine.hpp"
#include "sim/sync.hpp"

#include <deque>
#include <map>
#include <memory>
#include <vector>

namespace mscclpp::baseline {

/** NCCL transport protocols (Section 2.2, baselines). */
enum class NcclProto
{
    Simple, ///< staged pipeline, per-slot synchronisation
    LL,     ///< 4B data + 4B flag packets: low latency, ~1/8 bandwidth
    LL128,  ///< 120/128-byte lines over NVLink: mid latency/bandwidth
};

const char* toString(NcclProto p);

/**
 * A model of the NCCL send/recv primitive pair (Section 2.2.1): a
 * *two-sided*, self-synchronous, staged channel. The sender copies
 * windows into the receiver's staging slots (back-pressured by slot
 * credits); the receiver copies or reduces each window out of staging
 * into its destination. Every primitive call pays the NCCL static
 * thread-group cost, and windows cap pipelining at the slot size.
 *
 * This is the substrate both the NCCL baseline kernels and the MSCCL
 * baseline interpreter run on, mirroring how MSCCL reuses the NCCL
 * stack in the paper.
 */
class TwoSidedChannel
{
  public:
    TwoSidedChannel(gpu::Machine& machine, int srcRank, int dstRank,
                    NcclProto proto);

    int srcRank() const { return srcRank_; }
    int dstRank() const { return dstRank_; }
    NcclProto proto() const { return proto_; }

    /**
     * Blocking send of @p bytes from @p src (the sender's current
     * data). Windows pipeline through the staging slots; the call
     * returns when the last window has been handed to the wire.
     */
    sim::Task<> send(gpu::BlockCtx& ctx, gpu::DeviceBuffer src,
                     std::size_t bytes);

    /**
     * Blocking receive of @p bytes into @p dst. With @p reduceInto the
     * incoming windows are element-wise combined into dst (the
     * recvReduce fused primitive); otherwise they overwrite it.
     */
    sim::Task<> recv(gpu::BlockCtx& ctx, gpu::DeviceBuffer dst,
                     std::size_t bytes, bool reduceInto,
                     gpu::DataType type, gpu::ReduceOp op);

    /** Effective wire bandwidth of the protocol on this route. */
    double protoBwGBps() const { return protoBw_; }

    std::size_t windowBytes() const { return windowBytes_; }

  private:
    struct Window
    {
        std::vector<std::byte> payload; ///< empty in Timed data mode
        std::size_t bytes;
    };

    gpu::Machine* machine_;
    int srcRank_;
    int dstRank_;
    NcclProto proto_;
    fabric::Path path_;
    bool sameNode_;
    double protoBw_;
    std::size_t windowBytes_;
    int numSlots_;

    sim::SimSemaphore slotCredits_;  ///< receiver -> sender slot recycle
    sim::SimSemaphore dataReady_;    ///< wire arrival notifications
    std::uint64_t creditsTaken_ = 0;
    std::uint64_t windowsSeen_ = 0;
    std::deque<Window> inflight_;
};

/**
 * Lazily-constructed mesh of TwoSidedChannels, keyed by ordered rank
 * pair and protocol. NCCL rings/trees touch only neighbouring pairs;
 * the MSCCL interpreter touches all pairs.
 */
class TwoSidedMesh
{
  public:
    explicit TwoSidedMesh(gpu::Machine& machine) : machine_(&machine) {}

    /**
     * @param tag separates independent logical streams between the
     *        same pair (e.g. pipeline stages running concurrently) so
     *        their window FIFOs never interleave.
     */
    TwoSidedChannel& channel(int src, int dst, NcclProto proto,
                             int tag = 0);

  private:
    gpu::Machine* machine_;
    std::map<std::tuple<int, int, int, int>,
             std::unique_ptr<TwoSidedChannel>>
        channels_;
};

} // namespace mscclpp::baseline

#endif // MSCCLPP_BASELINE_TWO_SIDED_HPP
